"""Setuptools shim for environments without the ``wheel`` package.

Install with ``pip install -e . --no-use-pep517 --no-build-isolation``
when PEP 517 editable builds are unavailable (offline environments).
"""

from setuptools import setup

setup()
