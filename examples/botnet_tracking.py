#!/usr/bin/env python
"""Botnet tracking: propagation context + C&C correlation (§4.3).

Shows how the honeypot-side context separates worms from bots (Figure 5)
and how the behavioural profiles then tie the bot M-clusters back to
their IRC command-and-control infrastructure (Table 2), exposing the
herder's asset reuse.

Usage::

    python examples/botnet_tracking.py [--scale 0.5]
"""

import argparse

from repro.analysis.context import PropagationContext
from repro.analysis.crossview import CrossView
from repro.analysis.irc import CnCCorrelation
from repro.experiments import PaperScenario, ScenarioConfig
from repro.util.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    print(f"Running scenario (scale={args.scale}) ...")
    run = PaperScenario(seed=args.seed, config=ScenarioConfig(scale=args.scale)).run()
    context = PropagationContext(run.dataset, run.grid)
    crossview = CrossView(run.dataset, run.epm, run.bclusters)

    print("\nClassifying every well-populated M-cluster by its context:")
    table = TextTable(
        ["M", "events", "sources", "/8s", "weeks", "bursty", "signature"]
    )
    worms, bots = [], []
    for cid, info in run.epm.mu.clusters.items():
        if info.size < 25:
            continue
        ctx = context.summarize_m_cluster(run.epm, cid)
        signature = ctx.signature()
        (worms if signature == "worm-like" else bots).append(cid)
        table.add_row(
            [
                f"M{cid}",
                ctx.n_events,
                ctx.n_sources,
                len(ctx.slash8_histogram),
                ctx.weeks_active,
                f"{ctx.burstiness:.2f}",
                signature,
            ]
        )
        if len(table.rows) >= 18:
            break
    print(table.render())
    print(f"\n{len(worms)} worm-like and {len(bots)} bot/other M-clusters shown.")

    print("\nCoordinated movement of one bot cluster across the deployment:")
    for cid in bots[:1]:
        info = run.epm.mu.clusters[cid]
        events = sorted(
            (run.dataset.events[i] for i in info.event_ids),
            key=lambda e: e.timestamp,
        )
        last_location = None
        for event in events:
            week = run.grid.week_of(run.grid.clamp(event.timestamp))
            location = event.sensor.slash24
            if location != last_location:
                print(f"  week {week:2d}: hitting network location "
                      f"{location >> 8 & 0xFF}.{location & 0xFF}.x/24")
                last_location = location

    print("\nIRC C&C correlation (Table 2):")
    correlation = CnCCorrelation(run.dataset, run.epm, run.anubis)
    rows = correlation.table2()
    table2 = TextTable(["Server", "Room", "M-clusters"])
    for server, room, ms in rows[:15]:
        table2.add_row([server, room, ", ".join(map(str, ms))])
    print(table2.render())
    if len(rows) > 15:
        print(f"... ({len(rows) - 15} more rendezvous)")

    print("\nInfrastructure reuse (the bot-herder fingerprint):")
    for key, value in correlation.infrastructure_summary().items():
        print(f"  {key}: {value}")
    shared = correlation.shared_rooms()
    if shared:
        rv, ms = shared[0]
        print(f"\nExample: room {rv.room} on {rv.server} commands "
              f"M-clusters {ms} - code patches applied to one botnet.")


if __name__ == "__main__":
    main()
