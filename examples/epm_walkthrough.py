#!/usr/bin/env python
"""EPM clustering walkthrough: the four phases on a transparent example.

Reproduces the paper's Figure 2 intuition on a hand-built toy dataset:
three attack "campaigns" over two features, where one campaign
randomises a feature and one is too attacker-specific to mint
invariants.  Then shows the same machinery running on a custom feature
set over a generated SGNET dataset.

Usage::

    python examples/epm_walkthrough.py
"""

from repro.core.features import Dimension, FeatureDefinition, FeatureSet
from repro.core.invariants import InvariantPolicy, discover_invariants
from repro.core.patterns import PatternSet, format_pattern
from repro.experiments import ScenarioConfig, PaperScenario
from repro.honeypot.deployment import DeploymentConfig


def toy_walkthrough() -> None:
    print("=" * 70)
    print("Phase-by-phase walkthrough on a toy dataset")
    print("=" * 70)

    # (values, attacker, honeypot): three campaigns.
    observations = []
    # Campaign A: fixed protocol + fixed filename; many attackers.
    for i in range(12):
        observations.append((("ftp", "msins.exe"), i % 5, 100 + i % 4))
    # Campaign B: fixed protocol, random filename per attack.
    for i in range(12):
        observations.append((("http", f"rnd{i}.exe"), 50 + i % 6, 100 + i % 4))
    # Campaign C: one single attacker hammering one honeypot.
    for i in range(12):
        observations.append((("tftp", "one.exe"), 99, 100))

    names = ["protocol", "filename"]
    print("\nPhase 1 - features:", names)

    policy = InvariantPolicy(min_instances=10, min_sources=3, min_sensors=3)
    invariants = discover_invariants(observations, names, policy)
    print("\nPhase 2 - invariant values (>=10 instances, >=3 sources, >=3 sensors):")
    for name, values in zip(names, invariants.invariants):
        print(f"  {name}: {sorted(map(str, values)) or '(none)'}")
    print("  note: campaign C's values are frequent but single-attacker,")
    print("        so they fail the source-diversity constraint.")

    instances = [values for values, _s, _d in observations]
    patterns = PatternSet.discover(instances, invariants)
    print("\nPhase 3 - discovered patterns:")
    for pattern in patterns.patterns:
        print(f"  {format_pattern(pattern, names)}  (support {patterns.support_of(pattern)})")

    print("\nPhase 4 - classification of three instances:")
    for instance in [("ftp", "msins.exe"), ("http", "zzz.exe"), ("tftp", "one.exe")]:
        assigned = patterns.classify(instance, invariants)
        print(f"  {instance} -> {format_pattern(assigned, names)}")


def custom_feature_set() -> None:
    print()
    print("=" * 70)
    print("Custom feature sets: clustering epsilon by port only")
    print("=" * 70)

    config = ScenarioConfig(
        n_weeks=20,
        scale=0.1,
        deployment=DeploymentConfig(n_networks=8, sensors_per_network=3),
    )
    run = PaperScenario(seed=7, config=config).run()

    port_only = FeatureSet(
        Dimension.EPSILON,
        [FeatureDefinition("dst_port", lambda e: e.exploit.dst_port)],
        applies=lambda e: True,
    )
    from repro.core.epm import EPMClustering

    custom = EPMClustering(feature_sets={Dimension.EPSILON: port_only})
    clustering = custom.fit_dimension(run.dataset, port_only)
    print(f"\nDefault epsilon clustering: {run.epm.epsilon.n_clusters} clusters")
    print(f"Port-only epsilon clustering: {clustering.n_clusters} clusters")
    for cid, info in clustering.clusters.items():
        print(f"  E{cid}: {info.describe(clustering.feature_names)} ({info.size} events)")
    print("\nCoarser features, coarser clusters - the FSM path id is what")
    print("separates implementations sharing a service port.")


if __name__ == "__main__":
    toy_walkthrough()
    custom_feature_set()
