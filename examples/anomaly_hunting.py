#!/usr/bin/env python
"""Anomaly hunting: combining static and behavioural clustering (§4.2).

The workflow the paper demonstrates:

1. cluster samples statically (EPM M-clusters) and behaviourally
   (Anubis-style B-clusters);
2. cross-reference: size-1 B-clusters whose samples belong to larger
   M-clusters are almost certainly dynamic-analysis artifacts;
3. characterise the anomalous population (AV names, propagation
   coordinates - Figure 4);
4. heal: re-execute just the flagged samples and re-cluster.

Usage::

    python examples/anomaly_hunting.py [--scale 0.3]
"""

import argparse

from repro.analysis.avnames import av_name_distribution, dominant_p_cluster
from repro.analysis.crossview import CrossView, heal_singletons
from repro.core.patterns import format_pattern
from repro.experiments import PaperScenario, ScenarioConfig
from repro.util.tables import format_histogram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    print(f"Running scenario (scale={args.scale}) ...")
    run = PaperScenario(seed=args.seed, config=ScenarioConfig(scale=args.scale)).run()

    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    summary = crossview.summary()
    print(f"\n{run.bclusters.n_clusters} B-clusters over "
          f"{summary['joint_samples']} executed samples")
    print(f"size-1 B-clusters: {summary['singleton_b_clusters']}")

    anomalies = crossview.singleton_anomalies()
    rare = crossview.rare_singletons()
    print(f"\ncross-view verdicts on the singletons:")
    print(f"  {len(anomalies)} anomalies "
          "(their M-cluster is large and dominated by another B-cluster)")
    print(f"  {len(rare)} plausible rarities (1-1 M association)")

    print("\nWho are the anomalous samples? (AV view, Figure 4 top)")
    av = av_name_distribution(run.dataset, [a.md5 for a in anomalies])
    print(format_histogram(dict(av.most_common(8)), width=36))

    p_cluster, share = dominant_p_cluster(
        run.dataset, run.epm, [a.md5 for a in anomalies]
    )
    print(f"\nHow did they propagate? (Figure 4 bottom)")
    print(f"  {share:.0%} of their attacks used P-cluster {p_cluster}:")
    print("  " + format_pattern(
        run.epm.pi.clusters[p_cluster].pattern, run.epm.pi.feature_names
    ))

    print("\nHealing: re-executing only the flagged samples ...")
    healed, n_rerun = heal_singletons(
        crossview, run.anubis, run.dataset, config=run.config.clustering
    )
    healed_view = CrossView(run.dataset, run.epm, healed)
    print(f"  re-executed {n_rerun} samples")
    print(f"  B-clusters: {run.bclusters.n_clusters} -> {healed.n_clusters}")
    print(f"  singletons: {summary['singleton_b_clusters']} -> "
          f"{healed_view.summary()['singleton_b_clusters']}")

    print("\nEnvironment-dependent splits (one codebase, several behaviours):")
    for split in crossview.environment_splits()[:5]:
        pattern = run.epm.mu.clusters[split.m_cluster].pattern
        print(f"  M{split.m_cluster} -> B-clusters {list(split.b_clusters)} "
              f"(samples {list(split.samples_per_b)})")


if __name__ == "__main__":
    main()
