#!/usr/bin/env python
"""Quickstart: run the full reproduction pipeline and print the headline.

This is the five-minute tour: build the paper-scale scenario (or a
reduced one with ``--scale``), run honeypot observation + enrichment +
both clusterings, and print the §4.1 numbers next to the paper's.

Usage::

    python examples/quickstart.py              # full scale, ~15 s
    python examples/quickstart.py --scale 0.2  # reduced, a few seconds
    python examples/quickstart.py --cache      # reuse a cached build
    python examples/quickstart.py --executor process   # parallel stages
"""

import argparse

from repro.experiments import PaperScenario, ScenarioConfig, cached_run, headline
from repro.obs import configure_logging, get_logger
from repro.util.parallel import BACKENDS
from repro.util.tables import format_histogram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--executor", choices=BACKENDS, default="serial")
    parser.add_argument("--jobs", type=int, default=0)
    parser.add_argument(
        "--cache",
        action="store_true",
        help="load/store the built scenario in the artifact cache",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="info"
    )
    args = parser.parse_args()

    configure_logging(args.log_level)
    log = get_logger("examples.quickstart")
    config = ScenarioConfig(scale=args.scale, executor=args.executor, jobs=args.jobs)
    if args.cache:
        run = cached_run(args.seed, config)
    else:
        run = PaperScenario(seed=args.seed, config=config).run()
    log.info(
        "pipeline built",
        extra={"events": len(run.dataset), "b_clusters": run.bclusters.n_clusters},
    )
    print(run.trace.render() if run.trace else run.timings.render())

    _measured, text = headline(run)
    print()
    print(text)

    print("\nLargest M-clusters (static perspective):")
    sizes = {}
    for cid, info in list(run.epm.mu.clusters.items())[:8]:
        sizes[f"M{cid}"] = info.size
    print(format_histogram(sizes, width=40))

    print("\nLargest B-clusters (behavioural perspective):")
    b_sizes = {
        f"B{cid}": len(members)
        for cid, members in list(run.bclusters.clusters.items())[:8]
    }
    print(format_histogram(b_sizes, width=40))

    biggest_m = run.epm.mu.clusters[0]
    print("\nPattern defining the biggest M-cluster:")
    print(biggest_m.describe(run.epm.mu.feature_names))


if __name__ == "__main__":
    main()
