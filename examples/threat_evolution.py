#!/usr/bin/env python
"""Threat evolution and code-sharing intelligence.

The abstract promises "insights on patching and code sharing practices"
and on "the evolution and the economy of the different threats".  This
example extracts both from one run:

* the patch timeline of the biggest behavioural lineage (which
  structural features changed, when, and which steps were recompiles);
* the propagation routines shared across distinct codebases;
* the weekly discovery curves showing the landscape never stops moving.

Usage::

    python examples/threat_evolution.py [--scale 0.5]
"""

import argparse

from repro.analysis.codeshare import CodeSharingAnalysis
from repro.analysis.crossview import CrossView
from repro.analysis.evolution import EvolutionAnalysis
from repro.core.patterns import format_pattern
from repro.experiments import PaperScenario, ScenarioConfig
from repro.sandbox.reporting import render_timeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    print(f"Running scenario (scale={args.scale}) ...")
    run = PaperScenario(seed=args.seed, config=ScenarioConfig(scale=args.scale)).run()
    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    sharing = CodeSharingAnalysis(run.dataset, run.epm, crossview, run.grid)
    evolution = EvolutionAnalysis(run.dataset, run.epm, run.grid)

    print("\n--- Patching practices -------------------------------------")
    lineages = sharing.patch_lineages()
    for lineage in lineages[:2]:
        print()
        print(sharing.render_lineage(lineage, max_steps=8))

    print("\n--- Code sharing on the propagation side -------------------")
    for p_cluster, behaviours in sharing.shared_propagation()[:4]:
        pattern = run.epm.pi.clusters[p_cluster].pattern
        print(f"P{p_cluster} serves B-clusters {behaviours}:")
        print("  " + format_pattern(pattern, run.epm.pi.feature_names))
    for e_cluster, behaviours in sharing.shared_exploits()[:3]:
        print(f"E{e_cluster} exploited by B-clusters {behaviours}")

    print("\n--- Weekly dynamics -----------------------------------------")
    weekly = evolution.weekly_activity()
    events = {w.week: w.n_events for w in weekly}
    births = {w.week: w.new_m_clusters for w in weekly}
    print("events per week:      "
          + render_timeline(events, n_weeks=run.grid.n_weeks))
    print("new M-clusters/week:  "
          + render_timeline(births, n_weeks=run.grid.n_weeks))
    curve = evolution.sample_discovery_curve()
    quarters = [curve[i * len(curve) // 4 - 1] for i in range(1, 5)]
    print(f"cumulative samples at quarter marks: {quarters}")
    print("(new code keeps appearing until the end of the window - the")
    print(" paper's argument for continuous collection)")

    print("\n--- Cluster life cycles -------------------------------------")
    lifecycles = evolution.m_cluster_lifecycles(min_events=25)
    steady = [lc for lc in lifecycles if lc.dormancy < 0.3]
    dormant = [lc for lc in lifecycles if lc.dormancy > 0.5]
    print(f"{len(steady)} steadily active clusters (worm profile), "
          f"{len(dormant)} mostly-dormant clusters (bot/burst profile)")


if __name__ == "__main__":
    main()
