#!/usr/bin/env python
"""Build your own threat landscape and observe it through SGNET.

The library is a toolkit, not just a replay of the paper: this example
defines a two-family landscape from scratch — a fast-spreading
per-instance polymorphic worm and a small bursty IRC bot — runs it
through the honeypot deployment, and checks what each clustering
perspective recovers.

Usage::

    python examples/custom_landscape.py
"""

from repro.core.epm import EPMClustering
from repro.egpm.events import InteractionType
from repro.enrich import EnrichmentPipeline, VirusTotalService
from repro.honeypot import DeploymentConfig, SGNetDeployment
from repro.malware import (
    BehaviorTemplate,
    CnCSpec,
    ContinuousActivity,
    ExploitSpec,
    FamilySpec,
    LandscapeGenerator,
    PayloadSpec,
    PolymorphyMode,
    PopulationSpec,
    PropagationSpec,
    VariantSpec,
)
from repro.malware.population import ActivityBurst, BurstActivity
from repro.malware.propagation import choice, fixed, rand
from repro.net.address import Subnet
from repro.net.sampling import SubnetConcentratedSampler, UniformSampler
from repro.peformat.structures import PESpec
from repro.sandbox import AnubisService, Environment, Sandbox
from repro.util.rng import RandomSource
from repro.util.timegrid import DAY_SECONDS, WEEK_SECONDS, TimeGrid


def build_worm() -> FamilySpec:
    exploit = ExploitSpec(
        name="lsass-ms04-011",
        dst_port=445,
        dialogue=(
            (fixed("SMB_NEG"), rand(6)),
            (fixed("DCERPC_BIND"), fixed("lsarpc"), rand(8)),
            (fixed("DS_ROLE_OVERFLOW"),),
        ),
    )
    payload = PayloadSpec(
        name="ftp-pull",
        protocol="ftp",
        interaction=InteractionType.PULL,
        filename="wormsvc.exe",
        port=21,
    )
    behavior = BehaviorTemplate(
        mutexes=("wormy-mtx",),
        files_dropped=(r"C:\WINDOWS\wormsvc.exe",),
        scan_ports=(445,),
        noise_rate=0.1,
    )
    variants = tuple(
        VariantSpec(
            family="wormy",
            variant=f"v{i:03d}",
            pe_spec=PESpec(file_size=40_960 + 2048 * i),
            polymorphism=PolymorphyMode.PER_INSTANCE,
            behavior=behavior,
            propagation=PropagationSpec(exploit, payload),
            population=PopulationSpec(size=60 - 15 * i, sampler=UniformSampler()),
            activity=ContinuousActivity(5.0 - i),
        )
        for i in range(3)
    )
    return FamilySpec(name="wormy", variants=variants)


def build_bot(sensor_networks: list[int]) -> FamilySpec:
    exploit = ExploitSpec(
        name="dcom-ms03-026",
        dst_port=135,
        dialogue=(
            (fixed("DCOM_BIND"), choice("toolkitA", "toolkitB")),
            (fixed("REMOTE_ACTIVATION"),),
        ),
    )
    payload = PayloadSpec(
        name="tftp-pull",
        protocol="tftp",
        interaction=InteractionType.PULL,
        filename="msblast.exe",
        port=69,
    )
    behavior = BehaviorTemplate(
        mutexes=("botty-main", "botty-inst"),
        files_dropped=(r"C:\WINDOWS\system32\bottysvc.exe",),
        registry_keys=(r"HKLM\...\Run\botty",),
        cnc=CnCSpec(server="67.43.232.99", port=6667, room="#cmd"),
        noise_rate=0.05,
    )
    bursts = BurstActivity(
        [
            ActivityBurst(
                start=week * WEEK_SECONDS,
                duration=2 * DAY_SECONDS,
                rate_per_day=12.0,
                sensor_networks=(sensor_networks[week % len(sensor_networks)],),
            )
            for week in (2, 5, 9)
        ]
    )
    variant = VariantSpec(
        family="botty",
        variant="v000",
        pe_spec=PESpec(file_size=30_720, linker_version=60),
        polymorphism=PolymorphyMode.NONE,
        behavior=behavior,
        propagation=PropagationSpec(exploit, payload),
        population=PopulationSpec(
            size=10,
            sampler=SubnetConcentratedSampler([Subnet.parse("58.32.0.0/16")]),
        ),
        activity=bursts,
    )
    return FamilySpec(name="botty", variants=(variant,))


def main() -> None:
    source = RandomSource(42)
    grid = TimeGrid(0, 12 * WEEK_SECONDS)
    deployment = SGNetDeployment(
        source.child("deployment"),
        DeploymentConfig(n_networks=10, sensors_per_network=3),
    )

    families = [build_worm(), build_bot(deployment.sensor_networks)]
    generator = LandscapeGenerator(
        families, deployment.sensor_addresses, grid, source.child("landscape")
    )

    print("Observing the custom landscape ...")
    dataset = deployment.observe(generator)
    print(f"  {dataset.summary()}")

    sandbox = Sandbox(Environment())
    anubis = AnubisService(sandbox)
    EnrichmentPipeline(anubis, VirusTotalService()).enrich(dataset)

    epm = EPMClustering().fit(dataset)
    bclusters = anubis.cluster()
    print(f"\nEPM recovered: {epm.counts()}")
    print(f"Behavioural clustering: {bclusters.n_clusters} B-clusters")

    print("\nM-cluster patterns vs the ground truth you just wrote:")
    for cid, info in list(epm.mu.clusters.items())[:6]:
        truths = {
            dataset.events[i].ground_truth.variant for i in info.event_ids
        }
        print(f"  M{cid} ({info.size} events, true variants {sorted(truths)}):")
        print(f"    {info.describe(epm.mu.feature_names)[:110]} ...")

    print("\nThe worm's three size-variants produce three M-clusters; the")
    print("bot's single non-polymorphic binary keys its cluster on the MD5.")


if __name__ == "__main__":
    main()
