"""Tests for deployment operation statistics."""

from repro.honeypot.stats import collect_stats, render_stats


class TestCollectStats:
    def test_counters_consistent(self, small_run):
        stats = collect_stats(small_run.deployment)
        assert stats.conversations == stats.handled_locally + stats.proxied
        assert stats.conversations == len(small_run.dataset)
        assert (
            stats.factory_instantiations
            == stats.factory_injections + stats.factory_benign
        )

    def test_autonomy_dominates_after_learning(self, small_run):
        stats = collect_stats(small_run.deployment)
        assert stats.autonomy > 0.5
        assert 0.0 < stats.median_sensor_autonomy <= 1.0

    def test_fsm_growth_recorded(self, small_run):
        stats = collect_stats(small_run.deployment)
        assert stats.fsm_states > 10
        assert stats.fsm_refinements > 0

    def test_shellcode_pipeline_counts(self, small_run):
        stats = collect_stats(small_run.deployment)
        assert stats.shellcode["analyzed"] > 0
        assert stats.shellcode["downloads"] <= stats.shellcode["analyzed"]

    def test_deployment_footprint(self, small_run):
        stats = collect_stats(small_run.deployment)
        assert stats.n_sensors == 12 * 4
        assert stats.n_networks == 12


class TestRenderStats:
    def test_sections_present(self, small_run):
        text = render_stats(collect_stats(small_run.deployment))
        assert "Deployment operation summary" in text
        assert "handled locally" in text
        assert "FSM states" in text
