"""Tests for sensors, gateway and sample factory."""

import random

from repro.honeypot.fsm import FSMLearner, UNKNOWN_PATH_ID
from repro.honeypot.gateway import Gateway
from repro.honeypot.samplefactory import SampleFactory
from repro.honeypot.sensor import HoneypotSensor
from repro.malware.propagation import ExploitSpec, fixed, rand
from repro.net.address import IPv4Address


def _spec():
    return ExploitSpec(name="e", dst_port=445, dialogue=((fixed("GO"), rand(4)),))


class TestSampleFactory:
    def test_counts_instantiations(self):
        factory = SampleFactory()
        report = factory.handle([("A", "b")])
        assert report.is_injection
        assert report.n_messages == 1
        assert factory.n_instantiations == 1


class TestGateway:
    def test_unknown_goes_to_factory(self):
        gateway = Gateway(FSMLearner(refine_threshold=10, min_support=4))
        result = gateway.handle_unknown([("A", "x")])
        assert result == UNKNOWN_PATH_ID
        assert gateway.factory.n_instantiations == 1
        assert gateway.n_proxied == 1

    def test_finalize_flushes(self):
        gateway = Gateway(FSMLearner(refine_threshold=100, min_support=3))
        rng = random.Random(0)
        convs = [_spec().generate_conversation(rng) for _ in range(5)]
        for conv in convs:
            gateway.handle_unknown(conv)
        assert gateway.classify(convs[0]) == UNKNOWN_PATH_ID
        gateway.finalize()
        assert gateway.classify(convs[0]) != UNKNOWN_PATH_ID


class TestSensor:
    def test_autonomy_grows_with_learning(self):
        gateway = Gateway(FSMLearner(refine_threshold=10, min_support=4))
        sensor = HoneypotSensor(IPv4Address(0x01010101), gateway)
        rng = random.Random(0)
        spec = _spec()
        for _ in range(40):
            sensor.handle(spec.generate_conversation(rng))
        # Once the FSM is refined, the sensor stops proxying.
        assert sensor.n_proxied >= 10
        assert sensor.n_handled_locally >= 20
        late = sensor.n_handled_locally
        sensor.handle(spec.generate_conversation(rng))
        assert sensor.n_handled_locally == late + 1

    def test_sensors_share_one_model(self):
        gateway = Gateway(FSMLearner(refine_threshold=10, min_support=4))
        sensor_a = HoneypotSensor(IPv4Address(0x01010101), gateway)
        sensor_b = HoneypotSensor(IPv4Address(0x02020202), gateway)
        rng = random.Random(0)
        spec = _spec()
        for _ in range(30):
            sensor_a.handle(spec.generate_conversation(rng))
        # B benefits from what A's traffic taught the gateway.
        sensor_b.handle(spec.generate_conversation(rng))
        assert sensor_b.n_handled_locally == 1
        assert sensor_b.n_proxied == 0
