"""Tests for FSM model persistence and rendering."""

import random

from repro.honeypot.fsm import FSMLearner
from repro.honeypot.fsm_io import (
    load_model,
    model_from_json,
    model_to_json,
    render_model,
    save_model,
)
from repro.malware.propagation import ExploitSpec, choice, fixed, rand


def _trained_learner():
    specs = [
        ExploitSpec(
            name="a",
            dst_port=445,
            dialogue=((fixed("SMB"), rand(4)), (fixed("BOOM"), choice("u", "v"))),
        ),
        ExploitSpec(name="b", dst_port=139, dialogue=((fixed("NBT"), rand(4)),)),
    ]
    learner = FSMLearner(refine_threshold=20, min_support=4)
    rng = random.Random(0)
    for _ in range(60):
        for spec in specs:
            learner.observe(spec.generate_conversation(rng))
    learner.flush()
    return learner, specs, rng


class TestJsonRoundTrip:
    def test_structure_preserved(self):
        learner, _specs, _rng = _trained_learner()
        model = learner.model
        rebuilt = model_from_json(model_to_json(model))
        assert rebuilt.n_states == model.n_states
        assert rebuilt.n_edges == model.n_edges

    def test_classification_preserved(self):
        learner, specs, rng = _trained_learner()
        rebuilt = model_from_json(model_to_json(learner.model))
        for spec in specs:
            for _ in range(10):
                conversation = spec.generate_conversation(rng)
                assert rebuilt.classify(conversation) == learner.model.classify(
                    conversation
                )

    def test_new_node_ids_fresh_after_load(self):
        learner, _specs, _rng = _trained_learner()
        rebuilt = model_from_json(model_to_json(learner.model))
        fresh = rebuilt.new_node(1)
        existing = {node.node_id for node in rebuilt.iter_nodes()}
        assert fresh.node_id not in existing

    def test_file_round_trip(self, tmp_path):
        learner, specs, rng = _trained_learner()
        path = tmp_path / "fsm.json"
        save_model(learner.model, path)
        loaded = load_model(path)
        conversation = specs[0].generate_conversation(rng)
        assert loaded.classify(conversation) == learner.model.classify(conversation)

    def test_wildcards_survive(self):
        learner, _specs, _rng = _trained_learner()
        data = model_to_json(learner.model)
        rebuilt = model_from_json(data)
        patterns = [
            pattern
            for node in rebuilt.iter_nodes()
            for pattern, _child in node.edges
        ]
        assert any(None in pattern for pattern in patterns)


class TestRendering:
    def test_render_shows_transitions(self):
        learner, _specs, _rng = _trained_learner()
        text = render_model(learner.model)
        assert "states" in text
        assert "-> state" in text
        assert "SMB" in text
        assert "*" in text

    def test_max_depth(self):
        learner, _specs, _rng = _trained_learner()
        shallow = render_model(learner.model, max_depth=0)
        deep = render_model(learner.model)
        assert len(shallow) <= len(deep)
