"""Tests for ScriptGen-style FSM learning."""

import random

import pytest

from repro.honeypot.fsm import (
    FSMLearner,
    FSMModel,
    UNKNOWN_PATH_ID,
    pattern_matches,
    region_analysis,
)
from repro.malware.propagation import ExploitSpec, choice, fixed, rand
from repro.util.validation import ValidationError


class TestPatternMatches:
    def test_exact(self):
        assert pattern_matches(("a", "b"), ("a", "b"))

    def test_wildcard(self):
        assert pattern_matches(("a", None), ("a", "anything"))

    def test_length_mismatch(self):
        assert not pattern_matches(("a",), ("a", "b"))

    def test_value_mismatch(self):
        assert not pattern_matches(("a", "b"), ("a", "c"))


class TestRegionAnalysis:
    def test_fixed_region_found(self):
        messages = [("CMD", f"r{i}") for i in range(10)]
        patterns = region_analysis(messages, min_support=4)
        assert patterns == [("CMD", None)]

    def test_splits_by_different_fixed_values(self):
        messages = [("A", "x")] * 5 + [("B", "x")] * 5
        patterns = region_analysis(messages, min_support=4)
        assert set(patterns) == {("A", "x"), ("B", "x")}

    def test_partitions_by_length(self):
        messages = [("A",)] * 5 + [("A", "B")] * 5
        patterns = region_analysis(messages, min_support=4)
        assert ("A",) in patterns
        assert ("A", "B") in patterns

    def test_small_groups_discarded(self):
        messages = [("A", "x")] * 5 + [("RARE", "y")] * 2
        patterns = region_analysis(messages, min_support=4)
        assert all(p[0] != "RARE" for p in patterns)

    def test_min_support_validated(self):
        with pytest.raises(ValidationError):
            region_analysis([("a",)], min_support=0)

    def test_all_random_yields_wildcard_pattern(self):
        messages = [(f"u{i}", f"v{i}") for i in range(8)]
        patterns = region_analysis(messages, min_support=4)
        assert patterns == [(None, None)]


class TestFSMModel:
    def test_empty_model_knows_nothing(self):
        model = FSMModel()
        assert model.classify([("A",)]) == UNKNOWN_PATH_ID

    def test_empty_conversation_is_root(self):
        model = FSMModel()
        assert model.classify([]) == 0

    def test_walk_partial(self):
        model = FSMModel()
        child = model.new_node(1)
        model.add_edge(model.root, ("A", None), child)
        node, consumed = model.walk([("A", "x"), ("B", "y")])
        assert node is child
        assert consumed == 1

    def test_most_specific_edge_preferred(self):
        model = FSMModel()
        generic = model.new_node(1)
        specific = model.new_node(1)
        model.add_edge(model.root, (None, None), generic)
        model.add_edge(model.root, ("A", None), specific)
        assert model.classify([("A", "x")]) == specific.node_id
        assert model.classify([("B", "x")]) == generic.node_id

    def test_iter_nodes_counts(self):
        model = FSMModel()
        child = model.new_node(1)
        model.add_edge(model.root, ("A",), child)
        assert len(list(model.iter_nodes())) == 2
        assert model.n_states == 2
        assert model.n_edges == 1


class TestFSMLearner:
    def _feed(self, learner, spec, n, seed=0):
        rng = random.Random(seed)
        results = []
        for _ in range(n):
            results.append(learner.observe(spec.generate_conversation(rng)))
        return results

    def test_learning_lifecycle(self):
        spec = ExploitSpec(
            name="e",
            dst_port=445,
            dialogue=((fixed("HELLO"), rand(4)), (fixed("BOOM"),)),
        )
        learner = FSMLearner(refine_threshold=10, min_support=4)
        results = self._feed(learner, spec, 30)
        # Early conversations are unknown, later ones classified.
        assert results[0] == UNKNOWN_PATH_ID
        assert results[-1] != UNKNOWN_PATH_ID
        assert learner.n_refinements >= 1

    def test_learned_path_is_stable(self):
        spec = ExploitSpec(
            name="e", dst_port=445, dialogue=((fixed("X"), rand(4)),)
        )
        learner = FSMLearner(refine_threshold=8, min_support=3)
        results = [r for r in self._feed(learner, spec, 40) if r != UNKNOWN_PATH_ID]
        assert len(set(results)) == 1

    def test_distinct_exploits_get_distinct_paths(self):
        spec_a = ExploitSpec(name="a", dst_port=445, dialogue=((fixed("AAA"), rand(4)),))
        spec_b = ExploitSpec(name="b", dst_port=139, dialogue=((fixed("BBB"), rand(4)),))
        learner = FSMLearner(refine_threshold=8, min_support=3)
        rng = random.Random(0)
        for _ in range(20):
            learner.observe(spec_a.generate_conversation(rng))
            learner.observe(spec_b.generate_conversation(rng))
        path_a = learner.classify(spec_a.generate_conversation(rng))
        path_b = learner.classify(spec_b.generate_conversation(rng))
        assert UNKNOWN_PATH_ID not in (path_a, path_b)
        assert path_a != path_b

    def test_choice_markers_split_paths(self):
        # The "implementation specificities" effect: one exploit spec with
        # a small-alphabet marker learns into one FSM path per marker.
        spec = ExploitSpec(
            name="e",
            dst_port=445,
            dialogue=((fixed("REQ"), choice("userA", "userB"), rand(4)),),
        )
        learner = FSMLearner(refine_threshold=30, min_support=4)
        rng = random.Random(0)
        for _ in range(120):
            learner.observe(spec.generate_conversation(rng))
        learner.flush()
        paths = {
            learner.classify(spec.generate_conversation(rng)) for _ in range(40)
        }
        paths.discard(UNKNOWN_PATH_ID)
        assert len(paths) == 2

    def test_flush_learns_tail_activities(self):
        spec = ExploitSpec(name="e", dst_port=445, dialogue=((fixed("TAIL"), rand(4)),))
        learner = FSMLearner(refine_threshold=50, min_support=4)
        rng = random.Random(0)
        convs = [spec.generate_conversation(rng) for _ in range(6)]
        for conv in convs:
            assert learner.observe(conv) == UNKNOWN_PATH_ID
        learner.flush()
        assert all(learner.classify(c) != UNKNOWN_PATH_ID for c in convs)

    def test_below_support_never_learned(self):
        spec = ExploitSpec(name="e", dst_port=445, dialogue=((fixed("RARE"), rand(4)),))
        learner = FSMLearner(refine_threshold=10, min_support=4)
        rng = random.Random(0)
        convs = [spec.generate_conversation(rng) for _ in range(2)]
        for conv in convs:
            learner.observe(conv)
        learner.flush()
        assert all(learner.classify(c) == UNKNOWN_PATH_ID for c in convs)

    def test_threshold_validation(self):
        with pytest.raises(ValidationError):
            FSMLearner(refine_threshold=2, min_support=4)

    def test_multi_message_subtree(self):
        spec = ExploitSpec(
            name="e",
            dst_port=445,
            dialogue=(
                (fixed("STEP1"), rand(3)),
                (fixed("STEP2"), rand(3)),
                (fixed("STEP3"),),
            ),
        )
        learner = FSMLearner(refine_threshold=10, min_support=4)
        rng = random.Random(0)
        for _ in range(30):
            learner.observe(spec.generate_conversation(rng))
        learner.flush()
        conv = spec.generate_conversation(rng)
        assert learner.classify(conv) != UNKNOWN_PATH_ID
        # Prefixes end at interior states with their own ids.
        full = learner.classify(conv)
        prefix = learner.classify(conv[:2])
        assert prefix != full
