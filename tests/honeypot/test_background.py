"""Tests for background traffic and the oracle's filtering role."""

from repro.egpm.events import InteractionType
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment
from repro.malware.background import BackgroundTraffic, default_probe_specs
from repro.malware.behaviorspec import BehaviorTemplate
from repro.malware.families import single_variant_family
from repro.malware.landscape import LandscapeGenerator
from repro.malware.population import ContinuousActivity, PopulationSpec
from repro.malware.propagation import (
    ExploitSpec,
    PayloadSpec,
    PropagationSpec,
    fixed,
    rand,
)
from repro.net.sampling import UniformSampler
from repro.peformat.structures import PESpec
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid

GRID = TimeGrid(0, 5 * WEEK_SECONDS)


def _deployment(seed=1):
    return SGNetDeployment(
        RandomSource(seed).child("dep"),
        DeploymentConfig(n_networks=4, sensors_per_network=3),
    )


def _family():
    return single_variant_family(
        name="fam",
        pe_spec=PESpec(),
        behavior=BehaviorTemplate(mutexes=("m",)),
        propagation=PropagationSpec(
            ExploitSpec(name="e", dst_port=445, dialogue=((fixed("GO"), rand(4)),)),
            PayloadSpec(
                name="p",
                protocol="ftp",
                interaction=InteractionType.PULL,
                filename="a.exe",
                port=21,
            ),
        ),
        population=PopulationSpec(size=12, sampler=UniformSampler()),
        activity=ContinuousActivity(6.0),
    )


class TestBackgroundTraffic:
    def test_generates_time_ordered_probes(self):
        deployment = _deployment()
        traffic = BackgroundTraffic(
            deployment.sensor_addresses, GRID, RandomSource(2), rate_per_day=30.0
        )
        probes = list(traffic)
        assert len(probes) > 50
        times = [p.timestamp for p in probes]
        assert times == sorted(times)

    def test_probes_hit_monitored_sensors(self):
        deployment = _deployment()
        traffic = BackgroundTraffic(
            deployment.sensor_addresses, GRID, RandomSource(2)
        )
        sensor_set = set(deployment.sensor_addresses)
        assert all(p.sensor in sensor_set for p in traffic)

    def test_deterministic(self):
        deployment = _deployment()
        a = list(BackgroundTraffic(deployment.sensor_addresses, GRID, RandomSource(2)))
        b = list(BackgroundTraffic(deployment.sensor_addresses, GRID, RandomSource(2)))
        assert [p.timestamp for p in a] == [p.timestamp for p in b]

    def test_probe_specs_varied(self):
        assert len(default_probe_specs()) >= 3


class TestDeploymentFiltering:
    def _observe_with_background(self, seed=1):
        deployment = _deployment(seed)
        generator = LandscapeGenerator(
            [_family()], deployment.sensor_addresses, GRID, RandomSource(seed).child("l")
        )
        traffic = BackgroundTraffic(
            deployment.sensor_addresses, GRID, RandomSource(seed).child("bg"),
            rate_per_day=25.0,
        )
        dataset = deployment.observe(generator, background=traffic)
        return deployment, dataset

    def test_probes_never_become_events(self):
        deployment, dataset = self._observe_with_background()
        assert deployment.n_background_filtered > 50
        assert all(e.ground_truth.family == "fam" for e in dataset)

    def test_oracle_separates_injections_from_probes(self):
        deployment, _dataset = self._observe_with_background()
        factory = deployment.gateway.factory
        assert factory.n_benign > 0
        assert factory.n_injections > 0
        assert factory.n_benign + factory.n_injections == factory.n_instantiations

    def test_dataset_unchanged_by_background(self):
        # The attack-side dataset must be identical with or without
        # background noise (the oracle filters perfectly, as Argos'
        # taint-based detection does for non-injections).
        deployment_a = _deployment(7)
        generator_a = LandscapeGenerator(
            [_family()], deployment_a.sensor_addresses, GRID,
            RandomSource(7).child("l"),
        )
        clean = deployment_a.observe(generator_a)

        deployment_b = _deployment(7)
        generator_b = LandscapeGenerator(
            [_family()], deployment_b.sensor_addresses, GRID,
            RandomSource(7).child("l"),
        )
        traffic = BackgroundTraffic(
            deployment_b.sensor_addresses, GRID, RandomSource(7).child("bg")
        )
        noisy = deployment_b.observe(generator_b, background=traffic)

        assert len(clean) == len(noisy)
        assert [e.timestamp for e in clean] == [e.timestamp for e in noisy]
        # Note: fsm path *ids* can differ (background conversations also
        # get learned), but the partition of events must be identical.

        def partition(dataset):
            groups = {}
            for event in dataset:
                groups.setdefault(event.exploit.fsm_path_id, []).append(
                    event.event_id
                )
            return sorted(sorted(v) for v in groups.values())

        assert partition(clean) == partition(noisy)

    def test_background_learned_by_fsm(self):
        deployment, _dataset = self._observe_with_background()
        # Repeated probe shapes end up in the FSM too (ScriptGen models
        # every recurring activity, not only injections).
        from repro.malware.background import default_probe_specs
        import random

        spec = default_probe_specs()[1]  # banner-grab: fully fixed tokens
        conversation = spec.generate_conversation(random.Random(0))
        assert deployment.gateway.classify(conversation) != -1
