"""Tests for the Nepenthes-style shellcode analyzer."""

import random

import pytest

from repro.egpm.events import InteractionType
from repro.honeypot.shellcode import DownloadOutcome, ShellcodeAnalyzer, ShellcodeConfig
from repro.malware.propagation import PayloadSpec
from repro.util.validation import ValidationError


def _payload(port=21, filename="x.exe"):
    return PayloadSpec(
        name="p",
        protocol="ftp",
        interaction=InteractionType.PULL,
        filename=filename,
        port=port,
    )


class TestConfig:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            ShellcodeConfig(unknown_rate=1.5)
        with pytest.raises(ValidationError):
            ShellcodeConfig(truncation_rate=-0.1)

    def test_fraction_ordering_validated(self):
        with pytest.raises(ValidationError):
            ShellcodeConfig(min_truncation_fraction=0.9, max_truncation_fraction=0.1)


class TestAnalyze:
    def test_observable_fields(self):
        analyzer = ShellcodeAnalyzer(ShellcodeConfig(unknown_rate=0.0))
        obs = analyzer.analyze(_payload(), "x.exe", random.Random(1))
        assert obs.protocol == "ftp"
        assert obs.interaction is InteractionType.PULL
        assert obs.filename == "x.exe"
        assert obs.port == 21

    def test_unknown_shellcode_returns_none(self):
        analyzer = ShellcodeAnalyzer(ShellcodeConfig(unknown_rate=1.0))
        assert analyzer.analyze(_payload(), "x.exe", random.Random(1)) is None
        assert analyzer.n_unknown == 1

    def test_ephemeral_port_assigned(self):
        analyzer = ShellcodeAnalyzer(ShellcodeConfig(unknown_rate=0.0))
        spec = PayloadSpec(
            name="p", protocol="blink", interaction=InteractionType.PULL
        )
        rng = random.Random(1)
        ports = {analyzer.analyze(spec, None, rng).port for _ in range(20)}
        assert all(1024 <= p <= 65535 for p in ports)
        assert len(ports) > 10  # fresh per attack: never an invariant

    def test_unknown_rate_statistics(self):
        analyzer = ShellcodeAnalyzer(ShellcodeConfig(unknown_rate=0.3))
        rng = random.Random(1)
        results = [analyzer.analyze(_payload(), "x", rng) for _ in range(500)]
        misses = sum(1 for r in results if r is None)
        assert 100 < misses < 200


class TestDownload:
    def test_success_returns_full_bytes(self):
        analyzer = ShellcodeAnalyzer(
            ShellcodeConfig(download_fail_rate=0.0, truncation_rate=0.0)
        )
        data = bytes(range(256)) * 4
        outcome = analyzer.download(data, random.Random(1))
        assert outcome == DownloadOutcome(data=data, truncated=False)
        assert outcome.succeeded

    def test_total_failure(self):
        analyzer = ShellcodeAnalyzer(ShellcodeConfig(download_fail_rate=1.0))
        outcome = analyzer.download(b"abc", random.Random(1))
        assert outcome.data is None
        assert not outcome.succeeded

    def test_truncation_shortens(self):
        analyzer = ShellcodeAnalyzer(
            ShellcodeConfig(download_fail_rate=0.0, truncation_rate=1.0)
        )
        data = bytes(1000)
        rng = random.Random(1)
        for _ in range(50):
            outcome = analyzer.download(data, rng)
            assert outcome.truncated
            assert 1 <= len(outcome.data) < len(data)

    def test_truncation_prefix_property(self):
        analyzer = ShellcodeAnalyzer(
            ShellcodeConfig(download_fail_rate=0.0, truncation_rate=1.0)
        )
        data = bytes(range(200)) * 10
        outcome = analyzer.download(data, random.Random(2))
        assert data.startswith(outcome.data)

    def test_stats_counters(self):
        analyzer = ShellcodeAnalyzer(
            ShellcodeConfig(download_fail_rate=0.5, truncation_rate=0.5)
        )
        rng = random.Random(3)
        for _ in range(100):
            analyzer.download(b"\x00" * 100, rng)
        stats = analyzer.stats()
        assert stats["downloads"] == 100
        assert stats["failed_downloads"] + stats["truncated"] == 100
