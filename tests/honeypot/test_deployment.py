"""Tests for the deployment orchestrator."""

import pytest

from repro.egpm.events import InteractionType
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment
from repro.honeypot.shellcode import ShellcodeConfig
from repro.malware.behaviorspec import BehaviorTemplate
from repro.malware.families import single_variant_family
from repro.malware.landscape import LandscapeGenerator
from repro.malware.polymorphism import PolymorphyMode
from repro.malware.population import ContinuousActivity, PopulationSpec
from repro.malware.propagation import ExploitSpec, PayloadSpec, PropagationSpec, fixed, rand
from repro.net.sampling import UniformSampler
from repro.peformat.structures import PESpec
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid

GRID = TimeGrid(0, 6 * WEEK_SECONDS)


def _deployment(seed=1, **overrides):
    defaults = dict(n_networks=4, sensors_per_network=3)
    defaults.update(overrides)
    return SGNetDeployment(RandomSource(seed).child("dep"), DeploymentConfig(**defaults))


def _family(name="fam", polymorphism=PolymorphyMode.PER_INSTANCE):
    return single_variant_family(
        name=name,
        pe_spec=PESpec(),
        behavior=BehaviorTemplate(mutexes=(f"{name}-m",)),
        propagation=PropagationSpec(
            ExploitSpec(name="e", dst_port=445, dialogue=((fixed("GO"), rand(4)),)),
            PayloadSpec(
                name="p",
                protocol="ftp",
                interaction=InteractionType.PULL,
                filename="a.exe",
                port=21,
            ),
        ),
        population=PopulationSpec(size=15, sampler=UniformSampler()),
        activity=ContinuousActivity(8.0),
        polymorphism=polymorphism,
    )


def _observe(deployment, families, seed=1):
    generator = LandscapeGenerator(
        families, deployment.sensor_addresses, GRID, RandomSource(seed).child("land")
    )
    return deployment.observe(generator)


class TestDeploymentShape:
    def test_sensor_counts(self):
        deployment = _deployment(n_networks=5, sensors_per_network=4)
        assert len(deployment.sensor_addresses) == 20
        assert len(deployment.sensor_networks) == 5

    def test_default_matches_paper_footprint(self):
        config = DeploymentConfig()
        assert config.n_networks * config.sensors_per_network == 150

    def test_addresses_grouped_by_network(self):
        deployment = _deployment(n_networks=3, sensors_per_network=5)
        networks = {a.slash24 for a in deployment.sensor_addresses}
        assert len(networks) == 3

    def test_deterministic_addresses(self):
        a = _deployment(seed=9).sensor_addresses
        b = _deployment(seed=9).sensor_addresses
        assert a == b


class TestObservation:
    def test_dataset_populated(self):
        deployment = _deployment()
        dataset = _observe(deployment, [_family()])
        assert len(dataset) > 50
        assert dataset.n_samples > 0

    def test_event_ids_sequential(self):
        dataset = _observe(_deployment(), [_family()])
        assert [e.event_id for e in dataset] == list(range(len(dataset)))

    def test_two_pass_classification_backfills_early_events(self):
        # Events observed before the FSM was refined must still carry the
        # learned path id in the final dataset.
        dataset = _observe(_deployment(), [_family()])
        path_ids = {e.exploit.fsm_path_id for e in dataset}
        assert 0 not in path_ids  # nothing left unclassified
        assert len(path_ids) == 1

    def test_ground_truth_rides_along(self):
        dataset = _observe(_deployment(), [_family()])
        assert all(e.ground_truth.family == "fam" for e in dataset)

    def test_behavior_handles_attached(self):
        dataset = _observe(_deployment(), [_family()])
        assert all(
            r.behavior_handle is not None for r in dataset.samples.values()
        )

    def test_per_instance_polymorphism_yields_many_samples(self):
        dataset = _observe(_deployment(), [_family()])
        with_sample = [e for e in dataset if e.malware is not None]
        assert dataset.n_samples == len(with_sample)

    def test_failure_modes_present(self):
        config = DeploymentConfig(
            n_networks=4,
            sensors_per_network=3,
            shellcode=ShellcodeConfig(
                unknown_rate=0.1, download_fail_rate=0.1, truncation_rate=0.2
            ),
        )
        deployment = SGNetDeployment(RandomSource(1).child("dep"), config)
        dataset = _observe(deployment, [_family()])
        no_payload = sum(1 for e in dataset if e.payload is None)
        no_malware = sum(1 for e in dataset if e.payload is not None and e.malware is None)
        corrupted = sum(1 for e in dataset if e.malware is not None and e.malware.corrupted)
        assert no_payload > 0
        assert no_malware > 0
        assert corrupted > 0

    def test_corrupted_samples_not_valid(self):
        config = DeploymentConfig(
            n_networks=4,
            sensors_per_network=3,
            shellcode=ShellcodeConfig(truncation_rate=0.5),
        )
        deployment = SGNetDeployment(RandomSource(1).child("dep"), config)
        dataset = _observe(deployment, [_family()])
        assert len(dataset.valid_samples()) < dataset.n_samples

    def test_attack_on_unmonitored_address_rejected(self):
        from repro.util.validation import ValidationError

        deployment = _deployment()
        other = _deployment(seed=99)
        generator = LandscapeGenerator(
            [_family()], other.sensor_addresses, GRID, RandomSource(1).child("land")
        )
        with pytest.raises(ValidationError, match="unmonitored"):
            deployment.observe(generator)


class TestProxyEconomics:
    def test_proxy_ratio_declines(self):
        deployment = _deployment()
        _observe(deployment, [_family()])
        ratios = deployment.proxy_ratio_by_week()
        assert ratios  # some weeks observed
        weeks = sorted(ratios)
        early = ratios[weeks[0]]
        late = ratios[weeks[-1]]
        assert late < early  # learning reduces honeyfarm load

    def test_factory_used_then_spared(self):
        deployment = _deployment()
        dataset = _observe(deployment, [_family()])
        assert 0 < deployment.gateway.factory.n_instantiations < len(dataset)
