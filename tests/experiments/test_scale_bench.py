"""Validation of the samples/sec scaling-curve record and its CLI."""

import json

import pytest

from repro.experiments import scale_bench
from repro.experiments.perf_gate import check_scale_bench
from repro.experiments.scale_bench import (
    POINT_KEYS,
    SCALE_BENCH_SCHEMA,
    run_point,
    validate_record,
)


def _point(scale, **overrides):
    point = {
        "scale": scale,
        "events": 100,
        "samples_collected": 50,
        "samples_executed": 40,
        "build_seconds": 1.5,
        "observe_seconds": 0.5,
        "events_per_second": 66.7,
        "samples_per_second": 33.3,
        "max_rss_kb": 100_000,
    }
    point.update(overrides)
    return point


def _record(**overrides):
    record = {
        "schema": SCALE_BENCH_SCHEMA,
        "generated_at": "2026-01-01T00:00:00Z",
        "seed": 2010,
        "weeks": 24,
        "mode": "full",
        "backend": "serial",
        "jobs": 0,
        "shards": 0,
        "columnar": True,
        "points": [_point(s) for s in (0.25, 1.0, 4.0, 16.0)],
        "notes": "",
    }
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_valid_record_passes(self):
        assert validate_record(_record()) == []

    def test_wrong_schema_rejected(self):
        errors = validate_record(_record(schema=99))
        assert any("schema" in e for e in errors)

    def test_short_curve_rejected(self):
        errors = validate_record(_record(points=[_point(1.0)] * 3))
        assert any("4-point" in e for e in errors)

    def test_missing_points_rejected(self):
        errors = validate_record(_record(points=None))
        assert errors

    def test_non_monotonic_scales_rejected(self):
        points = [_point(s) for s in (0.25, 4.0, 1.0, 16.0)]
        errors = validate_record(_record(points=points))
        assert any("strictly" in e for e in errors)

    def test_non_numeric_point_key_rejected(self):
        points = [_point(s) for s in (0.25, 1.0, 4.0, 16.0)]
        points[2]["events_per_second"] = "fast"
        errors = validate_record(_record(points=points))
        assert any("events_per_second" in e for e in errors)

    def test_boolean_masquerading_as_number_rejected(self):
        points = [_point(s) for s in (0.25, 1.0, 4.0, 16.0)]
        points[0]["events"] = True
        errors = validate_record(_record(points=points))
        assert any("events" in e for e in errors)

    def test_zero_rates_rejected(self):
        points = [_point(s) for s in (0.25, 1.0, 4.0, 16.0)]
        points[1]["build_seconds"] = 0
        errors = validate_record(_record(points=points))
        assert any("build_seconds" in e for e in errors)

    def test_non_integer_seed_rejected(self):
        errors = validate_record(_record(seed="2010"))
        assert any("seed" in e for e in errors)


class TestPerfGateHook:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps(_record()), encoding="utf-8")
        import sys

        assert check_scale_bench(path, sys.stdout) == []
        assert "samples/sec" in capsys.readouterr().out

    def test_missing_file_is_violation(self, tmp_path):
        import sys

        errors = check_scale_bench(tmp_path / "nope.json", sys.stdout)
        assert errors

    def test_malformed_record_is_violation(self, tmp_path):
        import sys

        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps(_record(points=[])), encoding="utf-8")
        assert check_scale_bench(path, sys.stdout)


class TestCli:
    def test_check_valid_record(self, tmp_path):
        path = tmp_path / "curve.json"
        path.write_text(json.dumps(_record()), encoding="utf-8")
        assert scale_bench.main(["--check", str(path)]) == 0

    def test_check_invalid_record(self, tmp_path, capsys):
        path = tmp_path / "curve.json"
        path.write_text(json.dumps(_record(schema=0)), encoding="utf-8")
        assert scale_bench.main(["--check", str(path)]) == 1
        assert "SCALE BENCH VIOLATION" in capsys.readouterr().err

    def test_check_missing_record(self, tmp_path):
        assert scale_bench.main(["--check", str(tmp_path / "absent.json")]) == 1


@pytest.mark.slow
class TestRunPoint:
    def test_point_shape(self):
        point = run_point(seed=7, scale=0.05, weeks=8)
        assert set(point) == set(POINT_KEYS)
        assert point["events"] > 0
        assert point["events_per_second"] > 0
        assert point["max_rss_kb"] > 0
