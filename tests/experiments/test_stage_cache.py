"""The incremental stage DAG: fingerprints, invalidation matrix, replay.

The heart of this module is the parametrised invalidation matrix: for
every :class:`~repro.experiments.scenario.ScenarioConfig` dependency
key the DAG declares, perturbing that key (and nothing else) must
recompute exactly the declaring stage plus everything downstream of it
— one stage too few means stale artifacts, one too many means the
incremental engine silently lost its value.  A companion test derives
the same matrix from the ``STAGES`` declaration itself, so the literal
table here and the DAG in ``repro.experiments.stages`` cannot drift
apart unnoticed.
"""

import pickle
from dataclasses import replace

import pytest

from repro.core.invariants import InvariantPolicy
from repro.experiments.cache import (
    CACHE_FORMAT,
    StageStore,
    explain_stages,
    render_explanations,
    stage_fingerprints,
)
from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.experiments.stages import STAGE_NAMES, STAGES, downstream_of
from repro.honeypot.deployment import DeploymentConfig
from repro.sandbox.clustering import ClusteringConfig
from repro.sandbox.execution import SandboxConfig

SEED = 7
BASE = ScenarioConfig(
    n_weeks=8,
    scale=0.05,
    deployment=DeploymentConfig(n_networks=6, sensors_per_network=2),
)

ALL = frozenset(STAGE_NAMES)


def _variant(**overrides) -> ScenarioConfig:
    """``BASE`` with the given fields replaced."""
    return replace(BASE, **overrides)


#: One row per ScenarioConfig dependency key: the perturbed config and
#: the exact stage set that must recompute.  Mirrors the
#: ``config_keys`` declarations in :data:`repro.experiments.stages.STAGES`.
MATRIX = [
    pytest.param(
        _variant(deployment=DeploymentConfig(n_networks=5, sensors_per_network=2)),
        ALL,
        id="deployment",
    ),
    pytest.param(
        _variant(n_weeks=12),
        frozenset({"catalog", "observe", "enrich", "epm", "bcluster"}),
        id="n_weeks",
    ),
    pytest.param(
        _variant(scale=0.08),
        frozenset({"catalog", "observe", "enrich", "epm", "bcluster"}),
        id="scale",
    ),
    pytest.param(
        _variant(sandbox=SandboxConfig(noise_multiplier=2.0)),
        frozenset({"enrich", "epm", "bcluster"}),
        id="sandbox",
    ),
    pytest.param(
        _variant(invariant_policy=InvariantPolicy(min_instances=5)),
        frozenset({"epm"}),
        id="invariant_policy",
    ),
    pytest.param(
        _variant(clustering=ClusteringConfig(threshold=0.5)),
        frozenset({"bcluster"}),
        id="clustering",
    ),
]


def _derived_misses(config: ScenarioConfig) -> frozenset[str]:
    """Expected miss set from the DAG declaration, not the literal table."""
    base = stage_fingerprints(SEED, BASE)
    perturbed = stage_fingerprints(SEED, config)
    return frozenset(name for name in STAGE_NAMES if base[name] != perturbed[name])


class TestStageFingerprints:
    def test_covers_every_stage_with_sha256(self):
        fingerprints = stage_fingerprints(SEED, BASE)
        assert set(fingerprints) == ALL
        assert all(len(fp) == 64 and int(fp, 16) >= 0 for fp in fingerprints.values())

    def test_seed_rekeys_everything(self):
        a = stage_fingerprints(SEED, BASE)
        b = stage_fingerprints(SEED + 1, BASE)
        assert all(a[name] != b[name] for name in STAGE_NAMES)

    def test_execution_knobs_do_not_rekey_any_stage(self):
        parallel = _variant(executor="thread", jobs=2, profile=True, progress=True)
        assert stage_fingerprints(SEED, BASE) == stage_fingerprints(SEED, parallel)

    @pytest.mark.parametrize(("config", "expected_misses"), MATRIX)
    def test_perturbation_rekeys_exactly_the_expected_stages(
        self, config, expected_misses
    ):
        assert _derived_misses(config) == expected_misses

    def test_matrix_matches_the_dag_declaration(self):
        # The literal table above must agree with what STAGES declares:
        # a changed key invalidates the stages declaring it plus their
        # downstream closure, nothing else.
        literal = {row.id: row.values[1] for row in MATRIX}
        for key, expected in literal.items():
            declaring = [spec.name for spec in STAGES if key in spec.config_keys]
            assert declaring, f"matrix row {key!r} matches no stage declaration"
            derived = frozenset().union(*(downstream_of(name) for name in declaring))
            assert derived == expected


class TestInvalidationMatrix:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return StageStore(tmp_path_factory.mktemp("stages"))

    @pytest.fixture(scope="class")
    def cold(self, store):
        return PaperScenario(seed=SEED, config=BASE).run(stage_store=store)

    def test_cold_run_misses_everywhere(self, cold):
        assert cold.stage_cache == {name: "miss" for name in STAGE_NAMES}

    def test_warm_run_replays_everywhere_bit_identically(self, store, cold):
        warm = PaperScenario(seed=SEED, config=BASE).run(stage_store=store)
        assert warm.stage_cache == {name: "hit" for name in STAGE_NAMES}
        assert warm.manifest.artifact_digests == cold.manifest.artifact_digests

    def test_no_store_reports_cache_off(self):
        run = PaperScenario(seed=SEED, config=BASE).run()
        assert run.stage_cache == {name: "off" for name in STAGE_NAMES}

    @pytest.mark.parametrize(("config", "expected_misses"), MATRIX)
    def test_perturbation_recomputes_exactly_the_expected_stages(
        self, store, cold, config, expected_misses
    ):
        run = PaperScenario(seed=SEED, config=config).run(stage_store=store)
        observed_misses = {name for name, s in run.stage_cache.items() if s == "miss"}
        observed_hits = {name for name, s in run.stage_cache.items() if s == "hit"}
        assert observed_misses == expected_misses
        assert observed_hits == ALL - expected_misses

    def test_seed_change_recomputes_everything(self, store, cold):
        run = PaperScenario(seed=SEED + 1, config=BASE).run(stage_store=store)
        assert run.stage_cache == {name: "miss" for name in STAGE_NAMES}

    def test_partial_warm_run_matches_a_cold_rebuild_byte_for_byte(
        self, store, cold, tmp_path
    ):
        # Replayed upstream artifacts must feed the recomputed stages
        # the exact state a cold build would: a partially-warm run and
        # a from-scratch build of the same perturbed config must agree
        # on every artifact digest.  (A multiplier the matrix runs have
        # not already warmed in the shared class store.)
        perturbed = _variant(sandbox=SandboxConfig(noise_multiplier=3.0))
        partial = PaperScenario(seed=SEED, config=perturbed).run(stage_store=store)
        assert {s for s in partial.stage_cache.values()} == {"hit", "miss"}
        scratch = PaperScenario(seed=SEED, config=perturbed).run(
            stage_store=StageStore(tmp_path)
        )
        assert partial.manifest.artifact_digests == scratch.manifest.artifact_digests
        assert partial.headline() == scratch.headline()


class TestExplain:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("explain-stages")
        store = StageStore(root)
        PaperScenario(seed=SEED, config=BASE).run(stage_store=store)
        return store

    def test_unchanged_config_forecasts_all_hits(self, store):
        explanations = explain_stages(SEED, BASE, store)
        assert all(e.cached for e in explanations)
        assert "6/6" in render_explanations(explanations)

    def test_empty_store_blames_no_prior_artifact(self, tmp_path):
        explanations = explain_stages(SEED, BASE, StageStore(tmp_path))
        assert not any(e.cached for e in explanations)
        assert explanations[0].causes == ("no prior artifact",)

    def test_config_perturbation_names_the_dotted_key(self, store):
        perturbed = _variant(clustering=ClusteringConfig(threshold=0.5))
        by_stage = {e.stage: e for e in explain_stages(SEED, perturbed, store)}
        assert sum(1 for e in by_stage.values() if not e.cached) == 1
        causes = by_stage["bcluster"].causes
        assert any(cause.startswith("config:clustering.threshold") for cause in causes)

    def test_downstream_stage_blames_its_upstream(self, store):
        perturbed = _variant(sandbox=SandboxConfig(noise_multiplier=2.0))
        by_stage = {e.stage: e for e in explain_stages(SEED, perturbed, store)}
        assert "upstream:enrich" in by_stage["epm"].causes
        assert "upstream:enrich" in by_stage["bcluster"].causes

    def test_seed_change_blames_the_seed(self, store):
        explanations = explain_stages(SEED + 1, BASE, store)
        assert not any(e.cached for e in explanations)
        assert any("seed" in cause for cause in explanations[0].causes)


class TestStageStore:
    def test_corrupt_artifact_is_evicted_as_miss(self, tmp_path):
        store = StageStore(tmp_path)
        fingerprints = stage_fingerprints(SEED, BASE)
        path = store.path_for("deployment", fingerprints["deployment"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert store.load("deployment", fingerprints["deployment"]) is None
        assert not path.exists()

    def test_non_dict_artifact_is_evicted(self, tmp_path):
        store = StageStore(tmp_path)
        path = store.path_for("deployment", "ab" * 32)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert store.load("deployment", "ab" * 32) is None
        assert not path.exists()

    def test_gc_drops_orphans_temp_files_and_stale_formats(self, tmp_path):
        store = StageStore(tmp_path)
        store.store("epm", "aa" * 32, {"epm": 1}, {"format": CACHE_FORMAT})
        stage_dir = store.root / "epm"
        (stage_dir / "orphan.pkl").write_bytes(pickle.dumps({"x": 1}))
        (stage_dir / "widow.json").write_text("{}", encoding="utf-8")
        (stage_dir / "torn.pkl.tmp.123").write_bytes(b"partial")
        store.store("epm", "bb" * 32, {"epm": 2}, {"format": CACHE_FORMAT - 1})
        removed, reclaimed = store.gc()
        assert removed == 5  # orphan, widow, tmp, stale pkl + sidecar
        assert reclaimed > 0
        assert store.load("epm", "aa" * 32) == {"epm": 1}

    def test_gc_clear_empties_the_store(self, tmp_path):
        store = StageStore(tmp_path)
        store.store("epm", "aa" * 32, {"epm": 1}, {"format": CACHE_FORMAT})
        store.gc(clear=True)
        assert store.entries() == []
