"""The shard pipeline's determinism contract and plan geometry.

``observe_sharded`` must produce a dataset bit-identical to the plain
``SGNetDeployment.observe`` over the same generator, for any shard
count and any executor backend — these tests enforce that contract
(see :mod:`repro.experiments.shards`).
"""

import pytest

from repro.egpm.events import InteractionType
from repro.experiments.cache import stage_fingerprints
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.shards import (
    observe_sharded,
    plan_shards,
    sensor_group_batches,
)
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment
from repro.malware.behaviorspec import BehaviorTemplate
from repro.malware.families import single_variant_family
from repro.malware.landscape import LandscapeGenerator
from repro.malware.polymorphism import PolymorphyMode
from repro.malware.population import ContinuousActivity, PopulationSpec
from repro.malware.propagation import (
    ExploitSpec,
    PayloadSpec,
    PropagationSpec,
    fixed,
    rand,
)
from repro.net.sampling import UniformSampler
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.peformat.structures import PESpec
from repro.util.parallel import SerialExecutor, get_executor
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid
from repro.util.validation import ValidationError

GRID = TimeGrid(0, 6 * WEEK_SECONDS)


def _deployment(seed=1):
    return SGNetDeployment(
        RandomSource(seed).child("dep"),
        DeploymentConfig(n_networks=4, sensors_per_network=3),
    )


def _family(name="fam"):
    return single_variant_family(
        name=name,
        pe_spec=PESpec(),
        behavior=BehaviorTemplate(mutexes=(f"{name}-m",)),
        propagation=PropagationSpec(
            ExploitSpec(name="e", dst_port=445, dialogue=((fixed("GO"), rand(4)),)),
            PayloadSpec(
                name="p",
                protocol="ftp",
                interaction=InteractionType.PULL,
                filename="a.exe",
                port=21,
            ),
        ),
        population=PopulationSpec(size=15, sampler=UniformSampler()),
        activity=ContinuousActivity(8.0),
        polymorphism=PolymorphyMode.PER_INSTANCE,
    )


def _generator(deployment, seed=1, families=None):
    return LandscapeGenerator(
        families or [_family()],
        deployment.sensor_addresses,
        GRID,
        RandomSource(seed).child("land"),
    )


def _schedule():
    deployment = _deployment()
    return _generator(deployment).schedule()


class TestPlanShards:
    def test_one_shard_is_whole_schedule(self):
        schedule = _schedule()
        plan = plan_shards(schedule, 1)
        assert plan.shards == (tuple(schedule),)
        assert plan.n_slots == len(schedule)

    def test_shards_partition_schedule_in_order(self):
        schedule = _schedule()
        for n_shards in (2, 3, 7):
            plan = plan_shards(schedule, n_shards)
            assert len(plan.shards) == n_shards
            assert len(plan.boundaries) == n_shards + 1
            flattened = [slot for shard in plan.shards for slot in shard]
            assert flattened == list(schedule)

    def test_shards_are_time_windows(self):
        plan = plan_shards(_schedule(), 5)
        for shard, low, high in zip(plan.shards, plan.boundaries, plan.boundaries[1:]):
            assert all(low <= slot[0] < high for slot in shard)

    def test_empty_schedule(self):
        plan = plan_shards([], 4)
        assert plan.shards == ()
        assert plan.n_slots == 0

    def test_more_shards_than_timestamps_keeps_empty_windows(self):
        schedule = _schedule()
        plan = plan_shards(schedule, len(schedule) * 2)
        assert plan.n_slots == len(schedule)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValidationError):
            plan_shards(_schedule(), 0)


class TestSensorGroupBatches:
    def test_batches_partition_indices(self):
        schedule = _schedule()
        batches = sensor_group_batches(schedule)
        assert sorted(i for batch in batches for i in batch) == list(
            range(len(schedule))
        )

    def test_batches_group_by_network_constraint(self):
        schedule = _schedule()
        for batch in sensor_group_batches(schedule):
            keys = {schedule[i][3] for i in batch}
            assert len(keys) == 1


class TestObserveSharded:
    def _baseline(self, seed=1):
        deployment = _deployment(seed)
        return deployment.observe(_generator(deployment, seed))

    def _sharded(self, n_shards, seed=1, backend="serial", jobs=0):
        deployment = _deployment(seed)
        generator = _generator(deployment, seed)
        return observe_sharded(
            deployment,
            generator,
            n_shards=n_shards,
            executor=get_executor(backend, jobs),
        )

    def test_bit_identical_for_any_shard_count(self):
        baseline = self._baseline()
        for n_shards in (1, 3, 8):
            dataset = self._sharded(n_shards)
            assert dataset.events == baseline.events
            assert set(dataset.samples) == set(baseline.samples)

    def test_bit_identical_across_backends(self):
        baseline = self._baseline()
        dataset = self._sharded(4, backend="thread", jobs=2)
        assert dataset.events == baseline.events

    def test_merged_columnar_view_is_adopted(self):
        dataset = self._sharded(3)
        view = dataset.to_columnar()
        assert dataset.to_columnar() is view  # pre-merged, not rebuilt
        assert view.n_events == len(dataset)
        baseline_view = self._baseline().to_columnar()
        assert view.summary() == baseline_view.summary()

    def test_shard_metrics_emitted(self):
        with obs_metrics.use(MetricsRegistry()) as registry:
            self._sharded(5)
        snapshot = registry.snapshot()
        assert snapshot.counter("shards.observed") == 5
        assert snapshot.histograms["shards.events"]["count"] == 5


class TestExecutionOnlyFields:
    def test_columnar_and_shards_do_not_change_fingerprints(self):
        base = stage_fingerprints(7, ScenarioConfig())
        assert base == stage_fingerprints(7, ScenarioConfig(columnar=False))
        assert base == stage_fingerprints(7, ScenarioConfig(shards=8))


class TestShardedBuildUnusedExecutorIsFine:
    def test_serial_executor_default(self):
        # SerialExecutor has no pool; the cheapest path for tests.
        assert isinstance(get_executor("serial"), SerialExecutor)
