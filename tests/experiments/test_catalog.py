"""Tests for the paper-scale landscape catalog."""

import pytest

from repro.experiments.catalog import (
    allaple_behavior,
    allaple_payload,
    asn1_exploit,
    build_catalog,
    iliketay_behavior,
    iliketay_pe_spec,
)
from repro.honeypot.deployment import SGNetDeployment
from repro.malware.polymorphism import PolymorphyMode
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid
from repro.util.validation import ValidationError

GRID = TimeGrid(0, 74 * WEEK_SECONDS)


@pytest.fixture(scope="module")
def catalog():
    deployment = SGNetDeployment(RandomSource(2010).child("deployment"))
    return build_catalog(
        RandomSource(2010).child("catalog"), GRID, deployment.sensor_networks
    )


class TestBuildingBlocks:
    def test_asn1_exploit_targets_445(self):
        assert asn1_exploit().dst_port == 445

    def test_allaple_payload_is_p_pattern_45(self):
        payload = allaple_payload()
        assert payload.port == 9988
        assert payload.interaction.value == "push"
        assert payload.filename is None

    def test_iliketay_pe_spec_matches_quoted_pattern(self):
        spec = iliketay_pe_spec()
        assert spec.file_size == 59_904
        assert spec.machine_type == 332
        assert spec.n_sections == 3
        assert spec.n_dlls == 1
        assert spec.os_version == 64
        assert spec.linker_version == 92
        assert spec.imports["KERNEL32.dll"] == ("GetProcAddress", "LoadLibraryA")
        assert [s.padded_name for s in spec.sections] == [
            ".text\x00\x00\x00",
            "rdata\x00\x00\x00",
            ".data\x00\x00\x00",
        ]

    def test_allaple_generations_behaviourally_distant(self):
        from repro.sandbox.environment import Environment
        from repro.sandbox.execution import Sandbox

        sandbox = Sandbox(Environment())
        g0 = sandbox.execute(
            allaple_behavior(0).with_noise_rate(0.0), time=0, run_seed=1
        )
        g1 = sandbox.execute(
            allaple_behavior(1).with_noise_rate(0.0), time=0, run_seed=1
        )
        assert g0.similarity(g1) < 0.7  # two B-clusters, as in the paper

    def test_allaple_generation_validated(self):
        with pytest.raises(ValidationError):
            allaple_behavior(2)

    def test_iliketay_behavior_environment_dependent(self):
        behavior = iliketay_behavior()
        assert behavior.depends_on_environment
        assert len(behavior.components) == 2
        assert behavior.components[0].component.cnc is not None


class TestCatalogShape:
    def test_variant_count_near_paper_m_count(self, catalog):
        assert 220 <= catalog.n_variants <= 280

    def test_family_mix(self, catalog):
        names = [f.name for f in catalog.families]
        assert names.count("allaple") == 2  # two behavioural generations
        assert "iliketay" in names
        assert sum(1 for n in names if n.startswith("ircbot")) == 10
        assert sum(1 for n in names if n.startswith("misc")) >= 10

    def test_allaple_sizes_unique_across_generations(self, catalog):
        sizes = [
            v.pe_spec.file_size
            for f in catalog.families
            if f.name == "allaple"
            for v in f.variants
        ]
        assert len(set(sizes)) == len(sizes)

    def test_polymorphism_mix(self, catalog):
        modes = {}
        for family in catalog.families:
            for variant in family.variants:
                modes.setdefault(variant.polymorphism, 0)
                modes[variant.polymorphism] += 1
        assert modes[PolymorphyMode.PER_INSTANCE] > 80
        assert modes[PolymorphyMode.NONE] > 100
        assert modes[PolymorphyMode.PER_SOURCE] == 1

    def test_environment_configured_for_iliketay(self, catalog):
        env = catalog.environment
        assert env.resolves("iliketay.cn", GRID.start)
        assert not env.resolves("iliketay.cn", GRID.end - 1)
        assert env.component_available("iliketay.cn", "/load/two.exe", GRID.start)
        assert not env.component_available(
            "iliketay.cn", "/load/two.exe", GRID.end - 1
        )

    def test_scale_shrinks_catalog(self):
        deployment = SGNetDeployment(RandomSource(1).child("d"))
        small = build_catalog(
            RandomSource(1).child("c"), GRID, deployment.sensor_networks, scale=0.1
        )
        full = build_catalog(
            RandomSource(1).child("c"), GRID, deployment.sensor_networks, scale=1.0
        )
        assert small.n_variants < full.n_variants / 3

    def test_deterministic(self):
        deployment = SGNetDeployment(RandomSource(1).child("d"))
        a = build_catalog(RandomSource(5).child("c"), GRID, deployment.sensor_networks)
        b = build_catalog(RandomSource(5).child("c"), GRID, deployment.sensor_networks)
        assert [v.key for f in a.families for v in f.variants] == [
            v.key for f in b.families for v in f.variants
        ]
        assert [v.pe_spec.file_size for f in a.families for v in f.variants] == [
            v.pe_spec.file_size for f in b.families for v in f.variants
        ]

    def test_bot_cncs_within_declared_infrastructure(self, catalog):
        subnets = {"67.43.232", "67.43.226", "72.10.172", "83.68.16"}
        for family in catalog.families:
            if not family.name.startswith("ircbot"):
                continue
            for variant in family.variants:
                prefix = variant.behavior.cnc.server.rsplit(".", 1)[0]
                assert prefix in subnets

    def test_notes_present(self, catalog):
        assert set(catalog.notes) >= {"allaple", "iliketay", "botnets", "misc"}
