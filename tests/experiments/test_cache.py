"""The scenario artifact cache: fingerprints, round-trips, eviction."""

import time

import pytest

from repro.experiments.cache import (
    ScenarioCache,
    cached_run,
    scenario_fingerprint,
)
from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.honeypot.deployment import DeploymentConfig
from repro.sandbox.execution import SandboxConfig

TINY = ScenarioConfig(
    n_weeks=10,
    scale=0.08,
    deployment=DeploymentConfig(n_networks=6, sensors_per_network=2),
)


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        again = ScenarioConfig(
            n_weeks=10,
            scale=0.08,
            deployment=DeploymentConfig(n_networks=6, sensors_per_network=2),
        )
        assert scenario_fingerprint(1, TINY) == scenario_fingerprint(1, again)

    def test_default_config_implied(self):
        assert scenario_fingerprint(1) == scenario_fingerprint(1, ScenarioConfig())

    def test_seed_sensitive(self):
        assert scenario_fingerprint(1, TINY) != scenario_fingerprint(2, TINY)

    def test_semantic_config_sensitive(self):
        for other in (
            ScenarioConfig(n_weeks=11, scale=TINY.scale, deployment=TINY.deployment),
            ScenarioConfig(n_weeks=10, scale=0.09, deployment=TINY.deployment),
            ScenarioConfig(
                n_weeks=10,
                scale=0.08,
                deployment=TINY.deployment,
                sandbox=SandboxConfig(noise_multiplier=2.0),
            ),
        ):
            assert scenario_fingerprint(1, TINY) != scenario_fingerprint(1, other)

    def test_execution_knobs_do_not_change_the_key(self):
        parallel = ScenarioConfig(
            n_weeks=10,
            scale=0.08,
            deployment=TINY.deployment,
            executor="process",
            jobs=8,
        )
        assert scenario_fingerprint(1, TINY) == scenario_fingerprint(1, parallel)

    def test_hex_sha256_shape(self):
        fingerprint = scenario_fingerprint(1, TINY)
        assert len(fingerprint) == 64
        assert int(fingerprint, 16) >= 0


class TestScenarioCache:
    @pytest.fixture(scope="class")
    def built(self):
        return PaperScenario(seed=11, config=TINY).run()

    def test_miss_on_empty_cache(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        assert cache.load(11, TINY) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_round_trip_returns_equal_run(self, tmp_path, built):
        cache = ScenarioCache(tmp_path)
        cache.store(built)
        loaded = cache.load(11, TINY)
        assert loaded is not None
        assert loaded.headline() == built.headline()
        assert loaded.bclusters.assignment == built.bclusters.assignment
        assert loaded.bclusters.clusters == built.bclusters.clusters
        for event in built.dataset.events:
            assert loaded.epm.coordinates(event.event_id) == built.epm.coordinates(
                event.event_id
            )
        assert cache.hits == 1

    def test_config_change_misses(self, tmp_path, built):
        cache = ScenarioCache(tmp_path)
        cache.store(built)
        other = ScenarioConfig(
            n_weeks=12, scale=TINY.scale, deployment=TINY.deployment
        )
        assert cache.load(11, other) is None
        assert cache.load(12, TINY) is None

    def test_execution_knob_change_hits(self, tmp_path, built):
        cache = ScenarioCache(tmp_path)
        cache.store(built)
        parallel = ScenarioConfig(
            n_weeks=10,
            scale=0.08,
            deployment=TINY.deployment,
            executor="thread",
            jobs=2,
        )
        assert cache.load(11, parallel) is not None

    def test_corrupt_entry_is_evicted_as_miss(self, tmp_path, built):
        cache = ScenarioCache(tmp_path)
        path = cache.store(built)
        path.write_bytes(b"not a pickle")
        assert cache.load(11, TINY) is None
        assert not path.exists()

    def test_non_scenario_pickle_is_evicted(self, tmp_path, built):
        import pickle

        cache = ScenarioCache(tmp_path)
        path = cache.path_for(11, TINY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a run"}))
        assert cache.load(11, TINY) is None
        assert not path.exists()

    def test_clear_removes_entries(self, tmp_path, built):
        cache = ScenarioCache(tmp_path)
        cache.store(built)
        assert cache.clear() == 1
        assert cache.load(11, TINY) is None

    def test_get_or_run_builds_once_then_hits(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        first = cache.get_or_run(PaperScenario(seed=11, config=TINY))
        second = cache.get_or_run(PaperScenario(seed=11, config=TINY))
        assert (cache.hits, cache.misses) == (1, 1)
        assert second.headline() == first.headline()

    def test_cached_run_convenience(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        run = cached_run(11, TINY, cache=cache)
        again = cached_run(11, TINY, cache=cache)
        assert again.headline() == run.headline()
        assert cache.hits == 1

    def test_warm_load_is_much_faster_than_rebuild(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        config = ScenarioConfig(
            n_weeks=20,
            scale=0.15,
            deployment=DeploymentConfig(n_networks=10, sensors_per_network=3),
        )
        started = time.perf_counter()
        cache.get_or_run(PaperScenario(seed=11, config=config))
        build_seconds = time.perf_counter() - started

        # Best of three: a single load can eat a GC pause or a cold
        # page under full-suite load; the claim is about the mechanism,
        # not one sample.
        load_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            assert cache.load(11, config) is not None
            load_seconds = min(load_seconds, time.perf_counter() - started)
        assert load_seconds * 10 <= build_seconds
