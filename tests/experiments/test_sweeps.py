"""Tests for the parameter sweeps."""

import pytest

from repro.experiments.sweeps import (
    lsh_shape_sweep,
    noise_sweep,
    threshold_sweep,
)
from repro.util.validation import ValidationError


class TestNoiseSweep:
    def test_singletons_grow_with_noise(self, small_run):
        points = noise_sweep(
            small_run.dataset,
            small_run.catalog.environment,
            [0.0, 1.0, 2.0],
            clustering=small_run.config.clustering,
        )
        by_multiplier = {p.multiplier: p for p in points}
        assert (
            by_multiplier[0.0].n_singletons
            < by_multiplier[1.0].n_singletons
            < by_multiplier[2.0].n_singletons
        )

    def test_zero_noise_minimal_singletons(self, small_run):
        (point,) = noise_sweep(
            small_run.dataset,
            small_run.catalog.environment,
            [0.0],
            clustering=small_run.config.clustering,
        )
        # Without derailments only genuine rarities remain single.
        assert point.singleton_share < 0.1

    def test_sample_universe_constant(self, small_run):
        points = noise_sweep(
            small_run.dataset, small_run.catalog.environment, [0.0, 2.0]
        )
        assert points[0].n_samples == points[1].n_samples

    def test_empty_multipliers_rejected(self, small_run):
        with pytest.raises(ValidationError):
            noise_sweep(small_run.dataset, small_run.catalog.environment, [])


class TestLshShapeSweep:
    @pytest.fixture(scope="class")
    def profiles(self, small_run):
        # A manageable slice of real profiles.
        items = list(small_run.anubis.profiles().items())[:250]
        return dict(items)

    def test_recall_ordering(self, profiles):
        points = lsh_shape_sweep(
            profiles, [(10, 8), (20, 5)], threshold=0.7
        )
        by_shape = {(p.bands, p.rows): p for p in points}
        # Lower rows -> sigmoid centred lower -> better recall at 0.7.
        assert by_shape[(20, 5)].recall >= by_shape[(10, 8)].recall

    def test_recall_bounds(self, profiles):
        for point in lsh_shape_sweep(profiles, [(20, 5)]):
            assert 0.0 <= point.recall <= 1.0

    def test_true_pairs_shape_independent(self, profiles):
        points = lsh_shape_sweep(profiles, [(10, 8), (20, 5), (25, 4)])
        assert len({p.true_pairs for p in points}) == 1


class TestThresholdSweep:
    def test_monotone_cluster_count(self, small_run):
        profiles = dict(list(small_run.anubis.profiles().items())[:300])
        points = threshold_sweep(profiles, [0.5, 0.7, 0.9])
        counts = [p.n_clusters for p in points]
        assert counts == sorted(counts)  # higher threshold, more clusters

    def test_largest_cluster_shrinks(self, small_run):
        profiles = dict(list(small_run.anubis.profiles().items())[:300])
        points = threshold_sweep(profiles, [0.5, 0.9])
        assert points[0].largest >= points[1].largest
