"""Tests for golden-value regression pinning."""

from repro.experiments.regression import GOLDEN, check_headline


class TestCheckHeadline:
    def test_golden_matches_itself(self):
        assert check_headline(GOLDEN) == []

    def test_deviation_reported(self):
        measured = dict(GOLDEN)
        measured["m_clusters"] += 1
        deviations = check_headline(measured)
        assert len(deviations) == 1
        assert "m_clusters" in deviations[0]

    def test_missing_key_reported(self):
        measured = dict(GOLDEN)
        del measured["events"]
        assert any("events" in d for d in check_headline(measured))

    def test_golden_consistency(self):
        # Internal sanity of the pinned values themselves.
        assert GOLDEN["samples_executed"] < GOLDEN["samples_collected"]
        assert GOLDEN["size1_b_clusters"] < GOLDEN["b_clusters"]
        assert GOLDEN["e_clusters"] < GOLDEN["m_clusters"]
