"""Cross-backend determinism: parallelism may never perturb artifacts.

The whole point of the executor abstraction is that ``serial``,
``thread`` and ``process`` runs of one scenario are *bit-identical*:
same headline counts, same per-event E/P/M coordinates, same B-cluster
assignment, same execution counters.  These tests run a reduced
scenario on every backend (with ``jobs=2`` so the pooled backends
really chunk) and compare everything.
"""

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.honeypot.deployment import DeploymentConfig


def _config(executor: str) -> ScenarioConfig:
    return ScenarioConfig(
        n_weeks=16,
        scale=0.12,
        deployment=DeploymentConfig(n_networks=8, sensors_per_network=3),
        executor=executor,
        jobs=2,
    )


@pytest.fixture(scope="module")
def serial_run():
    return PaperScenario(seed=77, config=_config("serial")).run()


@pytest.fixture(scope="module", params=["thread", "process"])
def parallel_run(request):
    return PaperScenario(seed=77, config=_config(request.param)).run()


class TestBackendDeterminism:
    def test_headline_counts_identical(self, serial_run, parallel_run):
        assert parallel_run.headline() == serial_run.headline()

    def test_epm_coordinates_identical(self, serial_run, parallel_run):
        for event in serial_run.dataset.events:
            assert parallel_run.epm.coordinates(
                event.event_id
            ) == serial_run.epm.coordinates(event.event_id)

    def test_m_cluster_assignment_identical(self, serial_run, parallel_run):
        assert parallel_run.epm.m_cluster_of_samples(
            parallel_run.dataset
        ) == serial_run.epm.m_cluster_of_samples(serial_run.dataset)

    def test_b_cluster_assignment_identical(self, serial_run, parallel_run):
        assert parallel_run.bclusters.assignment == serial_run.bclusters.assignment
        assert parallel_run.bclusters.clusters == serial_run.bclusters.clusters

    def test_behavior_profiles_identical(self, serial_run, parallel_run):
        serial_profiles = serial_run.anubis.profiles()
        parallel_profiles = parallel_run.anubis.profiles()
        assert list(parallel_profiles) == list(serial_profiles)  # insertion order
        assert {
            md5: profile.features for md5, profile in parallel_profiles.items()
        } == {md5: profile.features for md5, profile in serial_profiles.items()}

    def test_counters_identical(self, serial_run, parallel_run):
        assert (
            parallel_run.anubis.sandbox.n_executions
            == serial_run.anubis.sandbox.n_executions
        )
        assert parallel_run.enrichment.stats() == serial_run.enrichment.stats()

    def test_timings_cover_all_stages(self, serial_run, parallel_run):
        expected = {
            "deployment",
            "catalog",
            "observe",
            "enrich",
            "epm",
            "bcluster",
            "windows",
        }
        for run in (serial_run, parallel_run):
            assert {stage.name for stage in run.timings.stages} == expected
            assert run.timings.total > 0

    def test_manifest_digests_and_fingerprint_identical(self, serial_run, parallel_run):
        assert parallel_run.manifest is not None and serial_run.manifest is not None
        assert (
            parallel_run.manifest.artifact_digests
            == serial_run.manifest.artifact_digests
        )
        # executor/jobs are execution-only knobs: same fingerprint
        assert parallel_run.manifest.fingerprint == serial_run.manifest.fingerprint

    def test_executor_metric_totals_identical(self, serial_run, parallel_run):
        """The chunk plan is backend-independent and the ``executor.*``
        counters are unlabelled, so whole-scenario totals must agree
        exactly — worker-side telemetry is merged, never dropped."""

        def executor_counters(run):
            return {
                key: value
                for key, value in run.metrics.counters.items()
                if key.startswith("executor.")
            }

        assert executor_counters(serial_run)  # instrumented at all
        assert executor_counters(parallel_run) == executor_counters(serial_run)

    def test_window_report_bytes_identical(self, serial_run, parallel_run):
        """The landscape window series are derived purely from artifacts,
        so serial/thread/process runs must serialise to the same bytes."""
        assert serial_run.windows is not None and parallel_run.windows is not None
        assert parallel_run.windows.to_json() == serial_run.windows.to_json()
        assert parallel_run.windows.digest() == serial_run.windows.digest()

    def test_health_report_bytes_identical(self, serial_run, parallel_run):
        assert serial_run.health is not None and parallel_run.health is not None
        assert parallel_run.health.to_json() == serial_run.health.to_json()
        assert parallel_run.health.digest() == serial_run.health.digest()

    def test_chunk_seconds_histogram_counts_identical(self, serial_run, parallel_run):
        serial_hist = serial_run.metrics.histograms["executor.chunk_seconds"]
        parallel_hist = parallel_run.metrics.histograms["executor.chunk_seconds"]
        # values are wall-clock (free to differ); counts are structural
        assert parallel_hist["count"] == serial_hist["count"] > 0

    def test_bucket_size_sketch_bit_identical(self, serial_run, parallel_run):
        """LSH bucket sizes are integers derived purely from artifacts,
        so the per-worker sketches must reduce to byte-identical
        payloads (``sum`` included) on every backend — the digest-level
        parity the mergeable-sketch design promises."""
        serial = serial_run.metrics.sketches["lsh.bucket_size_sketch"]
        parallel = parallel_run.metrics.sketches["lsh.bucket_size_sketch"]
        assert serial["count"] > 0
        assert parallel == serial

    def test_chunk_seconds_sketch_counts_identical(self, serial_run, parallel_run):
        serial = serial_run.metrics.sketches["executor.chunk_seconds_sketch"]
        parallel = parallel_run.metrics.sketches["executor.chunk_seconds_sketch"]
        # observed values are wall-clock; the observation count is not
        assert parallel["count"] == serial["count"] > 0

    def test_chunk_backlog_watermark_identical(self, serial_run, parallel_run):
        """The backlog high-water mark depends only on the chunk plan
        (worst remaining-chunk count), never on completion order."""
        assert (
            parallel_run.metrics.watermarks["executor.chunk_backlog"]
            == serial_run.metrics.watermarks["executor.chunk_backlog"]
        )


class TestBatchSubmissionEquivalence:
    """submit_batch must be indistinguishable from sequential submit."""

    def test_batch_matches_sequential(self, serial_run):
        from repro.sandbox.anubis import AnubisService
        from repro.sandbox.execution import Sandbox
        from repro.util.parallel import ThreadExecutor

        records = [
            record
            for record in serial_run.dataset.samples.values()
            if record.behavior_handle is not None and not record.observable.corrupted
        ][:40]
        submissions = [
            (record.md5, record.behavior_handle, record.first_seen)
            for record in records
        ]
        # duplicate a submission: the second occurrence must reuse the first
        submissions.append(submissions[0])

        environment = serial_run.catalog.environment
        sequential = AnubisService(Sandbox(environment, serial_run.config.sandbox))
        for md5, behavior, time in submissions:
            sequential.submit(md5, behavior, time=time)

        batched = AnubisService(Sandbox(environment, serial_run.config.sandbox))
        reports = batched.submit_batch(submissions, executor=ThreadExecutor(jobs=2))

        assert len(reports) == len(submissions)
        assert reports[0] is reports[-1]  # duplicate reused, not re-executed
        assert list(batched.profiles()) == list(sequential.profiles())
        assert {
            md5: profile.features for md5, profile in batched.profiles().items()
        } == {md5: profile.features for md5, profile in sequential.profiles().items()}
        assert batched.sandbox.n_executions == sequential.sandbox.n_executions
