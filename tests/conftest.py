"""Shared fixtures: one reduced end-to-end scenario per test session.

The reduced scenario keeps the full landscape shape (worm lineage, bots,
the per-source family, misc tail) at a fraction of the event volume, so
integration and analysis tests run against a realistic dataset without
paying the full-scale simulation cost more than once.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioConfig, ScenarioRun
from repro.honeypot.deployment import DeploymentConfig


@pytest.fixture(scope="session")
def small_run() -> ScenarioRun:
    """A reduced but structurally complete pipeline run."""
    config = ScenarioConfig(
        n_weeks=74,
        scale=0.22,
        deployment=DeploymentConfig(n_networks=12, sensors_per_network=4),
    )
    return PaperScenario(seed=2010, config=config).run()


@pytest.fixture(scope="session")
def small_dataset(small_run):
    """The reduced run's SGNET dataset."""
    return small_run.dataset
