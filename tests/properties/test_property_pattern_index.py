"""Hypothesis property tests: the compiled index vs the linear scan.

The pattern trie and the batched numpy kernel are pure accelerations of
:meth:`PatternSet.scan_classify`; on any discovered pattern set and any
probe — in-distribution or novel — all three must return the identical
pattern.  These properties are the contract the classify CI gate
re-checks at landscape scale via digest comparison.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.invariants import InvariantPolicy, discover_invariants
from repro.core.pattern_index import PatternIndex
from repro.core.patterns import WILDCARD, PatternSet
from repro.egpm.columnar import Vocabulary

#: Small alphabets make value collisions (and thus invariants) common.
values = st.sampled_from(["a", "b", "c", "d", "e", None, 0, 1])
instances3 = st.lists(
    st.tuples(values, values, values), min_size=1, max_size=60
)
#: Novel probes can carry values discovery never saw.
probe_values = st.sampled_from(
    ["a", "b", "c", "d", "e", None, 0, 1, "zz", "novel", 99]
)
probes3 = st.lists(
    st.tuples(probe_values, probe_values, probe_values),
    min_size=1,
    max_size=20,
)
LOOSE = InvariantPolicy(min_instances=2, min_sources=1, min_sensors=1)


def build(instances, min_support=1):
    observations = [(v, i % 3, i % 2) for i, v in enumerate(instances)]
    invariants = discover_invariants(observations, ["f0", "f1", "f2"], LOOSE)
    patterns = PatternSet.discover(
        instances, invariants, min_support=min_support
    )
    return invariants, patterns


def batch_patterns(index, workload):
    vocabularies = [Vocabulary() for _ in range(3)]
    codes = np.array(
        [
            [vocab.intern(value) for vocab, value in zip(vocabularies, vals)]
            for vals in workload
        ],
        dtype=np.int64,
    )
    ranks = index.batch_classify(codes, vocabularies)
    return [index.pattern_of(rank) for rank in ranks.tolist()]


class TestIndexedEqualsLinear:
    @given(instances3, probes3)
    @settings(max_examples=80)
    def test_trie_agrees_with_scan_on_any_probe(self, instances, probes):
        invariants, patterns = build(instances)
        index = PatternIndex.compile(patterns, invariants)
        for probe in instances + probes:
            assert index.classify(probe) == patterns.scan_classify(probe)

    @given(instances3, probes3)
    @settings(max_examples=60)
    def test_batch_agrees_with_scan_on_any_probe(self, instances, probes):
        invariants, patterns = build(instances)
        index = PatternIndex.compile(patterns, invariants)
        workload = instances + probes
        expected = [patterns.scan_classify(probe) for probe in workload]
        assert batch_patterns(index, workload) == expected

    @given(instances3, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_agreement_survives_support_pruning(self, instances, min_support):
        # Pruning leaves root-only or sparse sets — the degenerate
        # shapes where a buggy trie would shortcut to the wrong leaf.
        invariants, patterns = build(instances, min_support=min_support)
        index = PatternIndex.compile(patterns, invariants)
        for probe in instances:
            assert index.classify(probe) == patterns.scan_classify(probe)

    @given(instances3)
    @settings(max_examples=60)
    def test_cached_classify_agrees_with_scan(self, instances):
        # The LRU-memoized public path must stay bit-identical to the
        # pure scan, repeated probes included (hit path exercised).
        invariants, patterns = build(instances)
        for probe in instances + instances:
            assert patterns.classify(probe, invariants) == patterns.scan_classify(
                probe
            )

    @given(instances3)
    @settings(max_examples=40)
    def test_index_total_on_discovered_sets(self, instances):
        # Discovery always retains the all-wildcard root, so the trie
        # must classify anything without raising.
        invariants, patterns = build(instances)
        index = PatternIndex.compile(patterns, invariants)
        assigned = index.classify(("__x__", "__y__", "__z__"))
        assert assigned == (WILDCARD, WILDCARD, WILDCARD)
