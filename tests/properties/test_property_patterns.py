"""Hypothesis property tests for the EPM pattern lattice."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.invariants import InvariantPolicy, discover_invariants
from repro.core.patterns import (
    PatternSet,
    generalizes,
    mask_instance,
    pattern_matches,
    specificity,
)

#: Small alphabets make value collisions (and thus invariants) common.
values = st.sampled_from(["a", "b", "c", "d", "e", None, 0, 1])
instances3 = st.lists(
    st.tuples(values, values, values), min_size=1, max_size=60
)
LOOSE = InvariantPolicy(min_instances=2, min_sources=1, min_sensors=1)


def build(instances):
    observations = [(v, 0, 0) for v in instances]
    invariants = discover_invariants(observations, ["f0", "f1", "f2"], LOOSE)
    patterns = PatternSet.discover(instances, invariants)
    return invariants, patterns


class TestMaskProperties:
    @given(instances3)
    @settings(max_examples=80)
    def test_mask_matches_its_instance(self, instances):
        invariants, _ = build(instances)
        for instance in instances:
            assert pattern_matches(mask_instance(instance, invariants), instance)

    @given(instances3)
    @settings(max_examples=80)
    def test_classification_total(self, instances):
        invariants, patterns = build(instances)
        for instance in instances:
            assigned = patterns.classify(instance, invariants)
            assert pattern_matches(assigned, instance)

    @given(instances3)
    @settings(max_examples=80)
    def test_assigned_pattern_is_most_specific_match(self, instances):
        invariants, patterns = build(instances)
        for instance in instances:
            assigned = patterns.classify(instance, invariants)
            best = max(
                (specificity(p) for p in patterns.matching_patterns(instance)),
                default=0,
            )
            assert specificity(assigned) == best

    @given(instances3)
    @settings(max_examples=80)
    def test_matching_patterns_generalize_mask(self, instances):
        # Every pattern matching an instance generalizes the instance's mask.
        invariants, patterns = build(instances)
        for instance in instances[:10]:
            mask = mask_instance(instance, invariants)
            for pattern in patterns.matching_patterns(instance):
                assert generalizes(pattern, mask)

    @given(instances3)
    @settings(max_examples=80)
    def test_pattern_supports_sum_to_instances(self, instances):
        invariants, patterns = build(instances)
        from collections import Counter

        assigned = Counter(
            patterns.classify(instance, invariants) for instance in instances
        )
        assert sum(assigned.values()) == len(instances)

    @given(instances3)
    @settings(max_examples=60)
    def test_grouping_is_equivalence_on_identical_instances(self, instances):
        invariants, patterns = build(instances)
        seen = {}
        for instance in instances:
            assigned = patterns.classify(instance, invariants)
            if instance in seen:
                assert seen[instance] == assigned
            seen[instance] = assigned


class TestInvariantMonotonicity:
    @given(
        instances3,
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60)
    def test_stricter_instance_threshold_shrinks_invariants(
        self, instances, low, high
    ):
        if low > high:
            low, high = high, low
        observations = [(v, i % 4, i % 3) for i, v in enumerate(instances)]
        names = ["f0", "f1", "f2"]
        loose = discover_invariants(
            observations, names, InvariantPolicy(low, 1, 1)
        )
        strict = discover_invariants(
            observations, names, InvariantPolicy(high, 1, 1)
        )
        for i in range(3):
            assert strict.invariants[i] <= loose.invariants[i]

    @given(instances3)
    @settings(max_examples=60)
    def test_wildcard_count_antitone_in_invariants(self, instances):
        # More invariants -> masks can only become more specific.
        observations = [(v, i % 4, i % 3) for i, v in enumerate(instances)]
        names = ["f0", "f1", "f2"]
        loose = discover_invariants(
            observations, names, InvariantPolicy(1, 1, 1)
        )
        strict = discover_invariants(
            observations, names, InvariantPolicy(4, 2, 2)
        )
        for instance in instances:
            loose_mask = mask_instance(instance, loose)
            strict_mask = mask_instance(instance, strict)
            assert generalizes(strict_mask, loose_mask)
