"""Hypothesis property tests for ScriptGen FSM learning."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.honeypot.fsm import FSMLearner, UNKNOWN_PATH_ID, region_analysis
from repro.malware.propagation import ExploitSpec, Token, fixed, rand


@st.composite
def exploit_specs(draw, name):
    """Random exploit dialogues mixing fixed and random tokens."""
    n_messages = draw(st.integers(min_value=1, max_value=3))
    dialogue = []
    for m in range(n_messages):
        tokens: list[Token] = [fixed(f"{name}-VERB{m}")]
        if draw(st.booleans()):
            tokens.append(rand(draw(st.integers(min_value=3, max_value=8))))
        if draw(st.booleans()):
            tokens.append(fixed(f"{name}-ARG{m}"))
        dialogue.append(tuple(tokens))
    return ExploitSpec(name=name, dst_port=445, dialogue=tuple(dialogue))


class TestLearnerProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_learned_classification_is_stable(self, data):
        spec = data.draw(exploit_specs("a"))
        learner = FSMLearner(refine_threshold=12, min_support=4)
        rng = random.Random(data.draw(st.integers(0, 100)))
        for _ in range(40):
            learner.observe(spec.generate_conversation(rng))
        learner.flush()
        paths = {
            learner.classify(spec.generate_conversation(rng)) for _ in range(15)
        }
        paths.discard(UNKNOWN_PATH_ID)
        # One spec without choice tokens -> at most one learned path.
        assert len(paths) <= 1

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_distinct_specs_never_conflated(self, data):
        spec_a = data.draw(exploit_specs("a"))
        spec_b = data.draw(exploit_specs("b"))
        learner = FSMLearner(refine_threshold=12, min_support=4)
        rng = random.Random(data.draw(st.integers(0, 100)))
        for _ in range(40):
            learner.observe(spec_a.generate_conversation(rng))
            learner.observe(spec_b.generate_conversation(rng))
        learner.flush()
        path_a = learner.classify(spec_a.generate_conversation(rng))
        path_b = learner.classify(spec_b.generate_conversation(rng))
        if UNKNOWN_PATH_ID not in (path_a, path_b):
            # Distinct fixed verbs guarantee distinct paths once learned.
            assert path_a != path_b

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_observe_then_classify_converges(self, data):
        spec = data.draw(exploit_specs("a"))
        learner = FSMLearner(refine_threshold=10, min_support=3)
        rng = random.Random(1)
        results = [
            learner.observe(spec.generate_conversation(rng)) for _ in range(60)
        ]
        # Once a conversation classifies, it keeps classifying.
        first_known = next(
            (i for i, r in enumerate(results) if r != UNKNOWN_PATH_ID), None
        )
        assert first_known is not None
        assert all(r != UNKNOWN_PATH_ID for r in results[first_known:])


class TestRegionAnalysisProperties:
    tokens = st.sampled_from(["A", "B", "C", "x1", "x2"])

    @given(
        st.lists(
            st.tuples(tokens, tokens), min_size=4, max_size=60
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60)
    def test_patterns_cover_at_least_support(self, messages, min_support):
        patterns = region_analysis(messages, min_support)
        for pattern in patterns:
            from repro.honeypot.fsm import pattern_matches

            covered = sum(1 for m in messages if pattern_matches(pattern, m))
            assert covered >= min_support

    @given(st.lists(st.tuples(tokens, tokens), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_patterns_distinct(self, messages):
        patterns = region_analysis(messages, 2)
        assert len(patterns) == len(set(patterns))

    @given(st.lists(st.tuples(tokens), min_size=4, max_size=40))
    @settings(max_examples=40)
    def test_single_position_messages(self, messages):
        patterns = region_analysis(messages, 3)
        for pattern in patterns:
            assert len(pattern) == 1
