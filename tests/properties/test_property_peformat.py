"""Hypothesis property tests: PE build/parse round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.peformat.builder import build_pe, minimum_file_size
from repro.peformat.magic import magic_type
from repro.peformat.parser import parse_pe
from repro.peformat.structures import (
    FILE_ALIGNMENT,
    MACHINE_AMD64,
    MACHINE_I386,
    PEFormatError,
    PESpec,
    SectionSpec,
    SCN_CODE,
    SCN_INITIALIZED_DATA,
    SCN_MEM_READ,
)

section_names = st.sampled_from(
    [".text", ".rdata", ".data", ".rsrc", "UPX0", "UPX1", "CODE", ".x"]
)
symbol_names = st.sampled_from(
    ["GetProcAddress", "LoadLibraryA", "CreateFileA", "WinExec", "socket", "Sym_1"]
)
dll_names = st.sampled_from(
    ["KERNEL32.dll", "WS2_32.dll", "ADVAPI32.dll", "WININET.dll", "USER32.dll"]
)


@st.composite
def pe_specs(draw):
    n_sections = draw(st.integers(min_value=1, max_value=6))
    names = draw(
        st.lists(section_names, min_size=n_sections, max_size=n_sections)
    )
    sections = tuple(
        SectionSpec(
            name,
            draw(
                st.sampled_from(
                    [SCN_CODE | SCN_MEM_READ, SCN_INITIALIZED_DATA | SCN_MEM_READ]
                )
            ),
        )
        for name in names
    )
    n_dlls = draw(st.integers(min_value=0, max_value=3))
    imports = {}
    dlls = draw(st.lists(dll_names, min_size=n_dlls, max_size=n_dlls, unique=True))
    for dll in dlls:
        imports[dll] = tuple(
            draw(st.lists(symbol_names, min_size=0, max_size=5, unique=True))
        )
    spec = PESpec(
        machine_type=draw(st.sampled_from([MACHINE_I386, MACHINE_AMD64])),
        sections=sections,
        imports=imports,
        os_version=draw(st.integers(min_value=0, max_value=99)),
        linker_version=draw(st.integers(min_value=0, max_value=99)),
        file_size=FILE_ALIGNMENT,  # placeholder, fixed below
    )
    floor = minimum_file_size(spec)
    extra = draw(st.integers(min_value=0, max_value=60))
    return spec.with_size(floor + extra * FILE_ALIGNMENT)


class TestRoundTrip:
    @given(pe_specs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_build_parse_recovers_spec(self, spec, seed):
        image = build_pe(spec, seed)
        assert len(image) == spec.file_size
        info = parse_pe(image)
        assert info.machine_type == spec.machine_type
        assert info.n_sections == spec.n_sections
        assert info.os_version == spec.os_version
        assert info.linker_version == spec.linker_version
        assert info.section_names == tuple(s.padded_name for s in spec.sections)
        assert info.imports == {dll: tuple(syms) for dll, syms in spec.imports.items()}
        assert info.file_size == spec.file_size

    @given(pe_specs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_content_mutation_preserves_headers(self, spec, seed):
        info_a = parse_pe(build_pe(spec, seed))
        info_b = parse_pe(build_pe(spec, seed + 1))
        assert info_a == info_b

    @given(pe_specs(), st.integers(min_value=0, max_value=100), st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_crashes(self, spec, seed, data):
        image = build_pe(spec, seed)
        cut = data.draw(st.integers(min_value=0, max_value=len(image) - 1))
        try:
            parse_pe(image[:cut])
        except PEFormatError:
            pass  # expected for most cuts; anything else would fail the test

    @given(pe_specs(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_magic_recognizes_built_images(self, spec, seed):
        assert magic_type(build_pe(spec, seed)).startswith("MS-DOS executable PE")


class TestParserRobustness:
    @given(st.binary(max_size=4096))
    @settings(max_examples=100)
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            parse_pe(data)
        except PEFormatError:
            pass

    @given(st.binary(max_size=2048))
    @settings(max_examples=100)
    def test_magic_total_on_arbitrary_bytes(self, data):
        assert isinstance(magic_type(data), str)
