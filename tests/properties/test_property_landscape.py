"""Hypothesis property tests for the landscape generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egpm.events import InteractionType
from repro.malware.behaviorspec import BehaviorTemplate
from repro.malware.families import FamilySpec, VariantSpec
from repro.malware.landscape import LandscapeGenerator
from repro.malware.polymorphism import PolymorphyMode
from repro.malware.population import ContinuousActivity, PopulationSpec
from repro.malware.propagation import (
    ExploitSpec,
    PayloadSpec,
    PropagationSpec,
    fixed,
    rand,
)
from repro.net.address import IPv4Address
from repro.net.sampling import UniformSampler
from repro.peformat.builder import minimum_file_size
from repro.peformat.structures import FILE_ALIGNMENT, PESpec
from repro.util.hashing import md5_hex
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid

SENSORS = [
    IPv4Address((77 << 24) | (n << 16) | (1 << 8) | h)
    for n in range(2)
    for h in (1, 2)
]


@st.composite
def variant_specs(draw):
    mode = draw(st.sampled_from(list(PolymorphyMode)))
    base = PESpec()
    extra = draw(st.integers(min_value=0, max_value=20))
    spec = base.with_size(
        max(base.file_size, minimum_file_size(base)) + extra * FILE_ALIGNMENT
    )
    return VariantSpec(
        family="fam",
        variant=f"v{draw(st.integers(0, 99)):03d}",
        pe_spec=spec,
        polymorphism=mode,
        behavior=BehaviorTemplate(mutexes=("m",)),
        propagation=PropagationSpec(
            ExploitSpec(
                name="e",
                dst_port=draw(st.sampled_from([139, 445, 135])),
                dialogue=((fixed("GO"), rand(4)),),
            ),
            PayloadSpec(
                name="p",
                protocol="ftp",
                interaction=InteractionType.PULL,
                filename="x.exe",
                port=21,
            ),
        ),
        population=PopulationSpec(
            size=draw(st.integers(min_value=1, max_value=20)),
            sampler=UniformSampler(),
        ),
        activity=ContinuousActivity(draw(st.floats(min_value=0.5, max_value=6.0))),
    )


class TestGeneratorInvariants:
    @given(variant_specs(), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_stream_invariants(self, variant, seed):
        grid = TimeGrid(0, 3 * WEEK_SECONDS)
        family = FamilySpec(name="fam", variants=(variant,))
        generator = LandscapeGenerator([family], SENSORS, grid, RandomSource(seed))
        attempts = list(generator)
        times = [a.timestamp for a in attempts]
        assert times == sorted(times)
        sensor_set = set(SENSORS)
        population_cap = variant.population.size
        sources = set()
        for attempt in attempts:
            assert grid.contains(attempt.timestamp)
            assert attempt.sensor in sensor_set
            assert attempt.variant_key == variant.key
            assert len(attempt.binary) == variant.pe_spec.file_size or (
                variant.polymorphism is PolymorphyMode.REPACK
            )
            sources.add(int(attempt.source))
        assert len(sources) <= population_cap

    @given(variant_specs(), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_polymorphism_contract(self, variant, seed):
        grid = TimeGrid(0, 3 * WEEK_SECONDS)
        family = FamilySpec(name="fam", variants=(variant,))
        generator = LandscapeGenerator([family], SENSORS, grid, RandomSource(seed))
        md5_by_source: dict[int, set[str]] = {}
        all_md5s: list[str] = []
        for attempt in generator:
            digest = md5_hex(attempt.binary)
            md5_by_source.setdefault(int(attempt.source), set()).add(digest)
            all_md5s.append(digest)
        if not all_md5s:
            return
        if variant.polymorphism is PolymorphyMode.NONE:
            assert len(set(all_md5s)) == 1
        elif variant.polymorphism is PolymorphyMode.PER_SOURCE:
            assert all(len(digests) == 1 for digests in md5_by_source.values())
        elif variant.polymorphism is PolymorphyMode.PER_INSTANCE:
            assert len(set(all_md5s)) == len(all_md5s)
        else:  # REPACK: per-instance at minimum
            assert len(set(all_md5s)) == len(all_md5s)

    @given(variant_specs())
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, variant):
        grid = TimeGrid(0, 2 * WEEK_SECONDS)
        family = FamilySpec(name="fam", variants=(variant,))
        a = [
            (x.timestamp, md5_hex(x.binary))
            for x in LandscapeGenerator([family], SENSORS, grid, RandomSource(3))
        ]
        b = [
            (x.timestamp, md5_hex(x.binary))
            for x in LandscapeGenerator([family], SENSORS, grid, RandomSource(3))
        ]
        assert a == b
