"""Hypothesis property tests for the streaming-quantile sketch.

Two contracts carry the PR's telemetry guarantees and both are stated
here as universally quantified properties: every quantile estimate is
within the declared relative error of the exact order statistic, and
merging independently sketched shards is indistinguishable from
sketching the whole stream (the payloads are compared wholesale, which
is exactly the digest check the manifest layer relies on).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch

# Three orders of magnitude: comfortably inside the default bin budget,
# so the boundary fold never interferes with the error-bound property.
observations = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

# Integer-valued floats sum exactly in any order, so the shard-merge
# property can compare full payloads (including ``sum``) for equality.
integer_observations = st.lists(
    st.integers(min_value=0, max_value=100_000).map(float),
    min_size=1,
    max_size=200,
)

quantiles = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _filled(values, **kwargs):
    sketch = QuantileSketch(**kwargs)
    for value in values:
        sketch.observe(value)
    return sketch


class TestSketchProperties:
    @given(observations, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_estimate_within_declared_relative_error(self, values, q):
        sketch = _filled(values)
        estimate = sketch.quantile(q)
        exact = sorted(values)[math.floor(q * (len(values) - 1))]
        assert abs(estimate - exact) <= DEFAULT_ALPHA * exact + 1e-12

    @given(integer_observations, st.integers(min_value=1, max_value=5))
    @settings(max_examples=150, deadline=None)
    def test_merge_of_shards_equals_one_sketch(self, values, n_shards):
        whole = _filled(values)
        merged = QuantileSketch()
        for offset in range(n_shards):
            merged.merge(_filled(values[offset::n_shards]))
        assert merged.as_dict() == whole.as_dict()

    @given(
        integer_observations,
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_whole_under_heavy_folding(
        self, values, n_shards, max_bins
    ):
        whole = _filled(values, max_bins=max_bins)
        merged = QuantileSketch(max_bins=max_bins)
        for offset in range(n_shards):
            merged.merge(_filled(values[offset::n_shards], max_bins=max_bins))
        assert merged.as_dict() == whole.as_dict()
        assert len(merged.bins) <= max_bins

    @given(observations, quantiles, quantiles)
    @settings(max_examples=150, deadline=None)
    def test_monotone_in_q(self, values, q1, q2):
        sketch = _filled(values)
        low, high = sorted((q1, q2))
        assert sketch.quantile(low) <= sketch.quantile(high)

    @given(observations)
    @settings(max_examples=100, deadline=None)
    def test_payload_is_insertion_order_independent(self, values):
        forward = _filled(values).as_dict()
        backward = _filled(reversed(values)).as_dict()
        # ``sum`` is the one order-sensitive field (float addition); the
        # executors sidestep it by merging chunks in a fixed order.
        assert math.isclose(forward.pop("sum"), backward.pop("sum"))
        assert forward == backward

    @given(observations)
    @settings(max_examples=100, deadline=None)
    def test_count_and_extremes_are_exact(self, values):
        sketch = _filled(values)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
