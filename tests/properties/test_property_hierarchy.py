"""Hypothesis property tests for attribute-oriented induction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import ANY, AOIMiner, Concept, Taxonomy, band_taxonomy

values = st.sampled_from(["a", "b", "c", "d"])
numbers = st.integers(min_value=0, max_value=40)
instances2 = st.lists(st.tuples(values, numbers), min_size=1, max_size=80)


class TestAOIProperties:
    @given(instances2, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_total_assignment_conserved(self, instances, min_size):
        result = AOIMiner(["k", "v"], min_size=min_size).fit(instances)
        assert len(result.assignment) == len(instances)
        assert sum(result.support.values()) == len(instances)

    @given(instances2, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_support_floor_or_fully_general(self, instances, min_size):
        result = AOIMiner(["k", "v"], min_size=min_size).fit(instances)
        for pattern, support in result.support.items():
            assert support >= min_size or all(v is ANY for v in pattern)

    @given(instances2, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_assignment_generalizes_instance(self, instances, min_size):
        taxonomy = band_taxonomy(range(41), width=10, label="v")
        miner = AOIMiner(["k", "v"], {"v": taxonomy}, min_size=min_size)
        result = miner.fit(instances)
        for index, instance in enumerate(instances):
            pattern = result.assignment[index]
            assert pattern[0] == instance[0] or pattern[0] is ANY
            assert taxonomy.covers(pattern[1], instance[1])

    @given(instances2)
    @settings(max_examples=60, deadline=None)
    def test_min_size_one_is_identity(self, instances):
        result = AOIMiner(["k", "v"], min_size=1).fit(instances)
        assert set(result.patterns) == set(map(tuple, instances))

    @given(instances2, st.integers(min_value=2, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_pattern_count_antitone_in_min_size(self, instances, min_size):
        small = AOIMiner(["k", "v"], min_size=1).fit(instances)
        large = AOIMiner(["k", "v"], min_size=min_size).fit(instances)
        assert large.n_patterns <= small.n_patterns


class TestTaxonomyProperties:
    @given(numbers, st.integers(min_value=1, max_value=20))
    @settings(max_examples=100)
    def test_band_contains_value(self, value, width):
        taxonomy = band_taxonomy([value], width=width, label="x")
        concept = taxonomy.generalize(value)
        assert isinstance(concept, Concept)
        lo, hi = concept.name.split(":")[1].split("-")
        assert int(lo) <= value <= int(hi)

    @given(numbers)
    @settings(max_examples=50)
    def test_levels_strictly_decrease(self, value):
        taxonomy = band_taxonomy([value], width=10, label="x")
        level = taxonomy.level_of(value)
        assert level == 2
        assert taxonomy.level_of(taxonomy.generalize(value)) == 1
