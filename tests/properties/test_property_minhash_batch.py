"""Hypothesis property tests: batched MinHash == per-profile MinHash.

The batch kernel (:meth:`MinHasher.signature_matrix`) must reproduce
the scalar :meth:`MinHasher.signature` bit for bit on both hash
families — the 61-bit pure-Python family (reproduced in uint64 via
limb-split modular multiplication) and the vectorised 31-bit numpy
family.  Together with the scalar path that makes three code paths
that must agree exactly; the LSH clustering digests rest on it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sandbox.lsh import MinHasher

feature_set = st.sets(st.integers(min_value=0, max_value=2**64 - 1), max_size=40)
feature_batches = st.lists(feature_set, min_size=1, max_size=12)
backends = st.sampled_from(["python", "numpy"])


class TestSignatureMatrixProperties:
    @given(feature_batches, backends, st.integers(min_value=1, max_value=48))
    @settings(max_examples=80, deadline=None)
    def test_matrix_rows_match_scalar_signatures(self, batch, backend, n_hashes):
        """Row i of the batch == signature(batch[i]), bit for bit."""
        hasher = MinHasher(n_hashes, backend=backend)
        # Fix iteration order so both paths consume the same sequence.
        ordered = [sorted(items) for items in batch]
        matrix = hasher.signature_matrix(ordered)
        assert matrix.shape == (len(batch), n_hashes)
        assert matrix.dtype == np.uint64
        for row, items in zip(matrix, ordered):
            assert tuple(int(v) for v in row) == hasher.signature(items)

    @given(backends)
    @settings(max_examples=10, deadline=None)
    def test_empty_sets_get_sentinel_rows(self, backend):
        hasher = MinHasher(8, backend=backend)
        matrix = hasher.signature_matrix([[], [1, 2], []])
        sentinel = hasher.signature([])
        assert tuple(int(v) for v in matrix[0]) == sentinel
        assert tuple(int(v) for v in matrix[2]) == sentinel
        assert tuple(int(v) for v in matrix[1]) == hasher.signature([1, 2])

    @given(feature_batches, backends)
    @settings(max_examples=40, deadline=None)
    def test_batch_split_invariance(self, batch, backend):
        """Batching is per-row: any split of the batch yields the
        same rows (no cross-profile leakage through the flat layout)."""
        hasher = MinHasher(16, backend=backend)
        ordered = [sorted(items) for items in batch]
        whole = hasher.signature_matrix(ordered)
        half = len(ordered) // 2
        parts = [
            hasher.signature_matrix(ordered[:half]),
            hasher.signature_matrix(ordered[half:]),
        ]
        assert np.array_equal(whole, np.concatenate(parts))
