"""Hypothesis property tests for histogram quantile estimation."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, quantile_from_payload

BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0)

observations = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)
quantiles = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _filled(values):
    histogram = Histogram(BUCKETS)
    for value in values:
        histogram.observe(value)
    return histogram


class TestQuantileProperties:
    @given(observations, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_estimate_is_within_the_bucket_range(self, values, q):
        estimate = _filled(values).quantile(q)
        assert estimate is not None
        assert 0.0 <= estimate <= BUCKETS[-1]

    @given(observations, quantiles, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_q(self, values, q1, q2):
        histogram = _filled(values)
        low, high = sorted((q1, q2))
        assert histogram.quantile(low) <= histogram.quantile(high)

    @given(observations, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_estimate_within_one_bucket_of_exact(self, values, q):
        """The estimate lands in (or adjacent to) the exact value's bucket.

        The estimator interpolates inside the bucket holding the
        ``ceil(q * n)``-th observation, so its value can differ from the
        exact order statistic only within that bucket (or touch its
        lower edge) — bucket resolution is the promised accuracy.
        """
        histogram = _filled(values)
        estimate = histogram.quantile(q)
        ordered = sorted(values)
        rank = q * len(ordered)
        exact = ordered[max(0, min(len(ordered) - 1, math.ceil(rank) - 1))]

        # bucket index of a value: first bound >= value (overflow clamps
        # to the last finite bucket, the Prometheus reporting convention)
        def bucket_of(value):
            for index, bound in enumerate(BUCKETS):
                if value <= bound:
                    return index
            return len(BUCKETS) - 1

        assert abs(bucket_of(estimate) - bucket_of(exact)) <= 1

    @given(observations, quantiles)
    @settings(max_examples=100, deadline=None)
    def test_payload_form_agrees_with_live_instrument(self, values, q):
        histogram = _filled(values)
        assert quantile_from_payload(histogram.as_dict(), q) == histogram.quantile(q)

    @given(quantiles)
    @settings(max_examples=30, deadline=None)
    def test_empty_histogram_has_no_quantile(self, q):
        assert Histogram(BUCKETS).quantile(q) is None
        assert quantile_from_payload(Histogram(BUCKETS).as_dict(), q) is None

    @given(observations)
    @settings(max_examples=100, deadline=None)
    def test_extremes_bracket_the_midpoint(self, values):
        histogram = _filled(values)
        assert histogram.quantile(0.0) <= histogram.quantile(0.5) <= histogram.quantile(1.0)

    @given(st.lists(st.floats(min_value=20.0, max_value=50.0, allow_nan=False),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_overflow_only_reports_highest_finite_bound(self, values):
        # all observations land past the last bucket: Prometheus convention
        histogram = _filled(values)
        assert histogram.quantile(0.5) == BUCKETS[-1]
