"""Hypothesis property tests: serialization and codec round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egpm.dataset import SGNetDataset
from repro.egpm.events import (
    AttackEvent,
    ExploitObservable,
    GroundTruth,
    InteractionType,
    MalwareObservable,
    PayloadObservable,
    event_from_dict,
    event_to_dict,
)
from repro.net.address import IPv4Address, ip_from_string, ip_to_string
from repro.util.stats import burstiness, gini, normalized_entropy

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestIpCodec:
    @given(addresses)
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert int(ip_from_string(ip_to_string(value))) == value

    @given(addresses)
    def test_prefix_consistency(self, value):
        addr = IPv4Address(value)
        assert addr.slash24 >> 16 == addr.slash8
        assert addr.slash16 >> 8 == addr.slash8


md5s = st.text(alphabet="0123456789abcdef", min_size=32, max_size=32)
ports = st.integers(min_value=1, max_value=65535)
protocols = st.sampled_from(["ftp", "http", "tftp", "creceive", "blink"])
interactions = st.sampled_from(list(InteractionType))


@st.composite
def events(draw, event_id=0):
    payload = None
    if draw(st.booleans()):
        payload = PayloadObservable(
            protocol=draw(protocols),
            interaction=draw(interactions),
            filename=draw(st.none() | st.text(min_size=1, max_size=12)),
            port=draw(st.none() | ports),
        )
    malware = None
    if draw(st.booleans()):
        malware = MalwareObservable(
            md5=draw(md5s),
            size=draw(st.integers(min_value=0, max_value=10**7)),
            magic=draw(st.sampled_from(["data", "MS-DOS executable"])),
            pe=None,
            corrupted=draw(st.booleans()),
        )
    truth = None
    if draw(st.booleans()):
        truth = GroundTruth(
            family=draw(st.text(min_size=1, max_size=8)),
            variant=draw(st.text(min_size=1, max_size=8)),
            exploit_name="e",
            payload_name="p",
        )
    return AttackEvent(
        event_id=event_id,
        timestamp=draw(st.integers(min_value=0, max_value=10**9)),
        source=IPv4Address(draw(addresses)),
        sensor=IPv4Address(draw(addresses)),
        exploit=ExploitObservable(
            fsm_path_id=draw(st.integers(min_value=0, max_value=10**4)),
            dst_port=draw(ports),
        ),
        payload=payload,
        malware=malware,
        ground_truth=truth,
    )


class TestEventCodec:
    @given(events())
    @settings(max_examples=150)
    def test_dict_roundtrip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    @given(st.lists(events(), max_size=10))
    @settings(max_examples=40)
    def test_jsonl_roundtrip(self, tmp_path_factory, event_list):
        renumbered = [
            AttackEvent(
                event_id=i,
                timestamp=e.timestamp,
                source=e.source,
                sensor=e.sensor,
                exploit=e.exploit,
                payload=e.payload,
                malware=e.malware,
                ground_truth=e.ground_truth,
            )
            for i, e in enumerate(event_list)
        ]
        dataset = SGNetDataset.from_events(renumbered)
        path = tmp_path_factory.mktemp("jsonl") / "events.jsonl"
        dataset.save_jsonl(path)
        loaded = SGNetDataset.load_jsonl(path)
        assert loaded.events == dataset.events


class TestStatsBounds:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_gini_bounds(self, values):
        assert 0.0 <= gini(values) <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_normalized_entropy_bounds(self, counts):
        assert 0.0 <= normalized_entropy(counts) <= 1.0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=10**6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_burstiness_bounds(self, gaps):
        assert -1.0 <= burstiness(gaps) <= 1.0
