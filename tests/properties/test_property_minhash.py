"""Hypothesis property tests for MinHash/LSH and clustering equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import ClusteringConfig, cluster_exact, cluster_lsh
from repro.sandbox.lsh import MinHasher
from repro.util.stats import jaccard

feature_sets = st.sets(st.integers(min_value=0, max_value=10**12), max_size=60)


class TestMinHashProperties:
    @given(feature_sets)
    @settings(max_examples=60)
    def test_identical_sets_estimate_one(self, items):
        hasher = MinHasher(32)
        sig = hasher.signature(items)
        assert hasher.estimate_similarity(sig, sig) == 1.0

    @given(feature_sets, feature_sets)
    @settings(max_examples=60)
    def test_estimate_symmetric(self, a, b):
        hasher = MinHasher(32)
        sig_a, sig_b = hasher.signature(a), hasher.signature(b)
        assert hasher.estimate_similarity(sig_a, sig_b) == hasher.estimate_similarity(
            sig_b, sig_a
        )

    @given(feature_sets, feature_sets)
    @settings(max_examples=40)
    def test_estimate_tracks_jaccard(self, a, b):
        if not a or not b:
            return
        hasher = MinHasher(256)
        estimate = hasher.estimate_similarity(
            hasher.signature(a), hasher.signature(b)
        )
        true = jaccard(a, b)
        assert abs(estimate - true) < 0.25  # 256 hashes: s.e. <= ~0.031

    @given(feature_sets)
    @settings(max_examples=40)
    def test_signature_permutation_invariant(self, items):
        hasher = MinHasher(16)
        assert hasher.signature(items) == hasher.signature(set(sorted(items)))


def _profiles_from(label_sets):
    profiles = {}
    for i, labels in enumerate(label_sets):
        profiles[f"s{i}"] = BehaviorProfile.from_features(
            ("file", f"obj{label}", "create") for label in labels
        )
    return profiles


label_set = st.sets(st.integers(min_value=0, max_value=25), min_size=1, max_size=20)


class TestClusteringEquivalence:
    @given(st.lists(label_set, min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_lsh_partition_refines_exact_partition(self, label_sets):
        """Every LSH-found cluster sits inside one exact cluster.

        LSH can only *miss* similar pairs (false negatives before the
        exact check), so its single-linkage components must refine the
        exact ones — never merge across them.
        """
        profiles = _profiles_from(label_sets)
        config = ClusteringConfig(threshold=0.7)
        exact = cluster_exact(profiles, config)
        lsh = cluster_lsh(profiles, config)
        for members in lsh.clusters.values():
            exact_ids = {exact.assignment[m] for m in members}
            assert len(exact_ids) == 1

    @given(st.lists(label_set, min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_identical_profiles_always_together(self, label_sets):
        profiles = _profiles_from(label_sets)
        result = cluster_lsh(profiles)
        by_features = {}
        for key, profile in profiles.items():
            by_features.setdefault(profile.features, []).append(key)
        for members in by_features.values():
            assert len({result.assignment[m] for m in members}) == 1

    @given(st.lists(label_set, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_assignment_covers_all_samples(self, label_sets):
        profiles = _profiles_from(label_sets)
        result = cluster_lsh(profiles)
        assert set(result.assignment) == set(profiles)
        assert sum(result.sizes().values()) == len(profiles)

    @given(st.lists(label_set, min_size=2, max_size=20), st.data())
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotonicity(self, label_sets, data):
        # Lowering the threshold can only merge clusters, never split.
        profiles = _profiles_from(label_sets)
        high = cluster_exact(profiles, ClusteringConfig(threshold=0.8))
        low = cluster_exact(profiles, ClusteringConfig(threshold=0.5))
        assert low.n_clusters <= high.n_clusters
        for members in high.clusters.values():
            assert len({low.assignment[m] for m in members}) == 1
