"""Tests for Table 1 feature definitions and extraction."""

import pytest

from repro.core.features import (
    Dimension,
    FeatureDefinition,
    FeatureSet,
    default_feature_sets,
    epsilon_features,
    mu_features,
    pi_features,
)
from repro.util.validation import ValidationError

from tests.egpm.test_events import make_event


class TestFeatureSets:
    def test_default_sets_cover_all_dimensions(self):
        sets = default_feature_sets()
        assert set(sets) == set(Dimension)

    def test_table1_epsilon_features(self):
        assert epsilon_features().names == ["fsm_path_id", "dst_port"]

    def test_table1_pi_features(self):
        assert pi_features().names == ["protocol", "filename", "port", "interaction"]

    def test_table1_mu_features(self):
        names = mu_features().names
        assert names == [
            "md5",
            "size",
            "magic",
            "machine_type",
            "n_sections",
            "n_dlls",
            "os_version",
            "linker_version",
            "section_names",
            "imported_dlls",
            "kernel32_symbols",
        ]

    def test_duplicate_names_rejected(self):
        f = FeatureDefinition("x", lambda e: 1)
        with pytest.raises(ValidationError):
            FeatureSet(Dimension.PI, [f, f], applies=lambda e: True)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            FeatureSet(Dimension.PI, [], applies=lambda e: True)


class TestExtraction:
    def test_epsilon_always_applies(self):
        event = make_event(with_payload=False, with_malware=False)
        assert epsilon_features().applies_to(event)
        assert epsilon_features().extract(event) == (3, 445)

    def test_pi_requires_payload(self):
        event = make_event(with_payload=False, with_malware=False)
        assert not pi_features().applies_to(event)
        with pytest.raises(ValidationError):
            pi_features().extract(event)

    def test_pi_extraction(self):
        event = make_event()
        assert pi_features().extract(event) == ("ftp", "x.exe", 21, "pull")

    def test_mu_requires_malware(self):
        event = make_event(with_malware=False)
        assert not mu_features().applies_to(event)

    def test_mu_extraction_values(self):
        event = make_event()
        values = dict(zip(mu_features().names, mu_features().extract(event)))
        assert values["md5"] == event.malware.md5
        assert values["size"] == 59_904
        assert values["machine_type"] == 332
        assert values["n_sections"] == 3
        assert values["linker_version"] == 92
        assert values["kernel32_symbols"] == ("GetProcAddress", "LoadLibraryA")

    def test_mu_pe_features_none_for_corrupted(self):
        from repro.egpm.events import AttackEvent, MalwareObservable

        base = make_event()
        corrupted = AttackEvent(
            event_id=0,
            timestamp=1,
            source=base.source,
            sensor=base.sensor,
            exploit=base.exploit,
            malware=MalwareObservable(
                md5="f" * 32, size=100, magic="data", pe=None, corrupted=True
            ),
        )
        values = dict(zip(mu_features().names, mu_features().extract(corrupted)))
        assert values["machine_type"] is None
        assert values["section_names"] is None
        assert values["md5"] == "f" * 32

    def test_extracted_values_hashable(self):
        event = make_event()
        for feature_set in default_feature_sets().values():
            if feature_set.applies_to(event):
                hash(feature_set.extract(event))
