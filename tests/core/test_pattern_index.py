"""Tests for the compiled pattern index (trie + batch kernel)."""

import numpy as np
import pytest

from repro.core.pattern_index import PatternIndex
from repro.core.patterns import WILDCARD, PatternSet
from repro.egpm.columnar import Vocabulary
from repro.util.validation import ValidationError

from .test_patterns import build_invariants


def discover(instances, n_features, **kwargs):
    invariants = build_invariants(instances, n_features)
    return PatternSet.discover(instances, invariants, **kwargs), invariants


def intern_workload(workload, n_features):
    """Columnar code matrix + vocabularies for a batch of raw tuples."""
    vocabularies = [Vocabulary() for _ in range(n_features)]
    codes = np.array(
        [
            [vocab.intern(value) for vocab, value in zip(vocabularies, values)]
            for values in workload
        ],
        dtype=np.int64,
    )
    return codes, vocabularies


class TestCompile:
    def test_compiles_every_pattern(self):
        patterns, invariants = discover([("a", "x")] * 3 + [("b", "y")] * 3, 2)
        index = PatternIndex.compile(patterns, invariants)
        assert len(index) == len(patterns)
        assert index.patterns == patterns.patterns

    def test_mask_consistent_for_discovered_sets(self):
        patterns, invariants = discover([("a", "x")] * 5, 2)
        assert PatternIndex.compile(patterns, invariants).mask_consistent

    def test_hand_built_set_can_be_inconsistent(self):
        # "q" is no invariant value, so masked lookups must not be
        # trusted and the index says so.
        _, invariants = discover([("a", "x")] * 5, 2)
        hand = PatternSet({("q", WILDCARD): 1, (WILDCARD, WILDCARD): 1})
        assert not PatternIndex.compile(hand, invariants).mask_consistent

    def test_arity_mismatch_rejected(self):
        patterns, _ = discover([("a", "x")] * 3, 2)
        _, invariants3 = discover([("a", "x", "y")] * 3, 3)
        with pytest.raises(ValidationError):
            PatternIndex.compile(patterns, invariants3)

    def test_pattern_of_is_rank_order(self):
        patterns, invariants = discover(
            [("a", "x")] * 3 + [(f"r{i}", "x") for i in range(3)], 2
        )
        index = PatternIndex.compile(patterns, invariants)
        for rank, pattern in enumerate(patterns.patterns):
            assert index.pattern_of(rank) == pattern


class TestClassify:
    def test_matches_linear_scan_on_paper_example(self):
        instances = [(f"u{i}", 2, 3) for i in range(4)] + [
            (f"w{i}", f"x{i}", 3) for i in range(4)
        ]
        patterns, invariants = discover(instances, 3)
        index = PatternIndex.compile(patterns, invariants)
        for probe in instances + [("u9", 2, 3), ("novel", "novel", 3)]:
            assert index.classify(probe) == patterns.scan_classify(probe)

    def test_most_specific_wins_over_shared_prefix(self):
        # (a, x) and (a, *) share the concrete 'a' edge; the trie must
        # come back with the deeper (more specific) leaf.
        instances = [("a", "x")] * 3 + [("a", f"r{i}") for i in range(3)]
        patterns, invariants = discover(instances, 2)
        index = PatternIndex.compile(patterns, invariants)
        assert ("a", "x") in patterns
        assert index.classify(("a", "x")) == ("a", "x")
        assert index.classify(("a", "zz")) == ("a", WILDCARD)

    def test_falls_back_to_root(self):
        patterns, invariants = discover([("a", "x")] * 5, 2)
        index = PatternIndex.compile(patterns, invariants)
        assert index.classify(("q1", "q2")) == (WILDCARD, WILDCARD)

    def test_all_wildcard_only_set(self):
        patterns, invariants = discover([("a", "x")] * 5, 2)
        root_only = PatternSet({(WILDCARD, WILDCARD): 5})
        index = PatternIndex.compile(root_only, invariants)
        assert index.classify(("anything", "at all")) == (WILDCARD, WILDCARD)

    def test_no_match_raises_without_root(self):
        _, invariants = discover([("a", "x")] * 5, 2)
        rootless = PatternSet({("a", "x"): 5})
        index = PatternIndex.compile(rootless, invariants)
        with pytest.raises(ValidationError):
            index.classify(("b", "y"))

    def test_arity_checked(self):
        patterns, invariants = discover([("a", "x")] * 3, 2)
        index = PatternIndex.compile(patterns, invariants)
        with pytest.raises(ValidationError):
            index.classify(("a", "x", "extra"))

    def test_equal_specificity_tie_breaks_like_scan(self):
        # (a, *) and (*, x) both match (a, x) at specificity 1; the
        # ranked order (support desc, then repr) decides, and the trie
        # must land on the same winner as the scan.
        _, invariants = discover([("a", "x")] * 5, 2)
        for supports in [(3, 2), (2, 3), (2, 2)]:
            tie = PatternSet(
                {
                    ("a", WILDCARD): supports[0],
                    (WILDCARD, "x"): supports[1],
                    (WILDCARD, WILDCARD): 1,
                }
            )
            index = PatternIndex.compile(tie, invariants)
            assert index.classify(("a", "x")) == tie.scan_classify(("a", "x"))


class TestBatchClassify:
    def test_matches_scalar_paths(self):
        instances = [("a", "x")] * 4 + [("b", "x")] * 3 + [(f"r{i}", "y") for i in range(4)]
        patterns, invariants = discover(instances, 2)
        index = PatternIndex.compile(patterns, invariants)
        workload = instances + [("novel", "x"), ("novel", "novel")]
        codes, vocabularies = intern_workload(workload, 2)
        ranks = index.batch_classify(codes, vocabularies)
        assert ranks.shape == (len(workload),)
        for values, rank in zip(workload, ranks.tolist()):
            assert index.pattern_of(rank) == patterns.scan_classify(values)

    def test_empty_batch(self):
        patterns, invariants = discover([("a", "x")] * 3, 2)
        index = PatternIndex.compile(patterns, invariants)
        codes, vocabularies = intern_workload([], 2)
        ranks = index.batch_classify(codes.reshape(0, 2), vocabularies)
        assert ranks.shape == (0,)

    def test_non_mask_consistent_set_uses_raw_rows(self):
        # The hand-built pattern pins a non-invariant value, so the
        # masked grouping cannot be trusted; the kernel must still
        # agree with the linear scan via its raw-row fallback.
        _, invariants = discover([("a", "x")] * 5, 2)
        hand = PatternSet(
            {("q", WILDCARD): 2, ("a", "x"): 3, (WILDCARD, WILDCARD): 1}
        )
        index = PatternIndex.compile(hand, invariants)
        assert not index.mask_consistent
        workload = [("q", "x"), ("a", "x"), ("zz", "zz"), ("q", "anything")]
        codes, vocabularies = intern_workload(workload, 2)
        ranks = index.batch_classify(codes, vocabularies)
        for values, rank in zip(workload, ranks.tolist()):
            assert index.pattern_of(rank) == hand.scan_classify(values)

    def test_wrong_column_count_rejected(self):
        patterns, invariants = discover([("a", "x")] * 3, 2)
        index = PatternIndex.compile(patterns, invariants)
        codes, vocabularies = intern_workload([("a", "x", "y")], 3)
        with pytest.raises(ValidationError):
            index.batch_classify(codes, vocabularies)
