"""Tests for clustering-result export."""

import json

import pytest

from repro.core.export import bclusters_to_dict, dimension_to_dict, epm_to_dict


@pytest.fixture(scope="module")
def exported(small_run):
    return epm_to_dict(small_run.epm)


class TestEpmExport:
    def test_json_serializable(self, exported):
        json.dumps(exported)

    def test_counts_match(self, small_run, exported):
        assert exported["counts"] == small_run.epm.counts()

    def test_policy_recorded(self, exported):
        assert exported["policy"] == {
            "min_instances": 10,
            "min_sources": 3,
            "min_sensors": 3,
        }

    def test_all_dimensions_present(self, exported):
        assert set(exported["dimensions"]) == {"epsilon", "pi", "mu"}

    def test_assignment_covers_instances(self, small_run, exported):
        mu = exported["dimensions"]["mu"]
        assert len(mu["assignment"]) == small_run.epm.mu.n_instances

    def test_wildcard_encoding(self, exported):
        mu = exported["dimensions"]["mu"]
        md5_index = mu["feature_names"].index("md5")
        wildcarded = [
            c for c in mu["clusters"] if c["pattern"][md5_index] == "*"
        ]
        assert wildcarded  # polymorphic clusters have md5='*'

    def test_tuple_values_become_lists(self, exported):
        mu = exported["dimensions"]["mu"]
        names_index = mu["feature_names"].index("section_names")
        concrete = [
            c["pattern"][names_index]
            for c in mu["clusters"]
            if c["pattern"][names_index] not in ("*", None)
        ]
        assert concrete
        assert all(isinstance(v, list) for v in concrete)

    def test_cluster_sizes_sum(self, small_run, exported):
        mu = exported["dimensions"]["mu"]
        assert sum(c["size"] for c in mu["clusters"]) == mu["n_instances"]


class TestDimensionExport:
    def test_invariant_counts_included(self, small_run):
        data = dimension_to_dict(small_run.epm.epsilon)
        assert set(data["invariant_counts"]) == {"fsm_path_id", "dst_port"}


class TestBclustersExport:
    def test_json_serializable(self, small_run):
        json.dumps(bclusters_to_dict(small_run.bclusters))

    def test_counts_match(self, small_run):
        data = bclusters_to_dict(small_run.bclusters)
        assert data["n_clusters"] == small_run.bclusters.n_clusters
        assert data["n_singletons"] == len(small_run.bclusters.singletons())

    def test_members_preserved(self, small_run):
        data = bclusters_to_dict(small_run.bclusters)
        total = sum(len(members) for members in data["clusters"].values())
        assert total == len(small_run.bclusters.assignment)
