"""Tests for pattern discovery and most-specific classification (phases 3-4)."""

import pytest

from repro.core.invariants import InvariantPolicy, discover_invariants
from repro.core.patterns import (
    WILDCARD,
    PatternSet,
    format_pattern,
    generalizes,
    mask_instance,
    pattern_matches,
    specificity,
)
from repro.util.validation import ValidationError

LOOSE = InvariantPolicy(min_instances=2, min_sources=1, min_sensors=1)


def build_invariants(instances, n_features, policy=LOOSE):
    observations = [(tuple(values), 0, 0) for values in instances]
    return discover_invariants(observations, [f"f{i}" for i in range(n_features)], policy)


class TestWildcard:
    def test_singleton(self):
        from repro.core.patterns import _Wildcard

        assert _Wildcard() is WILDCARD

    def test_repr(self):
        assert repr(WILDCARD) == "*"


class TestMasking:
    def test_invariants_kept_rest_wildcarded(self):
        instances = [("a", f"r{i}") for i in range(5)]
        invariants = build_invariants(instances, 2)
        assert mask_instance(("a", "r0"), invariants) == ("a", WILDCARD)

    def test_arity_checked(self):
        invariants = build_invariants([("a",)], 1)
        with pytest.raises(ValidationError):
            mask_instance(("a", "b"), invariants)


class TestPatternAlgebra:
    def test_matches_with_wildcards(self):
        assert pattern_matches((WILDCARD, 2, 3), (1, 2, 3))
        assert pattern_matches((WILDCARD, WILDCARD, 3), (1, 2, 3))
        assert not pattern_matches((WILDCARD, 9, 3), (1, 2, 3))

    def test_specificity(self):
        assert specificity((WILDCARD, WILDCARD)) == 0
        assert specificity(("a", WILDCARD)) == 1
        assert specificity(("a", "b")) == 2

    def test_generalizes(self):
        assert generalizes((WILDCARD, 2), (1, 2))
        assert generalizes((WILDCARD, WILDCARD), (1, 2))
        assert not generalizes((3, WILDCARD), (1, 2))
        assert not generalizes((1, 2), (WILDCARD, 2))

    def test_format(self):
        text = format_pattern(("a", WILDCARD), ["x", "y"])
        assert text == "{x='a', y=*}"


class TestDiscovery:
    def test_paper_example_multiple_matches(self):
        # The paper's example: instance (1, 2, 3) is matched by both
        # (*, 2, 3) and (*, *, 3); classification takes the most specific.
        instances = (
            [(f"u{i}", 2, 3) for i in range(4)]  # feature 0 random, 1+2 fixed
            + [(f"w{i}", f"x{i}", 3) for i in range(4)]  # only feature 2 fixed
        )
        invariants = build_invariants(instances, 3)
        patterns = PatternSet.discover(instances, invariants)
        assert (WILDCARD, 2, 3) in patterns
        assert (WILDCARD, WILDCARD, 3) in patterns
        matched = patterns.matching_patterns(("u9", 2, 3))
        assert matched[0] == (WILDCARD, 2, 3)
        assert (WILDCARD, WILDCARD, 3) in matched
        assert patterns.classify(("u9", 2, 3), invariants) == (WILDCARD, 2, 3)

    def test_distinct_masks_distinct_patterns(self):
        instances = [("a", "x")] * 3 + [("b", "x")] * 3
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants)
        assert ("a", "x") in patterns
        assert ("b", "x") in patterns

    def test_support_counted(self):
        instances = [("a", "x")] * 5 + [("b", "x")] * 2
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants)
        assert patterns.support_of(("a", "x")) == 5

    def test_min_support_prunes(self):
        instances = [("a", "x")] * 5 + [("b", "y")] * 2
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants, min_support=3)
        assert ("a", "x") in patterns
        assert ("b", "y") not in patterns

    def test_root_always_present(self):
        instances = [("a", "x")] * 5
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants, min_support=100)
        assert (WILDCARD, WILDCARD) in patterns

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            PatternSet({})


class TestClassification:
    def test_own_mask_is_most_specific(self):
        instances = [("a", "x"), ("a", "x"), ("a", "y"), ("a", "y"), ("a", "y")]
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants)
        assert patterns.classify(("a", "y"), invariants) == ("a", "y")

    def test_pruned_mask_falls_back_to_general(self):
        instances = [("a", "x")] * 6 + [("a", "zz")] * 2
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants, min_support=3)
        # ("a","zz") was pruned; ("a", *)? not discovered either (mask of
        # 'zz' instances is ("a", "zz") since "zz" is invariant at n=2...)
        result = patterns.classify(("a", "zz"), invariants)
        assert result in {("a", WILDCARD), (WILDCARD, WILDCARD)}

    def test_unseen_instance_classified(self):
        instances = [("a", "x")] * 5
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants)
        result = patterns.classify(("q", "q2"), invariants)
        assert result == (WILDCARD, WILDCARD)

    def test_classification_total_and_deterministic(self):
        instances = [(f"v{i % 3}", f"w{i % 2}") for i in range(30)]
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants)
        for instance in instances:
            a = patterns.classify(instance, invariants)
            b = patterns.classify(instance, invariants)
            assert a == b
            assert pattern_matches(a, instance)

    def test_patterns_ranked_most_specific_first(self):
        instances = [("a", "x")] * 3 + [(f"r{i}", "x") for i in range(3)]
        invariants = build_invariants(instances, 2)
        patterns = PatternSet.discover(instances, invariants)
        ranks = [specificity(p) for p in patterns.patterns]
        assert ranks == sorted(ranks, reverse=True)


class TestScanCache:
    """The bounded LRU memo over linear-scan results (serving hot path)."""

    def _novel_probe_set(self):
        # Invariants that keep every probe value, paired with a
        # hand-built set missing the probes' masks — so classify()
        # must scan (and may memoize) rather than take the own-mask
        # shortcut (a fully-novel probe would mask to the root, which
        # is always present).
        instances = [("a", "x")] * 4 + [
            ("a", value) for value in ("zz", "zz", "zz2", "zz2")
        ]
        invariants = build_invariants(instances, 2)
        patterns = PatternSet(
            {("a", "x"): 4, ("a", WILDCARD): 4, (WILDCARD, WILDCARD): 0}
        )
        return patterns, invariants

    def test_cached_result_bit_identical(self):
        patterns, invariants = self._novel_probe_set()
        probe = ("a", "zz")
        first = patterns.classify(probe, invariants)
        second = patterns.classify(probe, invariants)
        assert first == second == patterns.scan_classify(probe)

    def test_hit_and_miss_counters(self):
        from repro.obs import metrics as obs_metrics

        patterns, invariants = self._novel_probe_set()
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            patterns.classify(("a", "zz"), invariants)
            patterns.classify(("a", "zz"), invariants)
            patterns.classify(("a", "zz2"), invariants)
        snapshot = registry.snapshot().as_dict()
        assert snapshot["counters"]["classify.scan_cache_miss"] == 2
        assert snapshot["counters"]["classify.scan_cache_hit"] == 1

    def test_own_mask_fast_path_skips_cache(self):
        from repro.obs import metrics as obs_metrics

        patterns, invariants = self._novel_probe_set()
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            assert patterns.classify(("a", "x"), invariants) == ("a", "x")
        assert registry.snapshot().as_dict()["counters"] == {}

    def test_eviction_keeps_answers_correct(self):
        # Every zN value is invariant (seen twice) so each probe masks
        # to a distinct absent tuple and lands in the memo.
        instances = [("a", "x")] * 6 + [
            ("a", f"z{i}") for i in range(5) for _ in range(2)
        ]
        invariants = build_invariants(instances, 2)
        patterns = PatternSet(
            {("a", "x"): 6, ("a", WILDCARD): 3, (WILDCARD, WILDCARD): 0},
            scan_cache_size=2,
        )
        probes = [("a", f"z{i}") for i in range(5)]
        for _ in range(2):
            for probe in probes:
                assert patterns.classify(probe, invariants) == ("a", WILDCARD)
        assert len(patterns._scan_cache) == 2

    def test_zero_size_disables_memo(self):
        from repro.obs import metrics as obs_metrics

        patterns = PatternSet(
            {("a", WILDCARD): 3, (WILDCARD, WILDCARD): 0}, scan_cache_size=0
        )
        instances = [("a", "x")] * 6 + [("q", "q")] * 2
        invariants = build_invariants(instances, 2)
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            patterns.classify(("q", "q"), invariants)
            patterns.classify(("q", "q"), invariants)
        snapshot = registry.snapshot().as_dict()
        assert snapshot["counters"]["classify.scan_cache_miss"] == 2
        assert "classify.scan_cache_hit" not in snapshot["counters"]
        assert len(patterns._scan_cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            PatternSet({(WILDCARD,): 1}, scan_cache_size=-1)


class TestTieBreaking:
    def test_equal_specificity_support_wins(self):
        # (a, *) and (*, x) both match (a, x); higher support ranks first.
        instances = [("a", "x")] * 4
        invariants = build_invariants(instances, 2)
        tie = PatternSet(
            {("a", WILDCARD): 5, (WILDCARD, "x"): 2, (WILDCARD, WILDCARD): 0}
        )
        assert tie.scan_classify(("a", "x")) == ("a", WILDCARD)
        flipped = PatternSet(
            {("a", WILDCARD): 2, (WILDCARD, "x"): 5, (WILDCARD, WILDCARD): 0}
        )
        assert flipped.scan_classify(("a", "x")) == (WILDCARD, "x")
        assert tie.classify(("a", "x"), invariants) == ("a", WILDCARD)

    def test_equal_specificity_equal_support_repr_decides(self):
        instances = [("a", "x")] * 4
        invariants = build_invariants(instances, 2)
        tie = PatternSet(
            {("a", WILDCARD): 3, (WILDCARD, "x"): 3, (WILDCARD, WILDCARD): 0}
        )
        # Deterministic either way: repr ascending breaks the dead heat.
        expected = min(("a", WILDCARD), (WILDCARD, "x"), key=repr)
        assert tie.scan_classify(("a", "x")) == expected
        assert tie.classify(("a", "x"), invariants) == expected

    def test_all_wildcard_only_set_total(self):
        instances = [("a", "x")] * 4
        invariants = build_invariants(instances, 2)
        root_only = PatternSet({(WILDCARD, WILDCARD): 4})
        assert root_only.classify(("q1", "q2"), invariants) == (
            WILDCARD,
            WILDCARD,
        )

    def test_scan_arity_mismatch_never_matches(self):
        rootless = PatternSet({("a", "x"): 2})
        with pytest.raises(ValueError):
            rootless.scan_classify(("a", "x", "extra"))
