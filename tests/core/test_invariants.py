"""Tests for invariant discovery (EPM phase 2)."""

import pytest

from repro.core.invariants import InvariantPolicy, discover_invariants
from repro.util.validation import ValidationError


def obs(value, source, sensor):
    return ((value,), source, sensor)


def spread_observations(value, *, n=10, sources=3, sensors=3):
    """n observations of `value` spread over the given diversity."""
    return [
        obs(value, i % sources, 100 + (i % sensors)) for i in range(n)
    ]


class TestPolicy:
    def test_defaults_match_paper(self):
        policy = InvariantPolicy()
        assert (policy.min_instances, policy.min_sources, policy.min_sensors) == (
            10,
            3,
            3,
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            InvariantPolicy(min_instances=0)


class TestDiscovery:
    def test_qualifying_value_found(self):
        stats = discover_invariants(spread_observations("v"), ["f"])
        assert stats.is_invariant(0, "v")
        assert stats.count_per_feature() == {"f": 1}

    def test_below_instance_threshold(self):
        stats = discover_invariants(spread_observations("v", n=9), ["f"])
        assert not stats.is_invariant(0, "v")

    def test_below_source_diversity(self):
        # Frequent but single-attacker: the per-source-polymorphism trap.
        stats = discover_invariants(spread_observations("v", n=50, sources=1), ["f"])
        assert not stats.is_invariant(0, "v")

    def test_below_sensor_diversity(self):
        stats = discover_invariants(spread_observations("v", n=50, sensors=2), ["f"])
        assert not stats.is_invariant(0, "v")

    def test_exactly_at_thresholds(self):
        stats = discover_invariants(
            spread_observations("v", n=10, sources=3, sensors=3), ["f"]
        )
        assert stats.is_invariant(0, "v")

    def test_custom_policy(self):
        policy = InvariantPolicy(min_instances=3, min_sources=1, min_sensors=1)
        stats = discover_invariants(
            spread_observations("v", n=3, sources=1, sensors=1), ["f"], policy
        )
        assert stats.is_invariant(0, "v")

    def test_per_feature_independence(self):
        observations = [
            (("common", f"unique-{i}"), i % 5, 100 + (i % 5)) for i in range(20)
        ]
        stats = discover_invariants(observations, ["stable", "random"])
        assert stats.count_per_feature() == {"stable": 1, "random": 0}

    def test_multiple_invariants_per_feature(self):
        observations = spread_observations("a", n=15) + spread_observations("b", n=15)
        stats = discover_invariants(observations, ["f"])
        assert stats.invariants[0] == {"a", "b"}
        assert stats.total_invariants == 2

    def test_support_recorded(self):
        stats = discover_invariants(spread_observations("v", n=12), ["f"])
        assert stats.support[0]["v"] == 12

    def test_none_is_a_value(self):
        stats = discover_invariants(spread_observations(None), ["f"])
        assert stats.is_invariant(0, None)

    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            discover_invariants([(("a", "b"), 1, 2)], ["only-one"])

    def test_empty_observations(self):
        stats = discover_invariants([], ["f"])
        assert stats.count_per_feature() == {"f": 0}

    def test_monotone_in_thresholds(self):
        # Stricter policies can only shrink the invariant set.
        observations = (
            spread_observations("a", n=30, sources=5, sensors=5)
            + spread_observations("b", n=12, sources=3, sensors=3)
            + spread_observations("c", n=10, sources=2, sensors=5)
        )
        loose = discover_invariants(
            observations, ["f"], InvariantPolicy(min_instances=5, min_sources=2, min_sensors=2)
        )
        strict = discover_invariants(observations, ["f"], InvariantPolicy())
        assert strict.invariants[0] <= loose.invariants[0]
