"""Tests for the EPM clustering facade over realistic datasets."""

import pytest

from repro.core.epm import EPMClustering
from repro.core.features import Dimension
from repro.core.invariants import InvariantPolicy
from repro.core.patterns import WILDCARD
from repro.egpm.dataset import SGNetDataset
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def epm_result(small_run):
    return small_run.epm


class TestFacade:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValidationError):
            EPMClustering().fit(SGNetDataset())

    def test_all_dimensions_fit(self, epm_result):
        assert set(epm_result.dimensions) == set(Dimension)

    def test_counts_positive(self, epm_result):
        counts = epm_result.counts()
        assert counts["e_clusters"] > 1
        assert counts["p_clusters"] > 1
        assert counts["m_clusters"] > counts["e_clusters"]

    def test_table1_shape(self, epm_result):
        table = epm_result.table1()
        assert set(table[Dimension.EPSILON]) == {"fsm_path_id", "dst_port"}
        assert table[Dimension.MU]["machine_type"] >= 1


class TestAssignments:
    def test_every_event_has_epsilon_cluster(self, small_run, epm_result):
        for event in small_run.dataset:
            assert epm_result.epsilon.cluster_of(event.event_id) is not None

    def test_pi_only_for_events_with_payload(self, small_run, epm_result):
        for event in small_run.dataset:
            assigned = epm_result.pi.cluster_of(event.event_id) is not None
            assert assigned == (event.payload is not None)

    def test_mu_only_for_events_with_malware(self, small_run, epm_result):
        for event in small_run.dataset:
            assigned = epm_result.mu.cluster_of(event.event_id) is not None
            assert assigned == (event.malware is not None)

    def test_cluster_sizes_sum_to_instances(self, epm_result):
        for clustering in epm_result.dimensions.values():
            assert sum(clustering.sizes().values()) == clustering.n_instances

    def test_coordinates(self, small_run, epm_result):
        event = small_run.dataset.events[0]
        e, p, m = epm_result.coordinates(event.event_id)
        assert e is not None

    def test_cluster_ids_dense_and_size_ordered(self, epm_result):
        for clustering in epm_result.dimensions.values():
            sizes = [clustering.clusters[c].size for c in sorted(clustering.clusters)]
            assert sizes == sorted(sizes, reverse=True)
            assert sorted(clustering.clusters) == list(range(len(sizes)))


class TestSampleLevelConsistency:
    def test_m_cluster_of_samples_well_defined(self, small_run, epm_result):
        mapping = epm_result.m_cluster_of_samples(small_run.dataset)
        assert len(mapping) == small_run.dataset.n_samples

    def test_same_md5_same_m_cluster(self, small_run, epm_result):
        by_md5 = {}
        for event in small_run.dataset:
            if event.malware is None:
                continue
            cluster = epm_result.mu.cluster_of(event.event_id)
            previous = by_md5.setdefault(event.malware.md5, cluster)
            assert previous == cluster


class TestGroundTruthAgreement:
    def test_m_clusters_do_not_mix_pe_families(self, small_run, epm_result):
        """Events of one specific M-cluster should come from one variant.

        Checked on clusters whose pattern pins the file size: those are
        the variant-level clusters EPM is supposed to isolate.
        """
        names = epm_result.mu.feature_names
        size_index = names.index("size")
        checked = 0
        for info in epm_result.mu.clusters.values():
            if info.pattern[size_index] is WILDCARD or info.size < 10:
                continue
            variants = {
                small_run.dataset.events[i].ground_truth.variant
                for i in info.event_ids
            }
            families = {
                small_run.dataset.events[i].ground_truth.family
                for i in info.event_ids
            }
            checked += 1
            assert len(families) == 1
            assert len(variants) == 1
        assert checked > 5

    def test_e_clusters_do_not_mix_exploits(self, small_run, epm_result):
        # Specific clusters (non-wildcard patterns) never mix destination
        # ports; the all-wildcard fallback bin legitimately pools the
        # unlearned tail and is skipped.
        for info in epm_result.epsilon.clusters.values():
            if info.size < 10 or all(v is WILDCARD for v in info.pattern):
                continue
            port_values = {
                small_run.dataset.events[i].exploit.dst_port for i in info.event_ids
            }
            assert len(port_values) == 1


class TestPolicyKnobs:
    def test_strict_policy_fewer_specific_clusters(self, small_run):
        loose = small_run.epm
        strict = EPMClustering(
            policy=InvariantPolicy(min_instances=50, min_sources=10, min_sensors=10)
        ).fit(small_run.dataset)
        # Stricter invariants -> fewer invariant values -> fewer M-clusters.
        assert strict.mu.n_clusters < loose.mu.n_clusters

    def test_min_pattern_support_reduces_clusters(self, small_run):
        pruned = EPMClustering(min_pattern_support=30).fit(small_run.dataset)
        assert pruned.mu.n_clusters <= small_run.epm.mu.n_clusters
