"""Tests for dimension-level cluster bookkeeping."""

from repro.core.classifier import ClusterInfo, DimensionClustering
from repro.core.features import Dimension
from repro.core.invariants import InvariantPolicy, discover_invariants
from repro.core.patterns import WILDCARD, PatternSet

LOOSE = InvariantPolicy(min_instances=2, min_sources=1, min_sensors=1)


def build_clustering(instances):
    """instances: dict event_id -> tuple."""
    observations = [(v, 0, 0) for v in instances.values()]
    names = [f"f{i}" for i in range(len(next(iter(instances.values()))))]
    invariants = discover_invariants(observations, names, LOOSE)
    patterns = PatternSet.discover(instances.values(), invariants)
    return DimensionClustering(
        dimension=Dimension.MU,
        feature_names=names,
        invariants=invariants,
        pattern_set=patterns,
        instances=instances,
    )


class TestDimensionClustering:
    def test_groups_by_pattern(self):
        clustering = build_clustering(
            {0: ("a", "x"), 1: ("a", "x"), 2: ("b", "y"), 3: ("b", "y"), 4: ("b", "y")}
        )
        assert clustering.n_clusters == 2
        assert clustering.assignment[2] == clustering.assignment[3]
        assert clustering.assignment[0] != clustering.assignment[2]

    def test_id_zero_is_biggest(self):
        clustering = build_clustering(
            {0: ("a", "x"), 1: ("a", "x"), 2: ("b", "y"), 3: ("b", "y"), 4: ("b", "y")}
        )
        assert clustering.clusters[0].size == 3

    def test_event_ids_sorted(self):
        clustering = build_clustering({5: ("a", "x"), 2: ("a", "x"), 9: ("a", "x")})
        assert clustering.clusters[0].event_ids == [2, 5, 9]

    def test_cluster_of_unknown_event(self):
        clustering = build_clustering({0: ("a", "x"), 1: ("a", "x")})
        assert clustering.cluster_of(999) is None

    def test_cluster_of_pattern(self):
        clustering = build_clustering({0: ("a", "x"), 1: ("a", "x")})
        cid = clustering.cluster_of_pattern(("a", "x"))
        assert cid == 0
        assert clustering.cluster_of_pattern(("zz", "zz")) is None

    def test_instance_of(self):
        clustering = build_clustering({0: ("a", "x"), 1: ("a", "x")})
        assert clustering.instance_of(0) == ("a", "x")

    def test_describe_cluster(self):
        clustering = build_clustering({0: ("a", "x"), 1: ("a", "x")})
        assert clustering.describe_cluster(0) == "{f0='a', f1='x'}"

    def test_wildcard_in_description(self):
        clustering = build_clustering(
            {i: ("a", f"rnd{i}") for i in range(5)}
        )
        assert "f1=*" in clustering.describe_cluster(0)


class TestClusterInfo:
    def test_size(self):
        info = ClusterInfo(cluster_id=0, pattern=("a",), event_ids=[1, 2])
        assert info.size == 2

    def test_describe(self):
        info = ClusterInfo(cluster_id=0, pattern=(WILDCARD, 5), event_ids=[])
        assert info.describe(["x", "y"]) == "{x=*, y=5}"
