"""Tests for taxonomy-based attribute-oriented induction."""

import pytest

from repro.core.hierarchy import (
    ANY,
    AOIMiner,
    Concept,
    Taxonomy,
    band_taxonomy,
    flat_taxonomy,
    port_taxonomy,
)
from repro.util.validation import ValidationError


class TestTaxonomy:
    def test_flat_generalizes_to_any(self):
        taxonomy = flat_taxonomy()
        assert taxonomy.generalize("anything") is ANY
        assert taxonomy.generalize(ANY) is ANY

    def test_two_level(self):
        taxonomy = Taxonomy({445: Concept("netbios"), 139: Concept("netbios")})
        assert taxonomy.generalize(445) == Concept("netbios")
        assert taxonomy.generalize(Concept("netbios")) is ANY

    def test_level_of(self):
        taxonomy = Taxonomy({445: Concept("netbios")})
        assert taxonomy.level_of(ANY) == 0
        assert taxonomy.level_of(Concept("netbios")) == 1
        assert taxonomy.level_of(445) == 2

    def test_covers(self):
        taxonomy = Taxonomy({445: Concept("netbios"), 139: Concept("netbios")})
        assert taxonomy.covers(Concept("netbios"), 445)
        assert taxonomy.covers(ANY, 445)
        assert taxonomy.covers(445, 445)
        assert not taxonomy.covers(Concept("netbios"), 80)
        assert not taxonomy.covers(445, 139)

    def test_cycle_rejected(self):
        with pytest.raises(ValidationError, match="cycle"):
            Taxonomy({"a": "b", "b": "a"})

    def test_band_taxonomy(self):
        taxonomy = band_taxonomy([5, 17, 25], width=10, label="size")
        assert taxonomy.generalize(5) == Concept("size:0-9")
        assert taxonomy.generalize(17) == Concept("size:10-19")
        assert taxonomy.generalize(Concept("size:0-9")) is ANY

    def test_band_width_validated(self):
        with pytest.raises(ValidationError):
            band_taxonomy([1], width=0, label="x")

    def test_port_taxonomy_groups_netbios(self):
        taxonomy = port_taxonomy()
        assert taxonomy.generalize(445) == taxonomy.generalize(139)
        assert taxonomy.generalize(445) != taxonomy.generalize(80)


class TestAOIMiner:
    def test_strong_patterns_survive_verbatim(self):
        instances = [("a", 445)] * 10 + [("b", 139)] * 10
        result = AOIMiner(["user", "port"], min_size=5).fit(instances)
        assert ("a", 445) in result.patterns
        assert ("b", 139) in result.patterns

    def test_weak_patterns_generalized(self):
        instances = [("a", 445)] * 10 + [("z", 139)] * 2
        result = AOIMiner(["user", "port"], min_size=5).fit(instances)
        # The weak pattern generalizes away from ('z', 139).
        assert ("z", 139) not in result.patterns

    def test_taxonomy_merges_weak_siblings(self):
        # Two weak patterns on netbios ports merge at the service-class
        # level instead of collapsing to ANY.
        instances = [("scan", 445)] * 4 + [("scan", 139)] * 4 + [("web", 80)] * 12
        result = AOIMiner(
            ["tool", "port"],
            {"port": port_taxonomy()},
            min_size=6,
        ).fit(instances)
        from repro.core.hierarchy import Concept

        assert ("scan", Concept("netbios-class")) in result.patterns
        assert ("web", 80) in result.patterns

    def test_flat_taxonomy_reduces_to_epm_style(self):
        instances = [("a", 1), ("a", 2), ("a", 3), ("a", 4), ("a", 5)]
        result = AOIMiner(["k", "v"], min_size=3).fit(instances)
        assert result.patterns == [("a", ANY)]

    def test_every_instance_assigned(self):
        instances = [("a", i % 3) for i in range(20)]
        result = AOIMiner(["k", "v"], min_size=4).fit(instances)
        assert len(result.assignment) == 20
        assert sum(result.support.values()) == 20

    def test_support_floor_met_or_root(self):
        instances = [(f"u{i}", i) for i in range(7)]  # all unique
        result = AOIMiner(["k", "v"], min_size=5).fit(instances)
        for pattern, support in result.support.items():
            assert support >= 5 or pattern == (ANY, ANY)

    def test_root_pattern_when_nothing_repeats(self):
        instances = [(f"u{i}", i) for i in range(4)]
        result = AOIMiner(["k", "v"], min_size=10).fit(instances)
        assert result.patterns == [(ANY, ANY)]

    def test_describe(self):
        instances = [("a", 1)] * 5
        result = AOIMiner(["k", "v"], min_size=3).fit(instances)
        assert result.describe(("a", ANY)) == "{k='a', v=ANY}"

    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            AOIMiner(["k"], min_size=1).fit([("a", "b")])

    def test_min_size_one_keeps_everything(self):
        instances = [("a", 1), ("b", 2)]
        result = AOIMiner(["k", "v"], min_size=1).fit(instances)
        assert set(result.patterns) == {("a", 1), ("b", 2)}


class TestAOIOnDataset:
    def test_size_banding_on_mu(self, small_run):
        """AOI with a size-band taxonomy groups truncated junk by band."""
        from repro.core.features import mu_features

        feature_set = mu_features()
        names = feature_set.names
        instances = [
            feature_set.extract(e)
            for e in small_run.dataset
            if feature_set.applies_to(e)
        ]
        sizes = [values[names.index("size")] for values in instances]
        miner = AOIMiner(
            names,
            {"size": band_taxonomy(sizes, width=8192, label="size")},
            min_size=10,
        )
        result = miner.fit(instances)
        assert result.n_patterns > 10
        banded = [
            p
            for p in result.patterns
            if isinstance(p[names.index("size")], Concept)
        ]
        assert banded, "some weak patterns should stop at the band level"
