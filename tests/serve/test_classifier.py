"""Tests for the serving classifier (single, batch, instrumentation)."""

import pytest

from repro.core.features import Dimension, default_feature_sets
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import EventBus
from repro.serve.classifier import ServingClassifier
from repro.serve.model import ModelArtifact


@pytest.fixture(scope="module")
def artifact(small_run):
    return ModelArtifact.from_run(small_run)


@pytest.fixture(scope="module")
def classifier(artifact):
    return ServingClassifier(artifact)


@pytest.fixture(scope="module")
def sample_events(small_run):
    return small_run.dataset.events[:120]


class TestSingle:
    def test_matches_training_assignment(self, classifier, small_run):
        # Serving an event the model trained on must land it in the
        # exact cluster training assigned.
        feature_sets = default_feature_sets()
        for event in small_run.dataset.events[:80]:
            results = classifier.classify_event(event)
            for dimension in Dimension:
                if not feature_sets[dimension].applies_to(event):
                    assert dimension.value not in results
                    continue
                clustering = small_run.epm.dimensions[dimension]
                classification = results[dimension.value]
                assert classification.cluster == clustering.cluster_of(
                    event.event_id
                )

    def test_matches_linear_scan_on_novel_values(self, classifier, artifact):
        dimension = Dimension.EPSILON
        names = artifact.feature_names(dimension)
        probe = tuple(f"__unseen_{name}__" for name in names)
        classification = classifier.classify_values(dimension, probe)
        assert classification.pattern == artifact.pattern_set(
            dimension
        ).scan_classify(probe)

    def test_rendered_uses_feature_names(self, classifier, artifact, small_run):
        event = small_run.dataset.events[0]
        results = classifier.classify_event(event)
        for dimension in Dimension:
            if dimension.value not in results:
                continue
            rendered = results[dimension.value].rendered
            assert rendered.startswith("{") and rendered.endswith("}")
            assert artifact.feature_names(dimension)[0] in rendered

    def test_as_dict_shape(self, classifier, small_run):
        results = classifier.classify_event(small_run.dataset.events[0])
        for classification in results.values():
            payload = classification.as_dict()
            assert set(payload) == {"dimension", "pattern", "cluster", "rendered"}


class TestBatch:
    def test_batch_equals_single(self, classifier, sample_events):
        batch = classifier.classify_events(sample_events)
        assert len(batch) == len(sample_events)
        for event, result in zip(sample_events, batch):
            single = classifier.classify_event(event)
            assert set(result) == set(single)
            for key in result:
                assert result[key] == single[key]

    def test_empty_batch(self, classifier):
        assert classifier.classify_events([]) == []

    def test_metrics_emitted(self, classifier, sample_events):
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            classifier.classify_events(sample_events)
        snapshot = registry.snapshot().as_dict()
        requests = {
            key: value
            for key, value in snapshot["counters"].items()
            if key.startswith("classify.requests")
        }
        assert sum(requests.values()) > 0
        assert any(
            key.startswith("classify.batch_rows") for key in snapshot["counters"]
        )
        assert snapshot["sketches"]["classify.latency"]["count"] == 1

    def test_events_emitted(self, classifier, sample_events, tmp_path):
        from repro.obs.events import FileTransport

        stream = tmp_path / "events.jsonl"
        bus = EventBus([FileTransport(stream)])
        with obs_events.use_bus(bus):
            classifier.classify_events(sample_events[:10])
        bus.close()
        lines = stream.read_text(encoding="utf-8").splitlines()
        kinds = [__import__("json").loads(line)["kind"] for line in lines]
        assert kinds[0] == "classify.start"
        assert kinds[-1] == "classify.finish"
