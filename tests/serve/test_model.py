"""Tests for the persisted model artifact (schema, digest, round trip)."""

import json

import pytest

from repro.core.features import Dimension
from repro.core.patterns import WILDCARD
from repro.serve.model import (
    MODEL_ID_LENGTH,
    MODEL_KIND,
    MODEL_SCHEMA,
    ModelArtifact,
    build_model_payload,
    decode_pattern,
    decode_value,
    encode_pattern,
    encode_value,
    model_content_id,
    validate_model,
)
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def payload(small_run):
    return build_model_payload(small_run)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [None, "a", 0, 1.5, True, WILDCARD, ("x", "y"), (WILDCARD,), ()],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_wildcard_identity_preserved(self):
        assert decode_value(encode_value(WILDCARD)) is WILDCARD

    def test_pattern_round_trip(self):
        pattern = ("tcp", WILDCARD, 445, ("a", "b"))
        assert decode_pattern(encode_pattern(pattern)) == pattern

    def test_unencodable_rejected(self):
        with pytest.raises(ValidationError):
            encode_value({"not": "hashable-scalar"})

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_value({"weird": 1})


class TestPayload:
    def test_markers_and_id_shape(self, payload):
        assert payload["schema"] == MODEL_SCHEMA
        assert payload["kind"] == MODEL_KIND
        assert len(payload["model_id"]) == MODEL_ID_LENGTH
        assert payload["model_id"] == model_content_id(payload)

    def test_one_section_per_dimension(self, payload):
        assert set(payload["dimensions"]) == {d.value for d in Dimension}

    def test_validates_clean(self, payload):
        assert validate_model(payload) == []

    def test_model_id_independent_of_run_id(self, small_run):
        direct = build_model_payload(small_run)
        stored = build_model_payload(small_run, run_id="feedfacefeedface")
        assert direct["model_id"] == stored["model_id"]
        assert stored["provenance"]["run_id"] == "feedfacefeedface"

    def test_model_id_independent_of_created_at(self, payload):
        tweaked = dict(payload, created_at="1999-01-01T00:00:00Z")
        assert model_content_id(tweaked) == payload["model_id"]

    def test_content_tampering_changes_id(self, payload):
        tweaked = json.loads(json.dumps(payload))
        tweaked["clustering"]["threshold"] += 0.01
        assert model_content_id(tweaked) != payload["model_id"]


class TestValidateModel:
    def _tweaked(self, payload, mutate):
        copy = json.loads(json.dumps(payload))
        mutate(copy)
        # Re-address so only the injected defect (not the digest) trips.
        copy["model_id"] = model_content_id(copy)
        return copy

    def test_stale_model_id_detected(self, payload):
        copy = json.loads(json.dumps(payload))
        copy["clustering"]["threshold"] += 0.01
        errors = validate_model(copy)
        assert any("model_id" in e for e in errors)

    def test_wrong_schema(self, payload):
        errors = validate_model(self._tweaked(payload, lambda p: p.update(schema=99)))
        assert any("schema" in e for e in errors)

    def test_missing_dimension(self, payload):
        errors = validate_model(
            self._tweaked(payload, lambda p: p["dimensions"].pop("mu"))
        )
        assert any("'mu' missing" in e for e in errors)

    def test_arity_mismatch(self, payload):
        def mutate(p):
            p["dimensions"]["pi"]["patterns"][0]["pattern"].append("extra")

        errors = validate_model(self._tweaked(payload, mutate))
        assert any("arity" in e for e in errors)

    def test_missing_root_pattern(self, payload):
        def mutate(p):
            section = p["dimensions"]["pi"]
            section["patterns"] = [
                entry
                for entry in section["patterns"]
                if any(
                    not (isinstance(v, dict) and v.get("*"))
                    for v in entry["pattern"]
                )
            ]

        errors = validate_model(self._tweaked(payload, mutate))
        assert any("root pattern" in e for e in errors)

    def test_mask_consistency_violation(self, payload):
        def mutate(p):
            section = p["dimensions"]["pi"]
            entry = next(
                e
                for e in section["patterns"]
                if any(
                    not (isinstance(v, dict) and v.get("*"))
                    for v in e["pattern"]
                )
            )
            for i, value in enumerate(entry["pattern"]):
                if not (isinstance(value, dict) and value.get("*")):
                    entry["pattern"][i] = "__never_seen__"
                    break

        errors = validate_model(self._tweaked(payload, mutate))
        assert any("mask-consistency" in e for e in errors)

    def test_non_integer_support(self, payload):
        def mutate(p):
            p["dimensions"]["mu"]["patterns"][0]["support"] = "lots"

        errors = validate_model(self._tweaked(payload, mutate))
        assert any("support" in e for e in errors)


class TestArtifact:
    def test_save_load_round_trip(self, small_run, tmp_path):
        artifact = ModelArtifact.from_run(small_run)
        path = artifact.save(tmp_path / "model.json")
        loaded = ModelArtifact.load(path)
        assert loaded.model_id == artifact.model_id
        assert loaded.fingerprint == small_run.manifest.fingerprint
        for dimension in Dimension:
            assert (
                loaded.pattern_set(dimension).patterns
                == artifact.pattern_set(dimension).patterns
            )
            assert loaded.feature_names(dimension) == artifact.feature_names(
                dimension
            )

    def test_save_is_deterministic(self, small_run, tmp_path):
        artifact = ModelArtifact.from_run(small_run)
        a = artifact.save(tmp_path / "a.json").read_text(encoding="utf-8")
        b = artifact.save(tmp_path / "b.json").read_text(encoding="utf-8")
        assert a == b

    def test_invalid_payload_refused(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["dimensions"].pop("epsilon")
        broken["model_id"] = model_content_id(broken)
        with pytest.raises(ValidationError):
            ModelArtifact(broken)

    def test_training_clusters_exposed(self, small_run):
        artifact = ModelArtifact.from_run(small_run)
        for dimension in Dimension:
            clustering = small_run.epm.dimensions[dimension]
            for pattern in clustering.pattern_set.patterns:
                assert artifact.cluster_of_pattern(
                    dimension, pattern
                ) == clustering.cluster_of_pattern(pattern)
