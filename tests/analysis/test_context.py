"""Tests for propagation-context analysis (Figure 5)."""

import pytest

from repro.analysis.context import PropagationContext
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def context(small_run):
    return PropagationContext(small_run.dataset, small_run.grid)


def _family_m_clusters(small_run, family):
    """M-clusters dominated (>=90% of events) by one ground-truth family.

    Excludes the generic junk clusters (corrupted downloads of many
    families share wildcard-heavy patterns and pool together).
    """
    result = set()
    for cid, info in small_run.epm.mu.clusters.items():
        families = [
            small_run.dataset.events[i].ground_truth.family for i in info.event_ids
        ]
        if families.count(family) / len(families) >= 0.9:
            result.add(cid)
    return result


class TestSummaries:
    def test_empty_cluster_rejected(self, context):
        with pytest.raises(ValidationError):
            context.summarize_events([], label="X")

    def test_m_cluster_summary_fields(self, small_run, context):
        ctx = context.summarize_m_cluster(small_run.epm, 0)
        assert ctx.n_events == small_run.epm.mu.clusters[0].size
        assert ctx.n_sources > 0
        assert ctx.weeks_active >= 1
        assert ctx.first_week <= ctx.last_week
        assert sum(ctx.timeline.values()) == ctx.n_events

    def test_b_cluster_summary_counts_sample_events(self, small_run, context):
        ctx = context.summarize_b_cluster(small_run.bclusters, 0)
        expected = sum(
            len(small_run.dataset.events_for_sample(md5))
            for md5 in small_run.bclusters.clusters[0]
        )
        assert ctx.n_events == expected

    def test_duty_cycle_bounds(self, small_run, context):
        ctx = context.summarize_m_cluster(small_run.epm, 0)
        assert 0 < ctx.duty_cycle <= 1.0

    def test_top_networks_limited(self, small_run, context):
        ctx = context.summarize_m_cluster(small_run.epm, 0)
        assert len(ctx.top_networks) <= 5


class TestSignatures:
    def test_worm_cluster_signature(self, small_run, context):
        # The largest allaple M-cluster must look worm-like: spread wide,
        # active for many weeks, non-bursty.
        allaple_ms = _family_m_clusters(small_run, "allaple")
        biggest = min(allaple_ms)  # smallest id = biggest cluster
        ctx = context.summarize_m_cluster(small_run.epm, biggest)
        assert ctx.signature() == "worm-like"
        assert len(ctx.slash8_histogram) >= 8

    def test_bot_cluster_signature(self, small_run, context):
        bot_ms = set()
        for i in range(10):
            bot_ms |= _family_m_clusters(small_run, f"ircbot{i:02d}")
        signatures = []
        for m in sorted(bot_ms):
            ctx = context.summarize_m_cluster(small_run.epm, m)
            if ctx.n_events >= 15:
                signatures.append(ctx.signature())
        assert signatures
        bot_like = signatures.count("bot-like")
        assert bot_like / len(signatures) > 0.6

    def test_bot_concentration(self, small_run, context):
        # Bot populations live in at most two home /16s plus a small leak.
        bot_ms = sorted(_family_m_clusters(small_run, "ircbot00"))
        if not bot_ms:
            pytest.skip("no ircbot00 M-clusters in the reduced run")
        ctx = context.summarize_m_cluster(small_run.epm, bot_ms[0])
        assert len(ctx.slash8_histogram) <= 6


class TestFigure5:
    def test_figure5_splits_by_m(self, small_run, context):
        contexts = context.figure5(small_run.epm, small_run.bclusters, 0)
        assert len(contexts) > 1
        assert all(ctx.cluster_label.startswith("B0/M") for ctx in contexts)

    def test_figure5_ordered_by_events(self, small_run, context):
        contexts = context.figure5(small_run.epm, small_run.bclusters, 0)
        events = [c.n_events for c in contexts]
        assert events == sorted(events, reverse=True)

    def test_figure5_min_events_filter(self, small_run, context):
        all_slices = context.figure5(small_run.epm, small_run.bclusters, 0)
        filtered = context.figure5(
            small_run.epm, small_run.bclusters, 0, min_events=30
        )
        assert len(filtered) <= len(all_slices)
        assert all(c.n_events >= 30 for c in filtered)

    def test_worm_b_cluster_slices_all_widespread(self, small_run, context):
        contexts = context.figure5(
            small_run.epm, small_run.bclusters, 0, min_events=30
        )
        for ctx in contexts:
            assert ctx.source_spread > 0.8
