"""Tests for the pattern-drift analysis."""

import pytest

from repro.analysis.stability import drift_analysis, render_drift
from repro.core.features import Dimension
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def reports(small_run):
    return drift_analysis(small_run.dataset, small_run.grid)


class TestDriftAnalysis:
    def test_all_dimensions_reported(self, reports):
        assert set(reports) == set(Dimension)

    def test_counts_consistent(self, reports):
        for report in reports.values():
            assert report.explained + report.novel == report.n_eval
            assert 0.0 <= report.novelty_rate <= 1.0
            assert report.explained_rate + report.novelty_rate == pytest.approx(1.0)

    def test_epsilon_mostly_stable(self, reports):
        # Exploit vocabularies changed slowly; most future exploit
        # traffic matches known paths.
        assert reports[Dimension.EPSILON].explained_rate > 0.6

    def test_mu_has_novelty(self, reports):
        # New variants keep appearing: the future mints patterns the
        # past never saw.
        assert reports[Dimension.MU].eval_only_patterns > 0

    def test_bad_split_rejected(self, small_run):
        with pytest.raises(ValidationError):
            drift_analysis(small_run.dataset, small_run.grid, split_week=0)

    def test_split_position_changes_result(self, small_run):
        early = drift_analysis(small_run.dataset, small_run.grid, split_week=10)
        late = drift_analysis(
            small_run.dataset, small_run.grid,
            split_week=small_run.grid.n_weeks - 10,
        )
        # A model trained on more history explains at least roughly as
        # much of the (smaller) future.
        assert (
            late[Dimension.MU].explained_rate
            >= early[Dimension.MU].explained_rate - 0.05
        )

    def test_render(self, reports):
        text = render_drift(reports)
        assert "drift" in text.lower()
        assert "epsilon" in text
