"""Tests for code-sharing and patch-lineage analysis."""

import pytest

from repro.analysis.codeshare import CodeSharingAnalysis
from repro.analysis.crossview import CrossView


@pytest.fixture(scope="module")
def analysis(small_run):
    crossview = CrossView(small_run.dataset, small_run.epm, small_run.bclusters)
    return CodeSharingAnalysis(
        small_run.dataset, small_run.epm, crossview, small_run.grid
    )


class TestSharedPropagation:
    def test_shared_payload_found(self, analysis):
        # The allaple worm and the iliketay family share the TCP/9988
        # PUSH payload by construction — the analysis must see it.
        shared = analysis.shared_propagation()
        assert shared
        p_clusters = {p for p, _bs in shared}
        assert 0 in p_clusters  # P0 is the push-9988 pattern

    def test_shared_exploits_found(self, analysis):
        shared = analysis.shared_exploits()
        assert shared
        for _e, behaviours in shared:
            assert len(behaviours) > 1

    def test_sorted_by_breadth(self, analysis):
        shared = analysis.shared_propagation()
        breadths = [len(bs) for _p, bs in shared]
        assert breadths == sorted(breadths, reverse=True)

    def test_min_events_filters(self, analysis):
        loose = analysis.shared_propagation(min_events=1)
        tight = analysis.shared_propagation(min_events=500)
        assert len(tight) <= len(loose)


class TestPatchLineages:
    def test_worm_lineage_found(self, analysis, small_run):
        lineages = analysis.patch_lineages()
        assert lineages
        # The biggest lineage is an allaple generation with many patches.
        top = lineages[0]
        assert top.n_patches > 5
        families = set()
        for m in top.m_clusters:
            info = small_run.epm.mu.clusters[m]
            families |= {
                small_run.dataset.events[i].ground_truth.family
                for i in info.event_ids
            }
        assert families == {"allaple"}

    def test_steps_ordered_by_week(self, analysis):
        for lineage in analysis.patch_lineages()[:5]:
            assert list(lineage.first_weeks) == sorted(lineage.first_weeks)
            assert len(lineage.steps) == lineage.n_patches - 1

    def test_size_changes_dominate_worm_patches(self, analysis):
        # Allaple patches differ mainly by file size (the paper's
        # observation); linker changes mark the occasional recompile.
        top = analysis.patch_lineages()[0]
        size_changes = sum(
            1 for step in top.steps if "size" in step.changed_features
        )
        assert size_changes >= len(top.steps) * 0.8
        assert len(top.recompilations()) < len(top.steps)

    def test_render_lineage(self, analysis):
        lineage = analysis.patch_lineages()[0]
        text = analysis.render_lineage(lineage, max_steps=3)
        assert "code versions" in text
        assert "week" in text

    def test_min_m_clusters_validated(self, analysis):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            analysis.patch_lineages(min_m_clusters=1)
