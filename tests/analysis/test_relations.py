"""Tests for the Figure 3 relation graph."""

import pytest

from repro.analysis.relations import RelationGraph


@pytest.fixture(scope="module")
def graph(small_run):
    return RelationGraph(
        small_run.dataset, small_run.epm, small_run.bclusters, min_events=30
    )


class TestStructure:
    def test_four_layers_present(self, graph):
        stats = graph.stats()
        assert stats.e_nodes > 0
        assert stats.p_nodes > 0
        assert stats.m_nodes > 0
        assert stats.b_nodes > 0

    def test_paper_shape_few_ep_many_m(self, graph):
        stats = graph.stats()
        assert stats.m_nodes > stats.e_nodes * 2
        assert stats.m_nodes > stats.p_nodes * 2

    def test_edges_respect_layering(self, graph):
        allowed = {("E", "P"), ("P", "M"), ("M", "B")}
        for u, v in graph.graph.edges:
            assert (u[0], v[0]) in allowed

    def test_min_events_filter(self, small_run):
        tight = RelationGraph(
            small_run.dataset, small_run.epm, small_run.bclusters, min_events=200
        )
        loose = RelationGraph(
            small_run.dataset, small_run.epm, small_run.bclusters, min_events=5
        )
        assert tight.graph.number_of_nodes() < loose.graph.number_of_nodes()

    def test_node_event_counts_above_threshold(self, graph):
        for _node, data in graph.graph.nodes(data=True):
            assert data["events"] >= 30

    def test_edge_weights_positive(self, graph):
        assert all(d["weight"] > 0 for _u, _v, d in graph.graph.edges(data=True))


class TestPaperReadings:
    def test_shared_payloads_exist(self, graph):
        # "The same payload can be associated with multiple exploits."
        shared = graph.shared_payloads()
        assert shared
        for p_cluster, exploits in shared:
            assert len(exploits) > 1

    def test_b_cluster_splits_exist(self, graph):
        # "The number of B-clusters is lower than the number of M-clusters."
        splits = graph.b_cluster_splits()
        assert splits
        biggest = max(len(ms) for _b, ms in splits)
        assert biggest >= 5  # the worm B-cluster spans many patches

    def test_layer_nodes_sorted_by_events(self, graph):
        nodes = graph.layer_nodes("M")
        events = [graph.graph.nodes[n]["events"] for n in nodes]
        assert events == sorted(events, reverse=True)

    def test_render_text(self, graph):
        text = graph.render_text()
        assert "E-layer" in text
        assert "->" in text
