"""Tests for the threat-evolution analysis."""

import pytest

from repro.analysis.evolution import EvolutionAnalysis, dataset_between
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def evolution(small_run):
    return EvolutionAnalysis(small_run.dataset, small_run.epm, small_run.grid)


class TestWeeklyActivity:
    def test_covers_whole_window(self, small_run, evolution):
        weekly = evolution.weekly_activity()
        assert len(weekly) == small_run.grid.n_weeks
        assert [w.week for w in weekly] == list(range(small_run.grid.n_weeks))

    def test_event_counts_sum(self, small_run, evolution):
        weekly = evolution.weekly_activity()
        assert sum(w.n_events for w in weekly) == len(small_run.dataset)

    def test_new_samples_sum_to_collection(self, small_run, evolution):
        weekly = evolution.weekly_activity()
        assert sum(w.new_samples for w in weekly) == small_run.dataset.n_samples

    def test_new_clusters_sum(self, small_run, evolution):
        weekly = evolution.weekly_activity()
        assert sum(w.new_m_clusters for w in weekly) == small_run.epm.mu.n_clusters

    def test_continuous_discovery(self, evolution):
        # New code keeps appearing throughout the window — the paper's
        # argument for continuous collection.
        weekly = evolution.weekly_activity()
        second_half = weekly[len(weekly) // 2 :]
        assert sum(w.new_samples for w in second_half) > 0


class TestLifecycles:
    def test_fields_consistent(self, evolution):
        for lc in evolution.m_cluster_lifecycles():
            assert lc.birth_week <= lc.death_week
            assert 1 <= lc.active_weeks <= lc.life_span
            assert 0.0 <= lc.dormancy < 1.0

    def test_sorted_by_birth(self, evolution):
        births = [lc.birth_week for lc in evolution.m_cluster_lifecycles()]
        assert births == sorted(births)

    def test_bot_clusters_more_dormant_than_worms(self, small_run, evolution):
        dormancies = {}
        for lc in evolution.m_cluster_lifecycles(min_events=20):
            info = small_run.epm.mu.clusters[lc.m_cluster]
            families = {
                small_run.dataset.events[i].ground_truth.family
                for i in info.event_ids
            }
            if len(families) != 1:
                continue
            family = families.pop()
            kind = (
                "worm"
                if family == "allaple"
                else "bot" if family.startswith("ircbot") else None
            )
            if kind and lc.life_span > 4:
                dormancies.setdefault(kind, []).append(lc.dormancy)
        assert dormancies.get("worm") and dormancies.get("bot")
        worm_avg = sum(dormancies["worm"]) / len(dormancies["worm"])
        bot_avg = sum(dormancies["bot"]) / len(dormancies["bot"])
        assert bot_avg > worm_avg


class TestDiscoveryCurve:
    def test_monotone(self, evolution):
        curve = evolution.sample_discovery_curve()
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_ends_at_collection_size(self, small_run, evolution):
        assert evolution.sample_discovery_curve()[-1] == small_run.dataset.n_samples


class TestDatasetBetween:
    def test_window_filtering(self, small_run):
        subset = dataset_between(small_run.dataset, small_run.grid, 0, 10)
        window = small_run.grid.subwindow(0, 10)
        assert len(subset) > 0
        assert all(window.contains(e.timestamp) for e in subset)

    def test_event_ids_renumbered(self, small_run):
        subset = dataset_between(small_run.dataset, small_run.grid, 5, 15)
        assert [e.event_id for e in subset] == list(range(len(subset)))

    def test_partition_covers_everything(self, small_run):
        half = small_run.grid.n_weeks // 2
        first = dataset_between(small_run.dataset, small_run.grid, 0, half)
        second = dataset_between(
            small_run.dataset, small_run.grid, half, small_run.grid.n_weeks
        )
        assert len(first) + len(second) == len(small_run.dataset)

    def test_behavior_handles_preserved(self, small_run):
        subset = dataset_between(small_run.dataset, small_run.grid, 0, 20)
        with_handles = [
            r for r in subset.samples.values() if r.behavior_handle is not None
        ]
        assert with_handles

    def test_empty_window_rejected(self, small_run):
        with pytest.raises(ValidationError):
            dataset_between(small_run.dataset, small_run.grid, 5, 5)

    def test_subwindow_reclusterable(self, small_run):
        from repro.core.epm import EPMClustering

        subset = dataset_between(small_run.dataset, small_run.grid, 0, 30)
        epm = EPMClustering().fit(subset)
        assert epm.counts()["m_clusters"] > 0
