"""Tests for observation-diversity analysis."""

import pytest

from repro.analysis.coverage import (
    SensorCoverage,
    deployment_size_ablation,
    restrict_to_networks,
)
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def coverage(small_run):
    return SensorCoverage(small_run.dataset, small_run.epm)


class TestSensorCoverage:
    def test_every_monitored_hit_network_reported(self, small_run, coverage):
        hit = {e.sensor.slash24 for e in small_run.dataset}
        assert set(coverage.networks) == hit

    def test_views_ordered_by_events(self, coverage):
        counts = [v.n_events for v in coverage.views()]
        assert counts == sorted(counts, reverse=True)

    def test_view_fields_consistent(self, small_run, coverage):
        view = coverage.views()[0]
        assert view.n_sources <= view.n_events
        assert view.n_samples <= view.n_events
        assert view.network_cidr.endswith("/24")
        assert len(view.m_clusters) <= small_run.epm.mu.n_clusters

    def test_accumulation_curve_monotone(self, coverage):
        curve = coverage.accumulation_curve()
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_accumulation_reaches_total(self, small_run, coverage):
        curve = coverage.accumulation_curve()
        total_observed = len(
            set().union(*(v.m_clusters for v in coverage.views()))
        )
        assert curve[-1] == total_observed

    def test_single_location_sees_a_fraction(self, coverage):
        # No single location sees the whole landscape — the argument for
        # a distributed deployment.
        share = coverage.median_single_location_coverage()
        assert 0.0 < share < 0.9

    def test_exclusive_clusters_exist(self, coverage):
        # Location-targeted bot bursts produce clusters only one
        # network location ever witnesses.
        exclusive = coverage.exclusive_clusters()
        assert sum(len(cs) for cs in exclusive.values()) > 0

    def test_custom_order_curve(self, coverage):
        reversed_order = list(reversed(coverage.networks))
        curve = coverage.accumulation_curve(order=reversed_order)
        assert curve[-1] == coverage.accumulation_curve()[-1]


class TestRestrictToNetworks:
    def test_filtering(self, small_run):
        network = small_run.dataset.events[0].sensor.slash24
        subset = restrict_to_networks(small_run.dataset, [network])
        assert len(subset) > 0
        assert all(e.sensor.slash24 == network for e in subset)

    def test_union_of_all_is_everything(self, small_run):
        networks = {e.sensor.slash24 for e in small_run.dataset}
        subset = restrict_to_networks(small_run.dataset, sorted(networks))
        assert len(subset) == len(small_run.dataset)

    def test_empty_restriction(self, small_run):
        assert len(restrict_to_networks(small_run.dataset, [])) == 0


class TestDeploymentSizeAblation:
    def test_structure_grows_with_deployment(self, small_run):
        points = deployment_size_ablation(small_run.dataset, [1, 4, 12])
        events = [p.n_events for p in points]
        m_counts = [p.m_clusters for p in points]
        assert events == sorted(events)
        assert m_counts[0] < m_counts[-1]

    def test_invariants_starve_on_tiny_deployments(self, small_run):
        points = deployment_size_ablation(small_run.dataset, [1, 12])
        # A single location sees a fraction of the activity (and none of
        # the bursts aimed elsewhere): invariants and M-structure shrink
        # markedly, though min_sensors=3 stays satisfiable within one
        # location's own addresses.
        assert points[0].total_invariants < points[1].total_invariants * 0.7
        assert points[0].m_clusters < points[1].m_clusters * 0.6

    def test_sizes_validated(self, small_run):
        with pytest.raises(ValidationError):
            deployment_size_ablation(small_run.dataset, [])
        with pytest.raises(ValidationError):
            deployment_size_ablation(small_run.dataset, [0])
