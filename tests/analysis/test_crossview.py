"""Tests for the M-vs-B cross-view and anomaly detection (§4.2)."""

import pytest

from repro.analysis.crossview import CrossView, heal_singletons


@pytest.fixture(scope="module")
def crossview(small_run):
    return CrossView(small_run.dataset, small_run.epm, small_run.bclusters)


class TestJointView:
    def test_joint_samples_are_executed_samples(self, small_run, crossview):
        assert len(crossview.joint_samples) == small_run.anubis.n_reports

    def test_contingency_sums_to_joint_samples(self, crossview):
        assert sum(crossview.contingency().values()) == len(crossview.joint_samples)

    def test_b_to_m_and_m_to_b_consistent(self, crossview):
        total_one_way = sum(
            sum(ms.values()) for ms in crossview._b_to_m.values()
        )
        total_other = sum(sum(bs.values()) for bs in crossview._m_to_b.values())
        assert total_one_way == total_other

    def test_m_clusters_of_b(self, small_run, crossview):
        biggest_b = 0
        ms = crossview.m_clusters_of_b(biggest_b)
        assert len(ms) > 1  # the worm B-cluster spans many patches


class TestSingletonDetection:
    def test_singletons_found(self, crossview):
        assert len(crossview.singleton_b_clusters()) > 20

    def test_anomalies_dominate_singletons(self, crossview):
        # The paper: most size-1 B-clusters are artifacts, not rarities.
        summary = crossview.summary()
        assert summary["singleton_anomalies"] > summary["rare_singletons"]

    def test_anomaly_fields_consistent(self, crossview):
        for anomaly in crossview.singleton_anomalies()[:50]:
            assert anomaly.m_cluster_size >= 2
            assert anomaly.dominant_b_size >= 1
            assert anomaly.dominant_b_cluster != anomaly.b_cluster
            assert crossview.b_of_sample[anomaly.md5] == anomaly.b_cluster

    def test_rare_singletons_have_unique_m(self, crossview):
        for md5 in crossview.rare_singletons():
            m = crossview.m_of_sample[md5]
            assert crossview._m_sample_counts[m] == 1

    def test_anomalies_are_mostly_worm_samples(self, small_run, crossview):
        # Ground-truth check of the paper's Figure 4 reading: the
        # misclassified singletons overwhelmingly come from the
        # polymorphic worm population.
        anomalies = crossview.singleton_anomalies()
        families = [
            small_run.dataset.samples[a.md5].ground_truth.family for a in anomalies
        ]
        share = families.count("allaple") / len(families)
        assert share > 0.8


class TestEnvironmentSplits:
    def test_splits_found(self, crossview):
        assert crossview.environment_splits()

    def test_iliketay_is_split(self, small_run, crossview):
        # The M-cluster 13 analogue must be spread over several
        # B-clusters (the environment changed under it during the
        # observation period).
        from collections import Counter

        iliketay_ms = Counter(
            crossview.m_of_sample[md5]
            for md5, record in small_run.dataset.samples.items()
            if record.ground_truth is not None
            and record.ground_truth.family == "iliketay"
            and not record.observable.corrupted
            and md5 in crossview.m_of_sample
        )
        assert iliketay_ms
        main_m = iliketay_ms.most_common(1)[0][0]
        b_counts = crossview.b_clusters_of_m(main_m)
        assert len(b_counts) >= 2

    def test_split_counts_ordered(self, crossview):
        for split in crossview.environment_splits():
            counts = list(split.samples_per_b)
            assert counts == sorted(counts, reverse=True)


class TestHealing:
    def test_healing_reduces_singletons(self, small_run):
        crossview = CrossView(small_run.dataset, small_run.epm, small_run.bclusters)
        before = len(crossview.singleton_b_clusters())
        healed, n_rerun = heal_singletons(
            crossview, small_run.anubis, small_run.dataset,
            config=small_run.config.clustering,
        )
        healed_view = CrossView(small_run.dataset, small_run.epm, healed)
        after = len(healed_view.singleton_b_clusters())
        assert n_rerun > 0
        assert after < before * 0.5

    def test_healing_preserves_sample_universe(self, small_run):
        crossview = CrossView(small_run.dataset, small_run.epm, small_run.bclusters)
        healed, _ = heal_singletons(
            crossview, small_run.anubis, small_run.dataset,
            config=small_run.config.clustering,
        )
        assert set(healed.assignment) == set(small_run.bclusters.assignment)
