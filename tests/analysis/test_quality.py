"""Tests for clustering-quality metrics and AV-label references."""

import pytest

from repro.analysis.quality import (
    av_label_consistency,
    av_reference_labels,
    coverage,
    ground_truth_labels,
    pairwise_f1,
    precision_recall,
)
from repro.util.validation import ValidationError


class TestPrecisionRecall:
    def test_perfect_clustering(self):
        assignment = {"a": 1, "b": 1, "c": 2}
        reference = {"a": "x", "b": "x", "c": "y"}
        score = precision_recall(assignment, reference)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_everything_in_one_cluster(self):
        assignment = {"a": 1, "b": 1, "c": 1, "d": 1}
        reference = {"a": "x", "b": "x", "c": "y", "d": "y"}
        score = precision_recall(assignment, reference)
        assert score.precision == 0.5  # best class covers half the cluster
        assert score.recall == 1.0  # each class sits in one cluster

    def test_everything_singleton(self):
        assignment = {"a": 1, "b": 2, "c": 3, "d": 4}
        reference = {"a": "x", "b": "x", "c": "y", "d": "y"}
        score = precision_recall(assignment, reference)
        assert score.precision == 1.0
        assert score.recall == 0.5

    def test_items_missing_from_reference_ignored(self):
        assignment = {"a": 1, "b": 1, "zz": 9}
        reference = {"a": "x", "b": "x"}
        score = precision_recall(assignment, reference)
        assert score.n_items == 2

    def test_no_overlap_rejected(self):
        with pytest.raises(ValidationError):
            precision_recall({"a": 1}, {"b": "x"})

    def test_f1_zero_case(self):
        from repro.analysis.quality import QualityScore

        score = QualityScore(0.0, 0.0, 1, 1, 1)
        assert score.f1 == 0.0


class TestPairwiseF1:
    def test_perfect(self):
        assignment = {"a": 1, "b": 1, "c": 2}
        reference = {"a": "x", "b": "x", "c": "y"}
        assert pairwise_f1(assignment, reference) == 1.0

    def test_all_singletons_vs_pairs(self):
        assignment = {"a": 1, "b": 2}
        reference = {"a": "x", "b": "x"}
        assert pairwise_f1(assignment, reference) == 0.0

    def test_both_trivial(self):
        assignment = {"a": 1, "b": 2}
        reference = {"a": "x", "b": "y"}
        assert pairwise_f1(assignment, reference) == 1.0

    def test_partial(self):
        assignment = {"a": 1, "b": 1, "c": 1}
        reference = {"a": "x", "b": "x", "c": "y"}
        score = pairwise_f1(assignment, reference)
        assert 0.0 < score < 1.0


class TestReferences:
    def test_ground_truth_levels(self, small_dataset):
        families = set(ground_truth_labels(small_dataset, level="family").values())
        variants = set(ground_truth_labels(small_dataset, level="variant").values())
        assert len(variants) > len(families)
        assert all("/" in v for v in variants)

    def test_ground_truth_bad_level(self, small_dataset):
        with pytest.raises(ValidationError):
            ground_truth_labels(small_dataset, level="nope")

    def test_av_reference_partial_coverage(self, small_dataset):
        labels = av_reference_labels(small_dataset)
        assert 0.5 < coverage(labels, small_dataset) < 1.0

    def test_av_reference_drops_generics(self, small_dataset):
        labels = av_reference_labels(small_dataset)
        assert all("Generic" not in label for label in labels.values())

    def test_av_engines_disagree_on_names(self, small_dataset):
        # The aliasing problem: cross-engine stem agreement is low.
        assert av_label_consistency(small_dataset) < 0.5


class TestQualityOnScenario:
    def test_epm_variant_quality_high(self, small_run):
        truth = ground_truth_labels(small_run.dataset, level="variant")
        assignment = small_run.epm.m_cluster_of_samples(small_run.dataset)
        # Restrict to clean samples: truncated binaries legitimately
        # land in junk bins.
        clean = {
            md5: cluster
            for md5, cluster in assignment.items()
            if not small_run.dataset.samples[md5].observable.corrupted
        }
        score = precision_recall(clean, truth)
        assert score.precision > 0.9
        assert score.recall > 0.75

    def test_av_reference_worse_than_truth(self, small_run):
        # Scoring EPM against AV labels *underestimates* it relative to
        # ground truth — the reason the paper distrusts AV references.
        truth = ground_truth_labels(small_run.dataset, level="family")
        av = av_reference_labels(small_run.dataset)
        assignment = {
            md5: cluster
            for md5, cluster in small_run.epm.m_cluster_of_samples(
                small_run.dataset
            ).items()
            if not small_run.dataset.samples[md5].observable.corrupted
        }
        truth_score = precision_recall(assignment, truth)
        av_score = precision_recall(assignment, av)
        assert av_score.precision <= truth_score.precision + 0.02
