"""Tests for C&C correlation (Table 2)."""

import pytest

from repro.analysis.irc import CnCCorrelation, IRCRendezvous, _parse_rendezvous


@pytest.fixture(scope="module")
def correlation(small_run):
    return CnCCorrelation(small_run.dataset, small_run.epm, small_run.anubis)


class TestParsing:
    def test_parse_rendezvous(self):
        rv = _parse_rendezvous("irc://67.43.232.36:6667/#kok6")
        assert rv == IRCRendezvous(server="67.43.232.36", room="#kok6")

    def test_parse_rejects_other_features(self):
        assert _parse_rendezvous("http://x.cn/a.exe") is None

    def test_parse_rejects_incomplete(self):
        assert _parse_rendezvous("irc://hostonly:6667") is None

    def test_slash24(self):
        rv = IRCRendezvous(server="67.43.232.36", room="#a")
        assert rv.slash24 == (67 << 16 | 43 << 8 | 232)


class TestCorrelation:
    def test_bot_m_clusters_correlated(self, correlation):
        assert correlation.n_irc_m_clusters > 5

    def test_table2_rows_sorted(self, correlation):
        rows = correlation.table2()
        keys = [(server, room) for server, room, _ in rows]
        assert keys == sorted(keys)

    def test_table2_m_clusters_nonempty(self, correlation):
        for _server, _room, ms in correlation.table2():
            assert ms

    def test_render_table2(self, correlation):
        text = correlation.render_table2()
        assert "Server address" in text
        assert "#" in text

    def test_rooms_commanding_multiple_m_clusters(self, correlation):
        # Patched botnets: same room, several code variants.
        assert correlation.shared_rooms()

    def test_servers_concentrated_in_subnets(self, correlation):
        summary = correlation.infrastructure_summary()
        assert summary["subnets_with_multiple_servers"] >= 1

    def test_room_names_recur_across_servers(self, correlation):
        assert correlation.recurring_rooms()

    def test_infrastructure_summary_consistent(self, correlation):
        summary = correlation.infrastructure_summary()
        assert summary["servers"] <= summary["rendezvous"]
        assert summary["subnets"] <= summary["servers"]

    def test_ground_truth_agreement(self, small_run, correlation):
        # Every correlated rendezvous matches a C&C some generating
        # variant was actually wired to (directly or via a downloaded
        # second-stage component).
        truth = set()

        def collect(template):
            if template.cnc is not None:
                truth.add((template.cnc.server, template.cnc.room))
            for component in template.components:
                collect(component.component)

        for family in small_run.catalog.families:
            for variant in family.variants:
                collect(variant.behavior)
        for rv in correlation.m_of_rendezvous:
            assert (rv.server, rv.room) in truth
