"""Tests for AV-name and EP-coordinate distributions (Figure 4)."""

import pytest

from repro.analysis.avnames import (
    av_name_distribution,
    dominant_p_cluster,
    ep_coordinate_distribution,
)
from repro.analysis.crossview import CrossView


@pytest.fixture(scope="module")
def anomaly_md5s(small_run):
    crossview = CrossView(small_run.dataset, small_run.epm, small_run.bclusters)
    return [a.md5 for a in crossview.singleton_anomalies()]


class TestAvNames:
    def test_rahack_dominates_anomalies(self, small_run, anomaly_md5s):
        counts = av_name_distribution(small_run.dataset, anomaly_md5s)
        rahack = sum(n for label, n in counts.items() if "Rahack" in str(label))
        assert rahack / sum(counts.values()) > 0.6

    def test_unknown_md5_counted_as_not_scanned(self, small_run):
        counts = av_name_distribution(small_run.dataset, ["0" * 32])
        assert sum(counts.values()) == 0  # unknown samples are skipped entirely

    def test_engine_selectable(self, small_run, anomaly_md5s):
        counts = av_name_distribution(
            small_run.dataset, anomaly_md5s[:20], engine="EuroAV"
        )
        labels = " ".join(str(k) for k in counts)
        assert "Allaple" in labels or "<not detected>" in labels

    def test_missing_engine_counts_not_scanned(self, small_run, anomaly_md5s):
        counts = av_name_distribution(
            small_run.dataset, anomaly_md5s[:5], engine="NoSuchAV"
        )
        assert counts["<not scanned>"] == 5


class TestEpCoordinates:
    def test_anomalies_concentrated_on_one_ep(self, small_run, anomaly_md5s):
        counts = ep_coordinate_distribution(
            small_run.dataset, small_run.epm, anomaly_md5s
        )
        top = counts.most_common(1)[0][1]
        assert top / sum(counts.values()) > 0.9

    def test_dominant_p_cluster_is_push_9988(self, small_run, anomaly_md5s):
        p_cluster, share = dominant_p_cluster(
            small_run.dataset, small_run.epm, anomaly_md5s
        )
        assert share > 0.9
        pattern = dict(
            zip(
                small_run.epm.pi.feature_names,
                small_run.epm.pi.clusters[p_cluster].pattern,
            )
        )
        assert pattern["port"] == 9988
        assert pattern["interaction"] == "push"

    def test_dominant_p_empty_input(self, small_run):
        p_cluster, share = dominant_p_cluster(small_run.dataset, small_run.epm, [])
        assert p_cluster is None
        assert share == 0.0
