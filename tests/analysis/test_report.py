"""Tests for the combined intelligence report."""

import pytest

from repro.analysis.report import full_report


@pytest.fixture(scope="module")
def report_text(small_run):
    return full_report(small_run)


class TestFullReport:
    def test_all_sections_present(self, report_text):
        for section in (
            "Collection summary",
            "Cluster relations",
            "Anomaly triage",
            "Propagation-context classification",
            "C&C infrastructure",
            "Patching practices",
            "Landscape evolution",
            "Pattern drift",
            "Deployment operations",
        ):
            assert section in report_text

    def test_headline_numbers_embedded(self, small_run, report_text):
        headline = small_run.headline()
        assert str(headline["samples_collected"]) in report_text
        assert str(headline["m_clusters"]) in report_text

    def test_timelines_rendered(self, report_text):
        assert "events/week" in report_text
        # timeline strips use the . : | # alphabet
        assert "#" in report_text

    def test_signatures_shown(self, report_text):
        assert "worm-like" in report_text
        assert "bot-like" in report_text

    def test_graph_filter_configurable(self, small_run):
        tight = full_report(small_run, min_graph_events=500)
        assert "Cluster relations" in tight
