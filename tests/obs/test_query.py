"""The longitudinal analytics frame: selectors, index, query, cost."""

import json

import pytest

from repro.obs.history import RunStore
from repro.obs.manifest import RunManifest
from repro.obs.query import (
    QueryFrame,
    QueryIndex,
    aggregate,
    attribute_cost,
    build_frame,
    flatten_config,
    frame_from_payloads,
    parse_target,
    resolve_target,
    run_query,
    validate_query_index,
)
from repro.obs.windows import WINDOW_SERIES, WindowReport
from repro.util.validation import ValidationError


def _manifest(
    *,
    seed: int = 7,
    fingerprint: str = "ab" * 32,
    clusters: float = 9.0,
    observe_seconds: float = 1.0,
    observe_cache: str = "off",
    created_at: str = "2026-01-01T00:00:00Z",
    golden_deviations: list | None = None,
    stage_fingerprints: dict | None = None,
    config: dict | None = None,
) -> RunManifest:
    span_tree = {
        "name": "scenario",
        "seconds": observe_seconds + 0.5,
        "attributes": {"output_digest": "44" * 32},
        "children": [
            {
                "name": "observe",
                "seconds": observe_seconds,
                "attributes": {
                    "output_digest": "11" * 32,
                    "cache": observe_cache,
                    "cpu_seconds": observe_seconds * 0.9,
                    "max_rss_kb": 5000.0,
                },
            },
            {
                "name": "bcluster",
                "seconds": 0.2,
                "attributes": {"output_digest": "33" * 32, "cache": "off"},
            },
        ],
    }
    return RunManifest(
        fingerprint=fingerprint,
        seed=seed,
        config=config or {"n_weeks": 10},
        library_version="1.0.0",
        span_tree=span_tree,
        metrics={
            "schema": 1,
            "counters": {"lsh.candidate_pairs": 100.0},
            "gauges": {"lsh.clusters": clusters},
            "histograms": {},
        },
        artifact_digests={
            "dataset.events": "11" * 32,
            "epm.clusters": "22" * 32,
            "bclusters.assignment": "33" * 32,
            "headline": "44" * 32,
        },
        created_at=created_at,
        golden_deviations=golden_deviations or [],
        stage_fingerprints=stage_fingerprints
        or {"observe": "55" * 32, "bcluster": "77" * 32},
    )


def _windows_payload(fingerprint: str = "ab" * 32, events=(4.0, 8.0)) -> dict:
    return WindowReport(
        fingerprint=fingerprint,
        seed=7,
        window_weeks=4,
        n_windows=len(events),
        series={
            name: list(events) if name == "events" else [1.0] * len(events)
            for name in WINDOW_SERIES
        },
        crossview={"joint_samples": 4},
    ).as_dict()


def _store(tmp_path, days=(1, 2, 3), clusters=(9.0, 9.0, 9.0)) -> RunStore:
    store = RunStore(tmp_path / "runs")
    for day, value in zip(days, clusters):
        store.add(
            _manifest(
                created_at=f"2026-01-{day:02d}T00:00:00Z", clusters=value
            )
        )
    return store


class TestTargetGrammar:
    def test_parse_target_splits_scheme_and_key(self):
        assert parse_target("metric:lsh.clusters") == ("metric", "lsh.clusters")
        assert parse_target("span:observe/cpu_seconds") == (
            "span",
            "observe/cpu_seconds",
        )

    @pytest.mark.parametrize("bad", ["lsh.clusters", "stage:observe", "metric:"])
    def test_malformed_targets_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_target(bad)

    def test_metric_selector_resolves_through_metric_value(self):
        payload = _manifest().as_dict()
        assert resolve_target(payload, None, "metric:lsh.clusters") == 9.0
        assert resolve_target(payload, None, "metric:no.such") is None

    def test_golden_selector_counts_deviations(self):
        payload = _manifest(golden_deviations=["a", "b"]).as_dict()
        assert resolve_target(payload, None, "golden:deviations") == 2.0
        with pytest.raises(ValidationError):
            resolve_target(payload, None, "golden:something_else")

    def test_span_selector_reads_seconds_and_profile_attrs(self):
        payload = _manifest(observe_seconds=2.0).as_dict()
        assert resolve_target(payload, None, "span:observe") == 2.0
        assert resolve_target(payload, None, "span:observe/cpu_seconds") == 1.8
        assert resolve_target(payload, None, "span:observe/max_rss_kb") == 5000.0
        assert resolve_target(payload, None, "span:nonexistent") is None

    def test_replayed_span_resolves_to_none(self):
        # A cache hit loads a pickle in milliseconds: its wall time must
        # never enter a timing series next to real compute seconds.
        payload = _manifest(observe_cache="hit").as_dict()
        assert resolve_target(payload, None, "span:observe") is None
        assert resolve_target(payload, None, "span:observe/cpu_seconds") is None

    def test_unknown_span_attribute_rejected(self):
        with pytest.raises(ValidationError):
            resolve_target(_manifest().as_dict(), None, "span:observe/disk_io")

    def test_series_selector_reads_window_series(self):
        windows = _windows_payload(events=(4.0, 8.0))
        assert resolve_target({}, windows, "series:events") == [4.0, 8.0]
        assert resolve_target({}, None, "series:events") is None


class TestAggregate:
    def test_basic_aggregations(self):
        values = [3.0, 1.0, 2.0]
        assert aggregate(values, "min") == 1.0
        assert aggregate(values, "max") == 3.0
        assert aggregate(values, "mean") == 2.0

    def test_quantiles_interpolate_linearly(self):
        assert aggregate([1.0, 2.0, 3.0, 4.0], "p50") == 2.5
        assert aggregate([1.0, 2.0, 3.0], "p0") == 1.0
        assert aggregate([1.0, 2.0, 3.0], "p100") == 3.0

    def test_none_entries_are_skipped_not_zeroed(self):
        assert aggregate([None, 4.0, None, 6.0], "mean") == 5.0
        assert aggregate([None, None], "p50") is None

    @pytest.mark.parametrize("bad", ["median", "p101", "p", "sum"])
    def test_unknown_aggregations_rejected(self, bad):
        with pytest.raises(ValidationError):
            aggregate([1.0], bad)


class TestQueryFrame:
    def test_rows_sorted_by_created_at_then_run_id(self):
        payloads = [
            _manifest(created_at=f"2026-01-{day:02d}T00:00:00Z").as_dict()
            for day in (3, 1, 2)
        ]
        frame = frame_from_payloads(payloads)
        assert [row.created_at[:10] for row in frame.rows] == [
            "2026-01-01",
            "2026-01-02",
            "2026-01-03",
        ]

    def test_digest_is_deterministic_and_order_insensitive(self):
        payloads = [
            _manifest(created_at=f"2026-01-{day:02d}T00:00:00Z").as_dict()
            for day in (1, 2, 3)
        ]
        forward = frame_from_payloads(payloads)
        shuffled = frame_from_payloads(list(reversed(payloads)))
        assert forward.digest() == shuffled.digest()

    def test_filter_by_fingerprint_prefix_and_limit(self):
        payloads = [
            _manifest(created_at="2026-01-01T00:00:00Z").as_dict(),
            _manifest(
                fingerprint="cd" * 32, created_at="2026-01-02T00:00:00Z"
            ).as_dict(),
            _manifest(created_at="2026-01-03T00:00:00Z").as_dict(),
        ]
        frame = frame_from_payloads(payloads)
        assert len(frame.filter(fingerprint="abab")) == 2
        newest = frame.filter(limit=1)
        assert len(newest) == 1
        assert newest.rows[0].created_at.startswith("2026-01-03")
        with pytest.raises(ValidationError):
            frame.filter(fingerprint="ab")  # prefix too short
        with pytest.raises(ValidationError):
            frame.filter(limit=0)

    def test_grouped_splits_per_fingerprint(self):
        frame = frame_from_payloads(
            [
                _manifest().as_dict(),
                _manifest(fingerprint="cd" * 32, seed=8).as_dict(),
            ]
        )
        groups = frame.grouped()
        assert set(groups) == {"ab" * 32, "cd" * 32}
        assert all(len(group) == 1 for group in groups.values())

    def test_column_is_row_aligned_and_cached(self):
        frame = frame_from_payloads(
            [
                _manifest(clusters=9.0, created_at="2026-01-01T00:00:00Z").as_dict(),
                _manifest(clusters=12.0, created_at="2026-01-02T00:00:00Z").as_dict(),
            ]
        )
        column = frame.column("metric:lsh.clusters")
        assert column == [9.0, 12.0]
        assert frame.column("metric:lsh.clusters") is column

    def test_payload_and_windows_must_align(self):
        with pytest.raises(ValidationError):
            frame_from_payloads([_manifest().as_dict()], windows=[None, None])


class TestQueryIndex:
    def test_build_frame_materializes_the_index(self, tmp_path):
        store = _store(tmp_path)
        frame = build_frame(store)
        assert len(frame) == 3
        assert QueryIndex(store).path.is_file()

    def test_refresh_is_incremental(self, tmp_path):
        store = _store(tmp_path, days=(1, 2), clusters=(9.0, 9.0))
        index = QueryIndex(store)
        assert index.refresh() == (2, 0)
        assert index.refresh() == (0, 0)
        store.add(_manifest(created_at="2026-01-03T00:00:00Z"))
        assert index.refresh() == (1, 0)

    def test_noop_refresh_never_rewrites_the_file(self, tmp_path):
        store = _store(tmp_path)
        index = QueryIndex(store)
        index.refresh()
        before = index.path.stat().st_mtime_ns
        index.refresh()
        assert index.path.stat().st_mtime_ns == before

    def test_refresh_drops_vanished_runs(self, tmp_path):
        store = _store(tmp_path)
        index = QueryIndex(store)
        index.refresh()
        # Simulate an external prune: drop one run from store + index.
        entries = store.entries()
        victim = entries[0]
        (store.root / victim["path"]).unlink()
        payload = {"schema": 1, "entries": entries[1:]}
        store.index_path.write_text(json.dumps(payload), encoding="utf-8")
        assert index.refresh() == (0, 1)
        assert len(index.load_rows()) == 2

    def test_indexed_and_direct_frames_agree(self, tmp_path):
        store = _store(tmp_path)
        build_frame(store)  # warm the index
        indexed = build_frame(store, use_index=True)
        direct = build_frame(store, use_index=False)
        assert indexed.digest() == direct.digest()

    def test_unsupported_schema_is_rebuilt(self, tmp_path):
        store = _store(tmp_path)
        index = QueryIndex(store)
        index.path.write_text('{"schema": 99, "rows": []}', encoding="utf-8")
        assert index.load_rows() is None
        index.refresh()
        assert len(index.load_rows()) == 3


class TestValidateQueryIndex:
    def test_fresh_index_validates(self, tmp_path):
        store = _store(tmp_path)
        QueryIndex(store).refresh()
        assert validate_query_index(store.root) == []

    def test_missing_index_is_valid(self, tmp_path):
        store = _store(tmp_path)
        assert validate_query_index(store.root) == []

    def test_stale_index_reported(self, tmp_path):
        store = _store(tmp_path, days=(1, 2), clusters=(9.0, 9.0))
        QueryIndex(store).refresh()
        store.add(_manifest(created_at="2026-01-03T00:00:00Z"))
        errors = validate_query_index(store.root)
        assert any("not indexed" in error for error in errors)

    def test_edited_row_reported(self, tmp_path):
        store = _store(tmp_path)
        index = QueryIndex(store)
        index.refresh()
        payload = json.loads(index.path.read_text(encoding="utf-8"))
        payload["rows"][0]["manifest"]["metrics"]["gauges"]["lsh.clusters"] = 999.0
        index.path.write_text(json.dumps(payload), encoding="utf-8")
        errors = validate_query_index(store.root)
        assert any("does not match" in error for error in errors)


class TestRunQuery:
    def test_scalar_target_with_aggregate(self, tmp_path):
        store = _store(tmp_path, clusters=(8.0, 9.0, 13.0))
        result = run_query(
            build_frame(store), ["metric:lsh.clusters"], agg="p50"
        )
        assert result.aggregates["metric:lsh.clusters"] == 9.0
        assert len(result.rows) == 3

    def test_series_target_reduces_per_run_then_across_runs(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        for day, events in ((1, (4.0, 8.0)), (2, (6.0, 10.0))):
            manifest = _manifest(created_at=f"2026-01-{day:02d}T00:00:00Z")
            sidecar = tmp_path / f"w{day}.json"
            sidecar.write_text(json.dumps(_windows_payload(events=events)))
            store.add(manifest, windows_path=sidecar)
        result = run_query(build_frame(store), ["series:events"], agg="mean")
        # per-run means 6.0 and 8.0, cross-run mean 7.0
        assert [row["values"]["series:events"] for row in result.rows] == [6.0, 8.0]
        assert result.aggregates["series:events"] == 7.0

    def test_render_table_and_json_and_openmetrics(self, tmp_path):
        store = _store(tmp_path)
        result = run_query(
            build_frame(store), ["metric:lsh.clusters", "span:observe"], agg="max"
        )
        table = result.render()
        assert "metric:lsh.clusters" in table and "span:observe" in table
        parsed = json.loads(result.to_json())
        assert parsed["aggregates"]["metric:lsh.clusters"] == 9.0
        assert parsed["frame_digest"] == build_frame(store).digest()
        exposition = result.to_openmetrics()
        assert exposition.splitlines()[-1] == "# EOF"
        assert 'target="metric:lsh.clusters"' in exposition

    def test_include_adds_bare_manifest_with_windows_sidecar(self, tmp_path):
        store = _store(tmp_path, days=(1, 2), clusters=(9.0, 9.0))
        reference = tmp_path / "reference.json"
        reference.write_text(
            _manifest(created_at="2026-01-09T00:00:00Z", clusters=11.0).to_json()
        )
        (tmp_path / "reference.windows.json").write_text(
            json.dumps(_windows_payload(events=(5.0, 5.0)))
        )
        frame = build_frame(store, include=[reference])
        assert len(frame) == 3
        assert frame.rows[-1].windows is not None
        with pytest.raises(ValidationError):
            build_frame(store, include=[tmp_path / "missing.json"])

    def test_query_needs_targets_and_valid_agg(self, tmp_path):
        frame = build_frame(_store(tmp_path))
        with pytest.raises(ValidationError):
            run_query(frame, [])
        with pytest.raises(ValidationError):
            run_query(frame, ["metric:lsh.clusters"], agg="median")

    def test_empty_store_renders_placeholder(self, tmp_path):
        frame = build_frame(RunStore(tmp_path / "runs"))
        assert "no stored runs" in run_query(frame, ["metric:x"]).render()


class TestCostAttribution:
    def _payloads(self):
        base_config = {
            "__type__": "ScenarioConfig",
            "n_weeks": 10,
            "clustering": {"__type__": "ClusteringConfig", "threshold": 0.7},
        }
        changed_config = json.loads(json.dumps(base_config))
        changed_config["clustering"]["threshold"] = 0.5
        a = _manifest(config=base_config, observe_seconds=1.0).as_dict()
        b = _manifest(
            fingerprint="cd" * 32,
            config=changed_config,
            observe_seconds=1.1,
            stage_fingerprints={"observe": "55" * 32, "bcluster": "88" * 32},
        ).as_dict()
        return a, b

    def test_config_delta_uses_dotted_keys(self):
        report = attribute_cost(*self._payloads())
        assert report.config_delta == {"clustering.threshold": (0.7, 0.5)}

    def test_rekeyed_stages_follow_stage_fingerprints(self):
        report = attribute_cost(*self._payloads())
        by_name = {stage.stage: stage for stage in report.stages}
        assert not by_name["observe"].rekeyed
        assert by_name["bcluster"].rekeyed

    def test_attributed_seconds_sums_only_rekeyed_stages(self):
        a, b = self._payloads()
        report = attribute_cost(a, b)
        # observe drifted by 0.1s but was not re-keyed: only bcluster's
        # delta (0.0s here) may enter the attributed bill.
        assert report.attributed_seconds() == pytest.approx(0.0)

    def test_replayed_stage_contributes_no_seconds(self):
        a, _ = self._payloads()
        b = _manifest(observe_cache="hit").as_dict()
        report = attribute_cost(a, b)
        by_name = {stage.stage: stage for stage in report.stages}
        assert by_name["observe"].seconds_b is None
        assert by_name["observe"].delta_seconds is None

    def test_render_names_the_changed_key_and_the_bill(self):
        text = attribute_cost(*self._payloads()).render()
        assert "clustering.threshold" in text
        assert "attributed cost" in text
        assert "bcluster" in text

    def test_same_fingerprint_renders_repeat_run_note(self):
        payload = _manifest().as_dict()
        text = attribute_cost(payload, payload).render()
        assert "repeat runs" in text

    def test_flatten_config_unwraps_enum_markers(self):
        flat = flatten_config(
            {
                "__type__": "C",
                "mode": {"__enum__": "Mode", "value": "fast"},
                "nested": {"__type__": "N", "depth": 2},
            }
        )
        assert flat == {"mode": "fast", "nested.depth": 2}
