"""Windowed landscape telemetry: series shape, purity, round-trips."""

import json

import pytest

from repro.obs.windows import (
    DEFAULT_WINDOW_WEEKS,
    WINDOW_SERIES,
    WindowReport,
    build_window_report,
)
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def report(small_run):
    assert small_run.windows is not None  # windows=4 is the default
    return small_run.windows


class TestBuildWindowReport:
    def test_covers_every_documented_series(self, report):
        assert set(report.series) == set(WINDOW_SERIES)
        for name in WINDOW_SERIES:
            assert len(report.series[name]) == report.n_windows

    def test_window_count_is_the_week_ceiling(self, small_run, report):
        weeks = small_run.config.n_weeks
        assert report.window_weeks == DEFAULT_WINDOW_WEEKS
        assert report.n_windows == -(-weeks // DEFAULT_WINDOW_WEEKS)

    def test_events_and_samples_series_sum_to_the_dataset(self, small_run, report):
        assert sum(report.series["events"]) == len(small_run.dataset.events)
        assert sum(report.series["new_samples"]) == len(small_run.dataset.samples)

    def test_agreement_is_a_score_per_window(self, report):
        assert all(0.0 <= value <= 1.0 for value in report.series["agreement"])

    def test_churn_sums_to_distinct_active_clusters(self, small_run, report):
        # Every cluster id is "fresh" in exactly one window, so total
        # churn equals the number of distinct clusters ever active.
        distinct_m = {
            coords[2]
            for coords in (
                small_run.epm.coordinates(event.event_id)
                for event in small_run.dataset.events
            )
            if coords[2] is not None
        }
        assert sum(report.series["m_churn"]) == len(distinct_m)
        assert sum(report.series["b_churn"]) <= len(small_run.bclusters.clusters)
        # ... and the first window's churn IS its active count.
        assert report.series["m_churn"][0] == report.series["m_clusters"][0]
        assert report.series["b_churn"][0] == report.series["b_clusters"][0]

    def test_crossview_summary_rides_along(self, report):
        assert set(report.crossview) == {
            "joint_samples",
            "m_clusters",
            "b_clusters",
            "singleton_b_clusters",
            "rare_singletons",
            "singleton_anomalies",
            "environment_splits",
        }

    def test_rebuild_is_byte_identical(self, small_run, report):
        rebuilt = build_window_report(
            small_run.dataset,
            small_run.epm,
            small_run.bclusters,
            small_run.grid,
            seed=small_run.seed,
            fingerprint=report.fingerprint,
            window_weeks=report.window_weeks,
        )
        assert rebuilt.to_json() == report.to_json()
        assert rebuilt.digest() == report.digest()

    def test_single_window_folds_everything(self, small_run, report):
        whole = build_window_report(
            small_run.dataset,
            small_run.epm,
            small_run.bclusters,
            small_run.grid,
            seed=small_run.seed,
            fingerprint=report.fingerprint,
            window_weeks=small_run.config.n_weeks,
        )
        assert whole.n_windows == 1
        assert whole.series["events"] == [float(len(small_run.dataset.events))]
        assert whole.crossview == report.crossview

    def test_window_weeks_must_be_positive(self, small_run):
        with pytest.raises(ValidationError):
            build_window_report(
                small_run.dataset,
                small_run.epm,
                small_run.bclusters,
                small_run.grid,
                seed=small_run.seed,
                fingerprint="ab" * 32,
                window_weeks=0,
            )


class TestWindowReport:
    def test_json_round_trip(self, report):
        rebuilt = WindowReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.as_dict() == report.as_dict()
        assert rebuilt.digest() == report.digest()

    def test_write_and_load(self, report, tmp_path):
        path = report.write(tmp_path / "windows.json")
        assert WindowReport.load(path).as_dict() == report.as_dict()

    def test_digest_is_content_sensitive(self, report):
        bumped = WindowReport.from_dict(report.as_dict())
        bumped.series["events"][0] += 1
        assert bumped.digest() != report.digest()

    def test_window_row_carries_every_series(self, report):
        row = report.window_row(0)
        assert set(row) == set(WINDOW_SERIES)
        with pytest.raises(ValidationError):
            report.window_row(report.n_windows)

    def test_unknown_schema_rejected(self, report):
        payload = report.as_dict()
        payload["schema"] = 99
        with pytest.raises(ValidationError):
            WindowReport.from_dict(payload)

    def test_fingerprint_matches_the_manifest(self, small_run, report):
        assert report.fingerprint == small_run.manifest.fingerprint
        assert report.seed == small_run.seed
