"""The metrics registry: instruments, labels, snapshots, activation."""

import pickle

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    active,
    base_name,
    metric_key,
    use,
)
from repro.util.validation import ValidationError


class TestMetricKey:
    def test_bare_name_without_labels(self):
        assert metric_key("cache.hit", {}) == "cache.hit"

    def test_labels_render_sorted(self):
        key = metric_key("executor.items", {"jobs": 4, "backend": "thread"})
        assert key == "executor.items{backend=thread,jobs=4}"

    def test_base_name_strips_labels(self):
        assert base_name("epm.clusters{dimension=mu}") == "epm.clusters"
        assert base_name("cache.hit") == "cache.hit"

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            metric_key("", {})


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit").inc()
        registry.counter("cache.hit").inc(3)
        assert registry.snapshot().counter("cache.hit") == 4

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("cache.hit").inc(-1)

    def test_label_combinations_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("epm.observations", dimension="mu").inc(5)
        registry.counter("epm.observations", dimension="pi").inc(2)
        snapshot = registry.snapshot()
        assert snapshot.counter("epm.observations", dimension="mu") == 5
        assert snapshot.counter("epm.observations", dimension="pi") == 2
        assert snapshot.total("epm.observations") == 7

    def test_same_labels_merge_across_call_sites(self):
        registry = MetricsRegistry()
        registry.counter("executor.items", backend="serial").inc(10)
        registry.counter("executor.items", backend="serial").inc(10)
        assert registry.snapshot().counter("executor.items", backend="serial") == 20


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("lsh.clusters").set(3)
        registry.gauge("lsh.clusters").set(7)
        assert registry.snapshot().gauge("lsh.clusters") == 7


class TestHistogram:
    def test_values_land_in_inclusive_upper_bound_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 100.0):
            hist.observe(value)
        exported = registry.snapshot().histograms["t"]
        assert exported["buckets"] == {"1.0": 2, "10.0": 2, "+inf": 1}
        assert exported["count"] == 5
        assert exported["sum"] == pytest.approx(116.5)

    def test_default_buckets_are_latency_shaped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("executor.chunk_seconds")
        assert hist.buckets == LATENCY_BUCKETS

    def test_bucket_shape_fixed_at_creation(self):
        registry = MetricsRegistry()
        registry.histogram("t", buckets=(1.0, 2.0))
        registry.histogram("t", buckets=(1.0, 2.0))  # same shape: fine
        with pytest.raises(ValidationError):
            registry.histogram("t", buckets=(5.0,))

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.histogram("t", buckets=(2.0, 1.0))

    def test_quantile_extremes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        # q=0 interpolates to the lower edge of the first occupied
        # bucket; q=1 to the upper bound of the last occupied one.
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.0) <= hist.quantile(0.5) <= hist.quantile(1.0)

    def test_quantile_of_overflow_observations_reports_last_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 2.0))
        hist.observe(50.0)  # lands in +inf
        # The Prometheus convention: the overflow bucket has no upper
        # edge, so the estimator reports the highest finite bound.
        assert hist.quantile(1.0) == 2.0
        assert hist.quantile(0.5) == 2.0

    def test_quantile_of_empty_histogram_is_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 2.0))
        assert hist.quantile(0.0) is None
        assert hist.quantile(1.0) is None

    def test_quantile_rejects_out_of_range(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t")
        with pytest.raises(ValidationError):
            hist.quantile(-0.1)
        with pytest.raises(ValidationError):
            hist.quantile(1.1)


class TestSnapshot:
    def _populated(self) -> MetricsSnapshot:
        registry = MetricsRegistry()
        registry.counter("cache.hit").inc(2)
        registry.counter("epm.clusters_found", dimension="mu").inc(4)
        registry.gauge("lsh.clusters").set(6)
        registry.histogram("sandbox.batch_size", buckets=(1.0, 10.0)).observe(3)
        return registry.snapshot()

    def test_json_round_trip(self):
        snapshot = self._populated()
        import json

        rebuilt = MetricsSnapshot.from_dict(json.loads(snapshot.to_json()))
        assert rebuilt == snapshot

    def test_json_encoding_is_deterministic(self):
        assert self._populated().to_json() == self._populated().to_json()

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValidationError):
            MetricsSnapshot.from_dict({"schema": 99})

    def test_names_strip_labels_across_sections(self):
        assert self._populated().names() == {
            "cache.hit",
            "epm.clusters_found",
            "lsh.clusters",
            "sandbox.batch_size",
        }

    def test_untouched_instruments_read_zero(self):
        snapshot = self._populated()
        assert snapshot.counter("never.recorded") == 0
        assert snapshot.gauge("never.recorded") == 0

    def test_snapshot_is_picklable(self):
        snapshot = self._populated()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_snapshot_is_frozen_in_time(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache.hit")
        counter.inc()
        snapshot = registry.snapshot()
        counter.inc(10)
        assert snapshot.counter("cache.hit") == 1


class TestActivation:
    def test_default_is_the_null_registry(self):
        assert active() is NULL_REGISTRY
        assert active().recording is False

    def test_use_installs_and_restores(self):
        registry = MetricsRegistry()
        with use(registry):
            assert active() is registry
            active().counter("cache.hit").inc()
        assert active() is NULL_REGISTRY
        assert registry.snapshot().counter("cache.hit") == 1

    def test_use_restores_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use(registry):
                raise RuntimeError("boom")
        assert active() is NULL_REGISTRY

    def test_null_registry_swallows_everything(self):
        NULL_REGISTRY.counter("x", a=1).inc(5)
        NULL_REGISTRY.gauge("y").set(2)
        NULL_REGISTRY.histogram("z").observe(0.1)
        snapshot = NULL_REGISTRY.snapshot()
        assert snapshot.counters == {} and snapshot.gauges == {}
        assert snapshot.histograms == {}


class TestSketchInstrument:
    def test_observe_and_quantile(self):
        registry = MetricsRegistry()
        sketch = registry.sketch("executor.chunk_seconds_sketch")
        for value in (1.0, 2.0, 4.0):
            sketch.observe(value)
        assert sketch.count == 3
        assert sketch.quantile(0.5) == pytest.approx(2.0, rel=0.02)

    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.sketch("a.sketch") is registry.sketch("a.sketch")
        assert registry.sketch("a.sketch") is not registry.sketch(
            "a.sketch", shard=1
        )

    def test_shape_mismatch_on_one_key_rejected(self):
        registry = MetricsRegistry()
        registry.sketch("a.sketch", alpha=0.01)
        with pytest.raises(ValidationError):
            registry.sketch("a.sketch", alpha=0.05)

    def test_snapshot_round_trip_preserves_sketches(self):
        registry = MetricsRegistry()
        registry.sketch("a.sketch").observe(3.0)
        payload = registry.snapshot().as_dict()
        assert payload["schema"] == 2
        rebuilt = MetricsSnapshot.from_dict(payload)
        assert rebuilt.sketches["a.sketch"]["count"] == 1

    def test_schema_one_payloads_still_load(self):
        snapshot = MetricsSnapshot.from_dict(
            {"schema": 1, "counters": {"cache.hit": 2}}
        )
        assert snapshot.counters["cache.hit"] == 2
        assert snapshot.sketches == {}
        assert snapshot.watermarks == {}


class TestWatermarkInstrument:
    def test_update_keeps_the_maximum(self):
        registry = MetricsRegistry()
        mark = registry.watermark("worker.peak_rss_kb")
        for value in (10, 50, 20):
            mark.update(value)
        assert mark.value == 50.0

    def test_snapshot_and_accessor(self):
        registry = MetricsRegistry()
        registry.watermark("q.depth", worker=1).update(7)
        snapshot = registry.snapshot()
        assert snapshot.watermark("q.depth", worker=1) == 7.0
        assert snapshot.watermark("q.depth", worker=2) == 0


class TestMergeSnapshotSections:
    def test_sketches_and_watermarks_fold_in(self):
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        worker_a.sketch("s").observe(1.0)
        worker_b.sketch("s").observe(3.0)
        worker_a.watermark("w").update(5)
        worker_b.watermark("w").update(9)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        merged = parent.snapshot()
        assert merged.sketches["s"]["count"] == 2
        assert merged.watermarks["w"] == 9.0

    def test_watermark_merge_is_commutative(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.watermark("w").update(5)
        b.watermark("w").update(9)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge_snapshot(a.snapshot())
        forward.merge_snapshot(b.snapshot())
        backward.merge_snapshot(b.snapshot())
        backward.merge_snapshot(a.snapshot())
        assert forward.snapshot().as_dict() == backward.snapshot().as_dict()


class TestNullRegistryNewInstruments:
    def test_sketch_and_watermark_are_free_no_ops(self):
        NULL_REGISTRY.sketch("anything").observe(1.0)
        NULL_REGISTRY.watermark("anything").update(5)
        assert NULL_REGISTRY.recording is False
