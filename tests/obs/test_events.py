"""The live event stream: bus, transports, replay, filters, validation."""

import json
import threading

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    NULL_BUS,
    EventBus,
    FileTransport,
    MemoryTransport,
    PipelineEvent,
    ProgressRenderer,
    QueueTransport,
    RingTransport,
    active_bus,
    iter_events,
    matches,
    parse_filters,
    read_events,
    render_event,
    use_bus,
)
from repro.obs.validate import crosscheck_events, validate_events
from repro.util.validation import ValidationError


class _FakeClock:
    """A controllable monotonic clock for deterministic timestamps."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestPipelineEvent:
    def test_as_dict_layout_and_round_trip(self):
        event = PipelineEvent(seq=3, t=1.2345678, kind="stage.start", fields={"b": 2, "a": 1})
        payload = event.as_dict()
        assert payload == {
            "schema": EVENT_SCHEMA,
            "seq": 3,
            "t": 1.234568,
            "kind": "stage.start",
            "fields": {"a": 1, "b": 2},
        }
        assert list(payload["fields"]) == ["a", "b"]  # key-sorted
        rebuilt = PipelineEvent.from_dict(json.loads(event.to_json()))
        assert rebuilt.seq == event.seq
        assert rebuilt.kind == event.kind
        assert rebuilt.fields == event.fields

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValidationError):
            PipelineEvent.from_dict({"schema": 99, "seq": 0, "kind": "run.start"})

    def test_render_event_is_one_line(self):
        event = PipelineEvent(seq=7, t=0.5, kind="chunk.finish", fields={"items": 4})
        line = render_event(event)
        assert "\n" not in line
        assert "chunk.finish" in line and "items=4" in line


class TestEventBus:
    def test_sequences_contiguously_from_zero(self):
        sink = MemoryTransport()
        bus = EventBus([sink])
        for kind in ("run.start", "stage.start", "stage.finish", "run.finish"):
            bus.emit(kind)
        assert [event.seq for event in sink.events] == [0, 1, 2, 3]

    def test_timestamps_are_monotonic_offsets_from_bus_epoch(self):
        clock = _FakeClock()
        sink = MemoryTransport()
        bus = EventBus([sink], clock=clock)
        clock.now += 1.5
        bus.emit("run.start")
        clock.now += 0.5
        bus.emit("run.finish")
        assert [event.t for event in sink.events] == [1.5, 2.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            EventBus().emit("made.up")

    def test_summary_counts_per_kind_sorted(self):
        bus = EventBus()
        bus.emit("stage.start")
        bus.emit("stage.finish")
        bus.emit("stage.start")
        assert bus.summary() == {"stage.finish": 1, "stage.start": 2}
        assert list(bus.summary()) == sorted(bus.summary())

    def test_forward_re_sequences_worker_events(self):
        sink = MemoryTransport()
        bus = EventBus([sink])
        bus.emit("run.start")
        worker_payload = {"schema": EVENT_SCHEMA, "seq": 999, "t": 42.0,
                          "kind": "cache.hit", "fields": {"item": 5}}
        forwarded = bus.forward(worker_payload)
        assert forwarded.seq == 1  # re-stamped, not 999
        assert forwarded.kind == "cache.hit"
        assert forwarded.fields == {"item": 5}

    def test_emission_is_thread_safe(self):
        sink = MemoryTransport()
        bus = EventBus([sink])

        def emit_many():
            for _ in range(200):
                bus.emit("chunk.finish", items=1)

        threads = [threading.Thread(target=emit_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(event.seq for event in sink.events) == list(range(800))
        assert bus.summary() == {"chunk.finish": 800}

    def test_null_bus_is_free_and_silent(self):
        assert NULL_BUS.recording is False
        assert NULL_BUS.emit("anything.goes", x=1) is None  # not even validated
        assert NULL_BUS.summary() == {}

    def test_use_bus_restores_previous(self):
        bus = EventBus()
        before = active_bus()
        with use_bus(bus):
            assert active_bus() is bus
        assert active_bus() is before

    def test_queue_transport_ships_dict_form(self):
        class FakeQueue:
            def __init__(self):
                self.items = []

            def put(self, item):
                self.items.append(item)

        queue = FakeQueue()
        bus = EventBus([QueueTransport(queue)])
        bus.emit("worker.failure", chunk=2)
        assert queue.items == [
            {"schema": EVENT_SCHEMA, "seq": 0, "t": queue.items[0]["t"],
             "kind": "worker.failure", "fields": {"chunk": 2}}
        ]


class TestFileTransportReplay:
    def _write_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        clock = _FakeClock()
        bus = EventBus([FileTransport(path)], clock=clock)
        bus.emit("run.start", seed=7)
        clock.now += 0.25
        bus.emit("stage.start", stage="observe")
        clock.now += 1.0
        bus.emit("stage.finish", stage="observe", seconds=1.0)
        bus.emit("run.finish", seconds=1.25)
        bus.close()
        return path

    def test_replay_is_deterministic_and_loss_free(self, tmp_path):
        path = self._write_log(tmp_path)
        events = read_events(path)
        assert [event.kind for event in events] == [
            "run.start", "stage.start", "stage.finish", "run.finish"
        ]
        assert [event.seq for event in events] == [0, 1, 2, 3]
        assert events[1].fields == {"stage": "observe"}
        # replaying again yields byte-identical renderings (the obs tail view)
        assert [render_event(e) for e in read_events(path)] == [
            render_event(e) for e in events
        ]

    def test_log_survives_validator(self, tmp_path):
        path = self._write_log(tmp_path)
        lines = path.read_text().splitlines()
        assert validate_events(lines) == []

    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        transport = FileTransport(path)
        bus = EventBus([transport])
        bus.emit("run.start")
        bus.close()
        bus.close()
        transport.handle(PipelineEvent(seq=9, t=0.0, kind="run.finish"))
        assert len(path.read_text().splitlines()) == 1

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        bus = EventBus([FileTransport(path)])
        bus.emit("run.start")
        bus.close()
        assert path.is_file()


class TestIterEvents:
    def test_partial_trailing_line_never_yielded(self, tmp_path):
        path = tmp_path / "events.jsonl"
        complete = PipelineEvent(seq=0, t=0.0, kind="run.start").to_json()
        path.write_text(complete + "\n" + '{"schema": 1, "seq": 1, "ki')
        events = list(iter_events(path))
        assert len(events) == 1
        assert events[0].kind == "run.start"

    def test_follow_picks_up_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(PipelineEvent(seq=0, t=0.0, kind="run.start").to_json() + "\n")
        seen = []
        done = threading.Event()

        def consume():
            for event in iter_events(path, follow=True, poll_seconds=0.01,
                                      stop=lambda: len(seen) >= 2):
                seen.append(event)
            done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        with path.open("a") as handle:
            handle.write(PipelineEvent(seq=1, t=0.1, kind="run.finish").to_json() + "\n")
        assert done.wait(timeout=10.0)
        thread.join()
        assert [event.kind for event in seen] == ["run.start", "run.finish"]

    def test_absent_file_without_follow_yields_nothing(self, tmp_path):
        assert list(iter_events(tmp_path / "missing.jsonl")) == []


class TestFilters:
    def test_parse_filters(self):
        assert parse_filters(["kind=stage.*", "stage=epm"]) == {
            "kind": "stage.*", "stage": "epm"
        }

    def test_parse_filters_rejects_bare_words(self):
        with pytest.raises(ValidationError):
            parse_filters(["stage"])

    def test_kind_exact_and_prefix_match(self):
        start = PipelineEvent(seq=0, t=0.0, kind="stage.start", fields={"stage": "epm"})
        finish = PipelineEvent(seq=1, t=0.0, kind="stage.finish", fields={"stage": "epm"})
        chunk = PipelineEvent(seq=2, t=0.0, kind="chunk.finish", fields={"items": 3})
        assert matches(start, {"kind": "stage.start"})
        assert not matches(finish, {"kind": "stage.start"})
        assert matches(start, {"kind": "stage.*"})
        assert matches(finish, {"kind": "stage.*"})
        assert not matches(chunk, {"kind": "stage.*"})

    def test_field_filters_and_semantics(self):
        event = PipelineEvent(seq=0, t=0.0, kind="stage.start", fields={"stage": "epm"})
        assert matches(event, {"stage": "epm"})
        assert not matches(event, {"stage": "observe"})
        assert not matches(event, {"kind": "stage.*", "stage": "observe"})
        assert matches(event, {})  # no filters match everything


class TestProgressRenderer:
    class _Sink:
        def __init__(self):
            self.text = ""

        def write(self, chunk):
            self.text += chunk

        def flush(self):
            pass

    def test_renders_stage_progress_and_eta(self):
        sink = self._Sink()
        bus = EventBus([ProgressRenderer(sink)])
        bus.emit("run.start", seed=7)
        bus.emit("stage.start", stage="enrich", depth=1)
        bus.emit("chunk.plan", backend="thread", chunks=2, items=10)
        bus.emit("chunk.finish", backend="thread", chunk=0, items=5, seconds=0.02)
        bus.emit("chunk.finish", backend="thread", chunk=1, items=5, seconds=0.02)
        bus.emit("stage.finish", stage="enrich", seconds=0.05)
        bus.emit("run.finish", seconds=0.06)
        lines = sink.text.splitlines()
        assert all(line.startswith("[progress] ") for line in lines)
        assert "run started seed=7" in lines[0]
        assert "enrich: chunks 1/2 items 5/10" in lines[1]
        assert "eta" in lines[1] and not lines[1].endswith("eta ?")
        assert "enrich: chunks 2/2 items 10/10" in lines[2]
        assert "enrich finished in 0.050s" in lines[3]
        assert "run finished" in lines[4]

    def test_eta_unknown_before_first_chunk(self):
        sink = self._Sink()
        renderer = ProgressRenderer(sink)
        assert renderer._eta() == "?"


class TestValidateEvents:
    def _lines(self, *events):
        return [event.to_json() for event in events]

    def test_good_log_is_valid(self):
        lines = self._lines(
            PipelineEvent(seq=0, t=0.0, kind="run.start"),
            PipelineEvent(seq=1, t=0.5, kind="run.finish"),
        )
        assert validate_events(lines) == []

    def test_sequence_gap_reported(self):
        lines = self._lines(
            PipelineEvent(seq=0, t=0.0, kind="run.start"),
            PipelineEvent(seq=2, t=0.5, kind="run.finish"),
        )
        errors = validate_events(lines)
        assert any("seq" in error and "expected 1" in error for error in errors)

    def test_unknown_kind_reported(self):
        lines = ['{"schema": 1, "seq": 0, "t": 0.0, "kind": "mystery.event", "fields": {}}']
        errors = validate_events(lines)
        assert any("unknown event kind" in error for error in errors)

    def test_wrong_schema_reported(self):
        lines = ['{"schema": 99, "seq": 0, "t": 0.0, "kind": "run.start", "fields": {}}']
        errors = validate_events(lines)
        assert any("schema" in error for error in errors)

    def test_unparsable_line_reported(self):
        errors = validate_events(["{not json"])
        assert any("does not parse" in error for error in errors)

    def test_backwards_timestamp_reported(self):
        lines = self._lines(
            PipelineEvent(seq=0, t=5.0, kind="run.start"),
            PipelineEvent(seq=1, t=1.0, kind="run.finish"),
        )
        errors = validate_events(lines)
        assert any("t" in error for error in errors)

    def test_every_taxonomy_kind_passes(self):
        lines = self._lines(*[
            PipelineEvent(seq=index, t=float(index), kind=kind)
            for index, kind in enumerate(EVENT_KINDS)
        ])
        assert validate_events(lines) == []


class TestCrosscheckEvents:
    def _log(self, n_stage_finishes, extra_kinds=()):
        events = []
        for index in range(n_stage_finishes):
            events.append(PipelineEvent(seq=len(events), t=float(index),
                                        kind="stage.finish", fields={"stage": f"s{index}"}))
        for kind in extra_kinds:
            events.append(PipelineEvent(seq=len(events), t=99.0, kind=kind))
        return [event.to_json() for event in events]

    def _manifest(self, n_spans, event_summary=None):
        children = [{"name": f"s{index}", "seconds": 0.1, "children": []}
                    for index in range(n_spans)]
        manifest = {"span_tree": {"name": "scenario", "children": children}}
        if event_summary is not None:
            manifest["event_summary"] = event_summary
        return manifest

    def test_matching_counts_pass(self):
        lines = self._log(3, extra_kinds=("run.start", "run.finish"))
        manifest = self._manifest(3, {"stage.finish": 3, "run.start": 1})
        assert crosscheck_events(lines, manifest) == []

    def test_span_count_mismatch_reported(self):
        errors = crosscheck_events(self._log(2), self._manifest(3))
        assert any("stage.finish" in error for error in errors)

    def test_log_may_carry_extra_session_events(self):
        # the CLI session bus records cache events outside the run
        lines = self._log(1, extra_kinds=("cache.miss", "cache.store"))
        manifest = self._manifest(1, {"stage.finish": 1})
        assert crosscheck_events(lines, manifest) == []

    def test_log_with_fewer_than_claimed_fails(self):
        lines = self._log(1)
        manifest = self._manifest(1, {"cache.hit": 2})
        errors = crosscheck_events(lines, manifest)
        assert any("cache.hit" in error for error in errors)

    def test_drop_accounted_shortfall_passes(self):
        """kept + dropped >= claimed: rotation losses are not errors."""
        lines = self._log(1, extra_kinds=("run.finish",))
        manifest = self._manifest(3, {"stage.finish": 3, "run.finish": 1})
        manifest["event_drops"] = {"file": {"stage.finish": 2}}
        assert crosscheck_events(lines, manifest) == []

    def test_unaccounted_shortfall_still_fails(self):
        lines = self._log(1)
        manifest = self._manifest(3, {"stage.finish": 3})
        manifest["event_drops"] = {"file": {"stage.finish": 1}}  # one short
        errors = crosscheck_events(lines, manifest)
        assert any("drop-accounted" in error for error in errors)

    def test_ring_drops_do_not_excuse_the_file_log(self):
        """Only the file sink's own drops explain gaps in the file log."""
        lines = self._log(1)
        manifest = self._manifest(3, {"stage.finish": 3})
        manifest["event_drops"] = {"ring": {"stage.finish": 2}}
        errors = crosscheck_events(lines, manifest)
        assert any("stage.finish" in error for error in errors)


class TestRingTransport:
    def _bus(self, capacity):
        ring = RingTransport(capacity)
        return ring, EventBus([ring])

    def test_keeps_only_the_newest_events(self):
        ring, bus = self._bus(3)
        for index in range(7):
            bus.emit("chunk.finish", chunk=index)
        assert [event.fields["chunk"] for event in ring.events] == [4, 5, 6]

    def test_counts_every_eviction_per_kind(self):
        ring, bus = self._bus(2)
        bus.emit("run.start")
        for _ in range(4):
            bus.emit("chunk.finish")
        bus.emit("run.finish")
        # 6 emitted, 2 resident: 4 evictions, split by kind of the victim
        assert sum(ring.drops().values()) == 4
        assert ring.drops() == {"run.start": 1, "chunk.finish": 3}
        assert len(ring.events) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            RingTransport(0)

    def test_memory_stays_bounded_over_long_streams(self):
        """>= 10x capacity streamed through; residency stays O(capacity)
        and every overflow is accounted — nothing silently vanishes."""
        capacity = 32
        ring, bus = self._bus(capacity)
        total = capacity * 10
        for index in range(total):
            bus.emit("chunk.finish", chunk=index)
        assert len(ring.events) == capacity
        assert ring.drops() == {"chunk.finish": total - capacity}
        assert sum(ring.drops().values()) + len(ring.events) == total


class TestFileRotation:
    def _line_size(self):
        return len(PipelineEvent(seq=0, t=0.0, kind="run.start").to_json()) + 1

    def test_rotates_at_the_size_cap_and_counts_drops(self, tmp_path):
        path = tmp_path / "events.jsonl"
        transport = FileTransport(path, max_bytes=self._line_size() * 3, backups=1)
        bus = EventBus([transport])
        for _ in range(8):
            bus.emit("run.start")
        bus.close()
        assert transport.rotations >= 1
        live = len(path.read_text().splitlines())
        backup = len((tmp_path / "events.jsonl.1").read_text().splitlines())
        # every event is either in the live file or drop-accounted
        assert live + transport.drops()["run.start"] == 8
        assert backup <= 3

    def test_backup_generations_shift_and_oldest_dies(self, tmp_path):
        path = tmp_path / "events.jsonl"
        transport = FileTransport(path, max_bytes=self._line_size(), backups=2)
        bus = EventBus([transport])
        for _ in range(5):
            bus.emit("run.start")
        bus.close()
        assert (tmp_path / "events.jsonl.1").is_file()
        assert (tmp_path / "events.jsonl.2").is_file()
        assert not (tmp_path / "events.jsonl.3").exists()

    def test_rotated_live_log_still_validates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        clock = _FakeClock()
        bus = EventBus(
            [FileTransport(path, max_bytes=self._line_size() * 2)], clock=clock
        )
        for _ in range(7):
            clock.now += 0.1
            bus.emit("run.start")
        bus.close()
        assert validate_events(path.read_text().splitlines()) == []

    def test_rotation_needs_sane_knobs(self, tmp_path):
        with pytest.raises(ValidationError):
            FileTransport(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValidationError):
            FileTransport(tmp_path / "e.jsonl", backups=0)


class TestDropAccounting:
    def test_drop_counts_aggregates_by_transport_name(self):
        ring = RingTransport(1)
        bus = EventBus([ring, MemoryTransport()])
        bus.emit("run.start")
        bus.emit("run.finish")
        assert bus.drop_counts() == {"ring": {"run.start": 1}}

    def test_flush_drops_emits_one_announcement_per_transport(self):
        ring = RingTransport(2)
        memory = MemoryTransport()
        bus = EventBus([ring, memory])
        for _ in range(4):
            bus.emit("chunk.finish")
        announced = bus.flush_drops()
        assert announced == {"ring": {"chunk.finish": 2}}
        drop_events = [e for e in memory.events if e.kind == "transport.drop"]
        assert len(drop_events) == 1
        assert drop_events[0].fields["transport"] == "ring"
        assert drop_events[0].fields["kinds"] == {"chunk.finish": 2}

    def test_flush_drops_is_silent_when_nothing_dropped(self):
        memory = MemoryTransport()
        bus = EventBus([memory])
        bus.emit("run.finish")
        assert bus.flush_drops() == {}
        assert [e.kind for e in memory.events] == ["run.finish"]

    def test_interarrival_sketch_tracks_gaps(self):
        clock = _FakeClock()
        bus = EventBus([MemoryTransport()], clock=clock)
        for gap in (0.5, 0.25, 1.0):
            clock.now += gap
            bus.emit("chunk.finish")
        payload = bus.interarrival()
        assert payload["count"] == 2  # gaps between 3 events
        assert payload["min"] == pytest.approx(0.25)
        assert payload["max"] == pytest.approx(1.0)


class TestIterEventsRotation:
    def test_follow_survives_truncation_and_rewrite(self, tmp_path):
        path = tmp_path / "events.jsonl"
        # long first event: the rewrite below is unambiguously smaller
        # than the reader's position (the truncation signal)
        path.write_text(
            PipelineEvent(
                seq=0, t=0.0, kind="run.start", fields={"note": "x" * 200}
            ).to_json()
            + "\n"
        )
        seen = []
        done = threading.Event()

        def consume():
            for event in iter_events(path, follow=True, poll_seconds=0.01,
                                     stop=lambda: len(seen) >= 2):
                seen.append(event)
            done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            # wait until the first event is consumed, then truncate:
            # the file shrinks below the reader's position
            for _ in range(1000):
                if seen:
                    break
                threading.Event().wait(0.01)
            path.write_text(
                PipelineEvent(seq=5, t=9.0, kind="run.finish").to_json() + "\n"
            )
            assert done.wait(timeout=10.0)
        finally:
            thread.join(timeout=10.0)
        assert [event.kind for event in seen] == ["run.start", "run.finish"]

    def test_follow_survives_rotation_replacing_the_inode(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            PipelineEvent(seq=0, t=0.0, kind="run.start").to_json() + "\n"
        )
        seen = []
        done = threading.Event()

        def consume():
            for event in iter_events(path, follow=True, poll_seconds=0.01,
                                     stop=lambda: len(seen) >= 2):
                seen.append(event)
            done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            for _ in range(1000):
                if seen:
                    break
                threading.Event().wait(0.01)
            # size-based rotation: live file moves aside, a fresh inode
            # (here longer than the consumed prefix) appears at path
            path.replace(tmp_path / "events.jsonl.1")
            fresh = tmp_path / "fresh.jsonl"
            fresh.write_text(
                PipelineEvent(
                    seq=7, t=10.0, kind="run.finish", fields={"note": "x" * 200}
                ).to_json()
                + "\n"
            )
            fresh.replace(path)
            assert done.wait(timeout=10.0)
        finally:
            thread.join(timeout=10.0)
        assert [event.kind for event in seen] == ["run.start", "run.finish"]
