"""Hierarchical trace spans: nesting, export, the legacy timings view."""

import time

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    TraceSpan,
    current_tracer,
    use_tracer,
)
from repro.util.timing import StageTimings
from repro.util.validation import ValidationError


class TestTracer:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer("scenario")
        with tracer.span("enrich"):
            with tracer.span("av_scan"):
                pass
            with tracer.span("sandbox_batch"):
                pass
        root = tracer.finish()
        assert [child.name for child in root.children] == ["enrich"]
        assert [g.name for g in root.children[0].children] == [
            "av_scan",
            "sandbox_batch",
        ]

    def test_spans_measure_elapsed_time(self):
        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.02)
        root = tracer.finish()
        assert root.find("sleepy").seconds >= 0.015
        assert root.seconds == pytest.approx(root.children[0].seconds)

    def test_attributes_attach_at_open_and_inside(self):
        tracer = Tracer()
        with tracer.span("observe", sensors=30) as span:
            span.set(events=346)
        observed = tracer.finish().find("observe")
        assert observed.attributes == {"sensors": 30, "events": 346}

    def test_span_closes_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("nope")
        root = tracer.finish()
        assert root.find("doomed") is not None
        assert tracer.current is root

    def test_finish_rejects_open_spans(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with pytest.raises(ValidationError):
                tracer.finish()

    def test_empty_span_name_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValidationError):
            with tracer.span(""):
                pass

    def test_spans_record_start_offsets_from_the_epoch(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        root = tracer.finish()
        first, second = root.children
        assert root.start == 0.0
        assert first.start is not None and first.start >= 0.0
        assert second.start >= first.start + first.seconds
        exported = root.export()
        assert exported["start"] == 0.0
        assert "start" in exported["children"][0]

    def test_hand_built_spans_have_no_start(self):
        span = TraceSpan("loose", seconds=1.0)
        assert span.start is None
        assert "start" not in span.export()


class TestTraceSpan:
    def _tree(self) -> TraceSpan:
        root = TraceSpan("scenario", seconds=3.0)
        stage = root.child("bcluster")
        stage.seconds = 2.0
        stage.set(clusters=6)
        sub = stage.child("lsh.index")
        sub.seconds = 1.5
        other = root.child("observe")
        other.seconds = 1.0
        return root

    def test_walk_is_preorder_with_depths(self):
        visits = [(depth, span.name) for depth, span in self._tree().walk()]
        assert visits == [
            (0, "scenario"),
            (1, "bcluster"),
            (2, "lsh.index"),
            (1, "observe"),
        ]

    def test_find_searches_depth_first(self):
        root = self._tree()
        assert root.find("lsh.index").seconds == 1.5
        assert root.find("nope") is None

    def test_export_shape(self):
        exported = self._tree().export()
        assert exported["name"] == "scenario"
        assert exported["seconds"] == 3.0
        stage = exported["children"][0]
        assert stage["attributes"] == {"clusters": 6}
        assert stage["children"][0]["name"] == "lsh.index"
        # Leaves without attributes/children omit those keys entirely.
        leaf = exported["children"][1]
        assert set(leaf) == {"name", "seconds"}

    def test_stage_timings_views_direct_children_only(self):
        timings = self._tree().stage_timings()
        assert isinstance(timings, StageTimings)
        assert timings.as_dict() == pytest.approx({"bcluster": 2.0, "observe": 1.0})
        with pytest.raises(KeyError):
            timings.seconds("lsh.index")  # nested spans stay out of the flat view

    def test_render_shows_nesting_shares_and_attributes(self):
        text = self._tree().render()
        assert "scenario" in text and "  bcluster" in text
        assert "    lsh.index" in text
        assert "clusters=6" in text
        assert "100.0%" in text


class TestActivation:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("stage"):
                pass
        assert current_tracer() is NULL_TRACER
        assert tracer.finish().find("stage") is not None

    def test_null_tracer_spans_are_free_no_ops(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(more=2)  # must not raise; records nothing
