"""The structured logger: namespacing, formatters, reconfiguration."""

import io
import json
import logging

import pytest

from repro.obs.log import (
    ConsoleFormatter,
    JsonLineFormatter,
    configure_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Leave the shared 'repro' logger the way the session found it."""
    logger = logging.getLogger("repro")
    saved = list(logger.handlers)
    saved_level = logger.level
    yield
    logger.handlers[:] = saved
    logger.setLevel(saved_level)


def _record(message: str, **fields) -> logging.LogRecord:
    record = logging.LogRecord(
        "repro.cli", logging.INFO, __file__, 1, message, (), None
    )
    for key, value in fields.items():
        setattr(record, key, value)
    return record


class TestGetLogger:
    def test_names_land_under_the_library_namespace(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro.cli").name == "repro.cli"


class TestConsoleFormatter:
    def test_renders_level_logger_and_message(self):
        line = ConsoleFormatter().format(_record("scenario starting"))
        assert line == "[info   ] repro.cli: scenario starting"

    def test_structured_fields_trail_sorted(self):
        line = ConsoleFormatter().format(_record("done", seconds=1.5, events=10))
        assert line.endswith("done  events=10 seconds=1.5")


class TestJsonLineFormatter:
    def test_one_parseable_object_per_record(self):
        payload = json.loads(
            JsonLineFormatter().format(_record("done", events=10))
        )
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.cli"
        assert payload["message"] == "done"
        assert payload["events"] == 10
        assert "ts" in payload

    def test_non_json_values_fall_back_to_repr(self):
        payload = json.loads(
            JsonLineFormatter().format(_record("done", path={1, 2}))
        )
        assert isinstance(payload["path"], str)


class TestConfigureLogging:
    def test_console_lines_reach_the_stream(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("test").info("hello", extra={"n": 3})
        assert "[info   ] repro.test: hello  n=3" in stream.getvalue()

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("test").info("quiet")
        get_logger("test").warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output and "loud" in output

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loudest")

    def test_reconfigure_replaces_managed_handlers_only(self):
        foreign = logging.NullHandler()
        logger = logging.getLogger("repro")
        logger.addHandler(foreign)
        configure_logging("info", stream=io.StringIO())
        configure_logging("debug", stream=io.StringIO())
        managed = [h for h in logger.handlers if getattr(h, "_repro_obs_managed", False)]
        assert len(managed) == 1  # not accumulated across reconfigurations
        assert foreign in logger.handlers

    def test_json_sink_writes_json_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        configure_logging("info", json_path=str(path), stream=io.StringIO())
        get_logger("test").info("structured", extra={"events": 7})
        lines = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        assert any(
            entry["message"] == "structured" and entry["events"] == 7
            for entry in lines
        )

    def test_does_not_touch_the_root_logger(self):
        before = list(logging.getLogger().handlers)
        configure_logging("info", stream=io.StringIO())
        assert list(logging.getLogger().handlers) == before
