"""The ``repro obs top`` view: accumulator, render, follow mode."""

import threading

from repro.obs.events import EventBus, FileTransport, PipelineEvent
from repro.obs.top import TOP_WINDOW, TopAccumulator, render_top, top_from_events


def _event(seq, t, kind, **fields):
    return PipelineEvent(seq=seq, t=t, kind=kind, fields=fields)


def _sample_events():
    return [
        _event(0, 0.0, "run.start", seed=7, weeks=8, scale=0.1, executor="thread"),
        _event(1, 0.1, "stage.start", stage="observe"),
        _event(2, 0.4, "chunk.finish", chunk=0, items=5, seconds=0.3, rss_kb=40000),
        _event(3, 0.8, "chunk.finish", chunk=1, items=5, seconds=0.4, rss_kb=41000),
        _event(4, 0.9, "stage.finish", stage="observe", seconds=0.8),
        _event(5, 1.0, "transport.drop", transport="ring", dropped=3,
               kinds={"cache.hit": 3}),
        _event(6, 1.1, "run.finish", seconds=1.1),
    ]


class TestTopAccumulator:
    def test_folds_the_stream_into_machine_state(self):
        accumulator = TopAccumulator()
        for event in _sample_events():
            accumulator.feed(event)
        state = accumulator.snapshot()
        assert state["meta"]["seed"] == 7
        assert state["n_events"] == 7
        assert state["items_done"] == 10
        assert state["chunk_seconds"] == [0.3, 0.4]
        assert state["peak_rss_kb"] == 41000.0
        assert state["stages_done"] == 1
        assert state["drops"] == {"ring": {"cache.hit": 3}}
        assert state["finished"] is True
        assert state["rate"] > 0

    def test_feed_flags_redraw_only_on_work_events(self):
        accumulator = TopAccumulator()
        assert accumulator.feed(_event(0, 0.0, "run.start")) is False
        assert accumulator.feed(_event(1, 0.1, "cache.hit")) is False
        assert accumulator.feed(
            _event(2, 0.2, "chunk.finish", seconds=0.1)
        ) is True

    def test_memory_is_bounded_by_the_window(self):
        accumulator = TopAccumulator()
        for index in range(TOP_WINDOW * 10):
            accumulator.feed(
                _event(index, index * 0.1, "chunk.finish",
                       seconds=0.1, rss_kb=1000 + index)
            )
        assert len(accumulator.chunk_seconds) == TOP_WINDOW
        assert len(accumulator.rss_kb) == TOP_WINDOW
        assert len(accumulator.gaps) == TOP_WINDOW
        assert accumulator.n_events == TOP_WINDOW * 10

    def test_snapshot_is_deterministic(self):
        a, b = TopAccumulator(), TopAccumulator()
        for event in _sample_events():
            a.feed(event)
            b.feed(event)
        assert a.snapshot() == b.snapshot()


class TestRenderTop:
    def test_render_is_a_pure_function_of_state(self):
        accumulator = TopAccumulator()
        for event in _sample_events():
            accumulator.feed(event)
        state = accumulator.snapshot()
        assert render_top(state) == render_top(state)

    def test_render_names_the_load_bearing_numbers(self):
        text = top_from_events(_sample_events())
        assert "seed 7" in text
        assert "finished" in text
        assert "items=10" in text
        assert "peak=41000" in text
        assert "drops    ring=3 (cache.hit=3)" in text

    def test_render_without_drops_says_none(self):
        text = top_from_events(_sample_events()[:3])
        assert "drops    none" in text

    def test_empty_stream_renders(self):
        assert "n=0" in top_from_events([])


class TestFollowTop:
    class _Sink:
        def __init__(self):
            self.text = ""

        def write(self, chunk):
            self.text += chunk

        def flush(self):
            pass

    def test_follow_draws_frames_as_events_arrive(self, tmp_path):
        from repro.obs.top import follow_top

        path = tmp_path / "events.jsonl"
        bus = EventBus([FileTransport(path)])
        bus.emit("run.start", seed=7)
        sink = self._Sink()
        frames = []
        done = threading.Event()

        def consume():
            frames.append(
                follow_top(path, sink, poll_seconds=0.01,
                           stop=lambda: "finished" in sink.text)
            )
            done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            bus.emit("chunk.finish", chunk=0, items=4, seconds=0.1)
            bus.emit("run.finish", seconds=0.5)
            bus.close()
            assert done.wait(timeout=10.0)
        finally:
            thread.join(timeout=10.0)
        assert frames[0] >= 2  # one per redraw kind seen
        assert "repro top" in sink.text


class TestCliEntry:
    def test_obs_top_writes_an_artifact(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        bus = EventBus([FileTransport(path)])
        bus.emit("run.start", seed=9)
        bus.emit("chunk.finish", chunk=0, items=2, seconds=0.2)
        bus.emit("run.finish", seconds=0.4)
        bus.close()
        out = tmp_path / "top.txt"
        assert main(["obs", "top", str(path), "--out", str(out)]) == 0
        rendered = out.read_text()
        assert "repro top" in rendered
        assert "seed 9" in rendered
        assert "wrote top view" in capsys.readouterr().out

    def test_obs_top_prints_to_stdout(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        bus = EventBus([FileTransport(path)])
        bus.emit("run.finish", seconds=0.4)
        bus.close()
        assert main(["obs", "top", str(path)]) == 0
        assert "repro top" in capsys.readouterr().out
