"""Cross-run regression detection: scanners, rules, reports, baselines."""

import json

import pytest

from repro.obs.manifest import RunManifest
from repro.obs.query import frame_from_payloads
from repro.obs.regress import (
    DEFAULT_RULES,
    DETECTORS,
    METRIC_RULES,
    TIMING_RULES,
    RegressionReport,
    RegressRule,
    band_scan,
    ewma_scan,
    new_findings,
    page_hinkley_scan,
    relabel_timing_rules,
    run_regression,
)
from repro.util.canonical import canonical_digest
from repro.util.validation import ValidationError

METRIC_RULE = RegressRule(
    name="clusters", target="metric:lsh.clusters", severity="critical"
)
TIMING_RULE = RegressRule(
    name="observe-seconds",
    target="span:observe",
    severity="warning",
    tolerance=1.5,
    noise_floor=0.05,
)


def _payload(
    *,
    fingerprint: str = "ab" * 32,
    clusters: float = 9.0,
    observe_seconds: float = 1.0,
    observe_cache: str = "off",
    created_at: str = "2026-01-01T00:00:00Z",
) -> dict:
    return RunManifest(
        fingerprint=fingerprint,
        seed=7,
        config={"n_weeks": 10},
        library_version="1.0.0",
        span_tree={
            "name": "scenario",
            "seconds": observe_seconds + 0.5,
            "children": [
                {
                    "name": "observe",
                    "seconds": observe_seconds,
                    "attributes": {"cache": observe_cache},
                }
            ],
        },
        metrics={
            "schema": 1,
            "counters": {},
            "gauges": {"lsh.clusters": clusters},
            "histograms": {},
        },
        created_at=created_at,
    ).as_dict()


def _series_payloads(clusters, fingerprint="ab" * 32):
    return [
        _payload(
            fingerprint=fingerprint,
            clusters=value,
            created_at=f"2026-01-{day:02d}T00:00:00Z",
        )
        for day, value in enumerate(clusters, start=1)
    ]


class TestRegressRule:
    def test_defaults_run_every_detector(self):
        assert METRIC_RULE.detectors == DETECTORS

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"severity": "fatal"},
            {"detectors": ()},
            {"detectors": ("cusum",)},
            {"tolerance": 0.9},
            {"target": "lsh.clusters"},
        ],
    )
    def test_invalid_rules_rejected(self, kwargs):
        base = {
            "name": "r",
            "target": "metric:lsh.clusters",
            "severity": "critical",
        }
        with pytest.raises(ValidationError):
            RegressRule(**{**base, **kwargs})

    def test_shipped_rule_set_is_metric_plus_timing(self):
        assert DEFAULT_RULES == METRIC_RULES + TIMING_RULES
        assert all(rule.severity == "critical" for rule in METRIC_RULES)
        assert all(rule.severity == "warning" for rule in TIMING_RULES)


class TestBandScan:
    def test_constant_series_is_silent(self):
        assert band_scan(METRIC_RULE, [9.0] * 6) == []

    def test_step_flagged_at_its_position_against_trailing_median(self):
        alarms = band_scan(METRIC_RULE, [9.0, 9.0, 9.0, 27.0])
        assert len(alarms) == 1
        assert alarms[0]["position"] == 3
        assert alarms[0]["reference"] == 9.0
        assert alarms[0]["score"] == pytest.approx(3.0)

    def test_one_point_of_history_suffices(self):
        # The obs-diff pairwise check is the two-run special case.
        assert band_scan(METRIC_RULE, [9.0, 27.0])[0]["position"] == 1

    def test_drops_flag_symmetrically_with_rises(self):
        assert band_scan(METRIC_RULE, [9.0, 9.0, 3.0])[0]["score"] == (
            pytest.approx(3.0)
        )

    def test_noise_floor_absorbs_small_absolute_moves(self):
        # 0.04s jitter is a huge *ratio* on a 0.02s span but sits under
        # the 50ms floor: timing rules must not alarm on it.
        assert band_scan(TIMING_RULE, [0.02, 0.06]) == []
        assert band_scan(TIMING_RULE, [0.02, 0.5]) != []

    def test_zero_history_median_flags_any_nonzero_value(self):
        alarms = band_scan(METRIC_RULE, [0.0, 5.0])
        assert len(alarms) == 1 and alarms[0]["score"] == float("inf")

    def test_sign_flip_is_always_out_of_band(self):
        assert band_scan(METRIC_RULE, [4.0, -4.0])[0]["score"] == float("inf")


class TestEwmaScan:
    def test_constant_series_is_silent(self):
        # Zero variance means no z-score is defined; the var>0 guard
        # keeps byte-identical replays from dividing by zero or alarming.
        assert ewma_scan(METRIC_RULE, [9.0] * 8) == []

    def test_step_after_noisy_history_is_flagged(self):
        series = [10.0, 10.2, 9.8, 10.1, 9.9, 20.0]
        alarms = ewma_scan(METRIC_RULE, series)
        assert [alarm["position"] for alarm in alarms] == [5]
        assert alarms[0]["score"] > METRIC_RULE.zscore

    def test_jitter_within_band_is_silent(self):
        assert ewma_scan(METRIC_RULE, [10.0, 10.2, 9.8, 10.1, 9.9, 10.05]) == []

    def test_needs_min_history_before_alarming(self):
        # The step sits at position 2 — before three runs of history,
        # so only the band detector may catch it.
        assert ewma_scan(METRIC_RULE, [10.0, 10.2, 30.0]) == []


class TestPageHinkleyScan:
    def test_constant_series_is_silent(self):
        assert page_hinkley_scan(METRIC_RULE, [100.0] * 10) == []

    def test_small_jitter_is_silent(self):
        series = [100.0, 100.5, 99.5, 100.2, 99.8, 100.1, 99.9, 100.3]
        assert page_hinkley_scan(METRIC_RULE, series) == []

    def test_slow_creep_is_flagged(self):
        # +3 per run never trips a single-step band but accumulates.
        series = [100.0 + 3.0 * i for i in range(12)]
        alarms = page_hinkley_scan(METRIC_RULE, series)
        assert alarms, "creep must accumulate into an alarm"
        assert all(alarm["score"] > alarm["threshold"] for alarm in alarms)

    def test_statistics_reset_after_an_alarm(self):
        creep = [100.0 + 3.0 * i for i in range(12)]
        series = creep + [creep[-1]] * 10
        positions = [
            alarm["position"] for alarm in page_hinkley_scan(METRIC_RULE, series)
        ]
        # Without the post-alarm reset the statistic only grows, so
        # every later run would alarm; with it, alarms stay sparse.
        assert len(positions) < (len(series) - positions[0]) / 2
        assert all(b - a > 1 for a, b in zip(positions, positions[1:]))


class TestRunRegression:
    def test_identical_replays_are_silent(self):
        frame = frame_from_payloads(_series_payloads([9.0, 9.0, 9.0]))
        report = run_regression(frame)
        assert report.findings == []
        assert report.runs_scanned == 3
        assert report.fingerprints_scanned == 1

    def test_injected_bump_attributed_to_the_offending_run(self):
        payloads = _series_payloads([9.0, 9.0, 9.0, 27.0])
        frame = frame_from_payloads(payloads)
        report = run_regression(frame, rules=METRIC_RULES)
        assert report.findings, "a 3x cluster bump must flag"
        bumped_id = canonical_digest(payloads[-1])[:16]
        assert {f.run_id for f in report.findings} == {bumped_id}
        assert {f.target for f in report.findings} == {"metric:lsh.clusters"}
        assert {f.detector for f in report.findings} == {"band", "page_hinkley"}
        assert all(f.severity == "critical" for f in report.findings)

    def test_series_are_built_per_fingerprint(self):
        # A lone run of another config must neither trend nor pollute
        # the first config's series.
        payloads = _series_payloads([9.0, 9.0, 9.0]) + [
            _payload(fingerprint="cd" * 32, clusters=500.0)
        ]
        report = run_regression(frame_from_payloads(payloads))
        assert report.findings == []
        assert report.fingerprints_scanned == 1
        assert report.runs_scanned == 4

    def test_fingerprint_filter_restricts_the_scan(self):
        payloads = _series_payloads([9.0, 27.0]) + _series_payloads(
            [5.0, 5.0], fingerprint="cd" * 32
        )
        frame = frame_from_payloads(payloads)
        assert run_regression(frame, fingerprint="cdcd").findings == []
        assert run_regression(frame, fingerprint="abab").findings != []

    def test_replayed_spans_are_skipped_not_zeroed(self):
        # Middle run replayed observe from the stage store: its wall
        # time is absent, and the flagged run must still map back to
        # the right row.
        payloads = [
            _payload(observe_seconds=1.0, created_at="2026-01-01T00:00:00Z"),
            _payload(
                observe_seconds=0.001,
                observe_cache="hit",
                created_at="2026-01-02T00:00:00Z",
            ),
            _payload(observe_seconds=10.0, created_at="2026-01-03T00:00:00Z"),
        ]
        report = run_regression(
            frame_from_payloads(payloads), rules=[TIMING_RULE]
        )
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.run_id == canonical_digest(payloads[-1])[:16]
        assert finding.value == 10.0
        assert finding.reference == 1.0  # the cache hit never entered

    def test_findings_rank_critical_before_warning(self):
        payloads = [
            _payload(
                clusters=value,
                observe_seconds=seconds,
                created_at=f"2026-01-{day:02d}T00:00:00Z",
            )
            for day, (value, seconds) in enumerate(
                [(9.0, 1.0), (9.0, 1.0), (27.0, 10.0)], start=1
            )
        ]
        report = run_regression(frame_from_payloads(payloads))
        severities = [finding.severity for finding in report.findings]
        assert "critical" in severities and "warning" in severities
        assert severities == sorted(
            severities, key=["critical", "warning", "info"].index
        )
        assert report.worst() == "critical"
        assert len(report.at_or_above("critical")) < len(
            report.at_or_above("warning")
        )


class TestBaselines:
    def _report(self):
        return run_regression(
            frame_from_payloads(_series_payloads([9.0, 9.0, 9.0, 27.0])),
            rules=METRIC_RULES,
        )

    def test_no_baseline_means_everything_is_new(self):
        report = self._report()
        assert new_findings(report, None) == report.findings

    def test_known_detector_target_pairs_stay_suppressed(self):
        report = self._report()
        # The baseline was recorded on an *older* store: same detector
        # and target, different run ids — must still suppress.
        baseline = run_regression(
            frame_from_payloads(_series_payloads([9.0, 9.0, 27.0])),
            rules=METRIC_RULES,
        )
        assert baseline.findings
        assert new_findings(report, baseline) == []

    def test_fresh_target_trips_despite_baseline(self):
        report = self._report()
        baseline = RegressionReport(
            findings=[
                f for f in report.findings if f.detector == "page_hinkley"
            ]
        )
        fresh = new_findings(report, baseline)
        assert {f.detector for f in fresh} == {"band"}


class TestRegressionReport:
    def test_round_trips_through_json(self):
        report = run_regression(
            frame_from_payloads(_series_payloads([9.0, 9.0, 27.0])),
            rules=METRIC_RULES,
        )
        restored = RegressionReport.from_dict(json.loads(report.to_json()))
        assert restored.digest() == report.digest()
        assert restored.findings == report.findings

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValidationError):
            RegressionReport.from_dict({"schema": 99, "findings": []})

    def test_render_names_counts_and_targets(self):
        report = run_regression(
            frame_from_payloads(_series_payloads([9.0, 9.0, 27.0])),
            rules=METRIC_RULES,
        )
        text = report.render()
        assert "critical" in text
        assert "metric:lsh.clusters" in text
        assert "configuration(s)" in text

    def test_clean_report_renders_clean(self):
        report = run_regression(
            frame_from_payloads(_series_payloads([9.0, 9.0]))
        )
        assert "clean" in report.render()
        assert report.worst() is None
        assert report.summary() == {"info": 0, "warning": 0, "critical": 0}


class TestRelabelTimingRules:
    def test_promotes_only_span_rules(self):
        promoted = relabel_timing_rules(DEFAULT_RULES, "critical")
        assert all(rule.severity == "critical" for rule in promoted)
        by_name = {rule.name: rule for rule in promoted}
        # Metric rules pass through as the very same objects.
        assert by_name["bcluster-count"] is METRIC_RULES[0]
        assert by_name["observe-seconds"] is not TIMING_RULES[1]

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValidationError):
            relabel_timing_rules(DEFAULT_RULES, "fatal")
