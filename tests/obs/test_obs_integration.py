"""Observability wired through the pipeline: counters, cache, determinism."""

import pytest

from repro.experiments.cache import ScenarioCache, cached_run
from repro.experiments.scenario import (
    ScenarioConfig,
    small_scenario,
)
from repro.honeypot.deployment import DeploymentConfig
from repro.obs import metrics as obs_metrics
from repro.obs.manifest import artifact_digests
from repro.obs.metrics import MetricsRegistry
from repro.obs.validate import (
    REQUIRED_SCENARIO_METRICS,
    validate_manifest,
    validate_metrics,
)

TINY = ScenarioConfig(
    n_weeks=10,
    scale=0.08,
    deployment=DeploymentConfig(n_networks=6, sensors_per_network=2),
)


@pytest.fixture(scope="module")
def tiny_run():
    return small_scenario(seed=7, scale=0.08, n_weeks=10)


class TestScenarioMetrics:
    def test_every_required_metric_is_emitted(self, tiny_run):
        assert REQUIRED_SCENARIO_METRICS <= tiny_run.metrics.names()

    def test_snapshot_conforms_to_the_catalogue(self, tiny_run):
        errors = validate_metrics(
            tiny_run.metrics.as_dict(), require_scenario=True
        )
        assert errors == []

    def test_manifest_conforms(self, tiny_run):
        assert validate_manifest(tiny_run.manifest.as_dict()) == []

    def test_counters_reflect_the_pipeline(self, tiny_run):
        metrics = tiny_run.metrics
        assert metrics.counter("honeypot.events_observed") == len(tiny_run.dataset)
        assert metrics.counter("honeypot.samples_collected") == (
            tiny_run.dataset.n_samples
        )
        assert metrics.total("epm.patterns_discovered") > 0
        assert metrics.total("sandbox.executions") > 0
        for dimension in ("epsilon", "pi", "mu"):
            assert metrics.counter("epm.observations", dimension=dimension) > 0
        assert metrics.gauge(
            "lsh.clusters"
        ) == tiny_run.bclusters.n_clusters

    def test_timings_remain_a_view_over_the_trace(self, tiny_run):
        assert tiny_run.trace is not None
        assert tiny_run.timings.as_dict() == (
            tiny_run.trace.stage_timings().as_dict()
        )

    def test_counters_and_gauges_deterministic_per_seed(self, tiny_run):
        again = small_scenario(seed=7, scale=0.08, n_weeks=10)
        # Counters and gauges are pure functions of the seed; only the
        # latency histograms may differ between runs.
        assert again.metrics.counters == tiny_run.metrics.counters
        assert again.metrics.gauges == tiny_run.metrics.gauges

    def test_disabled_observability_leaves_artifacts_untouched(self, tiny_run):
        with obs_metrics.use(MetricsRegistry()):
            recorded = small_scenario(seed=7, scale=0.08, n_weeks=10)
        assert artifact_digests(recorded) == artifact_digests(tiny_run)


class TestCacheMetrics:
    def test_miss_then_hit_across_two_runs(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            cached_run(7, TINY, cache=cache)
        first = registry.snapshot()
        assert first.counter("cache.miss") == 1
        assert first.counter("cache.hit") == 0
        assert first.counter("cache.store") == 1

        with obs_metrics.use(registry):
            cached_run(7, TINY, cache=cache)
        second = registry.snapshot()
        assert second.counter("cache.miss") == 1
        assert second.counter("cache.hit") == 1
        assert second.counter("cache.store") == 1

    def test_corrupt_entry_counts_an_eviction(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            run = cached_run(7, TINY, cache=cache)
            cache.path_for(run.seed, TINY).write_bytes(b"garbage")
            cache.load(run.seed, TINY)
        snapshot = registry.snapshot()
        assert snapshot.counter("cache.evict") == 1
        assert snapshot.counter("cache.miss") == 2
