"""The sparkline dashboard: static render, accumulator, follow mode."""

import io

import pytest

from repro.obs.dashboard import (
    SPARK_CHARS,
    DashboardAccumulator,
    follow_dashboard,
    render_dashboard,
    sparkline,
)
from repro.obs.events import PipelineEvent
from repro.obs.windows import WINDOW_SERIES
from repro.util.validation import ValidationError


class TestSparkline:
    def test_empty_series_renders_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_all_low(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_extremes_map_to_the_ramp_ends(self):
        cells = sparkline([0.0, 10.0, 5.0])
        assert cells[0] == SPARK_CHARS[0]
        assert cells[1] == SPARK_CHARS[-1]
        assert cells[2] not in (SPARK_CHARS[0], SPARK_CHARS[-1])

    def test_one_cell_per_value(self):
        assert len(sparkline([1.0, 2.0, 3.0, 4.0])) == 4


def _payload() -> dict:
    series = {name: [1.0, 2.0, 3.0] for name in WINDOW_SERIES}
    series["agreement"] = [1.0, 0.5, 0.75]
    return {
        "schema": 1,
        "fingerprint": "ab" * 32,
        "seed": 2010,
        "window_weeks": 4,
        "n_windows": 3,
        "series": series,
        "crossview": {"joint_samples": 40, "m_clusters": 9},
    }


class TestRenderDashboard:
    def test_needs_a_series_section(self):
        with pytest.raises(ValidationError):
            render_dashboard({"fingerprint": "ab" * 32})

    def test_header_and_one_row_per_series(self):
        text = render_dashboard(_payload())
        head = text.splitlines()[0]
        assert "fingerprint abababababababab" in head
        assert "seed 2010" in head and "3 windows x 4w" in head
        for name in WINDOW_SERIES:
            assert f"  {name}" in text
        assert "last=0.75 max=1" in text  # the agreement row

    def test_crossview_line_is_sorted(self):
        text = render_dashboard(_payload())
        assert "  crossview: joint_samples=40 m_clusters=9" in text

    def test_health_section_appended_when_given(self):
        health = {
            "summary": {"info": 0, "warning": 1, "critical": 0},
            "findings": [
                {
                    "rule": "crossview-agreement-floor",
                    "severity": "warning",
                    "value": 0.1,
                    "window": 1,
                }
            ],
        }
        text = render_dashboard(_payload(), health)
        assert "  health: critical=0 info=0 warning=1" in text
        assert "WARNING  crossview-agreement-floor [window 1] = 0.1" in text

    def test_render_is_deterministic(self):
        assert render_dashboard(_payload()) == render_dashboard(_payload())


def _rollup(window: int, **extra) -> PipelineEvent:
    fields = {
        "window": window,
        "fingerprint": "ab" * 32,
        "seed": 7,
        "window_weeks": 4,
        "n_windows": 2,
        "events": 10.0 * (window + 1),
        "agreement": 0.9,
    }
    fields.update(extra)
    return PipelineEvent(seq=window, t=float(window), kind="window.rollup", fields=fields)


class TestDashboardAccumulator:
    def test_ignores_other_kinds(self):
        accumulator = DashboardAccumulator()
        other = PipelineEvent(seq=0, t=0.0, kind="run.start", fields={"seed": 7})
        assert accumulator.feed(other) is False
        assert accumulator.payload()["series"] == {}

    def test_rebuilds_the_report_layout(self):
        accumulator = DashboardAccumulator()
        assert accumulator.feed(_rollup(0)) is True
        assert accumulator.feed(_rollup(1)) is True
        payload = accumulator.payload()
        assert payload["fingerprint"] == "ab" * 32
        assert payload["seed"] == 7 and payload["n_windows"] == 2
        assert payload["series"]["events"] == [10.0, 20.0]
        assert "window" not in payload["series"]
        render_dashboard(payload)  # renders without error


class TestFollowDashboard:
    def test_draws_one_frame_per_rollup(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "".join(_rollup(window).to_json() + "\n" for window in range(3))
        )
        stream = io.StringIO()
        frames = follow_dashboard(path, stream, poll_seconds=0.01, stop=lambda: True)
        assert frames == 3
        text = stream.getvalue()
        assert text.count("landscape dashboard") == 3
        # the final frame carries all three accumulated windows
        assert "last=30 max=30" in text
