"""The SLO/health-rule engine: thresholds, anomalies, baselines."""

import json

import pytest

from repro.obs.health import (
    DEFAULT_RULES,
    MIN_HISTORY,
    SEVERITIES,
    HealthFinding,
    HealthReport,
    HealthRule,
    evaluate_health,
    new_findings,
)
from repro.util.validation import ValidationError


def _manifest(**overrides) -> dict:
    payload = {
        "metrics": {
            "schema": 1,
            "counters": {"executor.worker_failures": 0.0},
            "gauges": {"lsh.clusters": 9.0, "lsh.buckets_skipped": 0.0},
            "histograms": {},
        },
        "golden_deviations": [],
    }
    payload.update(overrides)
    return payload


def _windows(**series) -> dict:
    return {"schema": 1, "series": {name: list(v) for name, v in series.items()}}


def _rule(**overrides) -> HealthRule:
    fields = dict(
        name="rule",
        severity="warning",
        target="metric:lsh.clusters",
        kind="max",
        threshold=0,
    )
    fields.update(overrides)
    return HealthRule(**fields)


class TestHealthRule:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValidationError):
            _rule(severity="panic")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            _rule(kind="between")

    def test_unknown_target_scheme_rejected(self):
        with pytest.raises(ValidationError):
            _rule(target="gauge:lsh.clusters")

    def test_zscore_needs_a_series_target(self):
        with pytest.raises(ValidationError):
            _rule(kind="zscore", target="metric:lsh.clusters")
        _rule(kind="zscore", target="series:events")  # fine

    def test_default_rules_cover_every_severity(self):
        assert {rule.severity for rule in DEFAULT_RULES} == set(SEVERITIES)


class TestEvaluateHealth:
    def test_clean_run_yields_no_findings(self):
        report = evaluate_health(_manifest())
        assert report.findings == []
        assert report.rules_evaluated == len(DEFAULT_RULES)
        assert report.worst() is None
        assert report.summary() == {"info": 0, "warning": 0, "critical": 0}

    def test_max_rule_fires_above_threshold(self):
        manifest = _manifest()
        manifest["metrics"]["counters"]["executor.worker_failures"] = 2.0
        report = evaluate_health(manifest)
        assert report.worst() == "critical"
        finding = report.findings[0]
        assert finding.rule == "workers-healthy"
        assert finding.value == 2.0 and finding.window is None

    def test_min_rule_fires_below_threshold(self):
        manifest = _manifest()
        manifest["metrics"]["gauges"]["lsh.clusters"] = 0.0
        report = evaluate_health(manifest)
        assert [f.rule for f in report.findings] == ["bclusters-exist"]

    def test_absent_target_is_skipped_not_violated(self):
        manifest = _manifest()
        del manifest["metrics"]["gauges"]["lsh.clusters"]
        assert evaluate_health(manifest).findings == []

    def test_golden_deviations_counted(self):
        report = evaluate_health(_manifest(golden_deviations=["events: off"]))
        assert [f.rule for f in report.findings] == ["golden-headline"]
        assert report.findings[0].value == 1.0

    def test_series_rule_fires_per_offending_window(self):
        windows = _windows(agreement=[0.9, 0.1, 0.8, 0.2])
        report = evaluate_health(_manifest(), windows)
        agreement = [f for f in report.findings if f.rule == "crossview-agreement-floor"]
        assert [f.window for f in agreement] == [1, 3]
        assert all(f.value < 0.25 for f in agreement)

    def test_series_rules_skipped_without_a_window_report(self):
        assert evaluate_health(_manifest(), None).findings == []

    def test_zscore_flags_a_spike_against_its_own_trail(self):
        windows = _windows(events=[100.0, 104.0, 98.0, 102.0, 99.0, 500.0])
        report = evaluate_health(_manifest(), windows)
        spikes = [f for f in report.findings if f.rule == "event-rate-anomaly"]
        assert [f.window for f in spikes] == [5]
        assert spikes[0].value > spikes[0].threshold

    def test_zscore_ignores_the_cold_start(self):
        # The spike sits inside the MIN_HISTORY warm-up: nothing fires.
        values = [100.0] * MIN_HISTORY
        values[1] = 500.0
        report = evaluate_health(_manifest(), _windows(events=values))
        assert [f for f in report.findings if f.rule == "event-rate-anomaly"] == []

    def test_zscore_is_quiet_on_a_flat_series(self):
        report = evaluate_health(_manifest(), _windows(events=[7.0] * 10))
        assert report.findings == []

    def test_findings_rank_most_severe_first(self):
        manifest = _manifest(golden_deviations=["off"])
        manifest["metrics"]["counters"]["executor.worker_failures"] = 1.0
        windows = _windows(b_churn=[10.0, 11.0, 9.0, 10.0, 80.0])
        report = evaluate_health(manifest, windows)
        assert [f.severity for f in report.findings] == [
            "critical",
            "warning",
            "info",
        ]
        assert report.at_or_above("warning") == report.findings[:2]

    def test_custom_rule_set(self):
        rules = (_rule(name="cap-clusters", threshold=5),)
        report = evaluate_health(_manifest(), rules=rules)
        assert report.rules_evaluated == 1
        assert [f.rule for f in report.findings] == ["cap-clusters"]


class TestHealthReport:
    def _report(self) -> HealthReport:
        manifest = _manifest(golden_deviations=["off", "again"])
        return evaluate_health(manifest, _windows(agreement=[0.9, 0.1]))

    def test_json_round_trip(self):
        report = self._report()
        rebuilt = HealthReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.as_dict() == report.as_dict()
        assert rebuilt.digest() == report.digest()

    def test_unknown_schema_rejected(self):
        payload = self._report().as_dict()
        payload["schema"] = 99
        with pytest.raises(ValidationError):
            HealthReport.from_dict(payload)

    def test_render_names_every_finding(self):
        text = self._report().render()
        assert "2 finding(s)" in text and "2 warning" in text
        assert "WARNING  golden-headline" in text
        assert "[window 1]" in text  # series findings carry their window

    def test_unknown_severity_floor_rejected(self):
        with pytest.raises(ValidationError):
            self._report().at_or_above("panic")


class TestNewFindings:
    def _finding(self, **overrides) -> HealthFinding:
        fields = dict(
            rule="golden-headline",
            severity="warning",
            target="golden:deviations",
            value=1.0,
            threshold=0.0,
            detail="",
            window=None,
        )
        fields.update(overrides)
        return HealthFinding(**fields)

    def test_no_baseline_means_everything_is_new(self):
        report = HealthReport(findings=[self._finding()], rules_evaluated=1)
        assert new_findings(report, None) == report.findings

    def test_known_finding_does_not_refire_on_value_drift(self):
        baseline = HealthReport(findings=[self._finding(value=1.0)])
        current = HealthReport(findings=[self._finding(value=5.0)])
        assert new_findings(current, baseline) == []

    def test_same_rule_on_a_new_window_is_new(self):
        baseline = HealthReport(
            findings=[self._finding(target="series:agreement", window=1)]
        )
        current = HealthReport(
            findings=[
                self._finding(target="series:agreement", window=1),
                self._finding(target="series:agreement", window=3),
            ]
        )
        assert [f.window for f in new_findings(current, baseline)] == [3]


class TestScenarioHealth:
    def test_run_carries_a_ranked_report(self, small_run):
        assert small_run.health is not None
        assert small_run.health.rules_evaluated == len(DEFAULT_RULES)
        ranks = [SEVERITIES.index(f.severity) for f in small_run.health.findings]
        assert ranks == sorted(ranks, reverse=True)

    def test_manifest_summary_matches_the_report(self, small_run):
        assert small_run.manifest.health_summary == small_run.health.summary()

    def test_offline_evaluation_reproduces_the_in_run_report(self, small_run):
        """``repro obs health`` re-evaluates from the stored payloads;
        that must land on the very findings the run computed live."""
        offline = evaluate_health(
            small_run.manifest.as_dict(), small_run.windows.as_dict()
        )
        assert offline.as_dict() == small_run.health.as_dict()
        assert offline.digest() == small_run.health.digest()
