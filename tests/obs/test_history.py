"""The run store, cross-run diffs and the drift time series."""

import json

import pytest

from repro.obs.diff import (
    diff_manifests,
    first_diverging_event,
    first_diverging_stage,
    metric_value,
    render_history,
)
from repro.obs.history import RUN_ID_LENGTH, RunStore
from repro.obs.manifest import RunManifest
from repro.obs.validate import validate_run_store
from repro.util.validation import ValidationError


def _manifest(
    *,
    seed: int = 7,
    fingerprint: str = "ab" * 32,
    observe_digest: str = "11" * 32,
    epm_digest: str = "22" * 32,
    bcluster_digest: str = "33" * 32,
    clusters: float = 9.0,
    observe_seconds: float = 1.0,
    created_at: str = "2026-01-01T00:00:00Z",
    golden_deviations: list | None = None,
) -> RunManifest:
    span_tree = {
        "name": "scenario",
        "seconds": observe_seconds + 0.5,
        "attributes": {"output_digest": "44" * 32},
        "children": [
            {
                "name": "observe",
                "seconds": observe_seconds,
                "attributes": {"output_digest": observe_digest, "cache": "off"},
            },
            {
                "name": "epm",
                "seconds": 0.3,
                "attributes": {"output_digest": epm_digest, "cache": "off"},
            },
            {
                "name": "bcluster",
                "seconds": 0.2,
                "attributes": {"output_digest": bcluster_digest, "cache": "off"},
            },
        ],
    }
    return RunManifest(
        fingerprint=fingerprint,
        seed=seed,
        config={"n_weeks": 10},
        library_version="1.0.0",
        span_tree=span_tree,
        metrics={
            "schema": 1,
            "counters": {"lsh.candidate_pairs": 100.0},
            "gauges": {"lsh.clusters": clusters},
            "histograms": {},
        },
        artifact_digests={
            "dataset.events": observe_digest,
            "epm.clusters": epm_digest,
            "bclusters.assignment": bcluster_digest,
            "headline": "44" * 32,
        },
        created_at=created_at,
        golden_deviations=golden_deviations or [],
        stage_fingerprints={
            "observe": "55" * 32,
            "epm": "66" * 32,
            "bcluster": "77" * 32,
        },
    )


class TestRunStore:
    def test_add_stores_under_fingerprint_and_indexes(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = _manifest()
        run_id = store.add(manifest)
        assert len(run_id) == RUN_ID_LENGTH
        path = store.path_for(manifest.fingerprint, run_id)
        assert path.is_file()
        (entry,) = store.entries()
        assert entry["run_id"] == run_id
        assert entry["fingerprint"] == manifest.fingerprint
        assert entry["created_at"] == manifest.created_at

    def test_re_adding_identical_content_is_a_noop(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.add(_manifest())
        second = store.add(_manifest())
        assert first == second
        assert len(store.entries()) == 1

    def test_store_is_append_only_across_different_runs(self, tmp_path):
        store = RunStore(tmp_path)
        ids = [
            store.add(_manifest(created_at=f"2026-01-0{day}T00:00:00Z"))
            for day in (1, 2, 3)
        ]
        assert len(set(ids)) == 3
        assert [e["run_id"] for e in store.entries()] == ids

    def test_content_collision_with_different_payload_refused(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = _manifest()
        run_id = store.add(manifest)
        path = store.path_for(manifest.fingerprint, run_id)
        path.write_text(
            path.read_text(encoding="utf-8").replace('"seed": 7', '"seed": 8'),
            encoding="utf-8",
        )
        with pytest.raises(ValidationError):
            store.add(manifest)

    def test_load_and_prefix_resolution(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.add(_manifest())
        assert store.load(run_id) == store.load(run_id[:6])
        assert store.load(run_id).seed == 7
        with pytest.raises(ValidationError):
            store.resolve("zz")  # too short
        with pytest.raises(ValidationError):
            store.resolve("feedbeefcafe")  # no match

    def test_entries_filter_by_fingerprint(self, tmp_path):
        store = RunStore(tmp_path)
        store.add(_manifest())
        store.add(_manifest(fingerprint="cd" * 32, created_at="x"))
        assert len(store.entries()) == 2
        assert len(store.entries("cd" * 32)) == 1

    def test_render_listing(self, tmp_path):
        store = RunStore(tmp_path)
        assert "empty" in store.render_listing()
        run_id = store.add(_manifest(golden_deviations=["events: off"]))
        listing = store.render_listing()
        assert run_id in listing
        assert "1 dev" in listing


class TestStoreValidation:
    def test_valid_store_has_no_errors(self, tmp_path):
        store = RunStore(tmp_path)
        store.add(_manifest())
        store.add(_manifest(seed=8))
        assert validate_run_store(tmp_path) == {}

    def test_empty_or_absent_store_is_valid(self, tmp_path):
        assert validate_run_store(tmp_path) == {}
        assert validate_run_store(tmp_path / "never-created") == {}
        # A committed top-level reference manifest is not a stored run.
        (tmp_path / "reference.json").write_text("{}", encoding="utf-8")
        assert validate_run_store(tmp_path) == {}

    def test_stored_runs_without_an_index_are_reported(self, tmp_path):
        rundir = tmp_path / ("ab" * 32)
        rundir.mkdir()
        (rundir / "deadbeefdeadbeef.json").write_text("{}", encoding="utf-8")
        failures = validate_run_store(tmp_path)
        (errors,) = failures.values()
        assert "no index.json" in errors[0]

    def test_edited_run_file_fails_the_content_address(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = _manifest()
        run_id = store.add(manifest)
        path = store.path_for(manifest.fingerprint, run_id)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["seed"] = 1234
        path.write_text(json.dumps(payload), encoding="utf-8")
        failures = validate_run_store(tmp_path)
        assert any("content address" in e for e in failures[str(path)])

    def test_missing_run_file_is_reported(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = _manifest()
        run_id = store.add(manifest)
        store.path_for(manifest.fingerprint, run_id).unlink()
        failures = validate_run_store(tmp_path)
        assert any("missing" in e for errors in failures.values() for e in errors)


class TestDiff:
    def test_identical_manifests_pass(self):
        diff = diff_manifests(_manifest(), _manifest())
        assert not diff.failed()
        assert diff.digest_divergence == {}
        assert diff.first_diverging_stage is None
        assert "identical" in diff.render()

    def test_digest_walk_names_the_first_diverging_stage(self):
        # epm and bcluster both diverge; epm finishes first, so the
        # walk must name epm, not bcluster and not the root.
        diff = diff_manifests(
            _manifest(),
            _manifest(epm_digest="aa" * 32, bcluster_digest="bb" * 32),
        )
        assert diff.failed()
        assert diff.first_diverging_stage == "epm"
        assert "first diverging stage: epm" in diff.render()

    def test_downstream_only_divergence_names_bcluster(self):
        diff = diff_manifests(_manifest(), _manifest(bcluster_digest="bb" * 32))
        assert diff.first_diverging_stage == "bcluster"

    def test_metric_deltas_reported(self):
        diff = diff_manifests(_manifest(clusters=9.0), _manifest(clusters=12.0))
        assert diff.metric_deltas == {"lsh.clusters": (9.0, 12.0)}

    def test_timing_regression_beyond_band(self):
        diff = diff_manifests(
            _manifest(observe_seconds=1.0),
            _manifest(observe_seconds=2.0),
            timing_tolerance=1.5,
        )
        regressed = {d.stage for d in diff.timing_regressions}
        assert regressed == {"observe"}
        # Timing alone never fails the gate unless opted in.
        assert not diff.failed()
        assert diff.failed(fail_on_timing=True)

    def test_sub_noise_floor_timing_is_never_a_regression(self):
        diff = diff_manifests(
            _manifest(observe_seconds=0.001), _manifest(observe_seconds=0.01)
        )
        assert diff.timing_regressions == []

    def test_new_golden_deviations_fail(self):
        reference = _manifest(golden_deviations=["events: expected 1, measured 2"])
        same = diff_manifests(reference, reference)
        assert not same.failed()  # identical deviations are not *new*
        diff = diff_manifests(
            reference,
            _manifest(
                golden_deviations=[
                    "events: expected 1, measured 2",
                    "b_clusters: expected 961, measured 900",
                ]
            ),
        )
        assert diff.new_golden_deviations == [
            "b_clusters: expected 961, measured 900"
        ]
        assert diff.failed()

    def test_cross_config_diff_is_labelled(self):
        diff = diff_manifests(_manifest(), _manifest(fingerprint="cd" * 32))
        assert not diff.same_config
        assert "fingerprints differ" in diff.render()


class TestHistory:
    def _store(self, tmp_path) -> RunStore:
        store = RunStore(tmp_path)
        for day, clusters in enumerate((9.0, 9.0, 10.0, 30.0), start=1):
            store.add(
                _manifest(
                    clusters=clusters,
                    created_at=f"2026-01-{day:02d}T00:00:00Z",
                    golden_deviations=["b: off"] if clusters == 30.0 else [],
                )
            )
        return store

    def test_metric_value_lookup_modes(self):
        payload = _manifest().as_dict()
        assert metric_value(payload, "lsh.clusters") == 9.0
        assert metric_value(payload, "stage:observe") == 1.0
        assert metric_value(payload, "no.such.metric") is None

    def test_metric_value_sums_labelled_keys(self):
        manifest = _manifest()
        manifest.metrics["gauges"] = {
            "epm.clusters{dimension=mu}": 4.0,
            "epm.clusters{dimension=pi}": 2.0,
        }
        assert metric_value(manifest.as_dict(), "epm.clusters") == 6.0

    def test_history_flags_drift_and_golden_deviation(self, tmp_path):
        text = render_history(self._store(tmp_path), "lsh.clusters")
        assert "4 stored run(s)" in text
        assert "G!" in text  # the deviating run is flagged
        assert "T!" in text  # 30.0 is far outside the 9-ish band
        lines = [
            l
            for l in text.splitlines()
            if "G!" in l and not l.startswith("drift:")
        ]
        assert len(lines) == 1 and "30.0" in lines[0]

    def test_history_handles_absent_metric(self, tmp_path):
        text = render_history(self._store(tmp_path), "no.such.metric")
        assert "not present" in text

    def test_empty_store_history(self, tmp_path):
        assert "no stored runs" in render_history(RunStore(tmp_path), "x")

    def test_first_diverging_stage_helper_handles_empty_trees(self):
        assert first_diverging_stage({}, {}) is None


def _event_log(*specs):
    """Build a list of PipelineEvents from (kind, fields) pairs."""
    from repro.obs.events import PipelineEvent

    return [
        PipelineEvent(seq=index, t=float(index), kind=kind, fields=dict(fields))
        for index, (kind, fields) in enumerate(specs)
    ]


class TestStoredEventLogs:
    """Event-log ingestion into the run store and replay from it."""

    def _log_file(self, tmp_path):
        # one stage.finish per non-root span of _manifest()'s tree, so
        # the store validator's events/manifest crosscheck passes
        events = _event_log(
            ("run.start", {"seed": 7}),
            ("stage.start", {"stage": "observe"}),
            ("stage.finish", {"stage": "observe", "seconds": 1.0}),
            ("stage.start", {"stage": "epm"}),
            ("stage.finish", {"stage": "epm", "seconds": 0.3}),
            ("stage.start", {"stage": "bcluster"}),
            ("stage.finish", {"stage": "bcluster", "seconds": 0.2}),
            ("run.finish", {"seconds": 1.5}),
        )
        path = tmp_path / "events.jsonl"
        path.write_text("".join(event.to_json() + "\n" for event in events))
        return path, events

    def test_add_ingests_and_load_events_replays(self, tmp_path):
        source, events = self._log_file(tmp_path)
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest(), events_path=source)
        stored = store.load_events(run_id)
        assert stored is not None
        assert [event.kind for event in stored] == [event.kind for event in events]
        assert [event.fields for event in stored] == [event.fields for event in events]

    def test_events_file_lands_next_to_the_manifest(self, tmp_path):
        source, _events = self._log_file(tmp_path)
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest(), events_path=source)
        target = store.events_path_for(_manifest().fingerprint, run_id)
        assert target.is_file()
        assert target.read_text() == source.read_text()

    def test_load_events_none_when_no_log_stored(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest())
        assert store.load_events(run_id) is None

    def test_store_with_event_logs_validates(self, tmp_path):
        source, _events = self._log_file(tmp_path)
        store = RunStore(tmp_path / "runs")
        store.add(_manifest(), events_path=source)
        assert validate_run_store(store.root) == {}

    def test_corrupt_stored_log_fails_validation(self, tmp_path):
        source, _events = self._log_file(tmp_path)
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest(), events_path=source)
        target = store.events_path_for(_manifest().fingerprint, run_id)
        # A rotated log may start mid-sequence, so the corrupt marker is
        # a mid-stream gap (0 -> 5), not a non-zero starting seq.
        target.write_text(
            '{"schema": 1, "seq": 0, "kind": "run.start", "t": 0.0}\n'
            '{"schema": 1, "seq": 5, "kind": "nope", "t": 0.0}\n'
        )
        failures = validate_run_store(store.root)
        flat = [error for errors in failures.values() for error in errors]
        assert any("unknown event kind" in error for error in flat)
        assert any("seq" in error for error in flat)


class TestEventDiff:
    """Divergence attribution down to the first semantic event."""

    def _baseline(self):
        return _event_log(
            ("run.start", {"seed": 7, "executor": "serial"}),
            ("stage.start", {"stage": "observe", "depth": 1}),
            ("chunk.finish", {"chunk": 0, "items": 5, "seconds": 0.5, "backend": "serial"}),
            ("stage.finish", {"stage": "observe", "seconds": 0.5}),
            ("cluster.milestone", {"perspective": "e", "clusters": 10}),
            ("run.finish", {"seconds": 1.0}),
        )

    def test_identical_logs_have_no_divergence(self):
        assert first_diverging_event(self._baseline(), self._baseline()) is None

    def test_volatile_fields_are_ignored(self):
        noisy = _event_log(
            ("run.start", {"seed": 7, "executor": "process"}),
            ("stage.start", {"stage": "observe", "depth": 1}),
            ("chunk.finish", {"chunk": 0, "items": 5, "seconds": 9.9, "backend": "process"}),
            ("stage.finish", {"stage": "observe", "seconds": 9.9}),
            ("cluster.milestone", {"perspective": "e", "clusters": 10}),
            ("run.finish", {"seconds": 9.9}),
        )
        # seconds/backend/executor are volatile; chunk.finish is not
        # semantic at all — different wall-clock runs must compare clean
        assert first_diverging_event(self._baseline(), noisy) is None

    def test_milestone_change_is_attributed(self):
        changed = _event_log(
            ("run.start", {"seed": 7, "executor": "serial"}),
            ("stage.start", {"stage": "observe", "depth": 1}),
            ("chunk.finish", {"chunk": 0, "items": 5, "seconds": 0.5, "backend": "serial"}),
            ("stage.finish", {"stage": "observe", "seconds": 0.5}),
            ("cluster.milestone", {"perspective": "e", "clusters": 11}),
            ("run.finish", {"seconds": 1.0}),
        )
        description = first_diverging_event(self._baseline(), changed)
        assert description is not None
        assert "cluster.milestone" in description
        assert "clusters=10" in description and "clusters=11" in description

    def test_extra_trailing_events_are_reported(self):
        longer = self._baseline() + _event_log(
            ("golden.deviation", {"detail": "b_clusters off"})
        )
        description = first_diverging_event(self._baseline(), longer)
        assert description is not None and "candidate" in description

    def test_diff_manifests_carries_event_attribution(self):
        a = _manifest()
        b = _manifest(epm_digest="ee" * 32, bcluster_digest="ff" * 32)
        changed = _event_log(
            ("run.start", {"seed": 7}),
            ("cluster.milestone", {"perspective": "e", "clusters": 11}),
        )
        baseline = _event_log(
            ("run.start", {"seed": 7}),
            ("cluster.milestone", {"perspective": "e", "clusters": 10}),
        )
        diff = diff_manifests(a, b, events_a=baseline, events_b=changed)
        assert diff.first_diverging_event is not None
        assert "cluster.milestone" in diff.first_diverging_event
        assert "first diverging event" in diff.render()

    def test_no_event_attribution_without_logs(self):
        a = _manifest()
        b = _manifest(epm_digest="ee" * 32)
        assert diff_manifests(a, b).first_diverging_event is None


class TestHistogramQuantileHistory:
    def test_metric_value_quantile_mode(self):
        manifest = _manifest()
        manifest.metrics["histograms"] = {
            "executor.chunk_seconds": {
                "buckets": {"0.001": 0, "0.01": 2, "0.1": 2, "+inf": 0},
                "count": 4,
                "sum": 0.1,
            }
        }
        payload = manifest.as_dict()
        median = metric_value(payload, "executor.chunk_seconds:p50")
        assert median == pytest.approx(0.01)  # rank falls at the 0.01 bucket edge
        assert metric_value(payload, "executor.chunk_seconds:p100") == pytest.approx(0.1)
        assert metric_value(payload, "absent.histogram:p50") is None
        assert metric_value(payload, "executor.chunk_seconds:p200") is None

    def test_quantile_mode_resolves_unique_labelled_key(self):
        manifest = _manifest()
        manifest.metrics["histograms"] = {
            "io.seconds{op=read}": {
                "buckets": {"1.0": 4, "+inf": 0}, "count": 4, "sum": 2.0,
            }
        }
        assert metric_value(manifest.as_dict(), "io.seconds:p50") is not None

    def test_quantile_mode_refuses_ambiguous_labels(self):
        manifest = _manifest()
        histogram = {"buckets": {"1.0": 4, "+inf": 0}, "count": 4, "sum": 2.0}
        manifest.metrics["histograms"] = {
            "io.seconds{op=read}": dict(histogram),
            "io.seconds{op=write}": dict(histogram),
        }
        assert metric_value(manifest.as_dict(), "io.seconds:p50") is None


def _windows_payload(fingerprint: str = "ab" * 32) -> dict:
    from repro.obs.windows import WINDOW_SERIES, WindowReport

    return WindowReport(
        fingerprint=fingerprint,
        seed=7,
        window_weeks=4,
        n_windows=2,
        series={name: [1.0, 2.0] for name in WINDOW_SERIES},
        crossview={"joint_samples": 4},
    ).as_dict()


class TestStoredWindowReports:
    """Window-report sidecar ingestion, lookup and validation."""

    def _sidecar(self, tmp_path):
        path = tmp_path / "windows.json"
        path.write_text(
            json.dumps(_windows_payload(), sort_keys=True, indent=2) + "\n"
        )
        return path

    def test_add_ingests_and_load_windows_reads_back(self, tmp_path):
        source = self._sidecar(tmp_path)
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest(), windows_path=source)
        assert store.load_windows(run_id) == _windows_payload()
        assert store.entries()[0]["windows"] is True

    def test_sidecar_lands_next_to_the_manifest(self, tmp_path):
        source = self._sidecar(tmp_path)
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest(), windows_path=source)
        target = store.windows_path_for(_manifest().fingerprint, run_id)
        assert target.is_file()
        assert target.read_text() == source.read_text()

    def test_load_windows_none_when_no_sidecar_stored(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run_id = store.add(_manifest())
        assert store.load_windows(run_id) is None
        assert store.entries()[0]["windows"] is False

    def test_load_windows_pairs_with_bare_manifest_paths(self, tmp_path):
        # reference.json next to reference.windows.json — the CI layout
        manifest_path = tmp_path / "reference.json"
        manifest_path.write_text(_manifest().to_json() + "\n")
        (tmp_path / "reference.windows.json").write_text(
            json.dumps(_windows_payload()) + "\n"
        )
        store = RunStore(tmp_path / "runs")
        assert store.load_windows(str(manifest_path)) == _windows_payload()

    def test_store_with_window_sidecars_validates(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.add(_manifest(), windows_path=self._sidecar(tmp_path))
        assert validate_run_store(store.root) == {}

    def test_mismatched_sidecar_fingerprint_fails_validation(self, tmp_path):
        source = tmp_path / "windows.json"
        source.write_text(json.dumps(_windows_payload(fingerprint="cd" * 32)))
        store = RunStore(tmp_path / "runs")
        store.add(_manifest(), windows_path=source)
        failures = validate_run_store(store.root)
        flat = [error for errors in failures.values() for error in errors]
        assert any("fingerprint" in error for error in flat)

    def test_missing_sidecar_source_refused(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with pytest.raises(ValidationError):
            store.add(_manifest(), windows_path=tmp_path / "nope.json")


class TestResolveEdgeCases:
    def _synthetic_index(self, store, entries):
        payload = {"schema": 1, "entries": entries}
        store.root.mkdir(parents=True, exist_ok=True)
        store.index_path.write_text(json.dumps(payload), encoding="utf-8")

    def test_too_short_prefix_names_the_requirement(self, tmp_path):
        store = RunStore(tmp_path)
        store.add(_manifest())
        with pytest.raises(ValidationError, match="too short"):
            store.resolve("abc")

    def test_unknown_prefix_names_the_store_root(self, tmp_path):
        store = RunStore(tmp_path)
        store.add(_manifest())
        with pytest.raises(ValidationError, match="no stored run matches"):
            store.resolve("feedbeef")

    def test_ambiguous_prefix_lists_every_match(self, tmp_path):
        store = RunStore(tmp_path)
        self._synthetic_index(
            store,
            [
                {"run_id": "deadbeefaaaaaaaa", "fingerprint": "ab" * 32,
                 "path": f"{'ab' * 32}/deadbeefaaaaaaaa.json"},
                {"run_id": "deadbeefbbbbbbbb", "fingerprint": "cd" * 32,
                 "path": f"{'cd' * 32}/deadbeefbbbbbbbb.json"},
            ],
        )
        with pytest.raises(ValidationError, match="ambiguous run ref") as info:
            store.resolve("deadbeef")
        assert "deadbeefaaaaaaaa" in str(info.value)
        assert "deadbeefbbbbbbbb" in str(info.value)

    def test_fingerprint_qualifier_disambiguates(self, tmp_path):
        store = RunStore(tmp_path)
        self._synthetic_index(
            store,
            [
                {"run_id": "deadbeefaaaaaaaa", "fingerprint": "ab" * 32,
                 "path": f"{'ab' * 32}/deadbeefaaaaaaaa.json"},
                {"run_id": "deadbeefbbbbbbbb", "fingerprint": "cd" * 32,
                 "path": f"{'cd' * 32}/deadbeefbbbbbbbb.json"},
            ],
        )
        resolved = store.resolve("abab/deadbeef")
        assert resolved.name == "deadbeefaaaaaaaa.json"
        assert resolved.parent.name == "ab" * 32

    def test_qualified_ref_resolves_a_stored_run(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.add(_manifest())
        store.add(_manifest(fingerprint="cd" * 32))
        resolved = store.resolve(f"abab/{run_id[:6]}")
        assert resolved == store.path_for("ab" * 32, run_id)

    def test_qualified_ref_error_paths(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.add(_manifest())
        with pytest.raises(ValidationError, match="fingerprint prefix"):
            store.resolve(f"ab/{run_id[:6]}")  # fp prefix too short
        with pytest.raises(ValidationError, match="too short"):
            store.resolve(f"abab/{run_id[:2]}")  # run prefix too short
        with pytest.raises(ValidationError, match="no stored run matches"):
            store.resolve(f"cdcd/{run_id[:6]}")  # wrong configuration


class TestRebuildIndex:
    def test_regenerates_a_deleted_index_identically(self, tmp_path):
        store = RunStore(tmp_path)
        for day in (2, 1, 3):
            store.add(_manifest(created_at=f"2026-01-0{day}T00:00:00Z"))
        before = store.index_path.read_text(encoding="utf-8")
        store.index_path.unlink()
        assert store.rebuild_index() == 3
        assert store.index_path.read_text(encoding="utf-8") == before

    def test_sidecar_flags_survive_the_rebuild(self, tmp_path):
        source = tmp_path / "windows.json"
        source.write_text(json.dumps(_windows_payload()))
        store = RunStore(tmp_path / "runs")
        store.add(_manifest(), windows_path=source)
        store.index_path.unlink()
        store.rebuild_index()
        (entry,) = store.entries()
        assert entry["windows"] is True
        assert entry["events"] is False

    def test_edited_manifest_refused_not_laundered(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = _manifest()
        run_id = store.add(manifest)
        path = store.path_for(manifest.fingerprint, run_id)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["seed"] = 8
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValidationError, match="no longer matches"):
            store.rebuild_index()

    def test_manifest_in_the_wrong_directory_refused(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = _manifest()
        run_id = store.add(manifest)
        path = store.path_for(manifest.fingerprint, run_id)
        stray = store.path_for("cd" * 32, run_id)
        stray.parent.mkdir(parents=True)
        stray.write_text(path.read_text(encoding="utf-8"), encoding="utf-8")
        with pytest.raises(ValidationError, match="wrong directory"):
            store.rebuild_index()

    def test_empty_tree_rebuilds_an_empty_index(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        assert store.rebuild_index() == 0
        assert store.entries() == []


class TestEntriesOrdering:
    def test_entries_sorted_by_created_at_regardless_of_add_order(self, tmp_path):
        store = RunStore(tmp_path)
        for day in (3, 1, 2):
            store.add(_manifest(created_at=f"2026-01-0{day}T00:00:00Z"))
        stamps = [e["created_at"] for e in store.entries()]
        assert stamps == sorted(stamps)

    def test_limit_keeps_the_newest_entries(self, tmp_path):
        store = RunStore(tmp_path)
        for day in (1, 2, 3):
            store.add(_manifest(created_at=f"2026-01-0{day}T00:00:00Z"))
        newest = store.entries(limit=2)
        assert [e["created_at"][:10] for e in newest] == [
            "2026-01-02",
            "2026-01-03",
        ]
        with pytest.raises(ValidationError):
            store.entries(limit=0)
