"""Telemetry exporters: Prometheus exposition, JSON-lines, Chrome traces."""

import json

import pytest

from repro.obs.export import (
    EXPORT_FORMATS,
    _cumulative_buckets,
    export_payload,
    jsonl_samples,
    jsonl_text,
    openmetrics_text,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.validation import ValidationError


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("executor.items").inc(42)
    registry.counter("epm.patterns", dimension="mu").inc(7)
    registry.gauge("executor.jobs", backend="thread").set(4)
    histogram = registry.histogram("executor.chunk_seconds")
    for value in (0.002, 0.002, 0.02, 0.7):
        histogram.observe(value)
    return registry.snapshot().as_dict()


class TestPrometheusText:
    def test_counters_become_total_with_type_line(self):
        text = prometheus_text(_snapshot())
        assert "# TYPE repro_executor_items counter" in text
        assert "repro_executor_items_total 42" in text

    def test_labels_carry_over(self):
        text = prometheus_text(_snapshot())
        assert 'repro_epm_patterns_total{dimension="mu"} 7' in text
        assert 'repro_executor_jobs{backend="thread"} 4' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = prometheus_text(_snapshot()).splitlines()
        buckets = [line for line in lines if "_bucket{" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing
        inf_line = [line for line in buckets if 'le="+Inf"' in line]
        assert len(inf_line) == 1 and inf_line == [buckets[-1]]
        assert int(inf_line[0].rsplit(" ", 1)[1]) == 4  # +Inf == observation count
        assert "repro_executor_chunk_seconds_count 4" in lines
        sum_line = [line for line in lines if line.startswith("repro_executor_chunk_seconds_sum ")]
        assert len(sum_line) == 1
        assert float(sum_line[0].rsplit(" ", 1)[1]) == pytest.approx(0.724)

    def test_output_ends_with_newline_and_is_deterministic(self):
        assert prometheus_text(_snapshot()).endswith("\n")
        assert prometheus_text(_snapshot()) == prometheus_text(_snapshot())

    def test_accepts_full_manifest_payload(self):
        payload = {"metrics": _snapshot(), "span_tree": {"name": "scenario"}}
        assert "repro_executor_items_total 42" in prometheus_text(payload)

    def test_empty_histogram_renders_zero_rows(self):
        registry = MetricsRegistry()
        registry.histogram("executor.chunk_seconds")  # registered, never observed
        lines = prometheus_text(registry.snapshot().as_dict()).splitlines()
        buckets = [line for line in lines if "_bucket{" in line]
        assert buckets and all(line.endswith(" 0") for line in buckets)
        assert 'le="+Inf"' in buckets[-1]
        assert "repro_executor_chunk_seconds_count 0" in lines
        assert "repro_executor_chunk_seconds_sum 0.0" in lines

    def test_zero_count_buckets_still_listed(self):
        # A gap in the observations must not drop its bucket row: the
        # cumulative count simply repeats across the empty bucket.
        registry = MetricsRegistry()
        histogram = registry.histogram("lsh.bucket_size", buckets=(1.0, 2.0, 4.0))
        histogram.observe(0.5)
        histogram.observe(3.0)  # nothing lands in (1, 2]
        rows = _cumulative_buckets(
            registry.snapshot().as_dict()["histograms"]["lsh.bucket_size"]
        )
        assert rows == [("1", 1), ("2", 1), ("4", 2), ("+Inf", 2)]

    def test_cumulative_buckets_of_an_empty_payload(self):
        assert _cumulative_buckets({}) == [("+Inf", 0)]
        assert _cumulative_buckets({"buckets": {"+inf": 3}}) == [("+Inf", 3)]

    def test_window_series_section_rides_along(self):
        payload = {
            "metrics": _snapshot(),
            "windows": {"series": {"events": [3.0, 7.0]}},
        }
        text = prometheus_text(payload)
        assert "# TYPE repro_window_series gauge" in text
        assert 'repro_window_series{series="events",window="0"} 3' in text
        assert 'repro_window_series{series="events",window="1"} 7' in text
        samples = [s for s in jsonl_samples(payload) if s["name"] == "window.series"]
        assert [s["labels"]["window"] for s in samples] == ["0", "1"]


class TestOpenMetricsText:
    def test_is_the_prometheus_exposition_plus_unit_metadata_and_eof(self):
        snapshot = _snapshot()
        text = openmetrics_text(snapshot)
        # Same samples as the Prometheus exposition: only UNIT metadata
        # lines and the EOF terminator are OpenMetrics-specific.
        prometheus_lines = prometheus_text(snapshot).splitlines()
        extra = [
            line
            for line in text.splitlines()
            if line not in prometheus_lines
        ]
        assert extra == ["# UNIT repro_executor_chunk_seconds seconds", "# EOF"]
        assert text.endswith("\n# EOF\n")

    def test_unit_line_for_catalogued_seconds_metric(self):
        lines = openmetrics_text(_snapshot()).splitlines()
        unit = lines.index("# UNIT repro_executor_chunk_seconds seconds")
        # UNIT must sit inside its family block, right after TYPE.
        assert lines[unit - 1] == "# TYPE repro_executor_chunk_seconds histogram"

    def test_no_unit_line_for_unitless_or_uncatalogued_metrics(self):
        lines = openmetrics_text(_snapshot()).splitlines()
        units = [line for line in lines if line.startswith("# UNIT")]
        # executor.items (a count) and epm.patterns (uncatalogued name in
        # this synthetic snapshot) must not invent units.
        assert units == ["# UNIT repro_executor_chunk_seconds seconds"]

    def test_eof_terminator_is_always_last(self):
        # Including when window series (appended after the metric
        # families) ride along — the regression this test pins down.
        payload = {
            "metrics": _snapshot(),
            "windows": {"series": {"events": [3.0, 7.0]}},
        }
        lines = openmetrics_text(payload).splitlines()
        assert lines[-1] == "# EOF"
        assert lines.count("# EOF") == 1
        assert 'repro_window_series{series="events",window="1"} 7' in lines

    def test_prometheus_exposition_has_no_unit_lines(self):
        assert "# UNIT" not in prometheus_text(_snapshot())

    def test_counters_carry_the_required_total_suffix(self):
        assert "repro_executor_items_total 42" in openmetrics_text(_snapshot())

    def test_every_histogram_closes_with_an_explicit_inf_bucket(self):
        lines = openmetrics_text(_snapshot()).splitlines()
        buckets = [line for line in lines if "_bucket{" in line]
        assert any('le="+Inf"' in line for line in buckets)

    def test_dispatches_through_export_payload(self):
        snapshot = _snapshot()
        assert export_payload(snapshot, "openmetrics") == openmetrics_text(snapshot)


class TestJsonlText:
    def test_every_line_parses_back(self):
        samples = [json.loads(line) for line in jsonl_text(_snapshot()).splitlines()]
        assert samples == list(jsonl_samples(_snapshot()))

    def test_samples_cover_all_instruments(self):
        samples = list(jsonl_samples(_snapshot()))
        by_type = {}
        for sample in samples:
            by_type.setdefault(sample["type"], []).append(sample)
        assert len(by_type["counter"]) == 2
        assert len(by_type["gauge"]) == 1
        assert len(by_type["histogram"]) == 1
        histogram = by_type["histogram"][0]
        assert histogram["name"] == "executor.chunk_seconds"
        assert histogram["count"] == 4

    def test_labels_are_structured_not_rendered(self):
        samples = list(jsonl_samples(_snapshot()))
        labelled = [s for s in samples if s["name"] == "epm.patterns"]
        assert labelled[0]["labels"] == {"dimension": "mu"}


class TestExportPayload:
    def test_dispatch_matches_direct_calls(self):
        snapshot = _snapshot()
        assert export_payload(snapshot, "prometheus") == prometheus_text(snapshot)
        assert export_payload(snapshot, "jsonl") == jsonl_text(snapshot)

    def test_chrome_needs_a_span_tree(self):
        with pytest.raises(ValidationError):
            export_payload(_snapshot(), "chrome")

    def test_chrome_export_from_manifest_payload(self):
        payload = {
            "metrics": _snapshot(),
            "span_tree": {
                "name": "scenario",
                "seconds": 1.0,
                "children": [{"name": "observe", "seconds": 0.4, "children": []}],
            },
        }
        trace = json.loads(export_payload(payload, "chrome"))
        names = {entry.get("name") for entry in trace.get("traceEvents", trace)
                 if isinstance(entry, dict)}
        assert "observe" in names

    def test_unknown_format_rejected(self):
        with pytest.raises(ValidationError):
            export_payload(_snapshot(), "influx")

    def test_format_tuple_is_the_cli_contract(self):
        assert EXPORT_FORMATS == ("prometheus", "openmetrics", "jsonl", "chrome")


def _sketchy_snapshot():
    registry = MetricsRegistry()
    sketch = registry.sketch("executor.chunk_seconds_sketch")
    for value in (1.0, 2.0, 4.0, 8.0):
        sketch.observe(value)
    registry.watermark("worker.peak_rss_kb").update(51200)
    return registry.snapshot().as_dict()


class TestLabelEscaping:
    def _labelled(self, value):
        registry = MetricsRegistry()
        registry.counter("epm.patterns", dimension=value).inc(1)
        return prometheus_text(registry.snapshot().as_dict())

    def test_backslashes_escaped(self):
        assert 'dimension="a\\\\b"' in self._labelled("a\\b")

    def test_quotes_escaped(self):
        assert 'dimension="say \\"hi\\""' in self._labelled('say "hi"')

    def test_newlines_escaped(self):
        text = self._labelled("two\nlines")
        assert 'dimension="two\\nlines"' in text
        # the exposition itself must stay one sample per line
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(sample_lines) == 1

    def test_plain_values_untouched(self):
        assert 'dimension="mu"' in self._labelled("mu")


class TestSketchExposition:
    def test_sketch_renders_as_summary_family(self):
        text = prometheus_text(_sketchy_snapshot())
        assert "# TYPE repro_executor_chunk_seconds_sketch summary" in text
        assert 'repro_executor_chunk_seconds_sketch{quantile="0.5"}' in text
        assert "repro_executor_chunk_seconds_sketch_sum 15" in text
        assert "repro_executor_chunk_seconds_sketch_count 4" in text

    def test_watermark_renders_as_gauge(self):
        text = prometheus_text(_sketchy_snapshot())
        assert "# TYPE repro_worker_peak_rss_kb gauge" in text
        assert "repro_worker_peak_rss_kb 51200" in text

    def test_openmetrics_keeps_eof_last(self):
        text = openmetrics_text(_sketchy_snapshot())
        assert text.endswith("\n# EOF\n")

    def test_jsonl_carries_sketch_quantiles_and_watermarks(self):
        samples = list(jsonl_samples(_sketchy_snapshot()))
        by_type = {}
        for sample in samples:
            by_type.setdefault(sample["type"], []).append(sample)
        sketch = by_type["sketch"][0]
        assert sketch["name"] == "executor.chunk_seconds_sketch"
        assert sketch["count"] == 4
        assert set(sketch["quantiles"]) == {"0.5", "0.9", "0.99"}
        watermark = by_type["watermark"][0]
        assert watermark["name"] == "worker.peak_rss_kb"
        assert watermark["value"] == 51200
