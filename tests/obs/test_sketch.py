"""Unit tests for the mergeable streaming-quantile sketch."""

import pytest

from repro.obs.sketch import (
    DEFAULT_ALPHA,
    MIN_TRACKABLE,
    QuantileSketch,
    sketch_quantile_from_payload,
)


def _filled(values, alpha=DEFAULT_ALPHA, max_bins=512):
    sketch = QuantileSketch(alpha=alpha, max_bins=max_bins)
    for value in values:
        sketch.observe(float(value))
    return sketch


class TestConstruction:
    def test_alpha_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(alpha=1.0)

    def test_needs_at_least_two_bins(self):
        with pytest.raises(ValueError):
            QuantileSketch(max_bins=1)

    def test_rejects_negative_observations(self):
        with pytest.raises(ValueError):
            QuantileSketch().observe(-1.0)


class TestQuantiles:
    def test_empty_sketch_has_no_quantile(self):
        assert QuantileSketch().quantile(0.5) is None

    def test_relative_error_bound_holds(self):
        sketch = _filled(range(1, 1001))
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            exact = float(sorted(range(1, 1001))[int(q * 999)])
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= DEFAULT_ALPHA * exact

    def test_quantile_is_monotone_in_q(self):
        sketch = _filled([0.5, 1.0, 2.0, 40.0, 41.0, 300.0])
        estimates = [sketch.quantile(q / 10) for q in range(11)]
        assert estimates == sorted(estimates)

    def test_sub_trackable_values_count_as_exact_zeros(self):
        sketch = _filled([0.0, 0.0, 0.0, 10.0])
        assert sketch.zeros == 3
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(10.0, rel=DEFAULT_ALPHA)

    def test_min_trackable_is_the_zeros_threshold(self):
        sketch = _filled([MIN_TRACKABLE / 2, MIN_TRACKABLE * 2])
        assert sketch.zeros == 1


class TestBoundedMemory:
    def test_resident_bins_never_exceed_the_cap(self):
        sketch = _filled([10.0**k for k in range(-4, 5)], max_bins=8)
        assert len(sketch.bins) <= 8
        assert sketch.count == 9

    def test_fold_preserves_count_and_extremes(self):
        values = [0.001, 0.01, 1.0, 100.0, 100000.0]
        sketch = _filled(values, max_bins=4)
        assert sketch.count == len(values)
        assert sketch.min == 0.001
        assert sketch.max == 100000.0

    def test_fold_only_degrades_the_low_end(self):
        sketch = _filled([0.001, 1000.0] * 50, max_bins=4)
        assert sketch.quantile(0.99) == pytest.approx(1000.0, rel=DEFAULT_ALPHA)


class TestMerge:
    def test_merge_of_shards_equals_one_sketch(self):
        values = [float(v) for v in range(1, 301)]
        whole = _filled(values)
        merged = QuantileSketch()
        for offset in range(3):
            merged.merge(_filled(values[offset::3]))
        assert merged.as_dict() == whole.as_dict()

    def test_merge_equals_whole_even_when_folding(self):
        # Integer-valued so ``sum`` is order-exact; the interesting part
        # is the bins agreeing across fold schedules.
        values = [10.0**k for k in range(0, 7)] * 5
        whole = _filled(values, max_bins=4)
        merged = QuantileSketch(max_bins=4)
        merged.merge(_filled(values[::2], max_bins=4))
        merged.merge(_filled(values[1::2], max_bins=4))
        assert merged.as_dict() == whole.as_dict()

    def test_merge_accepts_live_sketch_or_payload(self):
        a = _filled([1.0, 2.0])
        b = _filled([3.0])
        by_payload = _filled([1.0, 2.0])
        by_payload.merge(b.as_dict())
        a.merge(b)
        assert a.as_dict() == by_payload.as_dict()

    def test_merge_requires_identical_shape(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))
        with pytest.raises(ValueError):
            QuantileSketch(max_bins=8).merge(QuantileSketch(max_bins=16))


class TestSerialization:
    def test_payload_is_order_independent(self):
        values = [7.0, 0.0, 3.5, 3.5, 900.0, 0.25]
        assert _filled(values).as_dict() == _filled(reversed(values)).as_dict()

    def test_round_trip_through_from_dict(self):
        sketch = _filled([0.0, 0.5, 5.0, 50.0])
        rebuilt = QuantileSketch.from_dict(sketch.as_dict())
        assert rebuilt.as_dict() == sketch.as_dict()
        assert rebuilt.quantile(0.5) == sketch.quantile(0.5)

    def test_payload_quantile_matches_live_instrument(self):
        sketch = _filled([1.0, 2.0, 4.0, 8.0])
        for q in (0.0, 0.5, 1.0):
            assert sketch_quantile_from_payload(sketch.as_dict(), q) == (
                sketch.quantile(q)
            )

    def test_payload_quantile_none_on_empty(self):
        assert sketch_quantile_from_payload(QuantileSketch().as_dict(), 0.5) is None
