"""Validator coverage for the schema-6 telemetry sections.

The sketch payload and drop-accounting checks carry the PR's
bounded-memory guarantees into stored artifacts: a manifest that claims
drops its counters don't corroborate (or vice versa), or a sketch whose
bins lost observations, must fail ``repro obs validate`` loudly.
"""

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.metrics import MetricsRegistry
from repro.obs.sketch import QuantileSketch
from repro.obs.validate import validate_manifest, validate_metrics


def _metrics_with_sketch(**sketch_overrides):
    registry = MetricsRegistry()
    sketch = registry.sketch("events.interarrival")
    for value in (0.5, 1.0, 2.0):
        sketch.observe(value)
    payload = registry.snapshot().as_dict()
    payload["sketches"]["events.interarrival"].update(sketch_overrides)
    return payload


def _manifest_payload(event_drops, counters):
    """A minimal but structurally valid schema-6 manifest."""
    return {
        "schema": MANIFEST_SCHEMA,
        "fingerprint": "f" * 64,
        "seed": 7,
        "library_version": "0.0.0",
        "created_at": "2026-08-09T00:00:00Z",
        "golden_deviations": [],
        "config": {},
        "span_tree": {"name": "scenario", "children": []},
        "metrics": {
            "schema": 2,
            "counters": counters,
            "gauges": {},
            "histograms": {},
            "sketches": {},
            "watermarks": {},
        },
        "artifact_digests": {"dataset": "a" * 64},
        "event_summary": {},
        "stage_fingerprints": {},
        "health_summary": {},
        "event_drops": event_drops,
    }


class TestSketchPayloadValidation:
    def test_real_sketch_payload_passes(self):
        assert validate_metrics(_metrics_with_sketch()) == []

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, "loose", None])
    def test_alpha_outside_unit_interval_fails(self, alpha):
        errors = validate_metrics(_metrics_with_sketch(alpha=alpha))
        assert any("alpha" in error for error in errors)

    @pytest.mark.parametrize("max_bins", [1, 0, -3, 2.5, "many"])
    def test_max_bins_below_two_fails(self, max_bins):
        errors = validate_metrics(_metrics_with_sketch(max_bins=max_bins))
        assert any("max_bins" in error for error in errors)

    def test_non_integer_bin_index_fails(self):
        errors = validate_metrics(_metrics_with_sketch(bins={"high": 3}, count=3))
        assert any("not an int" in error for error in errors)

    @pytest.mark.parametrize("count", [0, -1, 1.5, "two"])
    def test_non_positive_bin_count_fails(self, count):
        errors = validate_metrics(_metrics_with_sketch(bins={"4": count}))
        assert any("positive integer" in error for error in errors)

    def test_bins_over_the_declared_cap_fails(self):
        bins = {str(index): 1 for index in range(5)}
        errors = validate_metrics(
            _metrics_with_sketch(max_bins=2, bins=bins, count=5)
        )
        assert any("over its max_bins=2 cap" in error for error in errors)

    def test_lost_observations_fail_the_count_reconciliation(self):
        # 3 observed, but zeros + binned only explains 2
        errors = validate_metrics(_metrics_with_sketch(zeros=0, bins={"4": 2}))
        assert any("observations lost" in error for error in errors)

    def test_non_mapping_payload_fails(self):
        payload = _metrics_with_sketch()
        payload["sketches"]["events.interarrival"] = [1, 2, 3]
        errors = validate_metrics(payload)
        assert any("must be a mapping" in error for error in errors)

    def test_serialized_round_trip_stays_valid(self):
        sketch = QuantileSketch()
        for value in range(1, 50):
            sketch.observe(float(value))
        restored = QuantileSketch.from_dict(sketch.as_dict())
        payload = _metrics_with_sketch()
        payload["sketches"]["events.interarrival"] = restored.as_dict()
        assert validate_metrics(payload) == []


class TestEventDropsValidation:
    def test_reconciled_drops_pass(self):
        payload = _manifest_payload(
            {"ring": {"cache.hit": 5}},
            {'events.dropped{kind=cache.hit,transport=ring}': 5},
        )
        assert validate_manifest(payload) == []

    def test_missing_section_fails_on_schema_6(self):
        payload = _manifest_payload({}, {})
        del payload["event_drops"]
        errors = validate_manifest(payload)
        assert any("event_drops must be a mapping" in error for error in errors)

    def test_unknown_event_kind_fails(self):
        payload = _manifest_payload({"ring": {"totally.bogus": 2}}, {})
        errors = validate_manifest(payload)
        assert any("unknown event kind 'totally.bogus'" in error for error in errors)

    @pytest.mark.parametrize("count", [0, -2, "three", None])
    def test_non_positive_drop_count_fails(self, count):
        payload = _manifest_payload({"file": {"cache.hit": count}}, {})
        errors = validate_manifest(payload)
        assert any("positive integer" in error for error in errors)

    def test_counter_disagreement_fails_both_directions(self):
        # manifest claims 5, counter says 3
        payload = _manifest_payload(
            {"ring": {"cache.hit": 5}},
            {'events.dropped{kind=cache.hit,transport=ring}': 3},
        )
        errors = validate_manifest(payload)
        assert any("the events.dropped counter says 3" in error for error in errors)

    def test_counter_without_manifest_entry_fails(self):
        payload = _manifest_payload(
            {},
            {'events.dropped{kind=cache.hit,transport=ring}': 4},
        )
        errors = validate_manifest(payload)
        assert any("has no event_drops entry" in error for error in errors)

    def test_non_mapping_transport_entry_fails(self):
        payload = _manifest_payload({"ring": [1, 2]}, {})
        errors = validate_manifest(payload)
        assert any("event_drops['ring'] must be a mapping" in error for error in errors)

    def test_pre_schema_6_manifests_skip_the_drop_check(self):
        payload = _manifest_payload({}, {})
        payload["schema"] = 5
        del payload["event_drops"]
        assert validate_manifest(payload) == []
