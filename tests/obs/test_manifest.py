"""Run manifests: schema stability, round-trips, digest determinism."""

import json

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest, artifact_digests
from repro.obs.validate import validate_manifest
from repro.util.validation import ValidationError


def _sample(**overrides) -> RunManifest:
    fields = dict(
        fingerprint="ab" * 32,
        seed=2010,
        config={"n_weeks": 74, "scale": 1.0},
        library_version="0.1.0",
        span_tree={"name": "scenario", "seconds": 1.0},
        metrics={"schema": 1, "counters": {}, "gauges": {}, "histograms": {}},
        artifact_digests={"headline": "cd" * 32},
        created_at="2026-01-01T00:00:00Z",
        golden_deviations=[],
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestRunManifest:
    def test_as_dict_is_the_stable_documented_layout(self):
        payload = _sample().as_dict()
        assert set(payload) == {
            "schema",
            "fingerprint",
            "seed",
            "config",
            "library_version",
            "created_at",
            "span_tree",
            "metrics",
            "artifact_digests",
            "golden_deviations",
            "event_summary",
            "stage_fingerprints",
            "health_summary",
            "event_drops",
        }
        assert payload["schema"] == MANIFEST_SCHEMA

    def test_json_round_trip(self):
        manifest = _sample()
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest

    def test_round_trip_with_empty_artifact_set(self):
        manifest = _sample(artifact_digests={})
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest
        assert rebuilt.artifact_digests == {}

    def test_round_trip_with_labelled_metric_keys(self):
        manifest = _sample(
            metrics={
                "schema": 1,
                "counters": {"epm.observations{dimension=mu}": 12.0},
                "gauges": {"epm.clusters{dimension=epsilon,policy=strict}": 3.0},
                "histograms": {},
            }
        )
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest
        assert (
            rebuilt.metrics["counters"]["epm.observations{dimension=mu}"] == 12.0
        )

    def test_round_trip_with_unicode_attribute_values(self):
        manifest = _sample(
            span_tree={
                "name": "scenario",
                "seconds": 1.0,
                "attributes": {"note": "拡張 — ünïcode ✓"},
            },
            golden_deviations=["events: expected 14687, measured ∅"],
        )
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest
        assert rebuilt.span_tree["attributes"]["note"] == "拡張 — ünïcode ✓"

    def test_schema_1_payload_still_loads(self):
        payload = _sample().as_dict()
        payload["schema"] = 1
        del payload["created_at"]
        del payload["golden_deviations"]
        rebuilt = RunManifest.from_dict(payload)
        assert rebuilt.schema == 1
        assert rebuilt.created_at == ""
        assert rebuilt.golden_deviations == []

    def test_unknown_schema_rejected(self):
        payload = _sample().as_dict()
        payload["schema"] = 99
        with pytest.raises(ValidationError):
            RunManifest.from_dict(payload)

    def test_content_id_is_stable_and_content_sensitive(self):
        assert _sample().content_id() == _sample().content_id()
        assert _sample().content_id() != _sample(seed=11).content_id()

    def test_write_persists_valid_json(self, tmp_path):
        path = _sample().write(tmp_path / "manifest.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_manifest(payload) == []

    def test_validator_flags_broken_manifests(self):
        payload = _sample().as_dict()
        payload["fingerprint"] = "short"
        payload["artifact_digests"] = {}
        errors = validate_manifest(payload)
        assert any("fingerprint" in error for error in errors)
        assert any("artifact_digests" in error for error in errors)


class TestScenarioManifest:
    def test_run_carries_a_valid_manifest(self, small_run):
        manifest = small_run.manifest
        assert manifest is not None
        assert validate_manifest(manifest.as_dict()) == []

    def test_fingerprint_matches_the_cache_key(self, small_run):
        from repro.experiments.cache import scenario_fingerprint

        assert small_run.manifest.fingerprint == scenario_fingerprint(
            small_run.seed, small_run.config
        )

    def test_span_tree_mirrors_the_trace(self, small_run):
        span_tree = small_run.manifest.span_tree
        assert span_tree["name"] == "scenario"
        stages = {child["name"] for child in span_tree["children"]}
        assert stages == {
            "deployment",
            "catalog",
            "observe",
            "enrich",
            "epm",
            "bcluster",
            "windows",
        }

    def test_artifact_digests_are_deterministic_per_run(self, small_run):
        assert artifact_digests(small_run) == artifact_digests(small_run)

    def test_artifact_digests_track_the_artifacts(self, small_run):
        digests = small_run.manifest.artifact_digests
        assert set(digests) == {
            "dataset.events",
            "epm.clusters",
            "bclusters.assignment",
            "headline",
        }
        assert digests == artifact_digests(small_run)

    def test_stage_spans_carry_their_output_digests(self, small_run):
        tree = small_run.manifest.span_tree
        digests = small_run.manifest.artifact_digests
        by_name = {child["name"]: child for child in tree["children"]}
        assert tree["attributes"]["output_digest"] == digests["headline"]
        assert (
            by_name["observe"]["attributes"]["output_digest"]
            == digests["dataset.events"]
        )
        assert (
            by_name["epm"]["attributes"]["output_digest"]
            == digests["epm.clusters"]
        )
        assert (
            by_name["bcluster"]["attributes"]["output_digest"]
            == digests["bclusters.assignment"]
        )

    def test_manifest_self_reports_golden_deviations(self, small_run):
        # The reduced run deviates from the full-scale golden headline
        # on every key — the manifest must say so itself.
        from repro.experiments.regression import check_headline

        assert small_run.manifest.golden_deviations == check_headline(
            small_run.headline()
        )
        assert small_run.manifest.golden_deviations  # reduced scale deviates

    def test_manifest_created_at_uses_the_injectable_clock(self, small_run):
        assert small_run.manifest.created_at  # stamped at build time
