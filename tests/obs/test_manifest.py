"""Run manifests: schema stability, round-trips, digest determinism."""

import json

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest, artifact_digests
from repro.obs.validate import validate_manifest
from repro.util.validation import ValidationError


def _sample() -> RunManifest:
    return RunManifest(
        fingerprint="ab" * 32,
        seed=2010,
        config={"n_weeks": 74, "scale": 1.0},
        library_version="0.1.0",
        span_tree={"name": "scenario", "seconds": 1.0},
        metrics={"schema": 1, "counters": {}, "gauges": {}, "histograms": {}},
        artifact_digests={"headline": "cd" * 32},
    )


class TestRunManifest:
    def test_as_dict_is_the_stable_documented_layout(self):
        payload = _sample().as_dict()
        assert set(payload) == {
            "schema",
            "fingerprint",
            "seed",
            "config",
            "library_version",
            "span_tree",
            "metrics",
            "artifact_digests",
        }
        assert payload["schema"] == MANIFEST_SCHEMA

    def test_json_round_trip(self):
        manifest = _sample()
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest

    def test_unknown_schema_rejected(self):
        payload = _sample().as_dict()
        payload["schema"] = 99
        with pytest.raises(ValidationError):
            RunManifest.from_dict(payload)

    def test_write_persists_valid_json(self, tmp_path):
        path = _sample().write(tmp_path / "manifest.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_manifest(payload) == []

    def test_validator_flags_broken_manifests(self):
        payload = _sample().as_dict()
        payload["fingerprint"] = "short"
        payload["artifact_digests"] = {}
        errors = validate_manifest(payload)
        assert any("fingerprint" in error for error in errors)
        assert any("artifact_digests" in error for error in errors)


class TestScenarioManifest:
    def test_run_carries_a_valid_manifest(self, small_run):
        manifest = small_run.manifest
        assert manifest is not None
        assert validate_manifest(manifest.as_dict()) == []

    def test_fingerprint_matches_the_cache_key(self, small_run):
        from repro.experiments.cache import scenario_fingerprint

        assert small_run.manifest.fingerprint == scenario_fingerprint(
            small_run.seed, small_run.config
        )

    def test_span_tree_mirrors_the_trace(self, small_run):
        span_tree = small_run.manifest.span_tree
        assert span_tree["name"] == "scenario"
        stages = {child["name"] for child in span_tree["children"]}
        assert stages == {
            "deployment",
            "catalog",
            "observe",
            "enrich",
            "epm",
            "bcluster",
        }

    def test_artifact_digests_are_deterministic_per_run(self, small_run):
        assert artifact_digests(small_run) == artifact_digests(small_run)

    def test_artifact_digests_track_the_artifacts(self, small_run):
        digests = small_run.manifest.artifact_digests
        assert set(digests) == {
            "dataset.events",
            "epm.clusters",
            "bclusters.assignment",
            "headline",
        }
        assert digests == artifact_digests(small_run)
