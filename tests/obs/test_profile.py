"""Span profiling probes and the span-tree exporters."""

import json
import random

import pytest

from repro.obs.profile import (
    PROFILE_ATTRS,
    SpanProbe,
    chrome_trace,
    flame_view,
    write_chrome_trace,
)
from repro.obs.trace import Tracer


def _random_tree(rng: random.Random, depth: int = 0) -> dict:
    """An exported-span-tree shape with random fan-out and durations."""
    node = {
        "name": f"span-{rng.randrange(10**6)}",
        "seconds": round(rng.uniform(0.0, 3.0), 6),
    }
    if rng.random() < 0.4:
        node["start"] = round(rng.uniform(0.0, 5.0), 6)
    if rng.random() < 0.5:
        node["attributes"] = {"k": rng.randrange(100), "note": "ünïcode ✓"}
    if depth < 3 and rng.random() < 0.7:
        node["children"] = [
            _random_tree(rng, depth + 1) for _ in range(rng.randrange(1, 4))
        ]
    return node


def _count_spans(node: dict) -> int:
    return 1 + sum(_count_spans(child) for child in node.get("children", ()))


class TestSpanProbe:
    def test_probe_reports_all_attrs(self):
        probe = SpanProbe()
        token = probe.begin()
        sum(i * i for i in range(20_000))  # burn some CPU
        attrs = probe.end(token)
        assert attrs["cpu_seconds"] >= 0
        assert attrs["gc_collections"] >= 0
        assert attrs["max_rss_kb"] > 0  # Linux CI always has resource

    def test_profiling_tracer_attaches_attrs_to_every_span(self):
        tracer = Tracer("run", profile=True)
        assert tracer.profiling
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        root = tracer.finish()
        for name in ("outer", "inner"):
            span = root.find(name)
            assert set(PROFILE_ATTRS) <= set(span.attributes)

    def test_plain_tracer_attaches_nothing(self):
        tracer = Tracer("run")
        assert not tracer.profiling
        with tracer.span("stage"):
            pass
        assert not set(PROFILE_ATTRS) & set(
            tracer.finish().find("stage").attributes
        )


class TestChromeTrace:
    @pytest.mark.parametrize("seed", range(20))
    def test_round_trip_properties(self, seed):
        """Property-style: every span appears exactly once, durations
        and timestamps are non-negative, attributes ride as args."""
        tree = _random_tree(random.Random(seed))
        payload = chrome_trace(tree)
        events = payload["traceEvents"]
        assert len(events) == _count_spans(tree)
        names = sorted(e["name"] for e in events)
        expected = []

        def collect(node):
            expected.append(node["name"])
            for child in node.get("children", ()):
                collect(child)

        collect(tree)
        assert names == sorted(expected)
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)

    def test_attributes_become_args(self):
        tree = {
            "name": "scenario",
            "seconds": 1.0,
            "attributes": {"events": 42},
        }
        (event,) = chrome_trace(tree)["traceEvents"]
        assert event["args"] == {"events": 42}

    def test_spans_without_start_lay_out_sequentially(self):
        tree = {
            "name": "root",
            "seconds": 3.0,
            "children": [
                {"name": "a", "seconds": 1.0},
                {"name": "b", "seconds": 2.0},
            ],
        }
        events = {e["name"]: e for e in chrome_trace(tree)["traceEvents"]}
        assert events["a"]["ts"] == 0
        assert events["b"]["ts"] == 1_000_000  # opens where a closed

    def test_recorded_starts_win_over_layout(self):
        tree = {
            "name": "root",
            "seconds": 3.0,
            "start": 0.0,
            "children": [{"name": "a", "seconds": 1.0, "start": 0.5}],
        }
        events = {e["name"]: e for e in chrome_trace(tree)["traceEvents"]}
        assert events["a"]["ts"] == 500_000

    def test_live_tracer_trees_export_loadable_json(self, tmp_path):
        tracer = Tracer("scenario", profile=True)
        with tracer.span("observe"):
            with tracer.span("sensors"):
                pass
        with tracer.span("epm"):
            pass
        root = tracer.finish()
        path = write_chrome_trace(root.export(), tmp_path / "trace.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        assert {e["name"] for e in payload["traceEvents"]} == {
            "scenario",
            "observe",
            "sensors",
            "epm",
        }


class TestFlameView:
    def test_renders_every_span_with_bars(self):
        tracer = Tracer("scenario")
        with tracer.span("observe"):
            with tracer.span("sensors"):
                pass
        text = flame_view(tracer.finish().export())
        assert "scenario" in text
        assert "  observe" in text
        assert "    sensors" in text

    def test_profile_attrs_show_in_the_view(self):
        tree = {
            "name": "epm",
            "seconds": 2.0,
            "attributes": {
                "cpu_seconds": 1.5,
                "max_rss_kb": 1024,
                "gc_collections": 3,
            },
        }
        text = flame_view(tree)
        assert "cpu=1.500s" in text
        assert "rss=1024KiB" in text
        assert "gc=3" in text
