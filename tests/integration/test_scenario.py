"""Integration tests for the end-to-end scenario pipeline."""

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.honeypot.deployment import DeploymentConfig
from repro.util.validation import ValidationError


class TestScenarioConfig:
    def test_defaults_match_paper_setup(self):
        config = ScenarioConfig()
        assert config.n_weeks == 74
        assert config.deployment.n_networks == 30
        assert config.deployment.sensors_per_network == 5
        assert config.invariant_policy.min_instances == 10
        assert config.clustering.threshold == 0.7

    def test_validation(self):
        with pytest.raises(ValidationError):
            ScenarioConfig(n_weeks=1)
        with pytest.raises(ValidationError):
            ScenarioConfig(scale=0)


class TestScenarioRun:
    def test_headline_keys(self, small_run):
        headline = small_run.headline()
        assert set(headline) == {
            "events",
            "samples_collected",
            "samples_executed",
            "e_clusters",
            "p_clusters",
            "m_clusters",
            "b_clusters",
            "size1_b_clusters",
        }

    def test_artifact_consistency(self, small_run):
        assert small_run.anubis.n_reports == len(small_run.dataset.valid_samples())
        assert small_run.virustotal.n_scanned == small_run.dataset.n_samples
        assert set(small_run.bclusters.assignment) == {
            r.md5 for r in small_run.dataset.valid_samples()
        }

    def test_all_landscape_shapes_present(self, small_run):
        families = {
            e.ground_truth.family for e in small_run.dataset if e.ground_truth
        }
        assert "allaple" in families
        assert "iliketay" in families
        assert any(f.startswith("ircbot") for f in families)
        assert any(f.startswith("misc") for f in families)

    def test_deterministic_given_seed(self):
        config = ScenarioConfig(
            n_weeks=12,
            scale=0.05,
            deployment=DeploymentConfig(n_networks=4, sensors_per_network=2),
        )
        a = PaperScenario(seed=7, config=config).run()
        b = PaperScenario(seed=7, config=config).run()
        assert a.headline() == b.headline()
        assert [e.timestamp for e in a.dataset] == [e.timestamp for e in b.dataset]
        assert a.bclusters.sizes() == b.bclusters.sizes()

    def test_seed_changes_outcome(self):
        config = ScenarioConfig(
            n_weeks=12,
            scale=0.05,
            deployment=DeploymentConfig(n_networks=4, sensors_per_network=2),
        )
        a = PaperScenario(seed=7, config=config).run()
        b = PaperScenario(seed=8, config=config).run()
        assert [e.timestamp for e in a.dataset] != [e.timestamp for e in b.dataset]


class TestDatasetRoundTripThroughAnalysis:
    def test_saved_dataset_reclusters_identically(self, small_run, tmp_path):
        from repro.core.epm import EPMClustering
        from repro.egpm.dataset import SGNetDataset

        path = tmp_path / "events.jsonl"
        small_run.dataset.save_jsonl(path)
        reloaded = SGNetDataset.load_jsonl(path)
        epm = EPMClustering(policy=small_run.config.invariant_policy).fit(reloaded)
        assert epm.counts() == small_run.epm.counts()
        assert epm.mu.sizes() == small_run.epm.mu.sizes()
