"""Integration tests for the per-table/figure experiment drivers."""

from repro.experiments.drivers import (
    PAPER,
    anomaly_report,
    figure3,
    figure4,
    figure5,
    headline,
    mcluster13_report,
    table1,
    table2,
)


class TestHeadline:
    def test_renders_and_returns(self, small_run):
        measured, text = headline(small_run)
        assert "paper" in text and "measured" in text
        assert measured["events"] == len(small_run.dataset)

    def test_paper_constants_recorded(self):
        assert PAPER["samples_collected"] == 6353
        assert PAPER["b_clusters"] == 972


class TestTable1:
    def test_all_features_reported(self, small_run):
        flat, text = table1(small_run)
        assert set(flat) == set(PAPER["table1_invariants"])
        assert "fsm_path_id" in text

    def test_counts_positive_for_core_features(self, small_run):
        flat, _ = table1(small_run)
        assert flat["fsm_path_id"] > 1
        assert flat["size"] > 5
        assert flat["machine_type"] >= 1


class TestFigure3:
    def test_graph_and_text(self, small_run):
        graph, text = figure3(small_run, min_events=20)
        assert graph.stats().m_nodes > 0
        assert "Figure 3" in text


class TestAnomalyReport:
    def test_healing_reported(self, small_run):
        result, text = anomaly_report(small_run)
        assert result["n_rerun"] > 0
        assert (
            result["healed_summary"]["singleton_b_clusters"]
            < result["summary"]["singleton_b_clusters"]
        )
        assert "healing" in text


class TestFigure4:
    def test_rahack_and_p_pattern(self, small_run):
        result, text = figure4(small_run)
        assert result["share"] > 0.9
        assert "Rahack" in text
        assert "9988" in text


class TestFigure5:
    def test_two_clusters_contrasted(self, small_run):
        results, text = figure5(small_run)
        assert len(results) == 2
        assert "worm-like" in text
        assert "bot-like" in text


class TestTable2:
    def test_correlation_rendered(self, small_run):
        correlation, text = table2(small_run)
        assert correlation.n_irc_m_clusters > 0
        assert "Server address" in text


class TestMcluster13:
    def test_exact_pattern_found(self, small_run):
        result, text = mcluster13_report(small_run)
        assert result["m_cluster"] is not None
        assert result["single_source_md5s"] == result["n_samples"]
        assert result["multi_sensor_md5s"] > 0
        assert len(result["b_clusters"]) >= 2
        assert "linker_version=92" in text
