"""Edge-case and failure-injection tests across the pipeline."""

import pytest

from repro.core.epm import EPMClustering
from repro.egpm.dataset import SGNetDataset
from repro.egpm.events import (
    AttackEvent,
    ExploitObservable,
    MalwareObservable,
)
from repro.net.address import IPv4Address
from repro.sandbox.clustering import cluster_exact, cluster_lsh
from repro.util.validation import ValidationError


def _minimal_event(event_id, *, md5=None, source=1, sensor=2):
    malware = None
    if md5 is not None:
        malware = MalwareObservable(
            md5=md5, size=100, magic="data", pe=None, corrupted=True
        )
    return AttackEvent(
        event_id=event_id,
        timestamp=event_id * 100,
        source=IPv4Address(source),
        sensor=IPv4Address(sensor),
        exploit=ExploitObservable(fsm_path_id=1, dst_port=445),
        malware=malware,
    )


class TestEpmDegenerateDatasets:
    def test_single_event(self):
        dataset = SGNetDataset.from_events([_minimal_event(0)])
        epm = EPMClustering().fit(dataset)
        assert epm.epsilon.n_clusters == 1
        # Below every invariant threshold: one all-wildcard cluster.
        from repro.core.patterns import WILDCARD

        pattern = epm.epsilon.clusters[0].pattern
        assert all(v is WILDCARD for v in pattern)

    def test_no_payload_dimension(self):
        dataset = SGNetDataset.from_events([_minimal_event(i) for i in range(20)])
        epm = EPMClustering().fit(dataset)
        assert epm.pi.n_instances == 0
        assert epm.pi.n_clusters == 0
        assert epm.mu.n_instances == 0

    def test_all_corrupted_samples(self):
        events = [
            _minimal_event(i, md5=f"{i:032x}", source=i % 5, sensor=100 + i % 4)
            for i in range(30)
        ]
        dataset = SGNetDataset.from_events(events)
        epm = EPMClustering().fit(dataset)
        assert epm.mu.n_instances == 30
        mapping = epm.m_cluster_of_samples(dataset)
        assert len(mapping) == 30
        # They pool: magic/pe-None are the only shared values.
        assert epm.mu.n_clusters <= 3

    def test_single_source_never_mints_invariants(self):
        events = [
            _minimal_event(i, md5="a" * 32, source=7, sensor=100 + i % 5)
            for i in range(50)
        ]
        dataset = SGNetDataset.from_events(events)
        epm = EPMClustering().fit(dataset)
        assert epm.mu.invariants.total_invariants == 0

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValidationError):
            EPMClustering().fit(SGNetDataset())


class TestClusteringDegenerateInputs:
    def test_empty_profiles_mapping(self):
        result = cluster_lsh({})
        assert result.n_clusters == 0
        assert result.assignment == {}

    def test_single_profile(self):
        from repro.sandbox.behavior import BehaviorProfile

        profiles = {"only": BehaviorProfile.from_features([("a", "b", "c")])}
        assert cluster_lsh(profiles).n_clusters == 1
        assert cluster_exact(profiles).n_clusters == 1

    def test_all_empty_profiles(self):
        from repro.sandbox.behavior import BehaviorProfile

        profiles = {f"s{i}": BehaviorProfile.from_features([]) for i in range(5)}
        result = cluster_lsh(profiles)
        assert result.n_clusters == 1  # identical (empty) profiles merge


class TestDatasetEdgeCases:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SGNetDataset.load_jsonl(tmp_path / "missing.jsonl")

    def test_save_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert SGNetDataset().save_jsonl(path) == 0
        assert len(SGNetDataset.load_jsonl(path)) == 0

    def test_events_for_sample_on_empty(self):
        assert SGNetDataset().events_for_sample("a" * 32) == []


class TestCrossViewDegenerate:
    def test_no_joint_samples(self):
        from repro.analysis.crossview import CrossView
        from repro.sandbox.clustering import BehaviorClustering

        events = [_minimal_event(i, md5=f"{i:032x}") for i in range(12)]
        dataset = SGNetDataset.from_events(events)
        epm = EPMClustering().fit(dataset)
        bclusters = BehaviorClustering.from_assignment({"f" * 32: 0})
        crossview = CrossView(dataset, epm, bclusters)
        assert crossview.joint_samples == []
        assert crossview.singleton_anomalies() == []
        assert crossview.rare_singletons() == []
        assert crossview.environment_splits() == []
