"""Integration tests for the evasion experiment."""

import pytest

from repro.experiments.evasion import evasion_experiment, run_engine
from repro.malware.polymorphism import PolymorphyMode


@pytest.fixture(scope="module")
def outcomes():
    return evasion_experiment(seed=11, n_variants=6, n_weeks=8)


class TestEvasionExperiment:
    def test_per_instance_clusters_match_variants(self, outcomes):
        honest = outcomes[PolymorphyMode.PER_INSTANCE]
        # One M-cluster per variant plus a small number of junk bins.
        assert 6 <= honest.n_m_clusters <= 12

    def test_per_instance_quality_high(self, outcomes):
        quality = outcomes[PolymorphyMode.PER_INSTANCE].quality
        assert quality.precision > 0.85
        assert quality.recall > 0.8

    def test_repack_destroys_recall(self, outcomes):
        honest = outcomes[PolymorphyMode.PER_INSTANCE].quality
        evaded = outcomes[PolymorphyMode.REPACK].quality
        assert evaded.recall < honest.recall / 3
        assert evaded.f1 < honest.f1 / 2

    def test_repack_shatters_or_collapses_clusters(self, outcomes):
        # The evasive engine leaves EPM with either one wildcard bin or
        # hundreds of coincidental bins — never the true lineage size.
        evaded = outcomes[PolymorphyMode.REPACK]
        true_variants = evaded.quality.n_reference_classes
        assert (
            evaded.n_m_clusters < true_variants / 2
            or evaded.n_m_clusters > true_variants * 4
        )

    def test_deterministic(self):
        a = run_engine(PolymorphyMode.PER_INSTANCE, seed=5, n_variants=3, n_weeks=5)
        b = run_engine(PolymorphyMode.PER_INSTANCE, seed=5, n_variants=3, n_weeks=5)
        assert a.quality == b.quality
