"""Seed robustness: the reproduced shape must not be a single-seed fluke.

The calibrated landscape is validated throughout the suite on seed 2010;
these tests re-run reduced scenarios on other seeds and assert the same
*qualitative* structure (the claims of the paper), with loose bounds.
"""

import pytest

from repro.analysis.crossview import CrossView
from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.honeypot.deployment import DeploymentConfig


@pytest.fixture(scope="module", params=[7, 1999])
def other_seed_run(request):
    config = ScenarioConfig(
        n_weeks=50,
        scale=0.18,
        deployment=DeploymentConfig(n_networks=10, sensors_per_network=4),
    )
    return PaperScenario(seed=request.param, config=config).run()


class TestShapeAcrossSeeds:
    def test_cluster_count_ordering(self, other_seed_run):
        counts = other_seed_run.epm.counts()
        assert counts["e_clusters"] < counts["m_clusters"]
        assert counts["p_clusters"] < counts["m_clusters"]

    def test_singletons_dominate_b_clusters(self, other_seed_run):
        singles = len(other_seed_run.bclusters.singletons())
        assert singles / other_seed_run.bclusters.n_clusters > 0.6

    def test_anomalies_outnumber_rarities(self, other_seed_run):
        crossview = CrossView(
            other_seed_run.dataset, other_seed_run.epm, other_seed_run.bclusters
        )
        summary = crossview.summary()
        assert summary["singleton_anomalies"] > summary["rare_singletons"]

    def test_collection_vs_execution_gap(self, other_seed_run):
        headline = other_seed_run.headline()
        executed = headline["samples_executed"]
        collected = headline["samples_collected"]
        assert 0.6 < executed / collected < 0.95

    def test_mcluster13_analogue_present(self, other_seed_run):
        from repro.experiments.drivers import mcluster13_report

        result, _text = mcluster13_report(other_seed_run)
        assert result["m_cluster"] is not None
        assert result["single_source_md5s"] == result["n_samples"]

    def test_both_context_regimes_present(self, other_seed_run):
        from repro.analysis.context import PropagationContext

        context = PropagationContext(other_seed_run.dataset, other_seed_run.grid)
        signatures = set()
        for cid, info in other_seed_run.epm.mu.clusters.items():
            if info.size >= 20:
                signatures.add(
                    context.summarize_m_cluster(other_seed_run.epm, cid).signature()
                )
        assert "worm-like" in signatures
        assert "bot-like" in signatures
