"""Tests for the command-line front-end."""

import pytest

from repro.cli import main


COMMON = ["--scale", "0.06", "--weeks", "16", "--seed", "5"]


class TestCli:
    def test_headline(self, capsys):
        assert main(["headline", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out

    def test_table1(self, capsys):
        assert main(["table1", *COMMON]) == 0
        assert "fsm_path_id" in capsys.readouterr().out

    def test_run_with_dump(self, capsys, tmp_path):
        out_file = tmp_path / "events.jsonl"
        assert main(["run", *COMMON, "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
        from repro.egpm.dataset import SGNetDataset

        assert len(SGNetDataset.load_jsonl(out_file)) > 0

    def test_evasion(self, capsys):
        assert main(["evasion", "--variants", "3", "--weeks", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "per_instance" in out and "repack" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.parametrize(
        "command", ["figure3", "figure4", "figure5", "table2", "mcluster13", "anomalies"]
    )
    def test_all_drivers_run(self, capsys, command):
        assert main([command, "--scale", "0.1", "--weeks", "30", "--seed", "2010"]) == 0
        assert capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "--scale", "0.08", "--weeks", "20", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Collection summary" in out
        assert "Anomaly triage" in out
        assert "Pattern drift" in out

    def test_drift(self, capsys):
        assert main(["drift", "--scale", "0.08", "--weeks", "20", "--seed", "4"]) == 0
        assert "drift" in capsys.readouterr().out.lower()


class TestObservabilityFlags:
    def test_metrics_out_writes_a_valid_snapshot(self, tmp_path):
        import json

        from repro.obs.validate import validate_metrics

        path = tmp_path / "metrics.json"
        assert main(["headline", *COMMON, "--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_metrics(payload, require_scenario=True) == []

    def test_manifest_writes_to_cwd(self, tmp_path, monkeypatch):
        import json

        from repro.obs.validate import validate_manifest

        monkeypatch.chdir(tmp_path)
        assert main(["headline", *COMMON, "--manifest"]) == 0
        payload = json.loads(
            (tmp_path / "manifest.json").read_text(encoding="utf-8")
        )
        assert validate_manifest(payload) == []
        assert payload["seed"] == 5

    def test_timings_renders_the_trace_tree(self, capsys):
        assert main(["headline", *COMMON, "--timings"]) == 0
        err = capsys.readouterr().err
        for stage in ("scenario", "observe", "enrich", "epm", "bcluster"):
            assert stage in err
        assert "lsh.index" in err  # nested spans show in the tree

    def test_log_json_sink(self, tmp_path):
        import json

        path = tmp_path / "log.jsonl"
        assert main(["headline", *COMMON, "--log-json", str(path)]) == 0
        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line
        ]
        assert any(r["message"] == "scenario finished" for r in records)
