"""Tests for the command-line front-end."""

import pytest

from repro.cli import main


COMMON = ["--scale", "0.06", "--weeks", "16", "--seed", "5"]


class TestCli:
    def test_headline(self, capsys):
        assert main(["headline", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out

    def test_table1(self, capsys):
        assert main(["table1", *COMMON]) == 0
        assert "fsm_path_id" in capsys.readouterr().out

    def test_run_with_dump(self, capsys, tmp_path):
        out_file = tmp_path / "events.jsonl"
        assert main(["run", *COMMON, "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
        from repro.egpm.dataset import SGNetDataset

        assert len(SGNetDataset.load_jsonl(out_file)) > 0

    def test_evasion(self, capsys):
        assert main(["evasion", "--variants", "3", "--weeks", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "per_instance" in out and "repack" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.parametrize(
        "command", ["figure3", "figure4", "figure5", "table2", "mcluster13", "anomalies"]
    )
    def test_all_drivers_run(self, capsys, command):
        assert main([command, "--scale", "0.1", "--weeks", "30", "--seed", "2010"]) == 0
        assert capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "--scale", "0.08", "--weeks", "20", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Collection summary" in out
        assert "Anomaly triage" in out
        assert "Pattern drift" in out

    def test_drift(self, capsys):
        assert main(["drift", "--scale", "0.08", "--weeks", "20", "--seed", "4"]) == 0
        assert "drift" in capsys.readouterr().out.lower()
