"""Tests for the command-line front-end."""

import pytest

from repro.cli import main


COMMON = ["--scale", "0.06", "--weeks", "16", "--seed", "5"]


class TestCli:
    def test_headline(self, capsys):
        assert main(["headline", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out

    def test_table1(self, capsys):
        assert main(["table1", *COMMON]) == 0
        assert "fsm_path_id" in capsys.readouterr().out

    def test_run_with_dump(self, capsys, tmp_path):
        out_file = tmp_path / "events.jsonl"
        assert main(["run", *COMMON, "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
        from repro.egpm.dataset import SGNetDataset

        assert len(SGNetDataset.load_jsonl(out_file)) > 0

    def test_evasion(self, capsys):
        assert main(["evasion", "--variants", "3", "--weeks", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "per_instance" in out and "repack" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.parametrize(
        "command", ["figure3", "figure4", "figure5", "table2", "mcluster13", "anomalies"]
    )
    def test_all_drivers_run(self, capsys, command):
        assert main([command, "--scale", "0.1", "--weeks", "30", "--seed", "2010"]) == 0
        assert capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "--scale", "0.08", "--weeks", "20", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Collection summary" in out
        assert "Anomaly triage" in out
        assert "Pattern drift" in out

    def test_drift(self, capsys):
        assert main(["drift", "--scale", "0.08", "--weeks", "20", "--seed", "4"]) == 0
        assert "drift" in capsys.readouterr().out.lower()


class TestExecutionFlags:
    """--shards/--no-columnar change how the pipeline runs, never what
    it computes: the headline numbers must be identical."""

    def _headline(self, capsys, *extra):
        assert main(["headline", *COMMON, *extra]) == 0
        return capsys.readouterr().out

    def test_shards_flag_is_result_invariant(self, capsys):
        baseline = self._headline(capsys)
        assert self._headline(capsys, "--shards", "4") == baseline

    def test_no_columnar_flag_is_result_invariant(self, capsys):
        baseline = self._headline(capsys)
        assert self._headline(capsys, "--no-columnar") == baseline


class TestObservabilityFlags:
    def test_metrics_out_writes_a_valid_snapshot(self, tmp_path):
        import json

        from repro.obs.validate import validate_metrics

        path = tmp_path / "metrics.json"
        assert main(["headline", *COMMON, "--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_metrics(payload, require_scenario=True) == []

    def test_manifest_writes_to_cwd(self, tmp_path, monkeypatch):
        import json

        from repro.obs.validate import validate_manifest

        monkeypatch.chdir(tmp_path)
        assert main(["headline", *COMMON, "--manifest"]) == 0
        payload = json.loads(
            (tmp_path / "manifest.json").read_text(encoding="utf-8")
        )
        assert validate_manifest(payload) == []
        assert payload["seed"] == 5

    def test_timings_renders_the_trace_tree(self, capsys):
        assert main(["headline", *COMMON, "--timings"]) == 0
        err = capsys.readouterr().err
        for stage in ("scenario", "observe", "enrich", "epm", "bcluster"):
            assert stage in err
        assert "lsh.index" in err  # nested spans show in the tree

    def test_log_json_sink(self, tmp_path):
        import json

        path = tmp_path / "log.jsonl"
        assert main(["headline", *COMMON, "--log-json", str(path)]) == 0
        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line
        ]
        assert any(r["message"] == "scenario finished" for r in records)


class TestObsSuite:
    """The longitudinal toolkit: --store-run, obs {list,diff,history,...}."""

    @pytest.fixture()
    def store_dir(self, tmp_path, monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        monkeypatch.setenv("REPRO_FIXED_TIME", "2026-08-06T00:00:00Z")
        return runs

    def _stored_ids(self, store_dir):
        from repro.obs.history import RunStore

        return [e["run_id"] for e in RunStore(store_dir).entries()]

    def test_store_run_appends_to_the_run_store(self, capsys, store_dir):
        assert main(["headline", *COMMON, "--store-run"]) == 0
        (run_id,) = self._stored_ids(store_dir)
        assert main(["obs", "list"]) == 0
        assert run_id in capsys.readouterr().out

    def test_store_run_twice_same_seed_appends_two_runs(self, store_dir):
        # Wall times differ between builds, so content ids differ: the
        # store keeps both — that IS the longitudinal record.
        assert main(["headline", *COMMON, "--store-run"]) == 0
        assert main(["headline", *COMMON, "--store-run"]) == 0
        assert len(self._stored_ids(store_dir)) == 2

    def test_diff_identical_runs_passes(self, capsys, store_dir):
        assert main(["headline", *COMMON, "--store-run"]) == 0
        (run_id,) = self._stored_ids(store_dir)
        assert main(["obs", "diff", run_id, run_id]) == 0
        out = capsys.readouterr().out
        assert "identical" in out

    def test_diff_perturbed_lsh_threshold_names_bcluster(
        self, capsys, store_dir, tmp_path
    ):
        """The acceptance scenario: an LSH-threshold change must be
        pinned to the bcluster stage by the digest walk."""
        import json

        from repro.experiments.scenario import PaperScenario, ScenarioConfig
        from repro.obs.history import RunStore
        from repro.sandbox.clustering import ClusteringConfig

        base = dict(n_weeks=16, scale=0.06)
        run_a = PaperScenario(seed=5, config=ScenarioConfig(**base)).run()
        run_b = PaperScenario(
            seed=5,
            config=ScenarioConfig(
                clustering=ClusteringConfig(threshold=0.5), **base
            ),
        ).run()
        store = RunStore(store_dir)
        id_a = store.add(run_a.manifest)
        id_b = store.add(run_b.manifest)
        assert main(["obs", "diff", id_a, id_b]) == 1
        out = capsys.readouterr().out
        assert "first diverging stage: bcluster" in out
        # Upstream stages agreed: only the bcluster digest moved.
        assert "dataset.events" not in out

    def test_history_renders_a_time_series(self, capsys, store_dir):
        assert main(["headline", *COMMON, "--store-run"]) == 0
        assert main(["headline", *COMMON, "--store-run"]) == 0
        assert main(["obs", "history", "lsh.clusters"]) == 0
        out = capsys.readouterr().out
        assert "lsh.clusters over 2 stored run(s)" in out
        assert main(["obs", "history", "stage:observe"]) == 0

    def test_trace_chrome_export_and_flame(self, capsys, store_dir, tmp_path):
        import json

        assert main(["headline", *COMMON, "--store-run", "--profile"]) == 0
        (run_id,) = self._stored_ids(store_dir)
        out_path = tmp_path / "trace.json"
        assert main(["obs", "trace", run_id, "--chrome", str(out_path)]) == 0
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        names = [e["name"] for e in payload["traceEvents"]]
        assert "scenario" in names and "bcluster" in names and "lsh.index" in names
        assert all(e["dur"] >= 0 for e in payload["traceEvents"])
        capsys.readouterr()
        assert main(["obs", "trace", run_id, "--flame"]) == 0
        flame = capsys.readouterr().out
        assert "cpu=" in flame  # --profile attrs surface in the view

    def test_obs_validate_checks_the_store(self, capsys, store_dir):
        import json

        assert main(["headline", *COMMON, "--store-run"]) == 0
        assert main(["obs", "validate"]) == 0
        capsys.readouterr()
        # Corrupt the stored run in place: per-file error, exit 1.
        from repro.obs.history import RunStore

        store = RunStore(store_dir)
        (entry,) = store.entries()
        path = store.root / entry["path"]
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["seed"] = 999_999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["obs", "validate"]) == 1
        err = capsys.readouterr().err
        assert str(path) in err and "content address" in err

    def test_profile_flag_attaches_span_resources(self, store_dir):
        from repro.obs.history import RunStore

        assert main(["headline", *COMMON, "--store-run", "--profile"]) == 0
        store = RunStore(store_dir)
        (entry,) = store.entries()
        tree = store.load(entry["run_id"]).span_tree
        observe = next(
            c for c in tree["children"] if c["name"] == "observe"
        )
        assert "cpu_seconds" in observe["attributes"]
        assert "max_rss_kb" in observe["attributes"]


class TestEventStreamCli:
    """--events/--progress and the obs tail/export/validate surface."""

    @pytest.fixture()
    def store_dir(self, tmp_path, monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        monkeypatch.setenv("REPRO_FIXED_TIME", "2026-08-06T00:00:00Z")
        return runs

    def test_events_flag_writes_a_valid_tailable_log(self, capsys, tmp_path):
        from repro.obs.events import read_events
        from repro.obs.validate import validate_events

        log = tmp_path / "events.jsonl"
        assert main(["headline", *COMMON, "--events", str(log)]) == 0
        lines = log.read_text(encoding="utf-8").splitlines()
        assert validate_events(lines) == []
        events = read_events(log)
        kinds = [event.kind for event in events]
        assert kinds[0] == "run.start" and kinds[-1] == "run.finish"
        assert "stage.finish" in kinds and "cluster.milestone" in kinds
        capsys.readouterr()
        # deterministic replay through the tail subcommand
        assert main(["obs", "tail", str(log)]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == len(events)
        assert "run.start" in out

    def test_tail_filters_narrow_the_replay(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        assert main(["headline", *COMMON, "--events", str(log)]) == 0
        capsys.readouterr()
        assert main(["obs", "tail", str(log), "--filter", "kind=stage.*",
                     "--filter", "stage=epm"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines and all("stage.start" in l or "stage.finish" in l for l in lines)
        assert all("stage=epm" in l for l in lines)

    def test_progress_renders_to_stderr(self, capsys):
        assert main(["headline", *COMMON, "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[progress] run started" in err
        assert "[progress] run finished" in err
        assert "chunks" in err and "eta" in err

    def test_export_prometheus_and_chrome_from_stored_run(
        self, capsys, store_dir, tmp_path
    ):
        import json

        assert main(["headline", *COMMON, "--store-run"]) == 0
        from repro.obs.history import RunStore

        (entry,) = RunStore(store_dir).entries()
        run_id = entry["run_id"]
        capsys.readouterr()
        assert main(["obs", "export", run_id]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_executor_chunks counter" in prom
        assert "repro_executor_chunks_total" in prom
        out_path = tmp_path / "trace.json"
        assert main(["obs", "export", run_id, "--format", "chrome",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert any(e["name"] == "bcluster" for e in payload["traceEvents"])
        capsys.readouterr()
        assert main(["obs", "export", run_id, "--format", "jsonl"]) == 0
        samples = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert any(s["name"] == "executor.items" for s in samples)

    def test_validate_events_crosschecks_the_manifest(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        log = tmp_path / "events.jsonl"
        assert main(["headline", *COMMON, "--events", str(log), "--manifest"]) == 0
        manifest = tmp_path / "manifest.json"
        assert main(["obs", "validate", "--events", str(log),
                     "--manifest", str(manifest)]) == 0
        # drop a line: the sequence gap and the span crosscheck both fire
        lines = log.read_text(encoding="utf-8").splitlines()
        stage_finish = next(i for i, l in enumerate(lines) if "stage.finish" in l)
        log.write_text("\n".join(lines[:stage_finish] + lines[stage_finish + 1:]) + "\n")
        capsys.readouterr()
        assert main(["obs", "validate", "--events", str(log),
                     "--manifest", str(manifest)]) == 1
        err = capsys.readouterr().err
        assert "seq" in err or "stage.finish" in err

    def test_store_run_with_events_enables_event_diff(self, capsys, store_dir, tmp_path):
        log_a = tmp_path / "a.jsonl"
        log_b = tmp_path / "b.jsonl"
        assert main(["headline", *COMMON, "--store-run", "--events", str(log_a)]) == 0
        assert main(["headline", "--scale", "0.06", "--weeks", "16", "--seed", "6",
                     "--store-run", "--events", str(log_b)]) == 0
        from repro.obs.history import RunStore

        ids = [e["run_id"] for e in RunStore(store_dir).entries()]
        assert all(RunStore(store_dir).load_events(run_id) for run_id in ids)
        capsys.readouterr()
        assert main(["obs", "diff", ids[0], ids[1]]) == 1
        out = capsys.readouterr().out
        assert "first diverging event" in out
        assert "seed=5" in out and "seed=6" in out


class TestHealthDashboardCli:
    """The landscape monitor front-ends: obs health / obs dashboard."""

    @pytest.fixture()
    def store_dir(self, tmp_path, monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        monkeypatch.setenv("REPRO_FIXED_TIME", "2026-08-06T00:00:00Z")
        return runs

    def _stored_run(self, store_dir):
        from repro.obs.history import RunStore

        assert main(["headline", *COMMON, "--store-run"]) == 0
        (entry,) = RunStore(store_dir).entries()
        assert entry["windows"] is True  # the sidecar rode along
        return entry["run_id"]

    def test_health_renders_a_ranked_report(self, capsys, store_dir):
        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        code = main(["obs", "health", run_id])
        out = capsys.readouterr().out
        assert "health:" in out and "rule(s)" in out
        assert code == 0  # the smoke run carries no critical findings

    def test_health_json_is_the_report_payload(self, capsys, store_dir):
        import json

        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        main(["obs", "health", run_id, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert set(payload["summary"]) == {"info", "warning", "critical"}

    def test_health_gate_against_its_own_baseline_passes(self, capsys, store_dir):
        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        code = main(["obs", "health", run_id, "--baseline", run_id,
                     "--fail-on", "info"])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_health_fail_on_floor_trips_on_existing_findings(self, capsys, store_dir):
        import json

        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        main(["obs", "health", run_id, "--json"])
        payload = json.loads(capsys.readouterr().out)
        expected = 1 if sum(payload["summary"].values()) else 0
        assert main(["obs", "health", run_id, "--fail-on", "info"]) == expected

    def test_dashboard_renders_sparklines(self, capsys, store_dir):
        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        assert main(["obs", "dashboard", run_id]) == 0
        out = capsys.readouterr().out
        assert "landscape dashboard" in out
        assert "agreement" in out and "crossview:" in out and "health:" in out

    def test_dashboard_out_writes_the_snapshot(self, store_dir, tmp_path):
        run_id = self._stored_run(store_dir)
        snapshot = tmp_path / "dashboard.txt"
        assert main(["obs", "dashboard", run_id, "--out", str(snapshot)]) == 0
        assert "landscape dashboard" in snapshot.read_text(encoding="utf-8")

    def test_dashboard_without_a_window_report_fails_cleanly(
        self, capsys, store_dir
    ):
        assert main(["headline", *COMMON, "--windows", "0", "--store-run"]) == 0
        from repro.obs.history import RunStore

        (entry,) = RunStore(store_dir).entries()
        assert entry["windows"] is False
        capsys.readouterr()
        assert main(["obs", "dashboard", entry["run_id"]]) == 1
        assert "no window report" in capsys.readouterr().err

    def test_export_openmetrics_terminates_with_eof(self, capsys, store_dir):
        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        assert main(["obs", "export", run_id, "--format", "openmetrics"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "repro_window_series{" in out  # the sidecar rode along

    def test_export_prometheus_carries_crossview_gauges(self, capsys, store_dir):
        run_id = self._stored_run(store_dir)
        capsys.readouterr()
        assert main(["obs", "export", run_id]) == 0
        assert "repro_crossview_joint_samples" in capsys.readouterr().out

    def test_validate_windows_sidecar_file(self, capsys, store_dir, tmp_path,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["headline", *COMMON, "--manifest"]) == 0
        manifest = tmp_path / "manifest.json"
        windows = tmp_path / "manifest.windows.json"
        assert windows.is_file()
        assert main(["obs", "validate", "--manifest", str(manifest),
                     "--windows", str(windows)]) == 0
        # corrupt one series length: the validator must flag it
        import json

        payload = json.loads(windows.read_text(encoding="utf-8"))
        payload["series"]["events"].append(0.0)
        windows.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["obs", "validate", "--manifest", str(manifest),
                     "--windows", str(windows)]) == 1
        assert "events" in capsys.readouterr().err


class TestLongitudinalCli:
    """obs query/regress/cost/list --limit and the index maintenance."""

    @pytest.fixture()
    def store_dir(self, tmp_path, monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        monkeypatch.setenv("REPRO_FIXED_TIME", "2026-08-06T00:00:00Z")
        return runs

    def _seeded_store(self, store_dir, bump: float = 1.0):
        """One real run plus three synthetic replays at later stamps.

        The replays are byte-identical except ``created_at`` (and, with
        ``bump``, a scaled ``lsh.clusters`` on the newest) — the cheap
        way to grow a >= 3-run longitudinal record under one config.
        """
        import json

        from repro.obs.history import RunStore
        from repro.obs.manifest import RunManifest

        assert main(["headline", *COMMON, "--store-run"]) == 0
        store = RunStore(store_dir)
        (entry,) = store.entries()
        payload = store.load_payload(entry["run_id"])
        for day, factor in ((7, 1.0), (8, 1.0), (9, bump)):
            clone = json.loads(json.dumps(payload))
            clone["created_at"] = f"2026-08-{day:02d}T00:00:00Z"
            if factor != 1.0:
                gauges = clone["metrics"]["gauges"]
                gauges["lsh.clusters"] = gauges["lsh.clusters"] * factor
            store.add(RunManifest.from_dict(clone))
        return store

    def test_query_p50_json_over_the_stored_history(self, capsys, store_dir):
        import json

        self._seeded_store(store_dir)
        capsys.readouterr()
        argv = ["obs", "query", "metric:lsh.clusters", "--agg", "p50", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 4
        (value,) = {
            row["values"]["metric:lsh.clusters"] for row in payload["rows"]
        }
        assert payload["aggregates"]["metric:lsh.clusters"] == value
        # Same store, second construction: the frame digest must agree.
        assert main(argv) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["frame_digest"] == payload["frame_digest"]

    def test_query_table_and_openmetrics_renderings(self, capsys, store_dir):
        self._seeded_store(store_dir)
        capsys.readouterr()
        assert main(
            ["obs", "query", "metric:lsh.clusters", "span:scenario",
             "--agg", "max"]
        ) == 0
        out = capsys.readouterr().out
        assert "metric:lsh.clusters" in out and "span:scenario" in out
        assert main(
            ["obs", "query", "metric:lsh.clusters", "--format", "openmetrics"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[-1] == "# EOF"
        assert any("repro_query{" in line for line in lines)

    def test_regress_is_silent_on_byte_identical_replays(self, capsys, store_dir):
        self._seeded_store(store_dir)
        capsys.readouterr()
        assert main(["obs", "regress", "--fail-on", "warn"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_regress_flags_injected_regression_then_baseline_absorbs(
        self, capsys, store_dir, tmp_path
    ):
        self._seeded_store(store_dir, bump=3.0)
        capsys.readouterr()
        report_path = tmp_path / "regress_report.json"
        assert main(
            ["obs", "regress", "--fail-on", "warn", "--report",
             str(report_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "metric:lsh.clusters" in out
        assert report_path.is_file()
        # Re-gating against the triaged report suppresses the known
        # (detector, target) pairs: nothing new, exit 0.
        assert main(
            ["obs", "regress", "--fail-on", "warn", "--baseline",
             str(report_path)]
        ) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_regress_unknown_target_lists_the_covered_ones(self, capsys,
                                                           store_dir):
        assert main(["obs", "regress", "--targets", "metric:nope"]) == 2
        err = capsys.readouterr().err
        assert "rules cover" in err and "metric:lsh.clusters" in err

    def test_list_limit_keeps_the_newest_runs(self, capsys, store_dir):
        self._seeded_store(store_dir)
        capsys.readouterr()
        assert main(["obs", "list", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "2026-08-09" in out and "2026-08-06" not in out

    def test_cost_attributes_a_clustering_change_to_bcluster(
        self, capsys, store_dir
    ):
        from repro.experiments.scenario import PaperScenario, ScenarioConfig
        from repro.obs.history import RunStore
        from repro.sandbox.clustering import ClusteringConfig

        base = dict(n_weeks=16, scale=0.06)
        run_a = PaperScenario(seed=5, config=ScenarioConfig(**base)).run()
        run_b = PaperScenario(
            seed=5,
            config=ScenarioConfig(
                clustering=ClusteringConfig(threshold=0.5), **base
            ),
        ).run()
        store = RunStore(store_dir)
        id_a = store.add(run_a.manifest)
        id_b = store.add(run_b.manifest)
        capsys.readouterr()
        assert main(["obs", "cost", id_a, id_b]) == 0
        out = capsys.readouterr().out
        assert "clustering.threshold" in out
        assert "bcluster" in out
        assert "attributed cost" in out

    def test_cost_of_a_repeat_run_is_labelled(self, capsys, store_dir):
        from repro.obs.history import RunStore

        assert main(["headline", *COMMON, "--store-run"]) == 0
        (entry,) = RunStore(store_dir).entries()
        capsys.readouterr()
        assert main(["obs", "cost", entry["run_id"], entry["run_id"]]) == 0
        assert "repeat runs" in capsys.readouterr().out

    def test_validate_rebuilds_the_index_and_checks_the_query_index(
        self, capsys, store_dir
    ):
        import json

        assert main(["headline", *COMMON, "--store-run"]) == 0
        assert main(["obs", "query", "metric:lsh.clusters"]) == 0  # warm index
        capsys.readouterr()
        (store_dir / "index.json").unlink()
        assert main(["obs", "validate", "--rebuild-index", "--query-index"]) == 0
        assert "rebuilt index" in capsys.readouterr().out
        # A hand-edited query index must fail the --query-index check.
        query_index = store_dir / "query_index.json"
        payload = json.loads(query_index.read_text(encoding="utf-8"))
        payload["rows"][0]["manifest"]["metrics"]["gauges"]["lsh.clusters"] = -1.0
        query_index.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["obs", "validate", "--query-index"]) == 1
        assert "does not match" in capsys.readouterr().err


class TestServingCli:
    """repro model export + repro classify: the serving round trip."""

    @pytest.fixture()
    def store_dir(self, tmp_path, monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        monkeypatch.setenv("REPRO_FIXED_TIME", "2026-08-06T00:00:00Z")
        return runs

    def _export(self, tmp_path, *extra):
        target = tmp_path / "model.json"
        assert main(["model", "export", *COMMON, "--out", str(target), *extra]) == 0
        return target

    def test_export_writes_a_valid_artifact(self, capsys, tmp_path):
        from repro.serve.model import ModelArtifact, validate_model
        import json

        target = self._export(tmp_path)
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert validate_model(payload) == []
        assert ModelArtifact.load(target).model_id == payload["model_id"]
        assert payload["model_id"] in capsys.readouterr().out

    def test_export_from_stored_run_agrees_on_model_id(
        self, capsys, tmp_path, store_dir
    ):
        import json

        direct = self._export(tmp_path)
        assert main(["headline", *COMMON, "--store-run"]) == 0
        from repro.obs.history import RunStore

        (entry,) = RunStore(store_dir).entries()
        capsys.readouterr()
        stored_target = tmp_path / "stored_model.json"
        assert (
            main(
                [
                    "model",
                    "export",
                    "--run",
                    entry["run_id"],
                    "--out",
                    str(stored_target),
                ]
            )
            == 0
        )
        direct_payload = json.loads(direct.read_text(encoding="utf-8"))
        stored_payload = json.loads(stored_target.read_text(encoding="utf-8"))
        assert direct_payload["model_id"] == stored_payload["model_id"]
        assert stored_payload["provenance"]["run_id"] == entry["run_id"]

    def test_export_store_then_classify_by_run_prefix(
        self, capsys, tmp_path, store_dir
    ):
        import json

        assert main(["headline", *COMMON, "--store-run"]) == 0
        from repro.obs.history import RunStore

        (entry,) = RunStore(store_dir).entries()
        run_id = entry["run_id"]
        assert (
            main(["model", "export", "--run", run_id, "--store", "--out",
                  str(tmp_path / "m.json")])
            == 0
        )
        siblings = list(store_dir.glob(f"*/{run_id}.model.json"))
        assert len(siblings) == 1
        events = tmp_path / "batch.jsonl"
        assert main(["run", *COMMON, "--out", str(events)]) == 0
        capsys.readouterr()
        out_file = tmp_path / "classified.jsonl"
        assert (
            main(
                [
                    "classify",
                    "--model",
                    run_id[:6],
                    "--batch",
                    str(events),
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        lines = out_file.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(events.read_text(encoding="utf-8").splitlines())
        first = json.loads(lines[0])
        assert set(first["classifications"]) <= {"epsilon", "pi", "mu"}

    def test_classify_single_event_inline(self, capsys, tmp_path):
        import json

        target = self._export(tmp_path)
        events = tmp_path / "events.jsonl"
        assert main(["run", *COMMON, "--out", str(events)]) == 0
        event_json = events.read_text(encoding="utf-8").splitlines()[0]
        metrics_file = tmp_path / "metrics.json"
        capsys.readouterr()
        assert (
            main(
                [
                    "classify",
                    "--model",
                    str(target),
                    "--event",
                    event_json,
                    "--metrics-out",
                    str(metrics_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "epsilon" in out or "pi" in out or "mu" in out
        from repro.obs.validate import validate_metrics

        snapshot = json.loads(metrics_file.read_text(encoding="utf-8"))
        assert validate_metrics(snapshot) == []
        counters = snapshot["counters"]
        assert any(key.startswith("classify.requests") for key in counters)

    def test_classify_needs_exactly_one_input(self, tmp_path, capsys):
        target = self._export(tmp_path)
        capsys.readouterr()
        assert main(["classify", "--model", str(target)]) == 2
        assert (
            main(
                ["classify", "--model", str(target), "--event", "{}",
                 "--batch", "x.jsonl"]
            )
            == 2
        )

    def test_classify_missing_model_fails_cleanly(self, tmp_path, store_dir, capsys):
        assert (
            main(["classify", "--model", str(tmp_path / "nope.json"),
                  "--event", "{}"])
            == 1
        )
        assert "error" in capsys.readouterr().err
