"""The paper's qualitative findings must hold on the reduced run.

These are the headline *shape* assertions of the reproduction: each test
states one claim from the paper's evaluation and checks it end-to-end on
the session scenario (reduced scale, full structure).
"""

from collections import Counter

from repro.analysis.crossview import CrossView
from repro.analysis.relations import RelationGraph


class TestSection41BigPicture:
    def test_few_exploit_payload_combinations_vs_m_clusters(self, small_run):
        counts = small_run.epm.counts()
        assert counts["e_clusters"] < counts["m_clusters"] / 2
        assert counts["p_clusters"] < counts["m_clusters"] / 2

    def test_same_payload_multiple_exploits(self, small_run):
        graph = RelationGraph(
            small_run.dataset, small_run.epm, small_run.bclusters, min_events=20
        )
        assert graph.shared_payloads()

    def test_non_singleton_b_fewer_than_m(self, small_run):
        # "The number of B-clusters is lower than the number of M-clusters:
        # some M-clusters correspond to variations of the same codebase."
        non_singleton_b = small_run.bclusters.n_clusters - len(
            small_run.bclusters.singletons()
        )
        assert non_singleton_b < small_run.epm.counts()["m_clusters"]

    def test_worm_lineage_many_m_two_b(self, small_run):
        # ~100 static clusters for two behavioural Allaple clusters.
        m_of_sample = small_run.epm.m_cluster_of_samples(small_run.dataset)
        allaple_m = set()
        allaple_b = Counter()
        for md5, record in small_run.dataset.samples.items():
            if record.ground_truth is None or record.ground_truth.family != "allaple":
                continue
            if record.observable.corrupted:
                continue
            allaple_m.add(m_of_sample[md5])
            b = small_run.bclusters.assignment.get(md5)
            if b is not None and small_run.bclusters.size_of(b) > 3:
                allaple_b[b] += 1
        assert len(allaple_m) > 10
        # Two dominant behavioural generations hold >90% of clean samples.
        top_two = sum(n for _b, n in allaple_b.most_common(2))
        assert top_two / sum(allaple_b.values()) > 0.9


class TestSection42Anomalies:
    def test_most_b_clusters_are_singletons(self, small_run):
        singles = len(small_run.bclusters.singletons())
        assert singles / small_run.bclusters.n_clusters > 0.7

    def test_singletons_mostly_anomalous_not_rare(self, small_run):
        crossview = CrossView(small_run.dataset, small_run.epm, small_run.bclusters)
        summary = crossview.summary()
        assert summary["singleton_anomalies"] > 5 * summary["rare_singletons"]

    def test_per_source_polymorph_md5_not_invariant(self, small_run):
        # M-cluster 13's signature: the binary recurs (same source, many
        # honeypots) yet MD5 never becomes an invariant of its cluster.
        names = small_run.epm.mu.feature_names
        md5_index = names.index("md5")
        m_of_sample = small_run.epm.m_cluster_of_samples(small_run.dataset)
        iliketay = [
            (md5, record)
            for md5, record in small_run.dataset.samples.items()
            if record.ground_truth is not None
            and record.ground_truth.family == "iliketay"
            and not record.observable.corrupted
        ]
        assert iliketay
        multi_event = [r for _m, r in iliketay if r.n_events > 1]
        assert multi_event  # the same MD5 really is seen repeatedly
        from repro.core.patterns import WILDCARD

        clusters = {m_of_sample[md5] for md5, _r in iliketay}
        for cluster in clusters:
            pattern = small_run.epm.mu.clusters[cluster].pattern
            assert pattern[md5_index] is WILDCARD


class TestSection43Context:
    def test_worm_vs_bot_signatures_separate(self, small_run):
        from repro.analysis.context import PropagationContext

        context = PropagationContext(small_run.dataset, small_run.grid)
        signatures = Counter()
        for cid, info in small_run.epm.mu.clusters.items():
            if info.size < 15:
                continue
            families = Counter(
                small_run.dataset.events[i].ground_truth.family
                for i in info.event_ids
            )
            family, share = families.most_common(1)[0]
            if share / info.size < 0.9:
                continue
            signature = context.summarize_m_cluster(small_run.epm, cid).signature()
            if family == "allaple":
                signatures[("allaple", signature)] += 1
            elif family.startswith("ircbot"):
                signatures[("bot", signature)] += 1
        worm_right = signatures[("allaple", "worm-like")]
        worm_wrong = signatures[("allaple", "bot-like")]
        bot_right = signatures[("bot", "bot-like")]
        bot_wrong = signatures[("bot", "worm-like")]
        assert worm_right > 0 and bot_right > 0
        assert worm_wrong == 0
        assert bot_wrong == 0

    def test_irc_correlation_recovers_infrastructure(self, small_run):
        from repro.analysis.irc import CnCCorrelation

        correlation = CnCCorrelation(
            small_run.dataset, small_run.epm, small_run.anubis
        )
        summary = correlation.infrastructure_summary()
        assert summary["m_clusters"] >= 5
        assert summary["subnets_with_multiple_servers"] >= 1
