"""Tests for hashing helpers."""

import hashlib

from repro.util.hashing import md5_hex, sha1_hex, stable_hash64


class TestMd5Hex:
    def test_matches_hashlib(self):
        assert md5_hex(b"abc") == hashlib.md5(b"abc").hexdigest()

    def test_length(self):
        assert len(md5_hex(b"")) == 32

    def test_distinct_inputs(self):
        assert md5_hex(b"a") != md5_hex(b"b")


class TestSha1Hex:
    def test_matches_hashlib(self):
        assert sha1_hex(b"abc") == hashlib.sha1(b"abc").hexdigest()


class TestStableHash64:
    def test_deterministic(self):
        assert stable_hash64("abc") == stable_hash64("abc")

    def test_sensitivity(self):
        assert stable_hash64("abc") != stable_hash64("abd")

    def test_salt_changes_value(self):
        assert stable_hash64("abc", salt="s1") != stable_hash64("abc", salt="s2")

    def test_salt_boundary_unambiguous(self):
        # salt="ab", text="c" must differ from salt="a", text="bc"
        assert stable_hash64("c", salt="ab") != stable_hash64("bc", salt="a")

    def test_range(self):
        assert 0 <= stable_hash64("anything") < 2**64
