"""Tests for the validation helpers."""

import pytest

from repro.util.validation import (
    ValidationError,
    require,
    require_positive,
    require_probability,
    require_type,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")

    def test_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


class TestRequireType:
    def test_accepts(self):
        require_type(3, int, "n")

    def test_rejects(self):
        with pytest.raises(ValidationError, match="must be int"):
            require_type("3", int, "n")

    def test_tuple_of_types(self):
        require_type(3.5, (int, float), "n")
        with pytest.raises(ValidationError):
            require_type("x", (int, float), "n")


class TestRequirePositive:
    def test_positive_ok(self):
        require_positive(0.5, "x")

    def test_zero_rejected_by_default(self):
        with pytest.raises(ValidationError):
            require_positive(0, "x")

    def test_zero_allowed_when_asked(self):
        require_positive(0, "x", allow_zero=True)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            require_positive(-1, "x", allow_zero=True)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            require_positive("5", "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01, 7])
    def test_invalid(self, value):
        with pytest.raises(ValidationError):
            require_probability(value, "p")
