"""The stage profiler: recording, aggregation, rendering."""

import time

import pytest

from repro.util.timing import StageTimer, StageTimings, StageTiming
from repro.util.validation import ValidationError


class TestStageTimer:
    def test_records_stages_in_order(self):
        timer = StageTimer()
        with timer.stage("first"):
            pass
        with timer.stage("second"):
            pass
        names = [stage.name for stage in timer.timings().stages]
        assert names == ["first", "second"]

    def test_measures_elapsed_time(self):
        timer = StageTimer()
        with timer.stage("sleepy"):
            time.sleep(0.02)
        assert timer.timings().seconds("sleepy") >= 0.015

    def test_records_stage_even_when_body_raises(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("doomed"):
                raise RuntimeError("nope")
        assert [stage.name for stage in timer.timings().stages] == ["doomed"]

    def test_empty_name_rejected(self):
        timer = StageTimer()
        with pytest.raises(ValidationError):
            with timer.stage(""):
                pass


class TestStageTimings:
    def _sample(self) -> StageTimings:
        return StageTimings(
            stages=[
                StageTiming("observe", 2.0),
                StageTiming("enrich", 1.0),
                StageTiming("enrich", 0.5),
            ]
        )

    def test_total_sums_all_stages(self):
        assert self._sample().total == pytest.approx(3.5)

    def test_repeated_names_accumulate(self):
        timings = self._sample()
        assert timings.seconds("enrich") == pytest.approx(1.5)
        assert timings.as_dict() == pytest.approx({"observe": 2.0, "enrich": 1.5})

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            self._sample().seconds("nope")

    def test_get_returns_default_for_unknown_stage(self):
        timings = self._sample()
        assert timings.get("nope") == 0.0
        assert timings.get("nope", -1.0) == -1.0
        assert timings.get("enrich") == pytest.approx(1.5)

    def test_render_mentions_every_stage_and_total(self):
        text = self._sample().render()
        for token in ("observe", "enrich", "total"):
            assert token in text

    def test_render_empty(self):
        assert "no stages" in StageTimings().render()
