"""Tests for text table / histogram rendering."""

import pytest

from repro.util.tables import TextTable, format_histogram


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["a", "b"])
        table.add_row([1, "xy"])
        out = table.render()
        assert "a" in out and "xy" in out
        assert out.count("\n") == 2  # header, separator, one row

    def test_title(self):
        table = TextTable(["c"], title="My title")
        assert table.render().startswith("My title")

    def test_column_alignment(self):
        table = TextTable(["name", "n"])
        table.add_row(["longer-name", 1])
        lines = table.render().splitlines()
        assert len(lines[0]) == len(lines[2])

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_matches_render(self):
        table = TextTable(["a"])
        table.add_row(["x"])
        assert str(table) == table.render()

    def test_empty_table(self):
        assert "a" in TextTable(["a"]).render()


class TestFormatHistogram:
    def test_empty(self):
        assert "(empty)" in format_histogram({})

    def test_bars_scale(self):
        out = format_histogram({"a": 1, "b": 4}, width=4, sort=False)
        lines = out.splitlines()
        assert lines[0].count("#") < lines[1].count("#")

    def test_counts_shown(self):
        out = format_histogram({"a": 3})
        assert "(3)" in out

    def test_sorted_by_value(self):
        out = format_histogram({"small": 1, "big": 9})
        assert out.index("big") < out.index("small")

    def test_title(self):
        out = format_histogram({"a": 1}, title="T")
        assert out.startswith("T")

    def test_zero_values(self):
        out = format_histogram({"a": 0, "b": 0})
        assert "(0)" in out
