"""Tests for the statistics helpers."""

import pytest

from repro.util.stats import (
    burstiness,
    entropy,
    frequency,
    gini,
    jaccard,
    normalized_entropy,
    quantile,
)
from repro.util.validation import ValidationError


class TestFrequency:
    def test_counts(self):
        assert frequency(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_descending_order(self):
        keys = list(frequency(["x", "y", "y", "z", "z", "z"]).keys())
        assert keys == ["z", "y", "x"]

    def test_empty(self):
        assert frequency([]) == {}


class TestEntropy:
    def test_uniform_two(self):
        assert entropy([1, 1]) == pytest.approx(1.0)

    def test_degenerate(self):
        assert entropy([10]) == 0.0

    def test_mapping_input(self):
        assert entropy({"a": 2, "b": 2}) == pytest.approx(1.0)

    def test_uniform_n(self):
        assert entropy([1] * 8) == pytest.approx(3.0)

    def test_requires_observations(self):
        with pytest.raises(ValidationError):
            entropy([0, 0])

    def test_zero_counts_ignored(self):
        assert entropy([2, 2, 0]) == pytest.approx(1.0)


class TestNormalizedEntropy:
    def test_bounds(self):
        assert 0.0 <= normalized_entropy([3, 1, 1]) <= 1.0

    def test_uniform_is_one(self):
        assert normalized_entropy([5, 5, 5]) == pytest.approx(1.0)

    def test_single_support_is_zero(self):
        assert normalized_entropy([7]) == 0.0

    def test_concentration_lowers_it(self):
        assert normalized_entropy([100, 1, 1]) < normalized_entropy([34, 34, 34])


class TestGini:
    def test_even_is_zero(self):
        assert gini([1, 1, 1, 1]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini([0, 0, 0, 100]) > 0.7

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            gini([-1, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            gini([])


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_half_overlap(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_symmetry(self):
        a, b = {1, 2, 3}, {3, 4}
        assert jaccard(a, b) == jaccard(b, a)


class TestBurstiness:
    def test_periodic_is_minus_one(self):
        assert burstiness([5.0] * 20) == pytest.approx(-1.0)

    def test_bursty_is_positive(self):
        gaps = [0.1] * 30 + [1000.0]
        assert burstiness(gaps) > 0.5

    def test_requires_gaps(self):
        with pytest.raises(ValidationError):
            burstiness([])

    def test_all_zero_gaps(self):
        assert burstiness([0.0, 0.0]) == 0.0

    def test_range(self):
        gaps = [1.0, 2.0, 3.0, 100.0]
        assert -1.0 <= burstiness(gaps) <= 1.0


class TestQuantile:
    def test_median_odd(self):
        assert quantile([3, 1, 2], 0.5) == 2

    def test_min_max(self):
        data = [4.0, 8.0, 15.0]
        assert quantile(data, 0.0) == 4.0
        assert quantile(data, 1.0) == 15.0

    def test_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_value(self):
        assert quantile([7.0], 0.9) == 7.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValidationError):
            quantile([1.0], 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            quantile([], 0.5)
