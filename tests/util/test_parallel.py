"""The executor abstraction: ordering, chunking, backends, validation."""

import os

import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import EventBus, MemoryTransport
from repro.obs.metrics import MetricsRegistry
from repro.util.parallel import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_evenly,
    get_executor,
    plan_chunks,
    resolve_jobs,
)
from repro.util.validation import ValidationError


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    return x * x


def _maybe_fail(x: int) -> int:
    if x == 3:
        raise ValueError("boom")
    return x


def _count_and_square(x: int) -> int:
    """Records worker-side telemetry (module-level for the process pool)."""
    obs_metrics.active().counter("test.worker_calls").inc()
    obs_metrics.active().histogram("test.worker_values").observe(float(x))
    return x * x


def _emit_and_square(x: int) -> int:
    """Emits a worker-side event (module-level for the process pool)."""
    obs_events.active_bus().emit("cache.hit", item=x)
    return x * x


def _count_then_maybe_fail(x: int) -> int:
    """Telemetry first, then a crash on one item."""
    obs_metrics.active().counter("test.worker_calls").inc()
    if x == 3:
        raise ValueError("boom")
    return x


def _emit_then_maybe_fail(x: int) -> int:
    """Event first, then a crash on one item."""
    obs_events.active_bus().emit("cache.miss", item=x)
    if x == 3:
        raise ValueError("boom")
    return x


class TestResolveJobs:
    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_jobs(-1)


class TestChunkEvenly:
    def test_even_split(self):
        assert chunk_evenly([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_spread_over_leading_chunks(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 3) == [[1, 2], [3, 4], [5]]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert chunk_evenly([], 4) == []

    def test_concatenation_preserves_order(self):
        chunks = chunk_evenly(list(range(103)), 8)
        assert [x for chunk in chunks for x in chunk] == list(range(103))

    def test_invalid_chunk_count(self):
        with pytest.raises(ValidationError):
            chunk_evenly([1], 0)


class TestGetExecutor:
    def test_all_backends_constructible(self):
        for backend in BACKENDS:
            executor = get_executor(backend, jobs=2)
            assert executor.backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            get_executor("gpu")

    def test_serial_is_singleton_shape(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)


class TestMapSemantics:
    ITEMS = list(range(57))

    def test_serial_map_in_order(self):
        assert SerialExecutor().map(_square, self.ITEMS) == [x * x for x in self.ITEMS]

    def test_thread_map_matches_serial(self):
        executor = ThreadExecutor(jobs=4)
        assert executor.map(_square, self.ITEMS) == [x * x for x in self.ITEMS]

    def test_thread_map_accepts_closures(self):
        offset = 7
        executor = ThreadExecutor(jobs=3)
        assert executor.map(lambda x: x + offset, self.ITEMS) == [
            x + offset for x in self.ITEMS
        ]

    def test_process_map_matches_serial(self):
        executor = ProcessExecutor(jobs=2)
        assert executor.map(_square, self.ITEMS) == [x * x for x in self.ITEMS]

    def test_empty_input(self):
        for backend in BACKENDS:
            assert get_executor(backend, jobs=2).map(_square, []) == []

    def test_single_item_short_circuits(self):
        assert ThreadExecutor(jobs=4).map(_square, [9]) == [81]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            ThreadExecutor(jobs=2).map(_maybe_fail, self.ITEMS)
        with pytest.raises(ValueError, match="boom"):
            SerialExecutor().map(_maybe_fail, self.ITEMS)

    def test_jobs_one_falls_back_to_plain_loop(self):
        executor = ThreadExecutor(jobs=1)
        assert executor.map(_square, self.ITEMS) == [x * x for x in self.ITEMS]


def _executor_for(backend):
    return get_executor(backend, jobs=2)


def _run_with_telemetry(backend, fn, items):
    """One ``map`` under a fresh registry + memory-backed event bus."""
    registry = MetricsRegistry()
    sink = MemoryTransport()
    bus = EventBus([sink])
    error = None
    with obs_metrics.use(registry), obs_events.use_bus(bus):
        try:
            results = _executor_for(backend).map(fn, items)
        except Exception as exc:
            results = None
            error = exc
    return results, registry.snapshot(), sink.events, error


class TestExecutorTelemetryParity:
    """Satellite: executor.* totals must agree exactly across backends.

    The chunk plan is a pure function of the item count and the
    ``executor.chunks`` / ``executor.items`` / ``executor.chunk_seconds``
    keys are deliberately unlabelled, so every backend's totals are
    directly comparable — this is the regression test for the historical
    worker-telemetry loss (thread/process workers' metrics silently
    dropped).
    """

    ITEMS = list(range(69))

    def _executor_counters(self, snapshot):
        return {
            key: value
            for key, value in snapshot.counters.items()
            if key.startswith("executor.")
        }

    def test_executor_metric_totals_identical_across_backends(self):
        per_backend = {}
        for backend in BACKENDS:
            results, snapshot, _events, error = _run_with_telemetry(
                backend, _count_and_square, self.ITEMS
            )
            assert error is None
            assert results == [x * x for x in self.ITEMS]
            per_backend[backend] = snapshot
        reference = per_backend["serial"]
        n_chunks = len(plan_chunks(self.ITEMS))
        assert self._executor_counters(reference) == {
            "executor.chunks": float(n_chunks),
            "executor.items": float(len(self.ITEMS)),
        }
        for backend in ("thread", "process"):
            snapshot = per_backend[backend]
            assert self._executor_counters(snapshot) == self._executor_counters(
                reference
            )
            # histogram values are wall-clock, but counts must agree
            assert (
                snapshot.histograms["executor.chunk_seconds"]["count"]
                == reference.histograms["executor.chunk_seconds"]["count"]
                == n_chunks
            )

    def test_worker_side_metrics_reach_the_parent_registry(self):
        for backend in BACKENDS:
            _results, snapshot, _events, error = _run_with_telemetry(
                backend, _count_and_square, self.ITEMS
            )
            assert error is None
            assert snapshot.counters["test.worker_calls"] == float(len(self.ITEMS))
            assert snapshot.histograms["test.worker_values"]["count"] == len(self.ITEMS)
            assert snapshot.histograms["test.worker_values"]["sum"] == float(
                sum(self.ITEMS)
            )

    def test_chunk_events_agree_across_backends(self):
        summaries = {}
        for backend in BACKENDS:
            _results, _snapshot, events, error = _run_with_telemetry(
                backend, _square, self.ITEMS
            )
            assert error is None
            counts: dict[str, int] = {}
            for event in events:
                counts[event.kind] = counts.get(event.kind, 0) + 1
            summaries[backend] = counts
        n_chunks = len(plan_chunks(self.ITEMS))
        assert summaries["serial"] == {"chunk.plan": 1, "chunk.finish": n_chunks}
        assert summaries["thread"] == summaries["serial"]
        assert summaries["process"] == summaries["serial"]


class TestWorkerEventsForwarded:
    """Satellite: events emitted inside workers reach the parent bus."""

    ITEMS = list(range(40))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_events_arrive_re_sequenced(self, backend):
        results, _snapshot, events, error = _run_with_telemetry(
            backend, _emit_and_square, self.ITEMS
        )
        assert error is None
        assert results == [x * x for x in self.ITEMS]
        hits = [event for event in events if event.kind == "cache.hit"]
        assert sorted(event.fields["item"] for event in hits) == self.ITEMS
        # re-sequenced onto the parent bus: seqs are contiguous overall
        assert sorted(event.seq for event in events) == list(range(len(events)))

    def test_process_workers_skip_the_queue_when_bus_is_off(self):
        # with the NULL bus active, worker emits are silently dropped —
        # and the map still works (no queue is even created)
        executor = ProcessExecutor(jobs=2)
        assert executor.map(_emit_and_square, self.ITEMS) == [
            x * x for x in self.ITEMS
        ]


class TestWorkerCrashTelemetry:
    """Satellite: a mapped-function crash loses no telemetry, never hangs.

    Items span enough chunks that the failing item (3) sits in an early
    chunk: the coordinator must still drain and account every later
    chunk before re-raising.
    """

    ITEMS = list(range(64))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_error_propagates_with_full_accounting(self, backend):
        _results, snapshot, events, error = _run_with_telemetry(
            backend, _count_then_maybe_fail, self.ITEMS
        )
        assert isinstance(error, ValueError) and "boom" in str(error)
        n_chunks = len(plan_chunks(self.ITEMS))
        if backend == "serial":
            # the serial loop stops at the failing chunk by design
            assert snapshot.counters["executor.chunks"] >= 1.0
        else:
            # pooled backends drain every outstanding chunk
            assert snapshot.counters["executor.chunks"] == float(n_chunks)
        assert snapshot.counters["executor.worker_failures"] == 1.0
        failures = [event for event in events if event.kind == "worker.failure"]
        assert len(failures) == 1
        assert "ValueError: boom" in failures[0].fields["error"]
        # partial telemetry from the failing chunk (items before the
        # crash) still reached the parent registry
        assert snapshot.counters["test.worker_calls"] >= 3.0

    def test_process_crash_flushes_buffered_worker_events(self):
        _results, _snapshot, events, error = _run_with_telemetry(
            "process", _emit_then_maybe_fail, self.ITEMS
        )
        assert isinstance(error, ValueError)
        emitted = {event.fields["item"] for event in events if event.kind == "cache.miss"}
        # the failing item's own event was queued before the raise and
        # must survive the crash (the queue crosses the process boundary
        # eagerly); every non-failing chunk's events arrive too
        assert 3 in emitted
        assert len(emitted) >= len(self.ITEMS) - len(plan_chunks(self.ITEMS)[0])

    def test_thread_crash_keeps_worker_events(self):
        _results, _snapshot, events, error = _run_with_telemetry(
            "thread", _emit_then_maybe_fail, self.ITEMS
        )
        assert isinstance(error, ValueError)
        emitted = {event.fields["item"] for event in events if event.kind == "cache.miss"}
        assert 3 in emitted

    def test_crash_does_not_corrupt_parent_resequencing(self):
        """QueueTransport under worker failure: events forwarded from a
        crashed worker must still land on the parent stream with
        contiguous sequence numbers — a crash may truncate the stream,
        never scramble it."""
        _results, _snapshot, events, error = _run_with_telemetry(
            "process", _emit_then_maybe_fail, self.ITEMS
        )
        assert isinstance(error, ValueError)
        assert [event.seq for event in events] == list(range(len(events)))
        assert all(event.t >= 0.0 for event in events)

    def test_crash_drop_accounting_reconciles(self):
        """A bounded ring on the parent bus during a crashing run still
        satisfies resident + dropped == delivered, per kind — the
        events.dropped reconciliation the manifest check relies on."""
        from repro.obs.events import RingTransport

        registry = MetricsRegistry()
        sink = MemoryTransport()
        ring = RingTransport(8)
        bus = EventBus([sink, ring])
        with obs_metrics.use(registry), obs_events.use_bus(bus):
            with pytest.raises(ValueError, match="boom"):
                ProcessExecutor(jobs=2).map(_emit_then_maybe_fail, self.ITEMS)
        delivered: dict[str, int] = {}
        for event in sink.events:
            delivered[event.kind] = delivered.get(event.kind, 0) + 1
        resident: dict[str, int] = {}
        for event in ring.events:
            resident[event.kind] = resident.get(event.kind, 0) + 1
        drops = ring.drops()
        for kind, count in delivered.items():
            assert resident.get(kind, 0) + drops.get(kind, 0) == count
