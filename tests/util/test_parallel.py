"""The executor abstraction: ordering, chunking, backends, validation."""

import os

import pytest

from repro.util.parallel import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_evenly,
    get_executor,
    resolve_jobs,
)
from repro.util.validation import ValidationError


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    return x * x


def _maybe_fail(x: int) -> int:
    if x == 3:
        raise ValueError("boom")
    return x


class TestResolveJobs:
    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_jobs(-1)


class TestChunkEvenly:
    def test_even_split(self):
        assert chunk_evenly([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_spread_over_leading_chunks(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 3) == [[1, 2], [3, 4], [5]]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert chunk_evenly([], 4) == []

    def test_concatenation_preserves_order(self):
        chunks = chunk_evenly(list(range(103)), 8)
        assert [x for chunk in chunks for x in chunk] == list(range(103))

    def test_invalid_chunk_count(self):
        with pytest.raises(ValidationError):
            chunk_evenly([1], 0)


class TestGetExecutor:
    def test_all_backends_constructible(self):
        for backend in BACKENDS:
            executor = get_executor(backend, jobs=2)
            assert executor.backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            get_executor("gpu")

    def test_serial_is_singleton_shape(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)


class TestMapSemantics:
    ITEMS = list(range(57))

    def test_serial_map_in_order(self):
        assert SerialExecutor().map(_square, self.ITEMS) == [x * x for x in self.ITEMS]

    def test_thread_map_matches_serial(self):
        executor = ThreadExecutor(jobs=4)
        assert executor.map(_square, self.ITEMS) == [x * x for x in self.ITEMS]

    def test_thread_map_accepts_closures(self):
        offset = 7
        executor = ThreadExecutor(jobs=3)
        assert executor.map(lambda x: x + offset, self.ITEMS) == [
            x + offset for x in self.ITEMS
        ]

    def test_process_map_matches_serial(self):
        executor = ProcessExecutor(jobs=2)
        assert executor.map(_square, self.ITEMS) == [x * x for x in self.ITEMS]

    def test_empty_input(self):
        for backend in BACKENDS:
            assert get_executor(backend, jobs=2).map(_square, []) == []

    def test_single_item_short_circuits(self):
        assert ThreadExecutor(jobs=4).map(_square, [9]) == [81]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            ThreadExecutor(jobs=2).map(_maybe_fail, self.ITEMS)
        with pytest.raises(ValueError, match="boom"):
            SerialExecutor().map(_maybe_fail, self.ITEMS)

    def test_jobs_one_falls_back_to_plain_loop(self):
        executor = ThreadExecutor(jobs=1)
        assert executor.map(_square, self.ITEMS) == [x * x for x in self.ITEMS]
