"""The injectable wall clock behind every emitted timestamp."""

import re

from repro.util.clock import FIXED_TIME_ENV, fixed_timestamp, timestamp


class TestTimestamp:
    def test_real_clock_renders_utc_iso(self):
        assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", timestamp())

    def test_fixed_timestamp_pins_and_restores(self):
        with fixed_timestamp("2026-01-02T03:04:05Z") as pinned:
            assert timestamp() == pinned == "2026-01-02T03:04:05Z"
        assert timestamp() != "2026-01-02T03:04:05Z"

    def test_fixed_timestamp_nests(self):
        with fixed_timestamp("2026-01-01T00:00:00Z"):
            with fixed_timestamp("2027-01-01T00:00:00Z"):
                assert timestamp() == "2027-01-01T00:00:00Z"
            assert timestamp() == "2026-01-01T00:00:00Z"

    def test_environment_pin(self, monkeypatch):
        monkeypatch.setenv(FIXED_TIME_ENV, "1999-12-31T23:59:59Z")
        assert timestamp() == "1999-12-31T23:59:59Z"
        # An explicit code-level pin outranks the environment.
        with fixed_timestamp("2000-01-01T00:00:00Z"):
            assert timestamp() == "2000-01-01T00:00:00Z"
