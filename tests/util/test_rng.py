"""Tests for the deterministic RNG discipline."""

import pytest

from repro.util.rng import RandomSource, derive_seed, spawn_rng
from repro.util.validation import ValidationError


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc"): names are length-framed.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_int_names_accepted(self):
        assert derive_seed(1, 0) != derive_seed(1, 1)

    def test_is_64_bit(self):
        assert 0 <= derive_seed(7, "x") < 2**64

    def test_negative_seed_ok(self):
        assert derive_seed(-5, "x") != derive_seed(5, "x")

    def test_rejects_non_int_seed(self):
        with pytest.raises(ValidationError):
            derive_seed("nope", "x")  # type: ignore[arg-type]


class TestSpawnRng:
    def test_reproducible_stream(self):
        a = spawn_rng(3, "stream")
        b = spawn_rng(3, "stream")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_distinct_streams_diverge(self):
        a = spawn_rng(3, "one")
        b = spawn_rng(3, "two")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestRandomSource:
    def test_child_namespacing(self):
        root = RandomSource(9)
        assert root.child("x").rng("y").random() == RandomSource(9).rng("x", "y").random()

    def test_children_independent(self):
        root = RandomSource(9)
        a = root.child("a").rng("draw").random()
        b = root.child("b").rng("draw").random()
        assert a != b

    def test_numpy_generator_deterministic(self):
        root = RandomSource(4)
        x = root.numpy("np").normal(size=3)
        y = RandomSource(4).numpy("np").normal(size=3)
        assert (x == y).all()

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomSource(1).choice([], "c")

    def test_choice_deterministic(self):
        items = ["a", "b", "c", "d"]
        assert RandomSource(1).choice(items, "c") == RandomSource(1).choice(items, "c")

    def test_shuffled_returns_new_list(self):
        items = [1, 2, 3, 4, 5]
        out = RandomSource(1).shuffled(items, "s")
        assert sorted(out) == items
        assert out is not items

    def test_path_property(self):
        assert RandomSource(1).child("a", "b").path == ("a", "b")

    def test_seed_property(self):
        assert RandomSource(42).seed == 42
