"""Tests for the observation-window time grid."""

import pytest

from repro.util.timegrid import (
    DAY_SECONDS,
    PAPER_WINDOW,
    WEEK_SECONDS,
    TimeGrid,
    week_index,
)
from repro.util.validation import ValidationError


class TestWeekIndex:
    def test_zero(self):
        assert week_index(0) == 0

    def test_boundary(self):
        assert week_index(WEEK_SECONDS - 1) == 0
        assert week_index(WEEK_SECONDS) == 1

    def test_origin_shift(self):
        assert week_index(WEEK_SECONDS, origin=WEEK_SECONDS) == 0


class TestTimeGrid:
    def test_rejects_empty_window(self):
        with pytest.raises(ValidationError):
            TimeGrid(5, 5)

    def test_duration(self):
        assert TimeGrid(0, 3 * WEEK_SECONDS).duration == 3 * WEEK_SECONDS

    def test_n_weeks_exact(self):
        assert TimeGrid(0, 4 * WEEK_SECONDS).n_weeks == 4

    def test_n_weeks_partial_rounds_up(self):
        assert TimeGrid(0, 4 * WEEK_SECONDS + 1).n_weeks == 5

    def test_n_days(self):
        assert TimeGrid(0, 2 * DAY_SECONDS).n_days == 2

    def test_contains(self):
        grid = TimeGrid(10, 20)
        assert grid.contains(10)
        assert grid.contains(19)
        assert not grid.contains(20)
        assert not grid.contains(9)

    def test_clamp(self):
        grid = TimeGrid(10, 20)
        assert grid.clamp(5) == 10
        assert grid.clamp(25) == 19
        assert grid.clamp(15) == 15

    def test_week_of(self):
        grid = TimeGrid(0, 10 * WEEK_SECONDS)
        assert grid.week_of(0) == 0
        assert grid.week_of(WEEK_SECONDS + 5) == 1

    def test_week_of_outside_raises(self):
        grid = TimeGrid(0, WEEK_SECONDS)
        with pytest.raises(ValidationError):
            grid.week_of(WEEK_SECONDS)

    def test_day_of(self):
        grid = TimeGrid(0, WEEK_SECONDS)
        assert grid.day_of(DAY_SECONDS * 3 + 10) == 3

    def test_week_start(self):
        grid = TimeGrid(100, 100 + 5 * WEEK_SECONDS)
        assert grid.week_start(2) == 100 + 2 * WEEK_SECONDS

    def test_week_start_out_of_range(self):
        grid = TimeGrid(0, WEEK_SECONDS)
        with pytest.raises(ValidationError):
            grid.week_start(1)

    def test_subwindow(self):
        grid = TimeGrid(0, 10 * WEEK_SECONDS)
        sub = grid.subwindow(2, 5)
        assert sub.start == 2 * WEEK_SECONDS
        assert sub.end == 5 * WEEK_SECONDS

    def test_subwindow_empty_raises(self):
        grid = TimeGrid(0, 10 * WEEK_SECONDS)
        with pytest.raises(ValidationError):
            grid.subwindow(3, 3)

    def test_paper_window_is_74_weeks(self):
        assert PAPER_WINDOW.n_weeks == 74
