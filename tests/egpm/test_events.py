"""Tests for EGPM event records and their serialization."""

import pytest

from repro.egpm.events import (
    AttackEvent,
    ExploitObservable,
    GroundTruth,
    InteractionType,
    MalwareObservable,
    PayloadObservable,
    SampleRecord,
    event_from_dict,
    event_to_dict,
)
from repro.net.address import IPv4Address
from repro.peformat.builder import build_pe
from repro.peformat.parser import parse_pe
from repro.peformat.structures import PESpec
from repro.util.hashing import md5_hex
from repro.util.validation import ValidationError


def make_event(event_id=0, *, with_malware=True, with_payload=True) -> AttackEvent:
    payload = None
    malware = None
    if with_payload:
        payload = PayloadObservable(
            protocol="ftp",
            interaction=InteractionType.PULL,
            filename="x.exe",
            port=21,
        )
    if with_malware:
        image = build_pe(PESpec(), 5)
        malware = MalwareObservable(
            md5=md5_hex(image),
            size=len(image),
            magic="MS-DOS executable PE for MS Windows (GUI) Intel 80386 32-bit",
            pe=parse_pe(image),
        )
    return AttackEvent(
        event_id=event_id,
        timestamp=1000,
        source=IPv4Address(0x01020304),
        sensor=IPv4Address(0x0A0B0C0D),
        exploit=ExploitObservable(fsm_path_id=3, dst_port=445),
        payload=payload,
        malware=malware,
        ground_truth=GroundTruth("fam", "v001", "exp", "pay"),
    )


class TestObservables:
    def test_exploit_rejects_bad_port(self):
        with pytest.raises(ValidationError):
            ExploitObservable(fsm_path_id=1, dst_port=0)

    def test_exploit_rejects_negative_path(self):
        with pytest.raises(ValidationError):
            ExploitObservable(fsm_path_id=-2, dst_port=445)

    def test_payload_rejects_empty_protocol(self):
        with pytest.raises(ValidationError):
            PayloadObservable(protocol="", interaction=InteractionType.PUSH)

    def test_payload_optional_fields(self):
        obs = PayloadObservable(protocol="blink", interaction=InteractionType.PULL)
        assert obs.filename is None and obs.port is None

    def test_malware_rejects_bad_md5(self):
        with pytest.raises(ValidationError):
            MalwareObservable(md5="short", size=10, magic="data", pe=None)

    def test_interaction_values(self):
        assert {i.value for i in InteractionType} == {"push", "pull", "central"}


class TestAttackEvent:
    def test_has_sample_flags(self):
        assert make_event().has_valid_sample
        assert not make_event(with_malware=False).has_sample

    def test_corrupted_not_valid(self):
        event = make_event()
        corrupted = MalwareObservable(
            md5=event.malware.md5, size=10, magic="data", pe=None, corrupted=True
        )
        event2 = AttackEvent(
            event_id=1,
            timestamp=1,
            source=event.source,
            sensor=event.sensor,
            exploit=event.exploit,
            malware=corrupted,
        )
        assert event2.has_sample and not event2.has_valid_sample


class TestSampleRecord:
    def test_record_event_updates_span(self):
        event = make_event()
        record = SampleRecord(
            md5=event.malware.md5,
            observable=event.malware,
            first_seen=100,
            last_seen=100,
        )
        record.record_event(50)
        record.record_event(400)
        assert (record.first_seen, record.last_seen, record.n_events) == (50, 400, 3)


class TestSerialization:
    def test_roundtrip_full(self):
        event = make_event()
        assert event_from_dict(event_to_dict(event)) == event

    def test_roundtrip_no_payload(self):
        event = make_event(with_payload=False, with_malware=False)
        assert event_from_dict(event_to_dict(event)) == event

    def test_roundtrip_corrupted_sample(self):
        base = make_event()
        corrupted = MalwareObservable(
            md5=base.malware.md5, size=17, magic="data", pe=None, corrupted=True
        )
        event = AttackEvent(
            event_id=0,
            timestamp=5,
            source=base.source,
            sensor=base.sensor,
            exploit=base.exploit,
            malware=corrupted,
        )
        back = event_from_dict(event_to_dict(event))
        assert back.malware.corrupted and back.malware.pe is None

    def test_dict_is_json_safe(self):
        import json

        json.dumps(event_to_dict(make_event()))

    def test_source_preserved_as_address(self):
        back = event_from_dict(event_to_dict(make_event()))
        assert isinstance(back.source, IPv4Address)
        assert back.source.dotted == "1.2.3.4"
