"""Tests for the columnar event store and its row-wise round-trip."""

import pytest

from repro.core.features import Dimension, default_feature_sets
from repro.egpm.columnar import ColumnarBuilder, events_to_columnar
from repro.egpm.dataset import SGNetDataset
from repro.egpm.events import (
    AttackEvent,
    ExploitObservable,
    InteractionType,
    MalwareObservable,
    PayloadObservable,
)
from repro.net.address import IPv4Address
from repro.util.validation import ValidationError


def _event(event_id, *, path=1, port=445, proto="tcp", md5_byte="a"):
    return AttackEvent(
        event_id=event_id,
        timestamp=3600 * event_id,
        source=IPv4Address(0x0A000001 + event_id),
        sensor=IPv4Address(0xC0A80001 + (event_id % 3)),
        exploit=ExploitObservable(fsm_path_id=path, dst_port=port),
        payload=PayloadObservable(
            protocol=proto, interaction=InteractionType.PUSH, filename="x.exe"
        ),
        malware=MalwareObservable(
            md5=md5_byte * 32, size=100 + event_id, magic="PE32", pe=None
        ),
    )


def _events(n=8):
    return [
        _event(i, path=i % 3, port=445 if i % 2 else 139, md5_byte="abcd"[i % 4])
        for i in range(n)
    ]


class TestRoundTrip:
    def test_observations_match_scalar_extraction(self):
        """Decoded rows == the row-wise (values, source, sensor) triples."""
        events = _events()
        store = events_to_columnar(events)
        for dimension, feature_set in default_feature_sets().items():
            expected = [
                (feature_set.extract(e), int(e.source), int(e.sensor))
                for e in events
                if feature_set.applies_to(e)
            ]
            assert store.dimensions[dimension].observations() == expected

    def test_dataset_to_columnar_round_trip(self):
        dataset = SGNetDataset.from_events(_events())
        store = dataset.to_columnar()
        assert store.n_events == len(dataset)
        assert list(store.event_ids) == [e.event_id for e in dataset]
        assert list(store.timestamps) == [e.timestamp for e in dataset]
        assert list(store.sources) == [int(e.source) for e in dataset]
        for row in range(store.dimensions[Dimension.EPSILON].n_rows):
            decoded = store.dimensions[Dimension.EPSILON].decode_row(row)
            assert decoded == store.dimensions[Dimension.EPSILON].value_tuples()[row]

    def test_view_cached_until_mutation(self):
        dataset = SGNetDataset.from_events(_events(4))
        first = dataset.to_columnar()
        assert dataset.to_columnar() is first
        dataset.add_event(_event(4))
        assert dataset.to_columnar() is not first
        assert dataset.to_columnar().n_events == 5

    def test_vocabulary_decodes_to_original_values(self):
        store = events_to_columnar(_events())
        cols = store.dimensions[Dimension.MU]
        for f, vocab in enumerate(cols.vocabularies):
            for code in cols.codes[:, f]:
                assert vocab.intern(vocab.decode(int(code))) == int(code)


class TestBuilder:
    def test_incremental_equals_one_shot(self):
        """Shard-by-shard appends == one pass over the whole list."""
        events = _events(10)
        builder = ColumnarBuilder()
        builder.add_events(events[:3])
        builder.add_events(events[3:7])
        builder.add_events(events[7:])
        merged = builder.build()
        whole = events_to_columnar(events)
        assert merged.summary() == whole.summary()
        for dimension in merged.dimensions:
            assert (
                merged.dimensions[dimension].observations()
                == whole.dimensions[dimension].observations()
            )

    def test_out_of_order_event_ids_rejected(self):
        builder = ColumnarBuilder()
        builder.add_event(_event(3))
        with pytest.raises(ValidationError):
            builder.add_event(_event(2))


class TestAdoptColumnar:
    def test_adopted_view_is_returned(self):
        events = _events(6)
        dataset = SGNetDataset.from_events(events)
        builder = ColumnarBuilder()
        builder.add_events(events)
        view = builder.build()
        dataset.adopt_columnar(view)
        assert dataset.to_columnar() is view

    def test_wrong_size_rejected(self):
        dataset = SGNetDataset.from_events(_events(5))
        builder = ColumnarBuilder()
        builder.add_events(_events(4))
        with pytest.raises(ValidationError):
            dataset.adopt_columnar(builder.build())
