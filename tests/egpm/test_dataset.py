"""Tests for the SGNET dataset store."""

import pytest

from repro.egpm.dataset import SGNetDataset
from repro.util.validation import ValidationError

from tests.egpm.test_events import make_event


class TestIngestion:
    def test_add_and_len(self):
        dataset = SGNetDataset()
        dataset.add_event(make_event(0))
        dataset.add_event(make_event(1))
        assert len(dataset) == 2

    def test_event_id_ordering_enforced(self):
        dataset = SGNetDataset()
        with pytest.raises(ValidationError):
            dataset.add_event(make_event(5))

    def test_next_event_id(self):
        dataset = SGNetDataset()
        assert dataset.next_event_id() == 0
        dataset.add_event(make_event(0))
        assert dataset.next_event_id() == 1

    def test_sample_index_dedupes_by_md5(self):
        dataset = SGNetDataset()
        dataset.add_event(make_event(0))
        dataset.add_event(make_event(1))  # same binary content, same md5
        assert dataset.n_samples == 1
        record = next(iter(dataset.samples.values()))
        assert record.n_events == 2

    def test_behavior_handle_attached_once(self):
        dataset = SGNetDataset()
        dataset.add_event(make_event(0), behavior_handle="code-A")
        dataset.add_event(make_event(1), behavior_handle="code-B")
        record = next(iter(dataset.samples.values()))
        assert record.behavior_handle == "code-A"

    def test_event_without_malware_not_in_sample_index(self):
        dataset = SGNetDataset()
        dataset.add_event(make_event(0, with_malware=False))
        assert dataset.n_samples == 0


class TestQueries:
    @pytest.fixture()
    def dataset(self):
        data = SGNetDataset()
        for i in range(4):
            data.add_event(make_event(i))
        return data

    def test_events_for_sample(self, dataset):
        md5 = next(iter(dataset.samples))
        assert len(dataset.events_for_sample(md5)) == 4

    def test_events_for_unknown_sample(self, dataset):
        assert dataset.events_for_sample("0" * 32) == []

    def test_events_from_source(self, dataset):
        assert len(dataset.events_from_source(0x01020304)) == 4
        assert dataset.events_from_source(0x05060708) == []

    def test_events_on_sensor(self, dataset):
        assert len(dataset.events_on_sensor(0x0A0B0C0D)) == 4

    def test_select(self, dataset):
        assert len(dataset.select(lambda e: e.event_id % 2 == 0)) == 2

    def test_counters(self, dataset):
        assert dataset.n_sources == 1
        assert dataset.n_sensors == 1

    def test_summary(self, dataset):
        summary = dataset.summary()
        assert summary["events"] == 4
        assert summary["samples"] == 1
        assert summary["valid_samples"] == 1

    def test_iteration_order(self, dataset):
        assert [e.event_id for e in dataset] == [0, 1, 2, 3]


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        dataset = SGNetDataset()
        for i in range(3):
            dataset.add_event(make_event(i))
        path = tmp_path / "events.jsonl"
        written = dataset.save_jsonl(path)
        assert written == 3
        loaded = SGNetDataset.load_jsonl(path)
        assert len(loaded) == 3
        assert loaded.events == dataset.events
        assert set(loaded.samples) == set(dataset.samples)

    def test_jsonl_skips_blank_lines(self, tmp_path):
        dataset = SGNetDataset()
        dataset.add_event(make_event(0))
        path = tmp_path / "events.jsonl"
        dataset.save_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(SGNetDataset.load_jsonl(path)) == 1

    def test_from_events(self):
        events = [make_event(0), make_event(1)]
        dataset = SGNetDataset.from_events(events)
        assert len(dataset) == 2


class TestRealisticDataset:
    def test_small_run_consistency(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["events"] > 500
        assert summary["valid_samples"] <= summary["samples"]
        assert summary["samples"] <= summary["events"]

    def test_sample_event_counts_sum(self, small_dataset):
        total = sum(r.n_events for r in small_dataset.samples.values())
        with_sample = sum(1 for e in small_dataset if e.malware is not None)
        assert total == with_sample

    def test_every_event_has_exploit_dimension(self, small_dataset):
        assert all(e.exploit.dst_port > 0 for e in small_dataset)
