"""Tests for the simulated multi-engine AV service."""

import pytest

from repro.egpm.events import GroundTruth
from repro.enrich.virustotal import (
    AVEngine,
    VirusTotalService,
    default_engines,
    _suffix_letter,
)
from repro.util.validation import ValidationError

TRUTH = GroundTruth(family="allaple", variant="v007", exploit_name="e", payload_name="p")


class TestSuffixLetter:
    def test_sequence(self):
        assert [_suffix_letter(i) for i in range(4)] == ["A", "B", "C", "D"]

    def test_rolls_over_to_double_letters(self):
        assert _suffix_letter(25) == "Z"
        assert _suffix_letter(26) == "AA"

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            _suffix_letter(-1)


class TestAVEngine:
    def _engine(self, **kwargs):
        defaults = dict(
            name="PopularAV",
            detection_rate=1.0,
            generic_rate=0.0,
            variant_granularity=3,
            family_aliases={"allaple": "W32.Rahack"},
        )
        defaults.update(kwargs)
        return AVEngine(**defaults)

    def test_alias_applied(self):
        label = self._engine().label("a" * 32, TRUTH)
        assert label.startswith("W32.Rahack.")

    def test_fallback_name_for_unknown_family(self):
        truth = GroundTruth("mystery_fam", "v001", "e", "p")
        label = self._engine().label("a" * 32, truth)
        assert label.startswith("W32.Mysteryfam.")

    def test_deterministic_per_sample(self):
        engine = self._engine(detection_rate=0.5)
        assert engine.label("a" * 32, TRUTH) == engine.label("a" * 32, TRUTH)

    def test_granularity_groups_variants(self):
        engine = self._engine(variant_granularity=4)
        labels = {
            engine.label("a" * 32, GroundTruth("allaple", f"v{i:03d}", "e", "p"))
            for i in range(4)
        }
        assert len(labels) == 1  # v000..v003 share a suffix letter

    def test_granularity_splits_distant_variants(self):
        engine = self._engine(variant_granularity=4)
        a = engine.label("a" * 32, GroundTruth("allaple", "v000", "e", "p"))
        b = engine.label("a" * 32, GroundTruth("allaple", "v010", "e", "p"))
        assert a != b

    def test_misses_at_zero_detection(self):
        engine = self._engine(detection_rate=0.0)
        assert engine.label("a" * 32, TRUTH) is None

    def test_generic_labels(self):
        engine = self._engine(generic_rate=1.0)
        label = engine.label("a" * 32, TRUTH)
        assert "Rahack" not in label

    def test_validation(self):
        with pytest.raises(ValidationError):
            self._engine(detection_rate=2.0)
        with pytest.raises(ValidationError):
            self._engine(variant_granularity=0)


class TestVirusTotalService:
    def test_scan_all_engines(self):
        service = VirusTotalService()
        verdicts = service.scan("a" * 32, TRUTH)
        assert set(verdicts) == {e.name for e in default_engines()}

    def test_scan_cached(self):
        service = VirusTotalService()
        first = service.scan("a" * 32, TRUTH)
        second = service.scan("a" * 32, TRUTH)
        assert first is second
        assert service.n_scanned == 1

    def test_detection_count(self):
        service = VirusTotalService()
        service.scan("a" * 32, TRUTH)
        count = service.detection_count("a" * 32)
        assert 0 <= count <= len(default_engines())

    def test_detection_count_requires_scan(self):
        with pytest.raises(ValidationError):
            VirusTotalService().detection_count("a" * 32)

    def test_vendor_aliasing_in_defaults(self):
        service = VirusTotalService()
        # Scan enough polymorphic instances: each engine names Allaple by
        # its own alias, the aliasing the paper's AV-label discussion is about.
        labels = {}
        for i in range(40):
            verdicts = service.scan(f"{i:032x}", TRUTH)
            for engine, label in verdicts.items():
                if label and "Generic" not in label and "Gen" not in label:
                    labels.setdefault(engine, set()).add(label.rsplit(".", 1)[0])
        families = set().union(*labels.values())
        assert len(families) >= 3  # Rahack vs Allaple vs Worm/Allaple ...
