"""Tests for the enrichment pipeline."""

from repro.enrich.pipeline import EnrichmentPipeline
from repro.enrich.virustotal import VirusTotalService
from repro.sandbox.anubis import AnubisService
from repro.sandbox.environment import Environment
from repro.sandbox.execution import Sandbox


def _pipeline():
    return EnrichmentPipeline(
        AnubisService(Sandbox(Environment())), VirusTotalService()
    )


class TestEnrichment:
    def test_av_labels_attached(self, small_dataset):
        # The session fixture already ran enrichment; check its traces.
        scanned = [
            r for r in small_dataset.samples.values() if "av_labels" in r.enrichment
        ]
        assert len(scanned) == small_dataset.n_samples

    def test_executable_samples_have_anubis_reports(self, small_dataset):
        for record in small_dataset.valid_samples():
            assert "anubis" in record.enrichment

    def test_corrupted_samples_not_executed(self, small_dataset):
        corrupted = [
            r for r in small_dataset.samples.values() if r.observable.corrupted
        ]
        assert corrupted, "scenario should produce truncated downloads"
        assert all("anubis" not in r.enrichment for r in corrupted)

    def test_fresh_pipeline_counts(self, small_dataset):
        pipeline = _pipeline()
        pipeline.enrich(small_dataset)
        stats = pipeline.stats()
        assert stats["enriched"] == small_dataset.n_samples
        assert stats["executed"] == len(small_dataset.valid_samples())
        assert stats["executed"] + stats["not_executable"] == stats["enriched"]

    def test_collected_vs_executed_gap(self, small_dataset):
        # The paper's 6353-collected vs 5165-executed gap in miniature.
        pipeline = _pipeline()
        pipeline.enrich(small_dataset)
        stats = pipeline.stats()
        assert 0 < stats["not_executable"] < stats["enriched"] * 0.5
