"""Tests for Anubis-style report rendering."""

from repro.sandbox.anubis import AnubisReport
from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.reporting import diff_profiles, render_report, render_timeline


def _profile(*features):
    return BehaviorProfile.from_features(features)


class TestRenderReport:
    def _report(self):
        profile = _profile(
            ("file", r"C:\a.exe", "create"),
            ("registry", r"HKLM\Run\a", "set_value"),
            ("irc", "irc://1.2.3.4:6667/#x", "join"),
        )
        return AnubisReport(md5="a" * 32, submitted_at=100, profile=profile)

    def test_sections_present(self):
        text = render_report(self._report())
        assert "[File activities]" in text
        assert "[Registry activities]" in text
        assert "[IRC activities]" in text

    def test_sample_identity_shown(self):
        assert "a" * 32 in render_report(self._report())

    def test_truncation(self):
        profile = BehaviorProfile.from_features(
            ("file", f"f{i}", "create") for i in range(50)
        )
        report = AnubisReport(md5="b" * 32, submitted_at=0, profile=profile)
        text = render_report(report, max_per_section=10)
        assert "(40 more)" in text

    def test_unknown_category_gets_generic_title(self):
        report = AnubisReport(
            md5="c" * 32, submitted_at=0, profile=_profile(("custom", "x", "y"))
        )
        assert "[Custom activities]" in render_report(report)


class TestDiffProfiles:
    def test_identical(self):
        p = _profile(("file", "a", "create"))
        text = diff_profiles(p, p)
        assert "similarity: 1.000" in text
        assert "only in" not in text.split("\n", 1)[1] if "\n" in text else True

    def test_disjoint(self):
        a = _profile(("file", "a", "create"))
        b = _profile(("file", "b", "create"))
        text = diff_profiles(a, b, label_a="first", label_b="second")
        assert "similarity: 0.000" in text
        assert "[only in first]" in text
        assert "[only in second]" in text

    def test_counts(self):
        a = _profile(("file", "a", "c"), ("file", "shared", "c"))
        b = _profile(("file", "b", "c"), ("file", "shared", "c"))
        text = diff_profiles(a, b)
        assert "1 shared" in text


class TestRenderTimeline:
    def test_empty(self):
        assert render_timeline({}, n_weeks=10) == "(no activity)"

    def test_length(self):
        strip = render_timeline({0: 1}, n_weeks=10)
        assert len(strip) == 10

    def test_silence_and_peak(self):
        strip = render_timeline({2: 10, 5: 1}, n_weeks=8)
        assert strip[2] == "#"
        assert strip[5] == ":"
        assert strip[0] == "."

    def test_width_cap(self):
        strip = render_timeline({0: 1}, n_weeks=200, width=50)
        assert len(strip) == 50
