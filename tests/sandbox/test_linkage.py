"""Tests for the alternative-linkage clustering."""

import pytest

from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import ClusteringConfig, cluster_exact
from repro.sandbox.linkage import cluster_hierarchical
from repro.util.validation import ValidationError


def profile(*names):
    return BehaviorProfile.from_features(("file", n, "create") for n in names)


def chain_profiles():
    """a~b and b~c at ~0.78 but a~c at ~0.6: the chaining testbed."""
    base = [str(i) for i in range(8)]
    return {
        "a": profile(*base),
        "b": profile(*base[1:], "x"),
        "c": profile(*base[2:], "x", "y"),
    }


class TestSingleLinkageEquivalence:
    def test_matches_union_find_exact(self, small_run):
        profiles = dict(list(small_run.anubis.profiles().items())[:300])
        config = small_run.config.clustering
        ours = cluster_exact(profiles, config)
        scipy_single = cluster_hierarchical(profiles, config, method="single")
        assert scipy_single.sizes() == ours.sizes()
        for key_a in list(profiles)[:40]:
            for key_b in list(profiles)[:40]:
                same_a = ours.assignment[key_a] == ours.assignment[key_b]
                same_b = (
                    scipy_single.assignment[key_a] == scipy_single.assignment[key_b]
                )
                assert same_a == same_b


class TestLinkageBehaviour:
    def test_single_chains_complete_does_not(self):
        profiles = chain_profiles()
        config = ClusteringConfig(threshold=0.7)
        single = cluster_hierarchical(profiles, config, method="single")
        complete = cluster_hierarchical(profiles, config, method="complete")
        assert single.n_clusters == 1  # a-b-c chained
        assert complete.n_clusters > 1  # a and c too far for one group

    def test_average_between_extremes(self, small_run):
        profiles = dict(list(small_run.anubis.profiles().items())[:300])
        config = small_run.config.clustering
        single = cluster_hierarchical(profiles, config, method="single")
        average = cluster_hierarchical(profiles, config, method="average")
        complete = cluster_hierarchical(profiles, config, method="complete")
        assert single.n_clusters <= average.n_clusters <= complete.n_clusters

    def test_identical_profiles_always_merge(self):
        profiles = {f"s{i}": profile("x", "y") for i in range(5)}
        for method in ("single", "average", "complete"):
            result = cluster_hierarchical(profiles, method=method)
            assert result.n_clusters == 1

    def test_empty_and_singleton_inputs(self):
        assert cluster_hierarchical({}).n_clusters == 0
        assert cluster_hierarchical({"a": profile("x")}).n_clusters == 1

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            cluster_hierarchical({"a": profile("x")}, method="ward-ish")
