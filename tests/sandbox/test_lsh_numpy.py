"""Tests for the vectorised MinHash backend."""

import random

import pytest

from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import ClusteringConfig, cluster_exact, cluster_lsh
from repro.sandbox.lsh import MinHasher
from repro.util.stats import jaccard
from repro.util.validation import ValidationError


def random_set(rng, size):
    return {rng.getrandbits(64) for _ in range(size)}


class TestNumpyBackend:
    def test_deterministic(self):
        a = MinHasher(32, seed=1, backend="numpy")
        b = MinHasher(32, seed=1, backend="numpy")
        assert a.signature({5, 6, 7}) == b.signature({5, 6, 7})

    def test_permutation_invariant(self):
        hasher = MinHasher(16, backend="numpy")
        assert hasher.signature({1, 2, 3}) == hasher.signature({3, 1, 2})

    def test_empty_sentinel(self):
        hasher = MinHasher(8, backend="numpy")
        sig = hasher.signature(set())
        assert len(set(sig)) == 1

    def test_estimate_tracks_jaccard(self):
        rng = random.Random(4)
        hasher = MinHasher(256, backend="numpy")
        base = random_set(rng, 120)
        other = set(list(base)[:60]) | random_set(rng, 60)
        true = jaccard(base, other)
        estimate = hasher.estimate_similarity(
            hasher.signature(base), hasher.signature(other)
        )
        assert abs(estimate - true) < 0.12

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            MinHasher(8, backend="cuda")

    def test_backends_are_distinct_families(self):
        py = MinHasher(16, seed=1, backend="python")
        np_ = MinHasher(16, seed=1, backend="numpy")
        assert py.signature({1, 2, 3}) != np_.signature({1, 2, 3})


class TestNumpyClustering:
    def _family(self, tag, n, core=18, own=2):
        out = {}
        for i in range(n):
            features = [("file", f"{tag}-core-{j}", "c") for j in range(core)]
            features += [("mutex", f"{tag}-{i}-{j}", "c") for j in range(own)]
            out[f"{tag}-{i}"] = BehaviorProfile.from_features(features)
        return out

    def test_same_partition_as_exact(self):
        profiles = {}
        profiles.update(self._family("alpha", 10))
        profiles.update(self._family("beta", 7))
        config = ClusteringConfig(minhash_backend="numpy")
        lsh = cluster_lsh(profiles, config)
        exact = cluster_exact(profiles, config)
        assert lsh.sizes() == exact.sizes()

    def test_config_validates_backend(self):
        with pytest.raises(ValidationError):
            ClusteringConfig(minhash_backend="tpu")
