"""Tests for the Anubis service facade."""

import pytest

from repro.malware.behaviorspec import BehaviorTemplate
from repro.sandbox.anubis import AnubisService
from repro.sandbox.environment import Environment, Window
from repro.sandbox.execution import Sandbox
from repro.util.validation import ValidationError

CLEAN = BehaviorTemplate(mutexes=("m",), files_dropped=("f",))
NOISY = CLEAN.with_noise_rate(1.0)
MD5_A = "a" * 32
MD5_B = "b" * 32


def _service(env=None):
    return AnubisService(Sandbox(env or Environment()))


class TestSubmit:
    def test_submission_produces_report(self):
        service = _service()
        report = service.submit(MD5_A, CLEAN, time=100)
        assert report.md5 == MD5_A
        assert report.submitted_at == 100
        assert len(report.profile) > 0

    def test_resubmission_cached(self):
        service = _service()
        first = service.submit(MD5_A, CLEAN, time=100)
        second = service.submit(MD5_A, CLEAN, time=999)
        assert second is first
        assert service.sandbox.n_executions == 1

    def test_run_seed_tied_to_md5(self):
        a = _service().submit(MD5_A, NOISY, time=0).profile
        b = _service().submit(MD5_A, NOISY, time=0).profile
        assert a == b  # reproducible per binary

    def test_distinct_md5s_independent_derailment(self):
        service = _service()
        profiles = {
            service.submit(f"{i:032x}", NOISY, time=0).profile.features
            for i in range(6)
        }
        assert len(profiles) > 1

    def test_n_reports(self):
        service = _service()
        service.submit(MD5_A, CLEAN, time=0)
        service.submit(MD5_B, CLEAN, time=0)
        assert service.n_reports == 2


class TestRerun:
    def test_rerun_heals_derailed_profile(self):
        service = _service()
        original = service.submit(MD5_A, NOISY, time=0).profile
        healed = service.rerun(MD5_A, NOISY).profile
        clean = service.sandbox.execute(CLEAN, time=0, run_seed=0)
        assert healed == clean
        assert healed != original

    def test_rerun_without_submit_rejected(self):
        with pytest.raises(ValidationError):
            _service().rerun(MD5_A, CLEAN)

    def test_rerun_merge_unions(self):
        env = Environment()
        env.add_dns("x.cn", Window(0, 100))
        service = _service(env)
        template = BehaviorTemplate(dns_queries=("x.cn",))
        service.submit(MD5_A, template, time=50)
        merged = service.rerun(MD5_A, template, time=200, merge=True).profile
        assert ("dns", "x.cn", "resolve") in merged
        assert ("dns", "x.cn", "nxdomain") in merged

    def test_rerun_defaults_to_submission_time(self):
        env = Environment()
        env.add_dns("x.cn", Window(0, 100))
        service = _service(env)
        template = BehaviorTemplate(dns_queries=("x.cn",))
        service.submit(MD5_A, template, time=50)
        rerun = service.rerun(MD5_A, template).profile
        assert ("dns", "x.cn", "resolve") in rerun

    def test_n_runs_incremented(self):
        service = _service()
        service.submit(MD5_A, CLEAN, time=0)
        service.rerun(MD5_A, CLEAN)
        service.rerun(MD5_A, CLEAN)
        assert service.report_for(MD5_A).n_runs == 3


class TestClusterFrontEnd:
    def test_cluster_over_reports(self):
        service = _service()
        service.submit(MD5_A, CLEAN, time=0)
        service.submit(MD5_B, CLEAN, time=0)
        other = BehaviorTemplate(mutexes=("zzz",))
        service.submit("c" * 32, other, time=0)
        result = service.cluster()
        assert result.n_clusters == 2
        assert result.assignment[MD5_A] == result.assignment[MD5_B]

    def test_profiles_view(self):
        service = _service()
        service.submit(MD5_A, CLEAN, time=0)
        assert set(service.profiles()) == {MD5_A}
