"""Tests for MinHash signatures and the LSH index."""

import random

import pytest

from repro.sandbox.lsh import LSHIndex, MinHasher
from repro.util.validation import ValidationError


def random_set(rng, size):
    return {rng.getrandbits(64) for _ in range(size)}


class TestMinHasher:
    def test_signature_length(self):
        hasher = MinHasher(40)
        assert len(hasher.signature({1, 2, 3})) == 40

    def test_deterministic(self):
        a = MinHasher(16, seed=1)
        b = MinHasher(16, seed=1)
        assert a.signature({5, 6}) == b.signature({5, 6})

    def test_seed_changes_functions(self):
        a = MinHasher(16, seed=1)
        b = MinHasher(16, seed=2)
        assert a.signature({5, 6}) != b.signature({5, 6})

    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(32)
        assert hasher.signature({1, 2, 3}) == hasher.signature({3, 2, 1})

    def test_empty_set_sentinel(self):
        hasher = MinHasher(8)
        sig = hasher.signature(set())
        assert len(set(sig)) == 1
        assert hasher.estimate_similarity(sig, hasher.signature({1})) == 0.0

    def test_estimate_tracks_true_jaccard(self):
        rng = random.Random(1)
        hasher = MinHasher(200)
        base = random_set(rng, 100)
        extra = random_set(rng, 100)
        other = set(list(base)[:50]) | set(list(extra)[:50])
        true_j = len(base & other) / len(base | other)
        estimate = hasher.estimate_similarity(
            hasher.signature(base), hasher.signature(other)
        )
        assert abs(estimate - true_j) < 0.12

    def test_estimate_arity_checked(self):
        hasher = MinHasher(8)
        with pytest.raises(ValidationError):
            hasher.estimate_similarity((1, 2), (1, 2, 3))

    def test_rejects_zero_hashes(self):
        with pytest.raises(ValidationError):
            MinHasher(0)


class TestLSHIndex:
    def test_signature_length_property(self):
        assert LSHIndex(bands=5, rows=4).signature_length == 20

    def test_add_validates_length(self):
        index = LSHIndex(bands=2, rows=2)
        with pytest.raises(ValidationError):
            index.add("a", (1, 2, 3))

    def test_identical_signatures_are_candidates(self):
        index = LSHIndex(bands=2, rows=2)
        index.add("a", (1, 2, 3, 4))
        index.add("b", (1, 2, 3, 4))
        assert index.candidate_pairs() == {("a", "b")}

    def test_single_band_match_suffices(self):
        index = LSHIndex(bands=2, rows=2)
        index.add("a", (1, 2, 9, 9))
        index.add("b", (1, 2, 7, 7))
        assert ("a", "b") in index.candidate_pairs()

    def test_disjoint_signatures_not_candidates(self):
        index = LSHIndex(bands=2, rows=2)
        index.add("a", (1, 2, 3, 4))
        index.add("b", (5, 6, 7, 8))
        assert index.candidate_pairs() == set()

    def test_similar_sets_become_candidates(self):
        # End-to-end: two 90%-similar sets should collide with b=10, r=8.
        rng = random.Random(2)
        hasher = MinHasher(80)
        index = LSHIndex(bands=10, rows=8)
        base = random_set(rng, 100)
        similar = set(list(base)[:95]) | random_set(rng, 5)
        index.add("x", hasher.signature(base))
        index.add("y", hasher.signature(similar))
        assert ("x", "y") in index.candidate_pairs()

    def test_dissimilar_sets_rarely_candidates(self):
        rng = random.Random(3)
        hasher = MinHasher(80)
        index = LSHIndex(bands=10, rows=8)
        for i in range(30):
            index.add(i, hasher.signature(random_set(rng, 30)))
        assert len(index.candidate_pairs()) == 0

    def test_stats(self):
        index = LSHIndex(bands=2, rows=2)
        index.add("a", (1, 2, 3, 4))
        index.add("b", (1, 2, 3, 4))
        stats = index.stats()
        assert stats["items"] == 2
        assert stats["largest_bucket"] == 2


class TestBucketGuard:
    def _collided(self, n, max_bucket_size=None):
        """n items whose signatures all collide in every band."""
        index = LSHIndex(bands=2, rows=2, max_bucket_size=max_bucket_size)
        for i in range(n):
            index.add(f"k{i}", (1, 2, 3, 4))
        return index

    def test_pairs_emitted_once_per_combination(self):
        index = self._collided(4)
        pairs = index.candidate_pairs()
        # One 4-item bucket per band emits C(4,2) distinct pairs.
        assert len(pairs) == 6
        assert all(repr(a) < repr(b) for a, b in pairs)

    def test_oversized_buckets_skipped_and_counted(self):
        index = self._collided(5, max_bucket_size=4)
        assert index.candidate_pairs() == set()
        assert index.skipped_buckets == 2  # one oversized bucket per band

    def test_bucket_at_bound_still_emits(self):
        index = self._collided(4, max_bucket_size=4)
        assert len(index.candidate_pairs()) == 6
        assert index.skipped_buckets == 0

    def test_guard_leaves_small_buckets_alone(self):
        index = LSHIndex(bands=2, rows=2, max_bucket_size=2)
        index.add("a", (1, 2, 3, 4))
        index.add("b", (1, 2, 5, 6))
        index.add("c", (7, 8, 5, 6))
        assert index.candidate_pairs() == {("a", "b"), ("b", "c")}

    def test_skip_count_reset_per_call(self):
        index = self._collided(5, max_bucket_size=4)
        index.candidate_pairs()
        index.candidate_pairs()
        assert index.skipped_buckets == 2  # tallies one pass, not cumulative

    def test_bucket_sizes_histogram_fodder(self):
        index = self._collided(3)
        assert index.bucket_sizes() == [3, 3]  # one bucket per band
        assert index.stats()["skipped_buckets"] == 0

    def test_guard_bound_validated(self):
        with pytest.raises(ValidationError):
            LSHIndex(bands=2, rows=2, max_bucket_size=1)
