"""Tests for the simulated dynamic-analysis engine."""

import pytest

from repro.malware.behaviorspec import BehaviorTemplate, CnCSpec, ComponentDownload
from repro.sandbox.environment import Environment, Window
from repro.sandbox.execution import Sandbox, SandboxConfig
from repro.util.validation import ValidationError


def _sandbox(env=None, **config):
    return Sandbox(env or Environment(), SandboxConfig(**config) if config else None)


BASE = BehaviorTemplate(
    mutexes=("m1", "m2"),
    files_dropped=("f1",),
    registry_keys=("r1",),
    services_installed=("s1",),
    processes_spawned=("p1",),
    scan_ports=(445,),
    infects_html=True,
    dos_targets=("victim.example",),
    extra_features=(("custom", "x", "y"),),
)


class TestDeterministicBehaviour:
    def test_all_base_features_recorded(self):
        profile = _sandbox().execute(BASE, time=0, run_seed=1)
        assert ("mutex", "m1", "create") in profile
        assert ("file", "f1", "create") in profile
        assert ("registry", "r1", "set_value") in profile
        assert ("service", "s1", "install") in profile
        assert ("process", "p1", "spawn") in profile
        assert ("network", "tcp/445", "scan") in profile
        assert ("file", "*.html", "infect") in profile
        assert ("network", "victim.example", "flood") in profile
        assert ("custom", "x", "y") in profile

    def test_repeatable_without_noise(self):
        sandbox = _sandbox()
        a = sandbox.execute(BASE, time=0, run_seed=1)
        b = sandbox.execute(BASE, time=0, run_seed=2)
        assert a == b

    def test_execution_counter(self):
        sandbox = _sandbox()
        sandbox.execute(BASE, time=0, run_seed=1)
        sandbox.execute(BASE, time=0, run_seed=2)
        assert sandbox.n_executions == 2


class TestEnvironmentDependence:
    def _template(self):
        component = ComponentDownload(
            "iliketay.cn",
            "/load/two.exe",
            BehaviorTemplate(files_dropped=("comp2",)),
        )
        return BehaviorTemplate(
            dns_queries=("iliketay.cn",),
            components=(component,),
            cnc=CnCSpec(server="9.9.9.9", port=6667, room="#r"),
        )

    def test_dns_resolution_recorded(self):
        env = Environment()
        env.add_dns("iliketay.cn", Window(0, 100))
        profile = _sandbox(env).execute(self._template(), time=50, run_seed=1)
        assert ("dns", "iliketay.cn", "resolve") in profile
        assert ("http", "http://iliketay.cn/load/two.exe", "download") in profile
        assert ("file", "comp2", "create") in profile

    def test_dead_dns_changes_profile(self):
        env = Environment()
        env.add_dns("iliketay.cn", Window(0, 100))
        sandbox = _sandbox(env)
        alive = sandbox.execute(self._template(), time=50, run_seed=1)
        dead = sandbox.execute(self._template(), time=200, run_seed=1)
        assert ("dns", "iliketay.cn", "nxdomain") in dead
        assert ("http", "http://iliketay.cn/load/two.exe", "download") not in dead
        assert alive != dead

    def test_component_window_gates_subtemplate(self):
        env = Environment()
        env.add_dns("iliketay.cn")
        env.set_component_window("iliketay.cn", "/load/two.exe", Window(0, 100))
        sandbox = _sandbox(env)
        early = sandbox.execute(self._template(), time=50, run_seed=1)
        late = sandbox.execute(self._template(), time=150, run_seed=1)
        assert ("file", "comp2", "create") in early
        assert ("file", "comp2", "create") not in late
        assert ("http", "http://iliketay.cn/load/two.exe", "download_failed") in late

    def test_cnc_liveness(self):
        env = Environment()
        env.set_cnc_liveness("9.9.9.9", Window(0, 100))
        template = BehaviorTemplate(cnc=CnCSpec(server="9.9.9.9", port=6667, room="#r"))
        sandbox = _sandbox(env)
        live = sandbox.execute(template, time=10, run_seed=1)
        down = sandbox.execute(template, time=500, run_seed=1)
        assert ("irc", "irc://9.9.9.9:6667/#r", "join") in live
        assert ("irc", "irc://9.9.9.9:6667/#r", "join") not in down
        assert ("network", "9.9.9.9:6667", "connect_failed") in down


class TestDerailment:
    NOISY = BASE.with_noise_rate(1.0)

    def test_derail_changes_profile(self):
        sandbox = _sandbox()
        clean = sandbox.execute(BASE, time=0, run_seed=1)
        noisy = sandbox.execute(self.NOISY, time=0, run_seed=1)
        assert clean != noisy

    def test_thrash_profiles_unique_per_run(self):
        sandbox = _sandbox(crash_mode_probability=0.0)
        profiles = {
            sandbox.execute(self.NOISY, time=0, run_seed=seed).features
            for seed in range(10)
        }
        assert len(profiles) == 10

    def test_thrash_similarity_below_threshold(self):
        sandbox = _sandbox(crash_mode_probability=0.0)
        clean = sandbox.execute(BASE, time=0, run_seed=1)
        noisy = sandbox.execute(self.NOISY, time=0, run_seed=2)
        assert clean.similarity(noisy) < 0.7

    def test_crash_profiles_repeat_across_runs(self):
        sandbox = _sandbox(crash_mode_probability=1.0, crash_points=(0.5,))
        a = sandbox.execute(self.NOISY, time=0, run_seed=1)
        b = sandbox.execute(self.NOISY, time=0, run_seed=999)
        assert a == b  # same crash point -> identical partial profile

    def test_crash_is_prefix_subset(self):
        sandbox = _sandbox(crash_mode_probability=1.0, crash_points=(0.5,))
        clean = sandbox.execute(BASE, time=0, run_seed=1)
        crashed = sandbox.execute(self.NOISY, time=0, run_seed=1)
        assert crashed.features < clean.features

    def test_allow_derail_false_heals(self):
        sandbox = _sandbox()
        healed = sandbox.execute(self.NOISY, time=0, run_seed=1, allow_derail=False)
        clean = sandbox.execute(BASE, time=0, run_seed=1)
        assert healed == clean


class TestConfigValidation:
    def test_bad_crash_point(self):
        with pytest.raises(ValidationError):
            SandboxConfig(crash_points=(1.5,))

    def test_bad_keep_fraction(self):
        with pytest.raises(ValidationError):
            SandboxConfig(derail_keep_fraction=2.0)
