"""Tests for the time-varying execution environment."""

import pytest

from repro.sandbox.environment import Environment, Window
from repro.util.validation import ValidationError


class TestWindow:
    def test_open_ended(self):
        window = Window(start=10)
        assert window.contains(10)
        assert window.contains(10**9)
        assert not window.contains(9)

    def test_closed(self):
        window = Window(5, 10)
        assert window.contains(5)
        assert window.contains(9)
        assert not window.contains(10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Window(10, 10)


class TestEnvironment:
    def test_unlisted_domain_never_resolves(self):
        assert not Environment().resolves("nope.example", 0)

    def test_dns_windows(self):
        env = Environment()
        env.add_dns("iliketay.cn", Window(0, 100))
        assert env.resolves("iliketay.cn", 50)
        assert not env.resolves("iliketay.cn", 100)

    def test_dns_default_window_is_forever(self):
        env = Environment()
        env.add_dns("always.example")
        assert env.resolves("always.example", 10**10)

    def test_multiple_dns_windows(self):
        env = Environment()
        env.add_dns("flaky.example", Window(0, 10), Window(20, 30))
        assert env.resolves("flaky.example", 5)
        assert not env.resolves("flaky.example", 15)
        assert env.resolves("flaky.example", 25)

    def test_unlisted_cnc_is_up(self):
        assert Environment().cnc_live("1.2.3.4", 0)

    def test_cnc_liveness_windows(self):
        env = Environment()
        env.set_cnc_liveness("1.2.3.4", Window(0, 100))
        assert env.cnc_live("1.2.3.4", 99)
        assert not env.cnc_live("1.2.3.4", 200)

    def test_unlisted_component_available(self):
        assert Environment().component_available("a.cn", "/x", 0)

    def test_component_windows(self):
        env = Environment()
        env.set_component_window("a.cn", "/x", Window(0, 50))
        assert env.component_available("a.cn", "/x", 10)
        assert not env.component_available("a.cn", "/x", 60)
        assert env.component_available("a.cn", "/other", 60)
