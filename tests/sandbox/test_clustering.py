"""Tests for behaviour clustering (LSH + exact baseline)."""

import random

import pytest

from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import (
    BehaviorClustering,
    ClusteringConfig,
    cluster_exact,
    cluster_lsh,
)


def profile(*names):
    return BehaviorProfile.from_features(("file", n, "create") for n in names)


def family_profiles(tag, n_samples, core=20, own=2):
    """n_samples profiles sharing `core` features, each with `own` extras."""
    profiles = {}
    for i in range(n_samples):
        features = [("file", f"{tag}-core-{j}", "create") for j in range(core)]
        features += [("mutex", f"{tag}-{i}-{j}", "create") for j in range(own)]
        profiles[f"{tag}-{i}"] = BehaviorProfile.from_features(features)
    return profiles


class TestConfig:
    def test_n_hashes(self):
        assert ClusteringConfig(bands=10, rows=8).n_hashes == 80

    def test_threshold_validated(self):
        with pytest.raises(Exception):
            ClusteringConfig(threshold=1.5)


class TestClusterExact:
    def test_identical_profiles_merge(self):
        profiles = {"a": profile("x", "y"), "b": profile("x", "y")}
        result = cluster_exact(profiles)
        assert result.n_clusters == 1

    def test_disjoint_profiles_separate(self):
        profiles = {"a": profile("x"), "b": profile("y")}
        assert cluster_exact(profiles).n_clusters == 2

    def test_threshold_respected(self):
        # similarity 2/3 < 0.7 -> separate; >= 0.6 -> together.
        profiles = {"a": profile("1", "2", "3"), "b": profile("1", "2", "4")}
        assert cluster_exact(profiles, ClusteringConfig(threshold=0.7)).n_clusters == 2
        assert cluster_exact(profiles, ClusteringConfig(threshold=0.5)).n_clusters == 1

    def test_single_linkage_chains(self):
        # a~b and b~c but a!~c: single linkage still merges all three.
        profiles = {
            "a": profile(*"12345678"),
            "b": profile(*"12345679"),
            "c": profile(*"1234567a"),
        }
        result = cluster_exact(profiles, ClusteringConfig(threshold=0.7))
        assert result.n_clusters == 1

    def test_family_structure(self):
        profiles = {}
        profiles.update(family_profiles("alpha", 8))
        profiles.update(family_profiles("beta", 5))
        result = cluster_exact(profiles)
        assert result.n_clusters == 2
        assert sorted(result.sizes().values(), reverse=True) == [8, 5]


class TestClusterLsh:
    def test_agrees_with_exact_on_family_structure(self):
        profiles = {}
        profiles.update(family_profiles("alpha", 10))
        profiles.update(family_profiles("beta", 6))
        profiles.update(family_profiles("gamma", 3))
        exact = cluster_exact(profiles)
        lsh = cluster_lsh(profiles)
        assert lsh.sizes() == exact.sizes()
        # Same partitioning, not just same sizes:
        for key_a in profiles:
            for key_b in profiles:
                same_exact = exact.assignment[key_a] == exact.assignment[key_b]
                same_lsh = lsh.assignment[key_a] == lsh.assignment[key_b]
                assert same_exact == same_lsh

    def test_far_fewer_comparisons_than_exact(self):
        rng = random.Random(1)
        profiles = {}
        for i in range(120):
            features = [("file", f"{i}-{j}-{rng.random()}", "c") for j in range(15)]
            profiles[str(i)] = BehaviorProfile.from_features(features)
        exact = cluster_exact(profiles)
        lsh = cluster_lsh(profiles)
        assert lsh.n_exact_comparisons < exact.n_exact_comparisons / 10

    def test_duplicate_profiles_precollapsed(self):
        profiles = {f"s{i}": profile("x", "y", "z") for i in range(500)}
        result = cluster_lsh(profiles)
        assert result.n_clusters == 1
        assert result.size_of(0) == 500
        # Dedup means no pairwise comparisons were needed at all.
        assert result.n_exact_comparisons == 0

    def test_empty_profiles_cluster_together(self):
        profiles = {"a": profile(), "b": profile()}
        assert cluster_lsh(profiles).n_clusters == 1


class TestBehaviorClustering:
    def test_ids_dense_and_size_ordered(self):
        assignment = {"a": 7, "b": 7, "c": 9, "d": 7}
        result = BehaviorClustering.from_assignment(assignment)
        assert result.assignment["a"] == 0  # biggest cluster gets id 0
        assert result.assignment["c"] == 1
        assert set(result.clusters) == {0, 1}

    def test_singletons(self):
        assignment = {"a": 1, "b": 1, "c": 2, "d": 3}
        result = BehaviorClustering.from_assignment(assignment)
        singles = result.singletons()
        assert len(singles) == 2
        assert all(result.size_of(s) == 1 for s in singles)

    def test_sizes(self):
        result = BehaviorClustering.from_assignment({"a": 1, "b": 1, "c": 2})
        assert sorted(result.sizes().values(), reverse=True) == [2, 1]

    def test_members_sorted(self):
        result = BehaviorClustering.from_assignment({"z": 1, "a": 1})
        assert result.clusters[0] == ["a", "z"]


class TestSharedJaccardHelper:
    """Both clustering paths go through repro.util.stats.jaccard."""

    def test_empty_profiles_cluster_together_in_both_paths(self):
        # jaccard(set(), set()) == 1.0, so two empty profiles must merge
        # identically in the exact and LSH paths.
        profiles = {"a": profile(), "b": profile(), "c": profile("x", "y", "z")}
        exact = cluster_exact(profiles)
        lsh = cluster_lsh(profiles)
        assert exact.assignment["a"] == exact.assignment["b"]
        assert lsh.assignment["a"] == lsh.assignment["b"]
        assert exact.assignment["c"] != exact.assignment["a"]

    def test_threshold_boundary_agrees_with_helper(self):
        from repro.util.stats import jaccard

        a, b = profile("1", "2", "3", "4", "5", "6", "7"), profile(
            "1", "2", "3", "4", "5", "6", "8"
        )
        similarity = jaccard(set(a.features), set(b.features))
        result = cluster_exact(
            {"a": a, "b": b}, ClusteringConfig(threshold=similarity)
        )
        assert result.assignment["a"] == result.assignment["b"]
        stricter = cluster_exact(
            {"a": a, "b": b}, ClusteringConfig(threshold=similarity + 1e-9)
        )
        assert stricter.assignment["a"] != stricter.assignment["b"]


class TestClusterLshParallel:
    """Chunked candidate verification is bit-identical to the serial path."""

    def _profiles(self):
        profiles = {}
        for tag in ("alpha", "beta", "gamma"):
            profiles.update(family_profiles(tag, 12))
        return profiles

    def test_thread_executor_matches_serial(self):
        from repro.util.parallel import ThreadExecutor

        profiles = self._profiles()
        serial = cluster_lsh(profiles)
        threaded = cluster_lsh(profiles, executor=ThreadExecutor(jobs=3))
        assert threaded.assignment == serial.assignment
        assert threaded.clusters == serial.clusters
        # the parallel path verifies every candidate pair
        assert threaded.n_exact_comparisons == threaded.n_candidate_pairs

    def test_process_executor_matches_serial(self):
        from repro.util.parallel import ProcessExecutor

        profiles = self._profiles()
        serial = cluster_lsh(profiles)
        processed = cluster_lsh(profiles, executor=ProcessExecutor(jobs=2))
        assert processed.assignment == serial.assignment
        assert processed.clusters == serial.clusters

    def test_serial_executor_matches_parallel_comparison_count(self):
        # Any explicit executor (serial included) verifies every
        # candidate through the same chunked map call, so the
        # comparison counter agrees across backends; only the
        # executor-less path keeps the union-find early-skip loop.
        from repro.util.parallel import SerialExecutor

        profiles = self._profiles()
        baseline = cluster_lsh(profiles)
        explicit = cluster_lsh(profiles, executor=SerialExecutor())
        assert explicit.assignment == baseline.assignment
        assert explicit.n_exact_comparisons == explicit.n_candidate_pairs
        assert baseline.n_exact_comparisons <= explicit.n_exact_comparisons


class TestClusterLshVectorized:
    """The batch numpy kernels are bit-identical to the scalar paths."""

    def _profiles(self):
        profiles = {}
        for tag in ("alpha", "beta", "gamma"):
            profiles.update(family_profiles(tag, 12))
        profiles["empty-1"] = profile()
        profiles["empty-2"] = profile()
        return profiles

    def test_vectorized_matches_executor_path(self):
        from repro.util.parallel import SerialExecutor

        profiles = self._profiles()
        vectorized = cluster_lsh(profiles)  # vectorize=True is the default
        scalar = cluster_lsh(
            profiles, executor=SerialExecutor(), vectorize=False
        )
        assert vectorized.assignment == scalar.assignment
        assert vectorized.clusters == scalar.clusters
        # both verify every candidate pair, so the counters agree too
        assert vectorized.n_exact_comparisons == scalar.n_exact_comparisons
        assert vectorized.n_candidate_pairs == scalar.n_candidate_pairs

    def test_vectorized_matches_legacy_components(self):
        profiles = self._profiles()
        vectorized = cluster_lsh(profiles)
        legacy = cluster_lsh(profiles, vectorize=False)
        assert vectorized.assignment == legacy.assignment

    def test_python_backend_matches_numpy(self):
        profiles = self._profiles()
        numpy_backed = cluster_lsh(profiles)
        python_backed = cluster_lsh(
            profiles, ClusteringConfig(minhash_backend="python")
        )
        assert python_backed.assignment == numpy_backed.assignment

    def test_bucket_metrics_emitted(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs.metrics import MetricsRegistry

        with obs_metrics.use(MetricsRegistry()) as registry:
            cluster_lsh(self._profiles())
        snapshot = registry.snapshot()
        hist = snapshot.histograms["lsh.bucket_size"]
        assert hist["count"] > 0
        # No degenerate buckets here, so the guard skipped nothing —
        # but the counter must exist regardless (schema contract).
        assert snapshot.counter("lsh.buckets_skipped") == 0

    def test_max_bucket_size_guard_applies(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs.metrics import MetricsRegistry

        # 30 near-identical profiles (30 shared features, 1 own) land in
        # the same bucket in most bands -> mega-buckets the guard drops.
        profiles = family_profiles("alpha", 30, core=30, own=1)
        config = ClusteringConfig(max_bucket_size=8)
        with obs_metrics.use(MetricsRegistry()) as registry:
            guarded = cluster_lsh(profiles, config)
        assert registry.snapshot().counter("lsh.buckets_skipped") > 0
        unguarded = cluster_lsh(profiles)
        # Dropping oversized buckets can only reduce candidate pairs.
        assert guarded.n_exact_comparisons < unguarded.n_exact_comparisons
