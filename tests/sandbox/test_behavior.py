"""Tests for behavioural profiles."""

from repro.sandbox.behavior import BehaviorProfile


def profile(*features):
    return BehaviorProfile.from_features(features)


F1 = ("mutex", "m1", "create")
F2 = ("file", "f1", "create")
F3 = ("dns", "x.cn", "resolve")


class TestBehaviorProfile:
    def test_from_features_dedupes(self):
        assert len(profile(F1, F1, F2)) == 2

    def test_contains(self):
        assert F1 in profile(F1)
        assert F2 not in profile(F1)

    def test_similarity_identical(self):
        assert profile(F1, F2).similarity(profile(F1, F2)) == 1.0

    def test_similarity_disjoint(self):
        assert profile(F1).similarity(profile(F2)) == 0.0

    def test_similarity_partial(self):
        assert profile(F1, F2).similarity(profile(F2, F3)) == 1 / 3

    def test_union(self):
        merged = profile(F1).union(profile(F2))
        assert set(merged) == {F1, F2}

    def test_hashed_features_stable(self):
        assert profile(F1, F2).hashed_features() == profile(F2, F1).hashed_features()

    def test_hashed_features_distinct(self):
        assert profile(F1).hashed_features() != profile(F2).hashed_features()

    def test_by_category(self):
        grouped = profile(F1, F2, F3).by_category()
        assert set(grouped) == {"mutex", "file", "dns"}

    def test_describe_mentions_objects(self):
        text = profile(F1, F3).describe()
        assert "m1" in text and "x.cn" in text

    def test_describe_truncates(self):
        big = BehaviorProfile.from_features(
            ("file", f"f{i}", "create") for i in range(100)
        )
        text = big.describe(max_lines=10)
        assert "more)" in text

    def test_immutable_value_semantics(self):
        assert profile(F1, F2) == profile(F2, F1)
        assert hash(profile(F1)) == hash(profile(F1))
