"""Tests for address-space sampling strategies."""

import random

import pytest

from repro.net.address import Subnet
from repro.net.sampling import (
    SubnetConcentratedSampler,
    UniformSampler,
    routable_slash8_blocks,
)
from repro.util.validation import ValidationError


class TestRoutableBlocks:
    def test_excludes_reserved(self):
        blocks = routable_slash8_blocks()
        for reserved in (0, 10, 127, 169, 172, 192, 224, 255):
            assert reserved not in blocks

    def test_includes_common(self):
        blocks = routable_slash8_blocks()
        for common in (4, 58, 67, 121, 200):
            assert common in blocks


class TestUniformSampler:
    def test_samples_in_routable_blocks(self):
        rng = random.Random(1)
        sampler = UniformSampler()
        blocks = set(routable_slash8_blocks())
        for _ in range(200):
            assert sampler.sample(rng).slash8 in blocks

    def test_wide_spread(self):
        rng = random.Random(1)
        sampler = UniformSampler()
        seen = {sampler.sample(rng).slash8 for _ in range(500)}
        assert len(seen) > 80  # touches a large share of the /8 space

    def test_restricted_blocks(self):
        rng = random.Random(1)
        sampler = UniformSampler(blocks=[42])
        assert all(sampler.sample(rng).slash8 == 42 for _ in range(20))

    def test_rejects_empty_blocks(self):
        with pytest.raises(ValidationError):
            UniformSampler(blocks=[])

    def test_rejects_bad_block(self):
        with pytest.raises(ValidationError):
            UniformSampler(blocks=[300])

    def test_sample_many(self):
        rng = random.Random(2)
        assert len(UniformSampler().sample_many(rng, 17)) == 17

    def test_sample_distinct(self):
        rng = random.Random(2)
        addrs = UniformSampler().sample_distinct(rng, 50)
        assert len(set(addrs)) == 50

    def test_sample_distinct_small_space_raises(self):
        rng = random.Random(2)
        sampler = SubnetConcentratedSampler([Subnet.parse("1.2.3.0/30")])
        with pytest.raises(ValidationError):
            sampler.sample_distinct(rng, 10)


class TestSubnetConcentratedSampler:
    def test_stays_in_home_subnets(self):
        rng = random.Random(3)
        homes = [Subnet.parse("58.32.0.0/16"), Subnet.parse("121.14.0.0/16")]
        sampler = SubnetConcentratedSampler(homes)
        for _ in range(100):
            addr = sampler.sample(rng)
            assert any(addr in subnet for subnet in homes)

    def test_leak_escapes_sometimes(self):
        rng = random.Random(3)
        home = [Subnet.parse("58.32.0.0/16")]
        sampler = SubnetConcentratedSampler(home, leak=0.5)
        outside = sum(
            1 for _ in range(200) if sampler.sample(rng) not in home[0]
        )
        assert 40 < outside < 160

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            SubnetConcentratedSampler([])

    def test_rejects_bad_leak(self):
        with pytest.raises(ValidationError):
            SubnetConcentratedSampler([Subnet.parse("1.0.0.0/8")], leak=1.5)

    def test_concentration_vs_uniform(self):
        rng = random.Random(4)
        concentrated = SubnetConcentratedSampler([Subnet.parse("58.32.0.0/16")])
        blocks = {concentrated.sample(rng).slash8 for _ in range(100)}
        assert blocks == {58}
