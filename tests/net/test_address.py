"""Tests for the IPv4 address and subnet value types."""

import pytest

from repro.net.address import IPv4Address, Subnet, ip_from_string, ip_to_string
from repro.util.validation import ValidationError


class TestIpToString:
    def test_basic(self):
        assert ip_to_string(0x01020304) == "1.2.3.4"

    def test_extremes(self):
        assert ip_to_string(0) == "0.0.0.0"
        assert ip_to_string((1 << 32) - 1) == "255.255.255.255"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            ip_to_string(1 << 32)
        with pytest.raises(ValidationError):
            ip_to_string(-1)


class TestIpFromString:
    def test_roundtrip(self):
        assert ip_from_string("10.20.30.40").dotted == "10.20.30.40"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.256", ""])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValidationError):
            ip_from_string(bad)

    def test_returns_address_type(self):
        assert isinstance(ip_from_string("1.1.1.1"), IPv4Address)


class TestIPv4Address:
    def test_is_int(self):
        assert IPv4Address(5) == 5
        assert IPv4Address(5) + 1 == 6

    def test_str_is_dotted(self):
        assert str(IPv4Address(0x7F000001)) == "127.0.0.1"

    def test_prefix_accessors(self):
        addr = ip_from_string("10.20.30.40")
        assert addr.slash8 == 10
        assert addr.slash16 == (10 << 8) | 20
        assert addr.slash24 == (((10 << 8) | 20) << 8) | 30

    def test_hashable_and_sortable(self):
        addrs = [IPv4Address(3), IPv4Address(1), IPv4Address(2)]
        assert sorted(addrs) == [1, 2, 3]
        assert len({IPv4Address(1), IPv4Address(1)}) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            IPv4Address(1 << 32)


class TestSubnet:
    def test_parse(self):
        subnet = Subnet.parse("10.0.0.0/8")
        assert subnet.prefix_len == 8
        assert subnet.size == 1 << 24

    def test_parse_requires_prefix(self):
        with pytest.raises(ValidationError):
            Subnet.parse("10.0.0.0")

    def test_host_bits_rejected(self):
        with pytest.raises(ValidationError):
            Subnet.parse("10.0.0.1/8")

    def test_contains(self):
        subnet = Subnet.parse("192.168.1.0/24")
        assert subnet.contains(int(ip_from_string("192.168.1.77")))
        assert not subnet.contains(int(ip_from_string("192.168.2.1")))

    def test_in_operator(self):
        subnet = Subnet.parse("192.168.1.0/24")
        assert ip_from_string("192.168.1.1") in subnet

    def test_first_last(self):
        subnet = Subnet.parse("10.1.0.0/16")
        assert subnet.first.dotted == "10.1.0.0"
        assert subnet.last.dotted == "10.1.255.255"

    def test_nth(self):
        subnet = Subnet.parse("10.1.0.0/16")
        assert subnet.nth(0) == subnet.first
        assert subnet.nth(subnet.size - 1) == subnet.last
        with pytest.raises(ValidationError):
            subnet.nth(subnet.size)

    def test_str(self):
        assert str(Subnet.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_slash32(self):
        subnet = Subnet.parse("1.2.3.4/32")
        assert subnet.size == 1
        assert subnet.contains(int(ip_from_string("1.2.3.4")))
