"""Tests for the port registry."""

from repro.net.ports import KNOWN_SERVICE_PORTS, service_name


class TestServiceName:
    def test_known(self):
        assert "SMB" in service_name(445)

    def test_unknown_fallback(self):
        assert service_name(54321) == "tcp/54321"

    def test_allaple_push_port_registered(self):
        assert 9988 in KNOWN_SERVICE_PORTS

    def test_irc_registered(self):
        assert service_name(6667) == "irc"
