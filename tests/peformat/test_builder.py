"""Tests for the PE builder."""

import pytest

from repro.peformat.builder import build_pe, minimum_file_size
from repro.peformat.structures import (
    FILE_ALIGNMENT,
    PESpec,
    SectionSpec,
)
from repro.util.validation import ValidationError


class TestMinimumFileSize:
    def test_positive_and_aligned_floor(self):
        floor = minimum_file_size(PESpec())
        assert floor > 0
        assert floor % FILE_ALIGNMENT == 0

    def test_grows_with_sections(self):
        one = PESpec(sections=(SectionSpec(".text"),))
        four = PESpec(
            sections=tuple(SectionSpec(f".s{i}") for i in range(4)),
        )
        assert minimum_file_size(four) > minimum_file_size(one)

    def test_grows_with_imports(self):
        small = PESpec()
        big = small.with_imports(
            {f"LIB{i}.dll": tuple(f"Sym{j}" for j in range(40)) for i in range(8)}
        )
        assert minimum_file_size(big) >= minimum_file_size(small)


class TestBuildPe:
    def test_exact_size(self):
        spec = PESpec()
        assert len(build_pe(spec, 1)) == spec.file_size

    def test_deterministic(self):
        assert build_pe(PESpec(), 7) == build_pe(PESpec(), 7)

    def test_seed_changes_content(self):
        assert build_pe(PESpec(), 1) != build_pe(PESpec(), 2)

    def test_mz_and_pe_signatures(self):
        image = build_pe(PESpec(), 1)
        assert image[:2] == b"MZ"
        assert image[0x80:0x84] == b"PE\x00\x00"

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValidationError, match="multiple"):
            build_pe(PESpec(file_size=59_905), 1)

    def test_rejects_too_small(self):
        spec = PESpec(file_size=FILE_ALIGNMENT)
        with pytest.raises(ValidationError, match="below minimum"):
            build_pe(spec, 1)

    def test_minimum_size_buildable(self):
        spec = PESpec()
        tight = spec.with_size(minimum_file_size(spec))
        assert len(build_pe(tight, 1)) == tight.file_size

    def test_single_section_spec(self):
        spec = PESpec(sections=(SectionSpec(".text"),), file_size=8192)
        assert len(build_pe(spec, 3)) == 8192

    def test_many_sections(self):
        spec = PESpec(
            sections=tuple(SectionSpec(f"s{i}") for i in range(8)),
            file_size=65_536,
        )
        assert len(build_pe(spec, 3)) == 65_536

    def test_header_bytes_invariant_under_seed(self):
        # Allaple's property: polymorphic mutation never touches headers.
        a = build_pe(PESpec(), 1)
        b = build_pe(PESpec(), 2)
        headers_end = 0x200
        assert a[:headers_end] == b[:headers_end]

    def test_different_specs_different_headers(self):
        a = build_pe(PESpec(), 1)
        b = build_pe(PESpec(linker_version=80).with_size(59_904), 1)
        assert a[:0x200] != b[:0x200]
