"""Tests for the libmagic-style type strings."""

from repro.peformat.builder import build_pe
from repro.peformat.magic import magic_type
from repro.peformat.structures import (
    MACHINE_AMD64,
    PESpec,
    SUBSYSTEM_CUI,
)


class TestMagicType:
    def test_paper_string_for_default_pe(self):
        image = build_pe(PESpec(), 1)
        assert (
            magic_type(image)
            == "MS-DOS executable PE for MS Windows (GUI) Intel 80386 32-bit"
        )

    def test_console_subsystem(self):
        image = build_pe(PESpec(subsystem=SUBSYSTEM_CUI), 1)
        assert "(console)" in magic_type(image)

    def test_amd64(self):
        image = build_pe(PESpec(machine_type=MACHINE_AMD64), 1)
        assert "x86-64" in magic_type(image)

    def test_data_for_garbage(self):
        assert magic_type(b"\x01\x02\x03") == "data"

    def test_data_for_empty(self):
        assert magic_type(b"") == "data"

    def test_bare_dos_for_tiny_mz(self):
        # Anything starting with MZ but lacking a PE header is a bare
        # MS-DOS executable to libmagic.
        assert magic_type(b"MZ" + b"\x00" * 10) == "MS-DOS executable"
        assert magic_type(b"MZ" + b"\x00" * 62) == "MS-DOS executable"

    def test_truncated_pe_keeps_pe_magic_if_headers_present(self):
        image = build_pe(PESpec(), 1)
        assert magic_type(image[:4096]).startswith("MS-DOS executable PE")

    def test_truncation_before_pe_header(self):
        image = build_pe(PESpec(), 1)
        assert magic_type(image[:100]) == "MS-DOS executable"
