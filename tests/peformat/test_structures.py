"""Tests for PE spec and info structures."""

import pytest

from repro.peformat.structures import (
    MACHINE_I386,
    PEInfo,
    PESpec,
    SectionSpec,
)
from repro.util.validation import ValidationError


class TestSectionSpec:
    def test_padded_name(self):
        assert SectionSpec(".text").padded_name == ".text\x00\x00\x00"

    def test_eight_char_name_not_padded(self):
        assert SectionSpec("ABCDEFGH").padded_name == "ABCDEFGH"

    def test_rejects_long_name(self):
        with pytest.raises(ValidationError):
            SectionSpec("way-too-long-name")


class TestPESpec:
    def test_defaults_match_paper_quote(self):
        # The default spec is the M-cluster 13 shape quoted in §4.2.
        spec = PESpec()
        assert spec.machine_type == 332
        assert spec.n_sections == 3
        assert spec.n_dlls == 1
        assert spec.os_version == 64
        assert spec.linker_version == 92
        assert spec.file_size == 59_904

    def test_linker_split(self):
        spec = PESpec(linker_version=92)
        assert (spec.linker_major, spec.linker_minor) == (9, 2)

    def test_os_split(self):
        spec = PESpec(os_version=64)
        assert (spec.os_major, spec.os_minor) == (6, 4)

    def test_with_size(self):
        assert PESpec().with_size(61_440).file_size == 61_440

    def test_with_size_preserves_rest(self):
        spec = PESpec().with_size(61_440)
        assert spec.linker_version == PESpec().linker_version

    def test_with_linker(self):
        assert PESpec().with_linker(80).linker_version == 80

    def test_with_sections_renames(self):
        spec = PESpec().with_sections(["AAA", "BBB", "CCC"])
        assert [s.name for s in spec.sections] == ["AAA", "BBB", "CCC"]

    def test_with_sections_arity_checked(self):
        with pytest.raises(ValidationError):
            PESpec().with_sections(["only-one"])

    def test_with_imports(self):
        spec = PESpec().with_imports({"USER32.dll": ["MessageBoxA"]})
        assert spec.n_dlls == 1
        assert spec.imports["USER32.dll"] == ("MessageBoxA",)

    def test_rejects_no_sections(self):
        with pytest.raises(ValidationError):
            PESpec(sections=())

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValidationError):
            PESpec(file_size=0)


class TestPEInfo:
    def _info(self, imports):
        return PEInfo(
            machine_type=MACHINE_I386,
            n_sections=1,
            os_version=40,
            linker_version=60,
            subsystem=2,
            section_names=(".text\x00\x00\x00",),
            imported_dlls=tuple(imports.keys()),
            imports=imports,
            file_size=1024,
        )

    def test_kernel32_symbols_case_insensitive(self):
        info = self._info({"kernel32.DLL": ("CreateFileA",)})
        assert info.kernel32_symbols == ("CreateFileA",)

    def test_kernel32_symbols_absent(self):
        info = self._info({"USER32.dll": ("MessageBoxA",)})
        assert info.kernel32_symbols == ()

    def test_n_dlls(self):
        info = self._info({"A.dll": (), "B.dll": ()})
        assert info.n_dlls == 2
