"""Tests for the PE parser (the pefile stand-in)."""

import pytest

from repro.peformat.builder import build_pe
from repro.peformat.parser import parse_pe
from repro.peformat.structures import (
    MACHINE_AMD64,
    PEFormatError,
    PESpec,
    SectionSpec,
)


@pytest.fixture(scope="module")
def default_image() -> bytes:
    return build_pe(PESpec(), content_seed=99)


class TestParseRoundTrip:
    def test_header_features(self, default_image):
        info = parse_pe(default_image)
        spec = PESpec()
        assert info.machine_type == spec.machine_type
        assert info.n_sections == spec.n_sections
        assert info.os_version == spec.os_version
        assert info.linker_version == spec.linker_version
        assert info.subsystem == spec.subsystem
        assert info.file_size == spec.file_size

    def test_section_names_nul_padded(self, default_image):
        info = parse_pe(default_image)
        assert info.section_names == (
            ".text\x00\x00\x00",
            ".rdata\x00\x00",
            ".data\x00\x00\x00",
        )

    def test_imports_recovered(self, default_image):
        info = parse_pe(default_image)
        assert info.imports == {
            "KERNEL32.dll": ("GetProcAddress", "LoadLibraryA")
        }
        assert info.kernel32_symbols == ("GetProcAddress", "LoadLibraryA")

    def test_multi_dll_imports(self):
        spec = PESpec().with_imports(
            {
                "KERNEL32.dll": ["GetProcAddress"],
                "WS2_32.dll": ["socket", "connect"],
                "ADVAPI32.dll": ["RegOpenKeyA"],
            }
        )
        info = parse_pe(build_pe(spec, 1))
        assert info.n_dlls == 3
        assert info.imports["WS2_32.dll"] == ("socket", "connect")

    def test_headers_invariant_under_polymorphism(self):
        spec = PESpec()
        infos = [parse_pe(build_pe(spec, seed)) for seed in range(5)]
        assert all(info == infos[0] for info in infos)


class TestParseErrors:
    def test_empty(self):
        with pytest.raises(PEFormatError, match="MZ"):
            parse_pe(b"")

    def test_not_mz(self):
        with pytest.raises(PEFormatError, match="MZ"):
            parse_pe(b"\x7fELF" + b"\x00" * 100)

    def test_mz_without_pe(self):
        data = bytearray(200)
        data[0:2] = b"MZ"
        with pytest.raises(PEFormatError):
            parse_pe(bytes(data))

    @pytest.mark.parametrize("cut", [10, 0x50, 0x90, 0x200, 2000])
    def test_truncations_raise(self, default_image, cut):
        with pytest.raises(PEFormatError):
            parse_pe(default_image[:cut])

    def test_every_truncation_point_is_handled(self, default_image):
        # Any cut strictly inside the image must raise, never crash with
        # an unrelated exception (this is exactly what Nepenthes
        # truncation produces in the pipeline).
        for cut in range(0, len(default_image), 1499):
            if cut == len(default_image):
                continue
            with pytest.raises(PEFormatError):
                parse_pe(default_image[:cut])

    def test_garbage_after_mz(self):
        data = b"MZ" + bytes(range(256)) * 4
        with pytest.raises(PEFormatError):
            parse_pe(data)


class TestParseVariants:
    def test_amd64_machine(self):
        spec = PESpec(machine_type=MACHINE_AMD64)
        assert parse_pe(build_pe(spec, 1)).machine_type == MACHINE_AMD64

    def test_custom_sections(self):
        spec = PESpec(
            sections=(SectionSpec("UPX0"), SectionSpec("UPX1"), SectionSpec(".rsrc")),
        )
        info = parse_pe(build_pe(spec, 1))
        assert info.section_names[0].startswith("UPX0")

    def test_size_feature_tracks_spec(self):
        for size in (59_904, 61_440, 65_536):
            info = parse_pe(build_pe(PESpec().with_size(size), 1))
            assert info.file_size == size
