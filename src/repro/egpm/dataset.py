"""The SGNET dataset: event store, sample index and persistence.

The store keeps every enriched :class:`AttackEvent` plus one
:class:`SampleRecord` per distinct binary (keyed by MD5), and maintains
the secondary indexes the analysis layer queries constantly (events per
source, per sensor, per sample).  Events persist as JSON lines so a
generated dataset can be saved and re-analysed without re-running the
honeypot simulation.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.egpm.events import (
    AttackEvent,
    SampleRecord,
    event_from_dict,
    event_to_dict,
)
from repro.util.validation import require


class SGNetDataset:
    """In-memory enriched event store with MD5-keyed sample index."""

    def __init__(self) -> None:
        self._events: list[AttackEvent] = []
        self._samples: dict[str, SampleRecord] = {}
        self._by_source: dict[int, list[int]] = defaultdict(list)
        self._by_sensor: dict[int, list[int]] = defaultdict(list)
        self._by_md5: dict[str, list[int]] = defaultdict(list)
        self._columnar = None

    # -- ingestion ---------------------------------------------------------

    def add_event(self, event: AttackEvent, *, behavior_handle=None) -> None:
        """Add one event, updating the sample index.

        ``behavior_handle`` is attached to the sample record on first
        sighting (it stands in for the binary's executable content).
        """
        index = len(self._events)
        require(
            event.event_id == index,
            f"event_id {event.event_id} out of order (expected {index})",
        )
        self._columnar = None
        self._events.append(event)
        self._by_source[int(event.source)].append(index)
        self._by_sensor[int(event.sensor)].append(index)
        if event.malware is not None:
            md5 = event.malware.md5
            self._by_md5[md5].append(index)
            record = self._samples.get(md5)
            if record is None:
                self._samples[md5] = SampleRecord(
                    md5=md5,
                    observable=event.malware,
                    first_seen=event.timestamp,
                    last_seen=event.timestamp,
                    behavior_handle=behavior_handle,
                    ground_truth=event.ground_truth,
                )
            else:
                record.record_event(event.timestamp)
                if record.behavior_handle is None and behavior_handle is not None:
                    record.behavior_handle = behavior_handle

    def next_event_id(self) -> int:
        """The event_id the next :meth:`add_event` call must carry."""
        return len(self._events)

    # -- access ------------------------------------------------------------

    @property
    def events(self) -> list[AttackEvent]:
        """All events in ingestion order (do not mutate)."""
        return self._events

    @property
    def samples(self) -> dict[str, SampleRecord]:
        """MD5 -> sample record (do not mutate the mapping itself)."""
        return self._samples

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AttackEvent]:
        return iter(self._events)

    def events_for_sample(self, md5: str) -> list[AttackEvent]:
        """Events in which the binary ``md5`` was collected."""
        return [self._events[i] for i in self._by_md5.get(md5, ())]

    def events_from_source(self, source: int) -> list[AttackEvent]:
        """Events originated by attacker ``source``."""
        return [self._events[i] for i in self._by_source.get(int(source), ())]

    def events_on_sensor(self, sensor: int) -> list[AttackEvent]:
        """Events observed by honeypot IP ``sensor``."""
        return [self._events[i] for i in self._by_sensor.get(int(sensor), ())]

    def select(self, predicate: Callable[[AttackEvent], bool]) -> list[AttackEvent]:
        """Events satisfying ``predicate``."""
        return [e for e in self._events if predicate(e)]

    @property
    def n_sources(self) -> int:
        """Number of distinct attacking addresses."""
        return len(self._by_source)

    @property
    def n_sensors(self) -> int:
        """Number of distinct honeypot addresses hit."""
        return len(self._by_sensor)

    @property
    def n_samples(self) -> int:
        """Number of distinct collected binaries (by MD5)."""
        return len(self._samples)

    def to_columnar(self, feature_sets=None):
        """The columnar view of this dataset (see :mod:`repro.egpm.columnar`).

        With the default ``feature_sets=None`` the view is built once
        over the paper's Table 1 feature sets and cached; any later
        :meth:`add_event` invalidates the cache.  Passing explicit
        feature sets always rebuilds (custom sets may differ call to
        call, so they are never cached).
        """
        from repro.egpm.columnar import events_to_columnar

        if feature_sets is not None:
            return events_to_columnar(self._events, feature_sets)
        if self._columnar is None:
            self._columnar = events_to_columnar(self._events)
        return self._columnar

    def adopt_columnar(self, view) -> None:
        """Install a pre-built default-feature-set columnar view.

        The shard pipeline streams every observation shard through one
        :class:`~repro.egpm.columnar.ColumnarBuilder` while the events
        are appended here, then hands the merged store over — the next
        :meth:`to_columnar` call returns it instead of re-transposing
        the whole event list.  The view must cover exactly the events
        currently stored (and must have been built with the default
        feature sets, since that is what the cache position means).
        """
        require(
            view.n_events == len(self._events),
            f"columnar view covers {view.n_events} events, "
            f"dataset holds {len(self._events)}",
        )
        self._columnar = view

    def valid_samples(self) -> list[SampleRecord]:
        """Sample records whose binary is uncorrupted (executable)."""
        return [r for r in self._samples.values() if not r.observable.corrupted]

    def summary(self) -> dict[str, int]:
        """Headline counters for quick inspection."""
        return {
            "events": len(self._events),
            "sources": self.n_sources,
            "sensors": self.n_sensors,
            "samples": self.n_samples,
            "valid_samples": len(self.valid_samples()),
        }

    def __getstate__(self) -> dict:
        # The columnar view is a derived cache over numpy arrays; drop
        # it from pickles (stage cache entries, process-pool transfers)
        # and let it rebuild lazily on first use after load.
        state = self.__dict__.copy()
        state["_columnar"] = None
        return state

    # -- persistence ---------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> int:
        """Write all events as JSON lines; returns the number written.

        Sample records are reconstructed on load, so only events are
        persisted.  Behaviour handles (the stand-in for binary content)
        are *not* serialized — like real binaries, they live outside the
        event log.
        """
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event_to_dict(event)) + "\n")
        return len(self._events)

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "SGNetDataset":
        """Rebuild a dataset from :meth:`save_jsonl` output."""
        dataset = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    dataset.add_event(event_from_dict(json.loads(line)))
        return dataset

    @classmethod
    def from_events(cls, events: Iterable[AttackEvent]) -> "SGNetDataset":
        """Build a dataset from an iterable of events (ids must be ordered)."""
        dataset = cls()
        for event in events:
            dataset.add_event(event)
        return dataset
