"""Memory-resident columnar view of an :class:`SGNetDataset`.

The row-wise store keeps one :class:`~repro.egpm.events.AttackEvent`
dataclass per attack; analysis passes that touch every event (invariant
discovery, pattern support counting) then pay a Python attribute-access
per feature per event.  The columnar view transposes that layout once:
parallel numpy arrays hold event ids, timestamps and source/sensor
codes, and each EPM dimension gets a dense ``(n_rows, n_features)``
matrix of *value codes* — indexes into per-feature interned
vocabularies.  Batch kernels (``np.bincount``/``np.unique`` aggregation
in :mod:`repro.core.invariants`) then run over integer arrays, while
the vocabularies decode codes back to the exact original feature values
so results stay bit-identical to the row-wise path.

The view is built either in one pass over a finished dataset
(:meth:`SGNetDataset.to_columnar`) or incrementally through a
:class:`ColumnarBuilder` — the shard pipeline streams observation
shards through one builder, merging them into a single store without
ever materializing the full row-wise event list twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

import numpy as np

from repro.core.features import Dimension, FeatureSet, default_feature_sets
from repro.egpm.events import AttackEvent
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset imports us)
    from repro.egpm.dataset import SGNetDataset

#: One observed instance, as the row-wise analysis layer consumes it:
#: (feature value tuple, attacker address, honeypot address).
Observation = tuple[tuple[Hashable, ...], int, int]


class Vocabulary:
    """Insertion-ordered interning of hashable values to dense codes."""

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict[Hashable, int] = {}
        self._values: list[Hashable] = []

    def intern(self, value: Hashable) -> int:
        """The code of ``value``, assigning the next code on first sight."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def decode(self, code: int) -> Hashable:
        """The original value behind ``code``."""
        return self._values[code]

    def values(self) -> list[Hashable]:
        """All interned values, in code order (do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes


@dataclass
class DimensionColumns:
    """One dimension's applicable events, transposed into code columns.

    ``codes[r, f]`` is the interned code of feature ``f``'s value in
    the ``r``-th applicable event (``vocabularies[f]`` decodes it);
    ``event_ids``, ``sources``/``sensors`` (raw addresses) and
    ``source_codes``/``sensor_codes`` (store-wide interned codes) are
    aligned row for row.
    """

    dimension: Dimension
    feature_names: list[str]
    event_ids: np.ndarray
    sources: np.ndarray
    sensors: np.ndarray
    source_codes: np.ndarray
    sensor_codes: np.ndarray
    codes: np.ndarray
    vocabularies: list[Vocabulary]

    @property
    def n_rows(self) -> int:
        """Number of applicable events."""
        return len(self.event_ids)

    @property
    def n_features(self) -> int:
        """Number of features in this dimension."""
        return len(self.feature_names)

    def decode_row(self, row: int) -> tuple[Hashable, ...]:
        """The original feature-value tuple of one row."""
        return tuple(
            vocab.decode(int(code))
            for vocab, code in zip(self.vocabularies, self.codes[row])
        )

    def value_tuples(self) -> list[tuple[Hashable, ...]]:
        """Every row decoded back to its exact row-wise extraction tuple."""
        if self.n_rows == 0:
            return []
        columns = []
        for f, vocab in enumerate(self.vocabularies):
            values = vocab.values()
            columns.append([values[code] for code in self.codes[:, f].tolist()])
        return list(zip(*columns))

    def observations(self) -> list[Observation]:
        """Rows in the ``(values, source, sensor)`` form the scalar
        invariant-discovery path consumes — the round-trip contract."""
        return list(
            zip(self.value_tuples(), self.sources.tolist(), self.sensors.tolist())
        )


@dataclass
class ColumnarEvents:
    """The full columnar store: global arrays + per-dimension columns."""

    event_ids: np.ndarray
    timestamps: np.ndarray
    sources: np.ndarray
    sensors: np.ndarray
    source_codes: np.ndarray
    sensor_codes: np.ndarray
    source_vocab: Vocabulary
    sensor_vocab: Vocabulary
    dimensions: dict[Dimension, DimensionColumns]

    @property
    def n_events(self) -> int:
        """Number of events in the store."""
        return len(self.event_ids)

    def summary(self) -> dict[str, int]:
        """Headline counters, mirroring ``SGNetDataset.summary`` fields
        that the columnar view can answer."""
        return {
            "events": self.n_events,
            "sources": len(self.source_vocab),
            "sensors": len(self.sensor_vocab),
            **{
                f"{dim.value}_rows": cols.n_rows
                for dim, cols in self.dimensions.items()
            },
        }


class _DimensionAccumulator:
    """Per-dimension append buffers behind :class:`ColumnarBuilder`."""

    __slots__ = (
        "feature_set",
        "event_ids",
        "sources",
        "sensors",
        "source_codes",
        "sensor_codes",
        "rows",
        "vocabularies",
    )

    def __init__(self, feature_set: FeatureSet) -> None:
        self.feature_set = feature_set
        self.event_ids: list[int] = []
        self.sources: list[int] = []
        self.sensors: list[int] = []
        self.source_codes: list[int] = []
        self.sensor_codes: list[int] = []
        self.rows: list[list[int]] = []
        self.vocabularies = [Vocabulary() for _ in feature_set.names]

    def add(self, event: AttackEvent, source_code: int, sensor_code: int) -> None:
        values = self.feature_set.extract(event)
        self.event_ids.append(event.event_id)
        self.sources.append(int(event.source))
        self.sensors.append(int(event.sensor))
        self.source_codes.append(source_code)
        self.sensor_codes.append(sensor_code)
        self.rows.append(
            [vocab.intern(value) for vocab, value in zip(self.vocabularies, values)]
        )

    def build(self) -> DimensionColumns:
        n_features = len(self.feature_set.names)
        codes = (
            np.array(self.rows, dtype=np.int64)
            if self.rows
            else np.empty((0, n_features), dtype=np.int64)
        )
        return DimensionColumns(
            dimension=self.feature_set.dimension,
            feature_names=list(self.feature_set.names),
            event_ids=np.array(self.event_ids, dtype=np.int64),
            sources=np.array(self.sources, dtype=np.int64),
            sensors=np.array(self.sensors, dtype=np.int64),
            source_codes=np.array(self.source_codes, dtype=np.int64),
            sensor_codes=np.array(self.sensor_codes, dtype=np.int64),
            codes=codes,
            vocabularies=self.vocabularies,
        )


class ColumnarBuilder:
    """Incremental builder: append events (possibly shard by shard),
    then :meth:`build` the immutable store."""

    def __init__(
        self, feature_sets: dict[Dimension, FeatureSet] | None = None
    ) -> None:
        self.feature_sets = feature_sets or default_feature_sets()
        self._event_ids: list[int] = []
        self._timestamps: list[int] = []
        self._sources: list[int] = []
        self._sensors: list[int] = []
        self._source_codes: list[int] = []
        self._sensor_codes: list[int] = []
        self._source_vocab = Vocabulary()
        self._sensor_vocab = Vocabulary()
        self._dimensions = {
            dimension: _DimensionAccumulator(feature_set)
            for dimension, feature_set in self.feature_sets.items()
        }

    def add_event(self, event: AttackEvent) -> None:
        """Append one event's columns (event ids must arrive in order)."""
        require(
            not self._event_ids or event.event_id > self._event_ids[-1],
            f"event_id {event.event_id} out of order "
            f"(last was {self._event_ids[-1] if self._event_ids else None})",
        )
        source_code = self._source_vocab.intern(int(event.source))
        sensor_code = self._sensor_vocab.intern(int(event.sensor))
        self._event_ids.append(event.event_id)
        self._timestamps.append(event.timestamp)
        self._sources.append(int(event.source))
        self._sensors.append(int(event.sensor))
        self._source_codes.append(source_code)
        self._sensor_codes.append(sensor_code)
        for accumulator in self._dimensions.values():
            if accumulator.feature_set.applies_to(event):
                accumulator.add(event, source_code, sensor_code)

    def add_events(self, events: Iterable[AttackEvent]) -> None:
        """Append a batch of events (one shard's worth, typically)."""
        for event in events:
            self.add_event(event)

    @property
    def n_events(self) -> int:
        """Events appended so far."""
        return len(self._event_ids)

    def build(self) -> ColumnarEvents:
        """Freeze the buffers into numpy-backed :class:`ColumnarEvents`."""
        return ColumnarEvents(
            event_ids=np.array(self._event_ids, dtype=np.int64),
            timestamps=np.array(self._timestamps, dtype=np.int64),
            sources=np.array(self._sources, dtype=np.int64),
            sensors=np.array(self._sensors, dtype=np.int64),
            source_codes=np.array(self._source_codes, dtype=np.int64),
            sensor_codes=np.array(self._sensor_codes, dtype=np.int64),
            source_vocab=self._source_vocab,
            sensor_vocab=self._sensor_vocab,
            dimensions={
                dimension: accumulator.build()
                for dimension, accumulator in self._dimensions.items()
            },
        )


def events_to_columnar(
    events: Sequence[AttackEvent],
    feature_sets: dict[Dimension, FeatureSet] | None = None,
) -> ColumnarEvents:
    """One-shot columnar conversion of an ordered event sequence."""
    builder = ColumnarBuilder(feature_sets)
    builder.add_events(events)
    return builder.build()
