"""The epsilon-gamma-pi-mu (EGPM) attack model and the SGNET dataset.

SGNET structures every observed code-injection attack into four phases
(Crandall et al.'s model, extended in the SGNET papers):

* **epsilon** — the exploit: network interaction driving the vulnerable
  service to its failure point (observed as an FSM path + destination
  port),
* **gamma** — bogus control data hijacking the control flow (not
  observable host-side in SGNET, hence excluded from clustering, and
  likewise not modelled here),
* **pi** — the payload/shellcode (observed through Nepenthes-style
  shellcode analysis: protocol, filename, port, interaction type),
* **mu** — the malware binary uploaded to the victim (observed as MD5,
  size, libmagic type and PE header features).

:class:`AttackEvent` is one observed code-injection attack;
:class:`SGNetDataset` is the enriched event store the whole analysis of
the paper runs against.
"""

from repro.egpm.events import (
    AttackEvent,
    ExploitObservable,
    GroundTruth,
    InteractionType,
    MalwareObservable,
    PayloadObservable,
    SampleRecord,
)
from repro.egpm.dataset import SGNetDataset

__all__ = [
    "AttackEvent",
    "ExploitObservable",
    "GroundTruth",
    "InteractionType",
    "MalwareObservable",
    "PayloadObservable",
    "SampleRecord",
    "SGNetDataset",
]
