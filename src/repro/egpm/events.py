"""Record types for observed code-injection attacks.

Observables carry only what the deployment could actually see; the
generator's ground-truth labels ride along in a separate
:class:`GroundTruth` record that the clustering code never reads — it
exists solely so tests and validation can score cluster quality.

All record types here are ``slots=True`` dataclasses: at paper scale
the dataset holds ~15k events (millions at the ROADMAP target), and
dropping the per-instance ``__dict__`` cuts their resident size by
roughly a third.  The analysis layer's ``Observation`` is already a
plain tuple (:data:`repro.egpm.columnar.Observation`), so it needs no
such treatment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.net.address import IPv4Address
from repro.peformat.structures import PEInfo
from repro.util.validation import require


class InteractionType(str, enum.Enum):
    """How the malware reached the victim (a pi-dimension feature).

    The paper distinguishes PUSH-based downloads (attacker connects to
    the victim and pushes the sample), PULL-based "phone home" downloads
    (victim connects back to the attacker), and downloads from a central
    repository (a third party distinct from the attacker).
    """

    PUSH = "push"
    PULL = "pull"
    CENTRAL = "central"


@dataclass(frozen=True, slots=True)
class ExploitObservable:
    """Epsilon-dimension observables of one attack.

    ``fsm_path_id`` is the identifier of the ScriptGen FSM path that
    handled the exploit conversation.  FSM paths conflate protocol
    structure with implementation specificities (usernames, NetBIOS
    connection identifiers), which is why distinct malware families using
    the same vulnerability can still land on distinct paths.
    """

    fsm_path_id: int
    dst_port: int

    def __post_init__(self) -> None:
        require(self.fsm_path_id >= 0, "fsm_path_id must be >= 0")
        require(0 < self.dst_port < 65536, f"bad destination port {self.dst_port}")


@dataclass(frozen=True, slots=True)
class PayloadObservable:
    """Pi-dimension observables extracted by shellcode analysis.

    ``filename`` is ``None`` when the protocol has no filename concept
    (e.g. a raw push over an ephemeral connection); ``port`` is ``None``
    when the shellcode lets the OS pick one.
    """

    protocol: str
    interaction: InteractionType
    filename: str | None = None
    port: int | None = None

    def __post_init__(self) -> None:
        require(bool(self.protocol), "protocol must be non-empty")
        if self.port is not None:
            require(0 < self.port < 65536, f"bad payload port {self.port}")


@dataclass(frozen=True, slots=True)
class MalwareObservable:
    """Mu-dimension observables of the downloaded binary.

    ``pe`` is ``None`` when the binary is not a parseable PE (truncated
    Nepenthes downloads yield ``corrupted=True`` with magic ``'data'``).
    """

    md5: str
    size: int
    magic: str
    pe: PEInfo | None
    corrupted: bool = False

    def __post_init__(self) -> None:
        require(len(self.md5) == 32, "md5 must be a 32-hex-digit string")
        require(self.size >= 0, "size must be >= 0")


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """Generator-side labels, for validation only.

    The clustering and analysis layers must never read this: it plays the
    role of the unknowable "true" family structure behind real samples.
    """

    family: str
    variant: str
    exploit_name: str
    payload_name: str


@dataclass(frozen=True, slots=True)
class AttackEvent:
    """One observed code-injection attack, fully enriched.

    ``payload`` and ``malware`` may be ``None`` for attacks whose
    shellcode emulation or download failed; such events still contribute
    to the epsilon dimension.
    """

    event_id: int
    timestamp: int
    source: IPv4Address
    sensor: IPv4Address
    exploit: ExploitObservable
    payload: PayloadObservable | None = None
    malware: MalwareObservable | None = None
    ground_truth: GroundTruth | None = None

    def __post_init__(self) -> None:
        require(self.event_id >= 0, "event_id must be >= 0")
        require(self.timestamp >= 0, "timestamp must be >= 0")

    @property
    def has_sample(self) -> bool:
        """Whether the attack yielded a downloadable binary at all."""
        return self.malware is not None

    @property
    def has_valid_sample(self) -> bool:
        """Whether the attack yielded an uncorrupted binary."""
        return self.malware is not None and not self.malware.corrupted


@dataclass(slots=True)
class SampleRecord:
    """Per-distinct-binary record (keyed by MD5) with enrichment results.

    ``behavior_handle`` is the stand-in for the binary's code: an opaque
    reference the sandbox interprets when the sample is executed, playing
    the role the raw bytes play for the real Anubis.  ``enrichment``
    accumulates analysis metadata (AV labels, behavioural profile ids).
    """

    md5: str
    observable: MalwareObservable
    first_seen: int
    last_seen: int
    n_events: int = 1
    behavior_handle: Any = None
    ground_truth: GroundTruth | None = None
    enrichment: dict[str, Any] = field(default_factory=dict)

    def record_event(self, timestamp: int) -> None:
        """Fold one more sighting of this binary into the record."""
        self.first_seen = min(self.first_seen, timestamp)
        self.last_seen = max(self.last_seen, timestamp)
        self.n_events += 1


def event_to_dict(event: AttackEvent) -> Mapping[str, Any]:
    """Serialize an event to JSON-compatible primitives (see dataset I/O)."""
    payload = None
    if event.payload is not None:
        payload = {
            "protocol": event.payload.protocol,
            "interaction": event.payload.interaction.value,
            "filename": event.payload.filename,
            "port": event.payload.port,
        }
    malware = None
    if event.malware is not None:
        pe = None
        if event.malware.pe is not None:
            info = event.malware.pe
            pe = {
                "machine_type": info.machine_type,
                "n_sections": info.n_sections,
                "os_version": info.os_version,
                "linker_version": info.linker_version,
                "subsystem": info.subsystem,
                "section_names": list(info.section_names),
                "imports": {dll: list(syms) for dll, syms in info.imports.items()},
                "file_size": info.file_size,
            }
        malware = {
            "md5": event.malware.md5,
            "size": event.malware.size,
            "magic": event.malware.magic,
            "corrupted": event.malware.corrupted,
            "pe": pe,
        }
    truth = None
    if event.ground_truth is not None:
        truth = {
            "family": event.ground_truth.family,
            "variant": event.ground_truth.variant,
            "exploit_name": event.ground_truth.exploit_name,
            "payload_name": event.ground_truth.payload_name,
        }
    return {
        "event_id": event.event_id,
        "timestamp": event.timestamp,
        "source": int(event.source),
        "sensor": int(event.sensor),
        "exploit": {
            "fsm_path_id": event.exploit.fsm_path_id,
            "dst_port": event.exploit.dst_port,
        },
        "payload": payload,
        "malware": malware,
        "ground_truth": truth,
    }


def event_from_dict(data: Mapping[str, Any]) -> AttackEvent:
    """Inverse of :func:`event_to_dict`."""
    payload = None
    if data.get("payload") is not None:
        p = data["payload"]
        payload = PayloadObservable(
            protocol=p["protocol"],
            interaction=InteractionType(p["interaction"]),
            filename=p.get("filename"),
            port=p.get("port"),
        )
    malware = None
    if data.get("malware") is not None:
        m = data["malware"]
        pe = None
        if m.get("pe") is not None:
            raw = m["pe"]
            imports = {dll: tuple(syms) for dll, syms in raw["imports"].items()}
            pe = PEInfo(
                machine_type=raw["machine_type"],
                n_sections=raw["n_sections"],
                os_version=raw["os_version"],
                linker_version=raw["linker_version"],
                subsystem=raw["subsystem"],
                section_names=tuple(raw["section_names"]),
                imported_dlls=tuple(imports.keys()),
                imports=imports,
                file_size=raw["file_size"],
            )
        malware = MalwareObservable(
            md5=m["md5"],
            size=m["size"],
            magic=m["magic"],
            pe=pe,
            corrupted=m.get("corrupted", False),
        )
    truth = None
    if data.get("ground_truth") is not None:
        t = data["ground_truth"]
        truth = GroundTruth(
            family=t["family"],
            variant=t["variant"],
            exploit_name=t["exploit_name"],
            payload_name=t["payload_name"],
        )
    return AttackEvent(
        event_id=data["event_id"],
        timestamp=data["timestamp"],
        source=IPv4Address(data["source"]),
        sensor=IPv4Address(data["sensor"]),
        exploit=ExploitObservable(
            fsm_path_id=data["exploit"]["fsm_path_id"],
            dst_port=data["exploit"]["dst_port"],
        ),
        payload=payload,
        malware=malware,
        ground_truth=truth,
    )
