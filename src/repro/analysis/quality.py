"""Clustering-quality metrics against a reference partition.

Bayer et al. (NDSS 2009) score behaviour clusterings with *precision*
(clusters don't mix reference classes) and *recall* (reference classes
aren't fragmented over clusters); the paper's discussion of AV labels
([3], [7]) hinges on the fact that an AV-derived reference is itself
noisy.  This module provides:

* :func:`precision_recall` — the NDSS'09 metrics for any
  ``item -> cluster`` assignment vs any ``item -> reference`` labelling;
* :func:`pairwise_f1` — the pair-counting alternative (Rand-style);
* :func:`av_reference_labels` — a reference partition built the way
  papers of the era did it: one vendor's family labels with
  generic/heuristic verdicts discarded — exactly the noisy baseline the
  paper warns about ([3], [7]);
* :func:`av_label_consistency` — how often the engines of the panel
  even agree with each other (they use different family names for the
  same code, so raw cross-engine agreement is poor);
* :func:`ground_truth_labels` — the simulator's true variant/family
  labels, available here because the landscape is synthetic.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.egpm.dataset import SGNetDataset
from repro.util.validation import require

_GENERIC_MARKERS = ("Generic", ".Gen", "Heuristic")


@dataclass(frozen=True)
class QualityScore:
    """Precision/recall of a clustering against a reference partition."""

    precision: float
    recall: float
    n_items: int
    n_clusters: int
    n_reference_classes: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def precision_recall(
    assignment: Mapping[str, Hashable],
    reference: Mapping[str, Hashable],
) -> QualityScore:
    """NDSS'09-style precision and recall.

    Precision: for each cluster, count its best-represented reference
    class; sum over clusters, divide by the number of items.  Recall:
    the same with the roles of clustering and reference swapped.  Items
    missing from either mapping are ignored (samples the reference
    cannot label).
    """
    keys = sorted(set(assignment) & set(reference))
    require(len(keys) > 0, "no items shared between assignment and reference")

    clusters: dict[Hashable, Counter] = defaultdict(Counter)
    classes: dict[Hashable, Counter] = defaultdict(Counter)
    for key in keys:
        clusters[assignment[key]][reference[key]] += 1
        classes[reference[key]][assignment[key]] += 1

    precision_hits = sum(counter.most_common(1)[0][1] for counter in clusters.values())
    recall_hits = sum(counter.most_common(1)[0][1] for counter in classes.values())
    n = len(keys)
    return QualityScore(
        precision=precision_hits / n,
        recall=recall_hits / n,
        n_items=n,
        n_clusters=len(clusters),
        n_reference_classes=len(classes),
    )


def pairwise_f1(
    assignment: Mapping[str, Hashable],
    reference: Mapping[str, Hashable],
) -> float:
    """Pair-counting F1: same-cluster pairs vs same-reference pairs.

    O(n) via class/cluster size counting rather than enumerating pairs.
    """
    keys = sorted(set(assignment) & set(reference))
    require(len(keys) > 0, "no items shared between assignment and reference")

    def pair_count(sizes: Counter) -> int:
        return sum(s * (s - 1) // 2 for s in sizes.values())

    cluster_sizes = Counter(assignment[k] for k in keys)
    class_sizes = Counter(reference[k] for k in keys)
    joint_sizes = Counter((assignment[k], reference[k]) for k in keys)

    same_cluster = pair_count(cluster_sizes)
    same_class = pair_count(class_sizes)
    same_both = pair_count(joint_sizes)
    if same_cluster == 0 or same_class == 0:
        return 1.0 if same_cluster == same_class else 0.0
    precision = same_both / same_cluster
    recall = same_both / same_class
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def ground_truth_labels(
    dataset: SGNetDataset, *, level: str = "variant"
) -> dict[str, str]:
    """MD5 -> true family or family/variant label (simulation ground truth).

    ``level`` is ``'family'`` or ``'variant'``.  Only samples with
    ground truth attached are returned.
    """
    require(level in ("family", "variant"), "level must be family or variant")
    labels: dict[str, str] = {}
    for md5, record in dataset.samples.items():
        if record.ground_truth is None:
            continue
        if level == "family":
            labels[md5] = record.ground_truth.family
        else:
            labels[md5] = f"{record.ground_truth.family}/{record.ground_truth.variant}"
    return labels


def _label_stem(label: str) -> str:
    stem, _, _suffix = label.rpartition(".")
    return stem or label


def av_reference_labels(
    dataset: SGNetDataset, *, engine: str = "PopularAV"
) -> dict[str, str]:
    """MD5 -> one vendor's family label (the noisy era-typical reference).

    The label is the family stem (the text before the variant suffix);
    misses and generic/heuristic verdicts are dropped, so the reference
    covers only part of the collection — which is itself part of the
    paper's point about AV-derived ground truth.
    """
    labels: dict[str, str] = {}
    for md5, record in dataset.samples.items():
        verdicts = record.enrichment.get("av_labels")
        if not verdicts or engine not in verdicts:
            continue
        label = verdicts[engine]
        if label is None or any(marker in label for marker in _GENERIC_MARKERS):
            continue
        labels[md5] = _label_stem(label)
    return labels


def av_label_consistency(dataset: SGNetDataset) -> float:
    """Share of scanned samples where >= 2 engines agree on a family stem.

    Engines name the same code differently (Rahack vs Allaple vs
    Worm/Allaple), so raw cross-engine agreement is low — the
    quantitative face of the paper's warning against AV labels as
    classification ground truth.
    """
    scanned = 0
    agreeing = 0
    for record in dataset.samples.values():
        verdicts = record.enrichment.get("av_labels")
        if not verdicts:
            continue
        scanned += 1
        stems = Counter(
            _label_stem(label)
            for label in verdicts.values()
            if label is not None
            and not any(marker in label for marker in _GENERIC_MARKERS)
        )
        if stems and stems.most_common(1)[0][1] >= 2:
            agreeing += 1
    return agreeing / scanned if scanned else 0.0


def coverage(reference: Mapping[str, Hashable], dataset: SGNetDataset) -> float:
    """Share of collected samples the reference manages to label."""
    if dataset.n_samples == 0:
        return 0.0
    return len(reference) / dataset.n_samples
