"""The full intelligence report: every perspective, one document.

:func:`full_report` stitches together what a SGNET analyst would read
after a collection period: headline counts, clustering structure,
anomaly triage, propagation-context classification, C&C infrastructure,
patching/code-sharing intelligence, and pattern drift.  Used by the
``python -m repro report`` command.
"""

from __future__ import annotations

from repro.analysis.codeshare import CodeSharingAnalysis
from repro.analysis.context import PropagationContext
from repro.analysis.crossview import CrossView
from repro.analysis.evolution import EvolutionAnalysis
from repro.analysis.irc import CnCCorrelation
from repro.analysis.quality import av_label_consistency
from repro.analysis.relations import RelationGraph
from repro.analysis.stability import drift_analysis, render_drift
from repro.sandbox.reporting import render_timeline
from repro.util.tables import TextTable


def full_report(run, *, min_graph_events: int = 30) -> str:
    """Render the combined intelligence report for one scenario run."""
    sections: list[str] = []

    def add(title: str, body: str) -> None:
        sections.append(f"\n{'=' * 68}\n{title}\n{'=' * 68}\n{body}")

    # -- collection summary --------------------------------------------
    headline = run.headline()
    table = TextTable(["quantity", "value"], title=None)
    for key, value in headline.items():
        table.add_row([key, value])
    add("Collection summary", table.render())

    # -- cluster structure ----------------------------------------------
    graph = RelationGraph(
        run.dataset, run.epm, run.bclusters, min_events=min_graph_events
    )
    add("Cluster relations (E/P/M/B)", graph.render_text())

    # -- anomaly triage ---------------------------------------------------
    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    summary = crossview.summary()
    triage = TextTable(["signal", "count"])
    for key in (
        "singleton_b_clusters",
        "singleton_anomalies",
        "rare_singletons",
        "environment_splits",
    ):
        triage.add_row([key, summary[key]])
    triage.add_row(
        ["cross-engine AV name agreement", f"{av_label_consistency(run.dataset):.0%}"]
    )
    add("Anomaly triage (static vs behavioural)", triage.render())

    # -- context classification ------------------------------------------
    context = PropagationContext(run.dataset, run.grid)
    signatures = TextTable(["M-cluster", "events", "signature", "timeline"])
    shown = 0
    for cid, info in run.epm.mu.clusters.items():
        if info.size < 40 or shown >= 10:
            continue
        ctx = context.summarize_m_cluster(run.epm, cid)
        signatures.add_row(
            [
                f"M{cid}",
                ctx.n_events,
                ctx.signature(),
                render_timeline(ctx.timeline, n_weeks=run.grid.n_weeks, width=40),
            ]
        )
        shown += 1
    add("Propagation-context classification", signatures.render())

    # -- C&C infrastructure -----------------------------------------------
    correlation = CnCCorrelation(run.dataset, run.epm, run.anubis)
    infra = correlation.infrastructure_summary()
    infra_table = TextTable(["indicator", "value"])
    for key, value in infra.items():
        infra_table.add_row([key, value])
    add("C&C infrastructure", infra_table.render())

    # -- patching / sharing -------------------------------------------------
    sharing = CodeSharingAnalysis(run.dataset, run.epm, crossview, run.grid)
    lineages = sharing.patch_lineages()
    body = (
        sharing.render_lineage(lineages[0], max_steps=6)
        if lineages
        else "(no multi-version lineages)"
    )
    add("Patching practices (top lineage)", body)

    # -- evolution ------------------------------------------------------------
    evolution = EvolutionAnalysis(run.dataset, run.epm, run.grid)
    weekly = evolution.weekly_activity()
    events = {w.week: w.n_events for w in weekly}
    births = {w.week: w.new_m_clusters for w in weekly}
    body = (
        "events/week:        "
        + render_timeline(events, n_weeks=run.grid.n_weeks)
        + "\nnew M-clusters/week: "
        + render_timeline(births, n_weeks=run.grid.n_weeks)
    )
    add("Landscape evolution", body)

    # -- drift ------------------------------------------------------------------
    if run.grid.n_weeks >= 8:
        add("Pattern drift", render_drift(drift_analysis(run.dataset, run.grid)))

    # -- operations ---------------------------------------------------------------
    from repro.honeypot.stats import collect_stats, render_stats

    add("Deployment operations", render_stats(collect_stats(run.deployment)))

    return "\n".join(sections)
