"""The four-layer E/P/M/B relationship graph — Figure 3.

Nodes are clusters (one layer per perspective), edges connect clusters
that co-occur in attack events: an E-cluster links to the P-clusters its
events carried, a P-cluster to the M-clusters it delivered, and an
M-cluster to the B-clusters its samples landed in.  Edge weights count
shared events (E-P, P-M) or shared samples (M-B).  Like the paper's
figure, the view can be restricted to clusters grouping at least
``min_events`` attack events.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx

from repro.core.epm import EPMResult
from repro.egpm.dataset import SGNetDataset
from repro.sandbox.clustering import BehaviorClustering
from repro.util.validation import require


@dataclass(frozen=True)
class LayerStats:
    """Node/edge counts of the rendered graph."""

    e_nodes: int
    p_nodes: int
    m_nodes: int
    b_nodes: int
    ep_edges: int
    pm_edges: int
    mb_edges: int


class RelationGraph:
    """Builds and summarises the Figure 3 graph."""

    def __init__(
        self,
        dataset: SGNetDataset,
        epm: EPMResult,
        bclusters: BehaviorClustering,
        *,
        min_events: int = 30,
    ) -> None:
        require(min_events >= 1, "min_events must be >= 1")
        self.dataset = dataset
        self.epm = epm
        self.bclusters = bclusters
        self.min_events = min_events
        self.graph = self._build()

    def _event_counts(self) -> tuple[Counter, Counter, Counter, Counter]:
        e_counts: Counter = Counter()
        p_counts: Counter = Counter()
        m_counts: Counter = Counter()
        b_counts: Counter = Counter()
        b_of_sample = self.bclusters.assignment
        for event in self.dataset.events:
            e = self.epm.epsilon.cluster_of(event.event_id)
            p = self.epm.pi.cluster_of(event.event_id)
            m = self.epm.mu.cluster_of(event.event_id)
            if e is not None:
                e_counts[e] += 1
            if p is not None:
                p_counts[p] += 1
            if m is not None:
                m_counts[m] += 1
            if event.malware is not None:
                b = b_of_sample.get(event.malware.md5)
                if b is not None:
                    b_counts[b] += 1
        return e_counts, p_counts, m_counts, b_counts

    def _build(self) -> nx.DiGraph:
        e_counts, p_counts, m_counts, b_counts = self._event_counts()
        keep_e = {c for c, n in e_counts.items() if n >= self.min_events}
        keep_p = {c for c, n in p_counts.items() if n >= self.min_events}
        keep_m = {c for c, n in m_counts.items() if n >= self.min_events}
        keep_b = {c for c, n in b_counts.items() if n >= self.min_events}

        graph = nx.DiGraph()
        for layer, keep, counts in (
            ("E", keep_e, e_counts),
            ("P", keep_p, p_counts),
            ("M", keep_m, m_counts),
            ("B", keep_b, b_counts),
        ):
            for cluster in keep:
                graph.add_node((layer, cluster), layer=layer, events=counts[cluster])

        b_of_sample = self.bclusters.assignment
        ep: Counter = Counter()
        pm: Counter = Counter()
        mb: Counter = Counter()
        seen_mb_samples: set[tuple[str, int, int]] = set()
        for event in self.dataset.events:
            e = self.epm.epsilon.cluster_of(event.event_id)
            p = self.epm.pi.cluster_of(event.event_id)
            m = self.epm.mu.cluster_of(event.event_id)
            if e in keep_e and p in keep_p:
                ep[(e, p)] += 1
            if p in keep_p and m in keep_m:
                pm[(p, m)] += 1
            if m in keep_m and event.malware is not None:
                md5 = event.malware.md5
                b = b_of_sample.get(md5)
                if b in keep_b and (md5, m, b) not in seen_mb_samples:
                    seen_mb_samples.add((md5, m, b))
                    mb[(m, b)] += 1
        for (e, p), weight in ep.items():
            graph.add_edge(("E", e), ("P", p), weight=weight)
        for (p, m), weight in pm.items():
            graph.add_edge(("P", p), ("M", m), weight=weight)
        for (m, b), weight in mb.items():
            graph.add_edge(("M", m), ("B", b), weight=weight)
        return graph

    def layer_nodes(self, layer: str) -> list[tuple[str, int]]:
        """Nodes of one layer, by decreasing event count."""
        nodes = [n for n, data in self.graph.nodes(data=True) if data["layer"] == layer]
        return sorted(nodes, key=lambda n: -self.graph.nodes[n]["events"])

    def stats(self) -> LayerStats:
        """Node and edge counts per layer pair."""
        def edges_between(a: str, b: str) -> int:
            return sum(
                1 for u, v in self.graph.edges if u[0] == a and v[0] == b
            )

        return LayerStats(
            e_nodes=len(self.layer_nodes("E")),
            p_nodes=len(self.layer_nodes("P")),
            m_nodes=len(self.layer_nodes("M")),
            b_nodes=len(self.layer_nodes("B")),
            ep_edges=edges_between("E", "P"),
            pm_edges=edges_between("P", "M"),
            mb_edges=edges_between("M", "B"),
        )

    def shared_payloads(self) -> list[tuple[int, list[int]]]:
        """P-clusters reachable from more than one E-cluster.

        The paper highlights that the same payload can be associated with
        multiple exploits — evidence of code sharing on the propagation
        side.
        """
        shared: list[tuple[int, list[int]]] = []
        for node in self.layer_nodes("P"):
            exploits = sorted(
                u[1] for u, _v in self.graph.in_edges(node) if u[0] == "E"
            )
            if len(exploits) > 1:
                shared.append((node[1], exploits))
        return shared

    def b_cluster_splits(self) -> list[tuple[int, list[int]]]:
        """B-clusters fed by multiple M-clusters (codebase lineages)."""
        splits: list[tuple[int, list[int]]] = []
        for node in self.layer_nodes("B"):
            ms = sorted(u[1] for u, _v in self.graph.in_edges(node) if u[0] == "M")
            if len(ms) > 1:
                splits.append((node[1], ms))
        return splits

    def render_text(self, *, max_edges: int = 12) -> str:
        """Compact text rendering of the layered graph."""
        stats = self.stats()
        lines = [
            f"E-layer: {stats.e_nodes} clusters | P-layer: {stats.p_nodes} | "
            f"M-layer: {stats.m_nodes} | B-layer: {stats.b_nodes}",
            f"edges: E-P {stats.ep_edges}, P-M {stats.pm_edges}, M-B {stats.mb_edges}",
        ]
        for title, a, b in (("E->P", "E", "P"), ("P->M", "P", "M"), ("M->B", "M", "B")):
            edges = [
                (u, v, d["weight"])
                for u, v, d in self.graph.edges(data=True)
                if u[0] == a and v[0] == b
            ]
            edges.sort(key=lambda x: -x[2])
            rendered = ", ".join(
                f"{u[0]}{u[1]}->{v[0]}{v[1]}({w})" for u, v, w in edges[:max_edges]
            )
            suffix = " ..." if len(edges) > max_edges else ""
            lines.append(f"{title}: {rendered}{suffix}")
        return "\n".join(lines)
