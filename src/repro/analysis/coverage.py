"""Observation diversity: what each network location contributes.

The title's "diverse observation perspectives" is not only about
feature types — SGNET's defining property is its *spatial* diversity
(150 addresses in 30 networks).  This module quantifies why that
matters:

* :class:`SensorCoverage` — per-network event/source/cluster coverage
  and the species-accumulation curve of M-clusters as locations are
  added;
* :func:`restrict_to_networks` — the dataset a smaller deployment would
  have collected;
* :func:`deployment_size_ablation` — EPM re-fit on k-location
  sub-deployments: with few sensors the "witnessed on >= 3 honeypot
  IPs" constraint starves invariant discovery and location-targeted
  activity (bots) disappears from view entirely.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.epm import EPMClustering, EPMResult
from repro.core.invariants import InvariantPolicy
from repro.egpm.dataset import SGNetDataset
from repro.net.address import ip_to_string
from repro.util.validation import require


@dataclass(frozen=True)
class NetworkView:
    """What one monitored network location observed."""

    network: int
    n_events: int
    n_sources: int
    n_samples: int
    m_clusters: frozenset[int]
    families: frozenset[str]

    @property
    def network_cidr(self) -> str:
        """Dotted /24 rendering."""
        return f"{ip_to_string(self.network << 8)}/24"


class SensorCoverage:
    """Per-location observation statistics over one dataset."""

    def __init__(self, dataset: SGNetDataset, epm: EPMResult) -> None:
        self.dataset = dataset
        self.epm = epm
        per_network_events: dict[int, list] = defaultdict(list)
        for event in dataset.events:
            per_network_events[event.sensor.slash24].append(event)
        self._views: dict[int, NetworkView] = {}
        for network, events in per_network_events.items():
            m_clusters = {
                epm.mu.cluster_of(e.event_id)
                for e in events
                if epm.mu.cluster_of(e.event_id) is not None
            }
            families = {
                e.ground_truth.family for e in events if e.ground_truth is not None
            }
            self._views[network] = NetworkView(
                network=network,
                n_events=len(events),
                n_sources=len({int(e.source) for e in events}),
                n_samples=len(
                    {e.malware.md5 for e in events if e.malware is not None}
                ),
                m_clusters=frozenset(m_clusters),
                families=frozenset(families),
            )

    @property
    def networks(self) -> list[int]:
        """Monitored /24s, by decreasing event count."""
        return sorted(self._views, key=lambda n: -self._views[n].n_events)

    def view(self, network: int) -> NetworkView:
        """One location's view."""
        return self._views[network]

    def views(self) -> list[NetworkView]:
        """All views, by decreasing event count."""
        return [self._views[n] for n in self.networks]

    def accumulation_curve(self, order: Sequence[int] | None = None) -> list[int]:
        """Cumulative distinct M-clusters as locations are added.

        The species-accumulation curve: its failure to flatten early is
        the quantitative argument for a *distributed* deployment.
        """
        networks = list(order) if order is not None else self.networks
        seen: set[int] = set()
        curve: list[int] = []
        for network in networks:
            seen |= self._views[network].m_clusters
            curve.append(len(seen))
        return curve

    def exclusive_clusters(self) -> dict[int, set[int]]:
        """M-clusters visible from exactly one location."""
        witness: Counter = Counter()
        for view in self._views.values():
            for cluster in view.m_clusters:
                witness[cluster] += 1
        exclusive: dict[int, set[int]] = defaultdict(set)
        for network, view in self._views.items():
            for cluster in view.m_clusters:
                if witness[cluster] == 1:
                    exclusive[network].add(cluster)
        return dict(exclusive)

    def median_single_location_coverage(self) -> float:
        """Median share of all M-clusters a single location sees."""
        total = self.epm.mu.n_clusters
        require(total > 0, "no M-clusters to cover")
        shares = sorted(len(v.m_clusters) / total for v in self._views.values())
        mid = len(shares) // 2
        if len(shares) % 2:
            return shares[mid]
        return (shares[mid - 1] + shares[mid]) / 2


def restrict_to_networks(
    dataset: SGNetDataset, networks: Sequence[int]
) -> SGNetDataset:
    """The dataset a deployment covering only ``networks`` would hold."""
    wanted = set(networks)
    subset = SGNetDataset()
    for event in dataset.events:
        if event.sensor.slash24 not in wanted:
            continue
        handle = None
        if event.malware is not None:
            record = dataset.samples.get(event.malware.md5)
            if record is not None:
                handle = record.behavior_handle
        subset.add_event(
            replace(event, event_id=subset.next_event_id()),
            behavior_handle=handle,
        )
    return subset


@dataclass(frozen=True)
class DeploymentPoint:
    """EPM outcome for one sub-deployment size."""

    n_networks: int
    n_events: int
    n_samples: int
    e_clusters: int
    p_clusters: int
    m_clusters: int
    total_invariants: int


def deployment_size_ablation(
    dataset: SGNetDataset,
    sizes: Sequence[int],
    *,
    policy: InvariantPolicy | None = None,
) -> list[DeploymentPoint]:
    """Re-fit EPM on the k busiest network locations, for each k.

    Uses the same invariant policy throughout — shrinking the deployment
    under a fixed "seen by >= 3 honeypot IPs" rule is exactly the
    experiment that shows why the constraint needs spatial diversity to
    be meaningful.
    """
    require(len(sizes) > 0, "need at least one deployment size")
    by_events = Counter(e.sensor.slash24 for e in dataset.events)
    ranked = [network for network, _n in by_events.most_common()]
    clustering = EPMClustering(policy=policy)
    points: list[DeploymentPoint] = []
    for size in sizes:
        require(size >= 1, "deployment size must be >= 1")
        subset = restrict_to_networks(dataset, ranked[:size])
        if len(subset) == 0:
            points.append(
                DeploymentPoint(size, 0, 0, 0, 0, 0, 0)
            )
            continue
        epm = clustering.fit(subset)
        counts = epm.counts()
        total_invariants = sum(
            dim.invariants.total_invariants for dim in epm.dimensions.values()
        )
        points.append(
            DeploymentPoint(
                n_networks=min(size, len(ranked)),
                n_events=len(subset),
                n_samples=subset.n_samples,
                e_clusters=counts["e_clusters"],
                p_clusters=counts["p_clusters"],
                m_clusters=counts["m_clusters"],
                total_invariants=total_invariants,
            )
        )
    return points
