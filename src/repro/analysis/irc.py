"""C&C rendezvous correlation — Table 2 and the infrastructure analysis.

The paper associates M-clusters with the IRC servers their samples
connect to during dynamic analysis, then observes the *infrastructure
reuse* betraying a single operator: many servers in one /24, recurring
room names across servers, and occasionally two M-clusters (code
patches) commanded from the same room.

:class:`CnCCorrelation` extracts ``irc ... join`` features from the
behavioural profiles of each M-cluster's samples and rebuilds the
table and the reuse indicators.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.epm import EPMResult
from repro.egpm.dataset import SGNetDataset
from repro.net.address import ip_from_string
from repro.sandbox.anubis import AnubisService
from repro.util.tables import TextTable


@dataclass(frozen=True, order=True)
class IRCRendezvous:
    """One (server address, room) rendezvous point."""

    server: str
    room: str

    @property
    def slash24(self) -> int:
        """The /24 prefix hosting the server."""
        return ip_from_string(self.server).slash24


def _parse_rendezvous(feature_name: str) -> IRCRendezvous | None:
    # Profile features look like ('irc', 'irc://67.43.232.36:6667/#kok6', 'join').
    if not feature_name.startswith("irc://"):
        return None
    rest = feature_name[len("irc://") :]
    hostport, _, room = rest.partition("/")
    host, _, _port = hostport.partition(":")
    if not host or not room:
        return None
    return IRCRendezvous(server=host, room=room)


class CnCCorrelation:
    """M-cluster <-> IRC rendezvous correlation."""

    def __init__(
        self,
        dataset: SGNetDataset,
        epm: EPMResult,
        anubis: AnubisService,
    ) -> None:
        self.rendezvous_of_m: dict[int, set[IRCRendezvous]] = defaultdict(set)
        self.m_of_rendezvous: dict[IRCRendezvous, set[int]] = defaultdict(set)
        m_of_sample = epm.m_cluster_of_samples(dataset)
        for md5, m_cluster in m_of_sample.items():
            report = anubis.report_for(md5)
            if report is None:
                continue
            for category, name, operation in report.profile:
                if category != "irc" or operation != "join":
                    continue
                rendezvous = _parse_rendezvous(name)
                if rendezvous is not None:
                    self.rendezvous_of_m[m_cluster].add(rendezvous)
                    self.m_of_rendezvous[rendezvous].add(m_cluster)

    @property
    def n_irc_m_clusters(self) -> int:
        """M-clusters with at least one observed rendezvous."""
        return len(self.rendezvous_of_m)

    def table2(self) -> list[tuple[str, str, list[int]]]:
        """(server, room, M-clusters) rows, sorted like the paper's table."""
        rows = [
            (rv.server, rv.room, sorted(ms))
            for rv, ms in self.m_of_rendezvous.items()
        ]
        rows.sort(key=lambda row: (row[0], row[1]))
        return rows

    def render_table2(self) -> str:
        """Text rendering of Table 2."""
        table = TextTable(
            ["Server address", "Room name", "M-clusters"],
            title="Table 2: IRC servers associated to M-clusters",
        )
        for server, room, ms in self.table2():
            table.add_row([server, room, ", ".join(str(m) for m in ms)])
        return table.render()

    def shared_rooms(self) -> list[tuple[IRCRendezvous, list[int]]]:
        """Rendezvous commanding more than one M-cluster (patched botnets)."""
        return sorted(
            (
                (rv, sorted(ms))
                for rv, ms in self.m_of_rendezvous.items()
                if len(ms) > 1
            ),
            key=lambda item: item[0],
        )

    def servers_by_subnet(self) -> dict[int, list[str]]:
        """/24 prefix -> distinct server addresses inside it."""
        by_subnet: dict[int, set[str]] = defaultdict(set)
        for rendezvous in self.m_of_rendezvous:
            by_subnet[rendezvous.slash24].add(rendezvous.server)
        return {net: sorted(addrs) for net, addrs in sorted(by_subnet.items())}

    def recurring_rooms(self) -> dict[str, list[str]]:
        """Room name -> distinct servers it appears on (name reuse)."""
        rooms: dict[str, set[str]] = defaultdict(set)
        for rendezvous in self.m_of_rendezvous:
            rooms[rendezvous.room].add(rendezvous.server)
        return {
            room: sorted(servers)
            for room, servers in sorted(rooms.items())
            if len(servers) > 1
        }

    def infrastructure_summary(self) -> dict[str, int]:
        """Reuse indicators: how concentrated the C&C infrastructure is."""
        servers = {rv.server for rv in self.m_of_rendezvous}
        subnets = self.servers_by_subnet()
        shared_subnets = {net: s for net, s in subnets.items() if len(s) > 1}
        return {
            "servers": len(servers),
            "rendezvous": len(self.m_of_rendezvous),
            "m_clusters": self.n_irc_m_clusters,
            "subnets": len(subnets),
            "subnets_with_multiple_servers": len(shared_subnets),
            "rooms_recurring_across_servers": len(self.recurring_rooms()),
            "rooms_commanding_multiple_m_clusters": len(self.shared_rooms()),
        }
