"""Cross-referencing static (M) and behavioural (B) clusterings — §4.2.

The detector logic follows the paper's reasoning closely:

* a **rare singleton** is a size-1 B-cluster whose sample also sits in a
  size-1 M-cluster: plausibly a genuinely infrequent malware seen once;
* a **singleton anomaly** is a size-1 B-cluster whose sample belongs to
  a *larger* M-cluster that is dominated by some other, larger B-cluster
  — statically the sample is a known quantity, so its lone behavioural
  cluster is almost certainly an analysis artifact;
* an **environment split** is one M-cluster spread over several
  substantial B-clusters: one codebase whose observable behaviour
  depends on external conditions (dead DNS, C&C availability).

:func:`heal_singletons` implements the paper's remedy: re-execute just
the anomalous samples and re-cluster.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.epm import EPMResult
from repro.egpm.dataset import SGNetDataset
from repro.sandbox.anubis import AnubisService
from repro.sandbox.clustering import BehaviorClustering, ClusteringConfig, cluster_lsh
from repro.util.validation import require


@dataclass(frozen=True)
class SingletonAnomaly:
    """A size-1 B-cluster contradicted by the static view."""

    md5: str
    b_cluster: int
    m_cluster: int
    m_cluster_size: int
    dominant_b_cluster: int
    dominant_b_size: int


@dataclass(frozen=True)
class EnvironmentSplit:
    """One M-cluster fragmented across several substantial B-clusters."""

    m_cluster: int
    b_clusters: tuple[int, ...]
    samples_per_b: tuple[int, ...]


class CrossView:
    """Joint view over EPM M-clusters and behavioural B-clusters."""

    def __init__(
        self,
        dataset: SGNetDataset,
        epm: EPMResult,
        bclusters: BehaviorClustering,
    ) -> None:
        self.dataset = dataset
        self.epm = epm
        self.bclusters = bclusters
        self.m_of_sample = epm.m_cluster_of_samples(dataset)
        self.b_of_sample = dict(bclusters.assignment)
        #: samples present in both views (executed + statically classified)
        self.joint_samples = sorted(
            set(self.m_of_sample) & set(self.b_of_sample)
        )
        self._m_sample_counts: Counter = Counter(
            self.m_of_sample[md5] for md5 in self.joint_samples
        )
        self._b_to_m: dict[int, Counter] = defaultdict(Counter)
        self._m_to_b: dict[int, Counter] = defaultdict(Counter)
        for md5 in self.joint_samples:
            m, b = self.m_of_sample[md5], self.b_of_sample[md5]
            self._b_to_m[b][m] += 1
            self._m_to_b[m][b] += 1

    def contingency(self) -> dict[tuple[int, int], int]:
        """(M-cluster, B-cluster) -> number of shared samples."""
        table: dict[tuple[int, int], int] = {}
        for m, bs in self._m_to_b.items():
            for b, count in bs.items():
                table[(m, b)] = count
        return table

    def m_clusters_of_b(self, b_cluster: int) -> Counter:
        """Sample counts per M-cluster inside one B-cluster."""
        return Counter(self._b_to_m.get(b_cluster, Counter()))

    def b_clusters_of_m(self, m_cluster: int) -> Counter:
        """Sample counts per B-cluster inside one M-cluster."""
        return Counter(self._m_to_b.get(m_cluster, Counter()))

    def singleton_b_clusters(self) -> list[int]:
        """All size-1 B-clusters (restricted to jointly-classified samples)."""
        return [
            b
            for b in self.bclusters.singletons()
            if self.bclusters.clusters[b][0] in self.m_of_sample
        ]

    def rare_singletons(self) -> list[str]:
        """Samples alone in *both* views: plausibly genuine rarities."""
        rare: list[str] = []
        for b in self.singleton_b_clusters():
            md5 = self.bclusters.clusters[b][0]
            m = self.m_of_sample[md5]
            if self._m_sample_counts[m] == 1:
                rare.append(md5)
        return rare

    def singleton_anomalies(self, *, min_m_size: int = 2) -> list[SingletonAnomaly]:
        """Size-1 B-clusters contradicted by a larger static cluster."""
        require(min_m_size >= 2, "min_m_size must be >= 2")
        anomalies: list[SingletonAnomaly] = []
        for b in self.singleton_b_clusters():
            md5 = self.bclusters.clusters[b][0]
            m = self.m_of_sample[md5]
            m_size = self._m_sample_counts[m]
            if m_size < min_m_size:
                continue
            peers = self._m_to_b[m]
            dominant_b, dominant_count = b, 0
            for peer_b, count in peers.items():
                if peer_b != b and count > dominant_count:
                    dominant_b, dominant_count = peer_b, count
            if dominant_count == 0:
                continue  # the M-cluster holds only singletons; ambiguous
            anomalies.append(
                SingletonAnomaly(
                    md5=md5,
                    b_cluster=b,
                    m_cluster=m,
                    m_cluster_size=m_size,
                    dominant_b_cluster=dominant_b,
                    dominant_b_size=dominant_count,
                )
            )
        return anomalies

    def environment_splits(
        self, *, min_b_clusters: int = 2, min_samples_per_b: int = 3
    ) -> list[EnvironmentSplit]:
        """M-clusters fragmented over several substantial B-clusters."""
        splits: list[EnvironmentSplit] = []
        for m, bs in sorted(self._m_to_b.items()):
            substantial = [
                (b, count) for b, count in bs.items() if count >= min_samples_per_b
            ]
            if len(substantial) >= min_b_clusters:
                substantial.sort(key=lambda bc: (-bc[1], bc[0]))
                splits.append(
                    EnvironmentSplit(
                        m_cluster=m,
                        b_clusters=tuple(b for b, _ in substantial),
                        samples_per_b=tuple(c for _, c in substantial),
                    )
                )
        return splits

    def summary(self) -> dict[str, int]:
        """Headline counters of the joint view."""
        singles = self.singleton_b_clusters()
        return {
            "joint_samples": len(self.joint_samples),
            "m_clusters": len(self._m_to_b),
            "b_clusters": len(self._b_to_m),
            "singleton_b_clusters": len(singles),
            "rare_singletons": len(self.rare_singletons()),
            "singleton_anomalies": len(self.singleton_anomalies()),
            "environment_splits": len(self.environment_splits()),
        }


def heal_singletons(
    crossview: CrossView,
    anubis: AnubisService,
    dataset: SGNetDataset,
    *,
    config: ClusteringConfig | None = None,
) -> tuple[BehaviorClustering, int]:
    """Re-execute anomalous samples and re-cluster (§4.2's remedy).

    Only samples flagged by :meth:`CrossView.singleton_anomalies` are
    re-run — the paper notes that re-running *everything* would be too
    expensive, and that the static comparison is precisely what lets the
    analyst target the few samples worth repeating.

    The healing is evaluated non-destructively: the re-executed profiles
    feed the returned clustering but the service's stored reports are
    left untouched (use :meth:`AnubisService.rerun` directly to persist
    a re-analysis).  Returns the new clustering and the number of
    samples re-executed.
    """
    anomalies = crossview.singleton_anomalies()
    profiles = anubis.profiles()
    for anomaly in anomalies:
        record = dataset.samples[anomaly.md5]
        require(
            record.behavior_handle is not None,
            f"sample {anomaly.md5} has no behaviour to re-run",
        )
        report = anubis.report_for(anomaly.md5)
        profiles[anomaly.md5] = anubis.sandbox.execute(
            record.behavior_handle,
            time=report.submitted_at,
            run_seed=0,
            allow_derail=False,
        )
    return cluster_lsh(profiles, config), len(anomalies)
