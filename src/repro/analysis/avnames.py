"""AV-name and propagation-coordinate distributions — Figure 4.

Figure 4 characterises the misclassified size-1 B-cluster samples two
ways: the names a popular AV vendor assigns them (top — overwhelmingly
Rahack/Allaple variants) and the (E-cluster, P-cluster) propagation
coordinates of the attacks that delivered them (bottom — almost all on
one specific P-pattern, the TCP/9988 PUSH download).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.epm import EPMResult
from repro.egpm.dataset import SGNetDataset


def av_name_distribution(
    dataset: SGNetDataset,
    md5s: Iterable[str],
    *,
    engine: str = "PopularAV",
) -> Counter:
    """Label -> sample count for one engine over the given samples.

    Samples the engine missed count under ``'<not detected>'``; samples
    never scanned count under ``'<not scanned>'``.
    """
    counts: Counter = Counter()
    for md5 in md5s:
        record = dataset.samples.get(md5)
        if record is None:
            continue
        labels = record.enrichment.get("av_labels")
        if labels is None or engine not in labels:
            counts["<not scanned>"] += 1
            continue
        label = labels[engine]
        counts[label if label is not None else "<not detected>"] += 1
    return counts


def ep_coordinate_distribution(
    dataset: SGNetDataset,
    epm: EPMResult,
    md5s: Iterable[str],
) -> Counter:
    """(E-cluster, P-cluster) -> event count for the given samples.

    This is Figure 4's bottom panel: the propagation strategies, in EP
    coordinates, through which the samples arrived.
    """
    counts: Counter = Counter()
    for md5 in md5s:
        for event in dataset.events_for_sample(md5):
            e = epm.epsilon.cluster_of(event.event_id)
            p = epm.pi.cluster_of(event.event_id)
            counts[(e, p)] += 1
    return counts


def dominant_p_cluster(
    dataset: SGNetDataset,
    epm: EPMResult,
    md5s: Iterable[str],
) -> tuple[int | None, float]:
    """The most common P-cluster among the samples' events and its share."""
    counts: Counter = Counter()
    for md5 in md5s:
        for event in dataset.events_for_sample(md5):
            p = epm.pi.cluster_of(event.event_id)
            if p is not None:
                counts[p] += 1
    if not counts:
        return None, 0.0
    p_cluster, top = counts.most_common(1)[0]
    return p_cluster, top / sum(counts.values())
