"""Pattern stability over time: does today's model explain tomorrow?

The paper motivates "continuously carrying on the collection of data on
the threat landscape and on the study of its future evolution" — i.e.
a model mined at time T degrades on traffic from T+1.  This module
quantifies that: EPM invariants and patterns are mined on a *training*
sub-window and then classify a disjoint *evaluation* sub-window;
instances that no specific pattern explains (they fall to the
all-wildcard root) are *novel* activity the old model has never seen.

:func:`drift_analysis` runs the train/evaluate split for every
dimension and reports explained/novel rates plus the share of
evaluation-window clusters that did not exist in training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.evolution import dataset_between
from repro.core.epm import EPMClustering
from repro.core.features import Dimension, FeatureSet, default_feature_sets
from repro.core.patterns import WILDCARD
from repro.egpm.dataset import SGNetDataset
from repro.util.timegrid import TimeGrid
from repro.util.validation import require


@dataclass(frozen=True)
class DriftReport:
    """Train-on-past / evaluate-on-future outcome for one dimension."""

    dimension: Dimension
    n_train: int
    n_eval: int
    explained: int
    novel: int
    train_patterns: int
    eval_only_patterns: int

    @property
    def novelty_rate(self) -> float:
        """Share of future instances the past model cannot explain."""
        return self.novel / self.n_eval if self.n_eval else 0.0

    @property
    def explained_rate(self) -> float:
        """Share of future instances landing on a specific past pattern."""
        return self.explained / self.n_eval if self.n_eval else 0.0


def _fit_dimension(clustering: EPMClustering, dataset: SGNetDataset, feature_set: FeatureSet):
    return clustering.fit_dimension(dataset, feature_set)


def drift_analysis(
    dataset: SGNetDataset,
    grid: TimeGrid,
    *,
    split_week: int | None = None,
    clustering: EPMClustering | None = None,
) -> dict[Dimension, DriftReport]:
    """Mine on [0, split), classify [split, end), per dimension."""
    clustering = clustering or EPMClustering()
    split = split_week if split_week is not None else grid.n_weeks // 2
    require(0 < split < grid.n_weeks, "split must be inside the window")

    train = dataset_between(dataset, grid, 0, split)
    evaluation = dataset_between(dataset, grid, split, grid.n_weeks)
    require(len(train) > 0 and len(evaluation) > 0, "both halves need events")

    reports: dict[Dimension, DriftReport] = {}
    for dimension, feature_set in default_feature_sets().items():
        trained = _fit_dimension(clustering, train, feature_set)
        root = tuple([WILDCARD] * len(feature_set.names))

        explained = 0
        novel = 0
        eval_patterns: set = set()
        n_eval = 0
        for event in evaluation.events:
            if not feature_set.applies_to(event):
                continue
            n_eval += 1
            values = feature_set.extract(event)
            assigned = trained.pattern_set.classify(values, trained.invariants)
            eval_patterns.add(assigned)
            if assigned == root:
                novel += 1
            else:
                explained += 1

        train_patterns = set(trained.pattern_set.patterns)
        # Patterns the future would have minted that training never saw:
        future = _fit_dimension(clustering, evaluation, feature_set)
        future_patterns = set(future.pattern_set.patterns)
        eval_only = len(future_patterns - train_patterns)

        reports[dimension] = DriftReport(
            dimension=dimension,
            n_train=trained.n_instances,
            n_eval=n_eval,
            explained=explained,
            novel=novel,
            train_patterns=len(train_patterns),
            eval_only_patterns=eval_only,
        )
    return reports


def render_drift(reports: dict[Dimension, DriftReport]) -> str:
    """Text table of the drift analysis."""
    from repro.util.tables import TextTable

    table = TextTable(
        ["dimension", "train inst.", "eval inst.", "explained", "novel",
         "new patterns in eval"],
        title="Pattern drift: model mined on the first half vs second half",
    )
    for dimension, report in reports.items():
        table.add_row(
            [
                dimension.value,
                report.n_train,
                report.n_eval,
                f"{report.explained_rate:.1%}",
                f"{report.novelty_rate:.1%}",
                report.eval_only_patterns,
            ]
        )
    return table.render()
