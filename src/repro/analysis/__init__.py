"""Combined-perspective analyses (§4 of the paper).

Each module implements one analytical lens the paper combines:

* :mod:`repro.analysis.crossview` — M-cluster vs B-cluster
  cross-referencing: the size-1 B-cluster anomaly detector, the
  environment-split detector, and the re-execution "healing" workflow
  (§4.2),
* :mod:`repro.analysis.relations` — the four-layer E/P/M/B relationship
  graph of Figure 3,
* :mod:`repro.analysis.context` — propagation context per cluster:
  population size, distribution over the IP space, weeks of activity,
  timelines, and the worm-vs-bot signature heuristic (Figure 5),
* :mod:`repro.analysis.irc` — C&C rendezvous correlation per M-cluster
  and infrastructure-reuse detection (Table 2),
* :mod:`repro.analysis.avnames` — AV-label distributions for sample sets
  (Figure 4 top) and E/P propagation coordinates (Figure 4 bottom).
"""

from repro.analysis.crossview import (
    CrossView,
    EnvironmentSplit,
    SingletonAnomaly,
    heal_singletons,
)
from repro.analysis.relations import RelationGraph
from repro.analysis.context import ClusterContext, PropagationContext
from repro.analysis.irc import CnCCorrelation, IRCRendezvous
from repro.analysis.avnames import av_name_distribution, ep_coordinate_distribution
from repro.analysis.coverage import (
    DeploymentPoint,
    NetworkView,
    SensorCoverage,
    deployment_size_ablation,
    restrict_to_networks,
)
from repro.analysis.codeshare import (
    CodeSharingAnalysis,
    PatchLineage,
    PatchStep,
)
from repro.analysis.evolution import (
    ClusterLifecycle,
    EvolutionAnalysis,
    WeeklyActivity,
    dataset_between,
)
from repro.analysis.quality import (
    QualityScore,
    av_label_consistency,
    av_reference_labels,
    ground_truth_labels,
    pairwise_f1,
    precision_recall,
)
from repro.analysis.report import full_report
from repro.analysis.stability import DriftReport, drift_analysis, render_drift

__all__ = [
    "ClusterLifecycle",
    "CodeSharingAnalysis",
    "EvolutionAnalysis",
    "PatchLineage",
    "PatchStep",
    "DeploymentPoint",
    "DriftReport",
    "NetworkView",
    "QualityScore",
    "SensorCoverage",
    "deployment_size_ablation",
    "restrict_to_networks",
    "WeeklyActivity",
    "dataset_between",
    "drift_analysis",
    "full_report",
    "render_drift",
    "av_label_consistency",
    "av_reference_labels",
    "ground_truth_labels",
    "pairwise_f1",
    "precision_recall",
    "ClusterContext",
    "CnCCorrelation",
    "CrossView",
    "EnvironmentSplit",
    "IRCRendezvous",
    "PropagationContext",
    "RelationGraph",
    "SingletonAnomaly",
    "av_name_distribution",
    "ep_coordinate_distribution",
    "heal_singletons",
]
