"""Propagation context — Figure 5 and the worm-vs-bot signatures.

For any cluster (a set of attack events) the context summariser
computes what the paper plots: the size of the attacking population,
its distribution over the IPv4 space, the number of weeks of activity,
and the activity timeline.  A simple signature heuristic then separates
the two regimes §4.3 contrasts:

* **worm-like** — population spread over many /8 blocks, long-lived,
  steady arrivals;
* **bot-like** — population concentrated in few networks, few active
  weeks relative to its life span, bursty arrivals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.epm import EPMResult
from repro.egpm.dataset import SGNetDataset
from repro.egpm.events import AttackEvent
from repro.net.address import IPv4Address, ip_to_string
from repro.sandbox.clustering import BehaviorClustering
from repro.util.stats import burstiness, normalized_entropy
from repro.util.timegrid import TimeGrid
from repro.util.validation import require


@dataclass(frozen=True)
class ClusterContext:
    """Propagation-context summary of one cluster."""

    cluster_label: str
    n_events: int
    n_sources: int
    slash8_histogram: dict[int, int]
    top_networks: list[tuple[str, int]]
    weeks_active: int
    first_week: int
    last_week: int
    timeline: dict[int, int]
    source_spread: float
    burstiness: float
    sensor_networks_hit: list[int]

    @property
    def life_span_weeks(self) -> int:
        """Weeks between first and last activity, inclusive."""
        return self.last_week - self.first_week + 1

    @property
    def duty_cycle(self) -> float:
        """Fraction of the life span that was actually active."""
        return self.weeks_active / self.life_span_weeks

    def signature(self) -> str:
        """'worm-like', 'bot-like' or 'ambiguous' (§4.3's two regimes).

        Worms: sources spread across the IP space (high /8 entropy) with
        sustained activity.  Bots: concentrated sources with bursty,
        low-duty-cycle activity.
        """
        spread = self.source_spread
        concentrated = spread < 0.55 or len(self.slash8_histogram) <= 3
        widespread = spread > 0.75 and len(self.slash8_histogram) >= 8
        bursty = self.burstiness > 0.45 or self.duty_cycle < 0.45
        steady = self.duty_cycle > 0.6
        if widespread and steady:
            return "worm-like"
        if concentrated and bursty:
            return "bot-like"
        return "ambiguous"


class PropagationContext:
    """Context summariser over one dataset and observation window."""

    def __init__(self, dataset: SGNetDataset, grid: TimeGrid) -> None:
        self.dataset = dataset
        self.grid = grid

    def summarize_events(
        self, events: list[AttackEvent], *, label: str
    ) -> ClusterContext:
        """Compute the context summary of an explicit event set."""
        require(len(events) > 0, f"cluster {label} has no events")
        sources = {int(e.source) for e in events}
        slash8: Counter = Counter(IPv4Address(s).slash8 for s in sources)
        slash16: Counter = Counter(IPv4Address(s).slash16 for s in sources)
        weeks = sorted({self.grid.week_of(self.grid.clamp(e.timestamp)) for e in events})
        timeline: dict[int, int] = Counter(
            self.grid.week_of(self.grid.clamp(e.timestamp)) for e in events
        )
        times = sorted(e.timestamp for e in events)
        gaps = [float(b - a) for a, b in zip(times, times[1:])]
        top_networks = [
            (f"{ip_to_string(net << 16)}/16", count)
            for net, count in slash16.most_common(5)
        ]
        return ClusterContext(
            cluster_label=label,
            n_events=len(events),
            n_sources=len(sources),
            slash8_histogram=dict(sorted(slash8.items())),
            top_networks=top_networks,
            weeks_active=len(weeks),
            first_week=weeks[0],
            last_week=weeks[-1],
            timeline=dict(sorted(timeline.items())),
            source_spread=normalized_entropy(slash8) if len(slash8) > 1 else 0.0,
            burstiness=burstiness(gaps) if gaps else 0.0,
            sensor_networks_hit=sorted({e.sensor.slash24 for e in events}),
        )

    def summarize_m_cluster(self, epm: EPMResult, m_cluster: int) -> ClusterContext:
        """Context of one M-cluster."""
        info = epm.mu.clusters[m_cluster]
        events = [self.dataset.events[i] for i in info.event_ids]
        return self.summarize_events(events, label=f"M{m_cluster}")

    def summarize_b_cluster(
        self, bclusters: BehaviorClustering, b_cluster: int
    ) -> ClusterContext:
        """Context of one B-cluster (events of all member samples)."""
        events: list[AttackEvent] = []
        for md5 in bclusters.clusters[b_cluster]:
            events.extend(self.dataset.events_for_sample(md5))
        return self.summarize_events(events, label=f"B{b_cluster}")

    def figure5(
        self,
        epm: EPMResult,
        bclusters: BehaviorClustering,
        b_cluster: int,
        *,
        min_events: int = 1,
    ) -> list[ClusterContext]:
        """The per-M-cluster breakdown of one B-cluster (Figure 5).

        Splits the B-cluster's events by M-cluster and summarises each
        slice, which is exactly what each column of the paper's figure
        shows (host distribution, weeks of activity, timeline per
        M-cluster of the chosen B-cluster).
        """
        by_m: dict[int, list[AttackEvent]] = {}
        for md5 in bclusters.clusters[b_cluster]:
            for event in self.dataset.events_for_sample(md5):
                m = epm.mu.cluster_of(event.event_id)
                if m is not None:
                    by_m.setdefault(m, []).append(event)
        contexts = [
            self.summarize_events(events, label=f"B{b_cluster}/M{m}")
            for m, events in sorted(by_m.items())
            if len(events) >= min_events
        ]
        contexts.sort(key=lambda c: -c.n_events)
        return contexts
