"""Code-sharing and patching analysis — the abstract's promise.

Two practices the paper extracts by *combining* feature types:

* **code sharing on the propagation side** — distinct codebases
  (different B-clusters) delivered through the same exploit or payload
  patterns: someone reused the propagation routine
  (:meth:`CodeSharingAnalysis.shared_propagation`);
* **patching within a lineage** — one B-cluster spread over many
  M-clusters whose patterns differ in a few structural features: the
  codebase was patched/recompiled over time.
  :meth:`CodeSharingAnalysis.patch_lineages` orders each lineage's
  M-clusters by first appearance and diffs consecutive patterns,
  producing the "patch timeline" view (new size = code change, new
  linker version = recompilation, new imports = functional change).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable

from repro.analysis.crossview import CrossView
from repro.core.epm import EPMResult
from repro.core.patterns import WILDCARD
from repro.egpm.dataset import SGNetDataset
from repro.util.timegrid import TimeGrid
from repro.util.validation import require


@dataclass(frozen=True)
class PatchStep:
    """One transition in a lineage's patch timeline."""

    from_m_cluster: int
    to_m_cluster: int
    week: int
    changed_features: tuple[str, ...]
    changes: tuple[tuple[str, Hashable, Hashable], ...]

    def describe(self) -> str:
        """One-line rendering of the step."""
        parts = [
            f"{name}: {old!r} -> {new!r}" for name, old, new in self.changes
        ]
        return (
            f"week {self.week:2d}: M{self.from_m_cluster} -> M{self.to_m_cluster}"
            f" ({'; '.join(parts) if parts else 'no invariant change'})"
        )


@dataclass(frozen=True)
class PatchLineage:
    """One behavioural lineage (B-cluster) and its patch history."""

    b_cluster: int
    m_clusters: tuple[int, ...]
    first_weeks: tuple[int, ...]
    steps: tuple[PatchStep, ...]

    @property
    def n_patches(self) -> int:
        """Number of distinct code versions observed."""
        return len(self.m_clusters)

    def recompilations(self) -> list[PatchStep]:
        """Steps where the linker version changed (recompiled codebase)."""
        return [s for s in self.steps if "linker_version" in s.changed_features]


class CodeSharingAnalysis:
    """Cross-perspective analysis of sharing and patching practices."""

    def __init__(
        self,
        dataset: SGNetDataset,
        epm: EPMResult,
        crossview: CrossView,
        grid: TimeGrid,
    ) -> None:
        self.dataset = dataset
        self.epm = epm
        self.crossview = crossview
        self.grid = grid

    # -- propagation-side sharing -------------------------------------------

    def shared_propagation(self, *, min_events: int = 10) -> list[tuple[int, list[int]]]:
        """P-clusters delivering samples of more than one B-cluster.

        Distinct behaviours arriving through one payload pattern means
        the download/propagation routine is shared across codebases.
        """
        b_of_sample = self.crossview.b_of_sample
        payload_behaviours: dict[int, set[int]] = defaultdict(set)
        payload_events: dict[int, int] = defaultdict(int)
        for event in self.dataset.events:
            p = self.epm.pi.cluster_of(event.event_id)
            if p is None or event.malware is None:
                continue
            payload_events[p] += 1
            b = b_of_sample.get(event.malware.md5)
            if b is not None and self.crossview.bclusters.size_of(b) > 1:
                payload_behaviours[p].add(b)
        return sorted(
            (
                (p, sorted(bs))
                for p, bs in payload_behaviours.items()
                if len(bs) > 1 and payload_events[p] >= min_events
            ),
            key=lambda item: -len(item[1]),
        )

    def shared_exploits(self, *, min_events: int = 10) -> list[tuple[int, list[int]]]:
        """E-clusters exploited by more than one behavioural lineage."""
        b_of_sample = self.crossview.b_of_sample
        exploit_behaviours: dict[int, set[int]] = defaultdict(set)
        exploit_events: dict[int, int] = defaultdict(int)
        for event in self.dataset.events:
            e = self.epm.epsilon.cluster_of(event.event_id)
            if e is None or event.malware is None:
                continue
            exploit_events[e] += 1
            b = b_of_sample.get(event.malware.md5)
            if b is not None and self.crossview.bclusters.size_of(b) > 1:
                exploit_behaviours[e].add(b)
        return sorted(
            (
                (e, sorted(bs))
                for e, bs in exploit_behaviours.items()
                if len(bs) > 1 and exploit_events[e] >= min_events
            ),
            key=lambda item: -len(item[1]),
        )

    # -- lineage patching ----------------------------------------------------

    def _first_week_of_m(self, m_cluster: int) -> int:
        info = self.epm.mu.clusters[m_cluster]
        first = min(self.dataset.events[i].timestamp for i in info.event_ids)
        return self.grid.week_of(self.grid.clamp(first))

    def _diff_patterns(self, a: int, b: int) -> tuple[tuple[str, Hashable, Hashable], ...]:
        names = self.epm.mu.feature_names
        pattern_a = self.epm.mu.clusters[a].pattern
        pattern_b = self.epm.mu.clusters[b].pattern
        changes = []
        for name, old, new in zip(names, pattern_a, pattern_b):
            if old is WILDCARD and new is WILDCARD:
                continue
            if old != new:
                changes.append((name, old, new))
        return tuple(changes)

    def patch_lineages(
        self, *, min_m_clusters: int = 3, min_samples_per_m: int = 2
    ) -> list[PatchLineage]:
        """Patch timelines of every multi-version behavioural lineage."""
        require(min_m_clusters >= 2, "a lineage needs at least two versions")
        lineages: list[PatchLineage] = []
        for b_cluster in sorted(self.crossview.bclusters.clusters):
            counts = self.crossview.m_clusters_of_b(b_cluster)
            members = [
                m for m, n in counts.items() if n >= min_samples_per_m
            ]
            if len(members) < min_m_clusters:
                continue
            ordered = sorted(members, key=self._first_week_of_m)
            weeks = tuple(self._first_week_of_m(m) for m in ordered)
            steps = []
            for previous, current, week in zip(ordered, ordered[1:], weeks[1:]):
                changes = self._diff_patterns(previous, current)
                steps.append(
                    PatchStep(
                        from_m_cluster=previous,
                        to_m_cluster=current,
                        week=week,
                        changed_features=tuple(name for name, _o, _n in changes),
                        changes=changes,
                    )
                )
            lineages.append(
                PatchLineage(
                    b_cluster=b_cluster,
                    m_clusters=tuple(ordered),
                    first_weeks=weeks,
                    steps=tuple(steps),
                )
            )
        lineages.sort(key=lambda lineage: -lineage.n_patches)
        return lineages

    def render_lineage(self, lineage: PatchLineage, *, max_steps: int = 10) -> str:
        """Text rendering of one patch timeline."""
        lines = [
            f"B-cluster {lineage.b_cluster}: {lineage.n_patches} code versions, "
            f"{len(lineage.recompilations())} recompilations"
        ]
        for step in lineage.steps[:max_steps]:
            lines.append("  " + step.describe())
        if len(lineage.steps) > max_steps:
            lines.append(f"  ... ({len(lineage.steps) - max_steps} more steps)")
        return "\n".join(lines)
