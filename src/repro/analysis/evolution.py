"""Threat-evolution view: how the landscape changes over the window.

The paper closes §3.2 by justifying "the interest in continuously
carrying on the collection of data on the threat landscape and on the
study of its future evolution".  This module quantifies the evolution
visible inside one observation window:

* per-week counts of events, active sources, and *newly appearing*
  M-clusters / samples (cluster-birth curves),
* per-cluster activity life cycles (birth week, death week, dormancy),
* the window-slicing utility :func:`dataset_between` used to re-run any
  analysis on a sub-period.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.epm import EPMResult
from repro.egpm.dataset import SGNetDataset
from repro.util.timegrid import TimeGrid
from repro.util.validation import require


def dataset_between(
    dataset: SGNetDataset, grid: TimeGrid, start_week: int, end_week: int
) -> SGNetDataset:
    """A new dataset holding only events in week buckets [start, end).

    Event ids are renumbered; ground truth and observables are shared
    (they are immutable records).
    """
    require(end_week > start_week, "window must span at least one week")
    from dataclasses import replace

    window = grid.subwindow(start_week, end_week)
    subset = SGNetDataset()
    for event in dataset.events:
        if not window.contains(event.timestamp):
            continue
        handle = None
        if event.malware is not None:
            record = dataset.samples.get(event.malware.md5)
            if record is not None:
                handle = record.behavior_handle
        subset.add_event(
            replace(event, event_id=subset.next_event_id()),
            behavior_handle=handle,
        )
    return subset


@dataclass(frozen=True)
class WeeklyActivity:
    """One week of landscape activity."""

    week: int
    n_events: int
    n_sources: int
    new_samples: int
    new_m_clusters: int


@dataclass(frozen=True)
class ClusterLifecycle:
    """Activity life cycle of one M-cluster."""

    m_cluster: int
    birth_week: int
    death_week: int
    active_weeks: int

    @property
    def life_span(self) -> int:
        """Weeks from birth to death, inclusive."""
        return self.death_week - self.birth_week + 1

    @property
    def dormancy(self) -> float:
        """Share of the life span without observed activity."""
        return 1.0 - self.active_weeks / self.life_span


class EvolutionAnalysis:
    """Weekly landscape dynamics over one dataset."""

    def __init__(self, dataset: SGNetDataset, epm: EPMResult, grid: TimeGrid) -> None:
        self.dataset = dataset
        self.epm = epm
        self.grid = grid

    def weekly_activity(self) -> list[WeeklyActivity]:
        """The per-week event/source/birth curves."""
        events_per_week: Counter = Counter()
        sources_per_week: dict[int, set[int]] = {}
        first_week_of_sample: dict[str, int] = {}
        first_week_of_cluster: dict[int, int] = {}
        for event in self.dataset.events:
            week = self.grid.week_of(self.grid.clamp(event.timestamp))
            events_per_week[week] += 1
            sources_per_week.setdefault(week, set()).add(int(event.source))
            if event.malware is not None:
                md5 = event.malware.md5
                if md5 not in first_week_of_sample:
                    first_week_of_sample[md5] = week
                cluster = self.epm.mu.cluster_of(event.event_id)
                if cluster is not None and cluster not in first_week_of_cluster:
                    first_week_of_cluster[cluster] = week
        new_samples: Counter = Counter(first_week_of_sample.values())
        new_clusters: Counter = Counter(first_week_of_cluster.values())
        return [
            WeeklyActivity(
                week=week,
                n_events=events_per_week.get(week, 0),
                n_sources=len(sources_per_week.get(week, ())),
                new_samples=new_samples.get(week, 0),
                new_m_clusters=new_clusters.get(week, 0),
            )
            for week in range(self.grid.n_weeks)
        ]

    def m_cluster_lifecycles(self, *, min_events: int = 10) -> list[ClusterLifecycle]:
        """Birth/death/dormancy of every well-populated M-cluster."""
        lifecycles = []
        for cid, info in self.epm.mu.clusters.items():
            if info.size < min_events:
                continue
            weeks = sorted(
                {
                    self.grid.week_of(self.grid.clamp(self.dataset.events[i].timestamp))
                    for i in info.event_ids
                }
            )
            lifecycles.append(
                ClusterLifecycle(
                    m_cluster=cid,
                    birth_week=weeks[0],
                    death_week=weeks[-1],
                    active_weeks=len(weeks),
                )
            )
        lifecycles.sort(key=lambda lc: lc.birth_week)
        return lifecycles

    def sample_discovery_curve(self) -> list[int]:
        """Cumulative distinct samples by week (the collection curve)."""
        first_week: dict[str, int] = {}
        for event in self.dataset.events:
            if event.malware is None:
                continue
            md5 = event.malware.md5
            week = self.grid.week_of(self.grid.clamp(event.timestamp))
            if md5 not in first_week or week < first_week[md5]:
                first_week[md5] = week
        births = Counter(first_week.values())
        curve = []
        total = 0
        for week in range(self.grid.n_weeks):
            total += births.get(week, 0)
            curve.append(total)
        return curve
