"""CI performance gate over the incremental stage DAG.

The gate runs the reduced-scale scenario three times against one fresh
stage store — cold, warm, and with a perturbed LSH clustering config —
and checks each run's cache dispositions against the expected matrix:

* **cold** — nothing stored yet, every stage must be a ``miss``;
* **warm** — identical ``(seed, config)``, every stage must replay
  (``hit``) and the artifact digests must match the cold run
  byte-for-byte;
* **perturbed** — only ``clustering`` changed, so exactly the stages
  downstream of ``bcluster`` may recompute; a partially-warm run that
  recomputes a stage it should have replayed **fails the gate** (the
  incremental engine silently lost its value), as does one that
  replays a stage it should have recomputed (stale artifacts).

Wall-clock numbers are *report-only*: the gate prints the cold run's
per-stage seconds next to the committed full-scale baseline
(``results/BENCH_pipeline.json``) for trend-watching, but machines and
scales differ, so timings never change the exit code.  Only the cache
matrix and digest identity gate.

Usage (what CI runs)::

    python -m repro.experiments.perf_gate --bench results/BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.stages import STAGE_NAMES, downstream_of

#: The perturbation scenario's label in the expected matrix — the
#: config key whose change must invalidate ``bcluster`` and nothing
#: else.
PERTURB_KEY = "clustering"


def expected_matrix() -> dict[str, dict[str, list[str]]]:
    """Expected hit/miss partition per gate scenario, from the DAG."""
    invalidated = downstream_of("bcluster")
    return {
        "cold": {"hit": [], "miss": list(STAGE_NAMES)},
        "warm": {"hit": list(STAGE_NAMES), "miss": []},
        f"perturb:{PERTURB_KEY}": {
            "hit": [name for name in STAGE_NAMES if name not in invalidated],
            "miss": [name for name in STAGE_NAMES if name in invalidated],
        },
    }


def observed_partition(statuses: Mapping[str, str]) -> dict[str, list[str]]:
    """One run's ``stage_cache`` reduced to the matrix shape."""
    return {
        "hit": [name for name in STAGE_NAMES if statuses.get(name) == "hit"],
        "miss": [name for name in STAGE_NAMES if statuses.get(name) == "miss"],
    }


def check_run(
    label: str,
    statuses: Mapping[str, str],
    expected: Mapping[str, Sequence[str]],
) -> list[str]:
    """Violations of one gate run against its expected partition."""
    errors: list[str] = []
    observed = observed_partition(statuses)
    for name in expected.get("hit", []):
        if name not in observed["hit"]:
            errors.append(
                f"{label}: stage {name!r} was recomputed "
                f"({statuses.get(name)!r}) but should have replayed from "
                "the stage store"
            )
    for name in expected.get("miss", []):
        if name not in observed["miss"]:
            errors.append(
                f"{label}: stage {name!r} was {statuses.get(name)!r} but "
                "should have been recomputed (stale replay risk)"
            )
    return errors


def _timing_report(
    cold_seconds: Mapping[str, float], baseline: Mapping | None
) -> str:
    """Report-only wall-clock table: gate run vs committed baseline."""
    baseline_seconds = (baseline or {}).get("stage_seconds", {})
    lines = ["wall-clock (report-only; never gates):"]
    lines.append(
        f"  {'stage':<12} {'gate run':>10}   {'baseline (full scale)':>22}"
    )
    for name in STAGE_NAMES:
        base = baseline_seconds.get(name)
        rendered = f"{base:>20.3f}s" if isinstance(base, (int, float)) else f"{'n/a':>21}"
        lines.append(f"  {name:<12} {cold_seconds.get(name, 0.0):>9.3f}s   {rendered}")
    return "\n".join(lines)


def check_scale_bench(scale_bench_path: str | Path, out) -> list[str]:
    """Gate violations in the committed samples/sec scaling curve.

    The curve's wall-clock numbers are report-only like every other
    timing, but its *shape* gates: a missing record, a schema drift or
    a curve shrunk below 4 points fails CI (the scaling artifact is an
    acceptance criterion, not a nice-to-have).
    """
    from repro.experiments.scale_bench import validate_record

    path = Path(scale_bench_path)
    if not path.is_file():
        return [f"scale bench record {path} is missing"]
    record = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_record(record)
    points = record.get("points") or []
    if not errors:
        lines = ["samples/sec curve (report-only; shape gates, timings do not):"]
        for point in points:
            lines.append(
                f"  scale {point['scale']:>6}: {point['events']:>8} events  "
                f"{point['events_per_second']:>9.1f} ev/s  "
                f"{point['samples_per_second']:>8.1f} samples/s"
            )
        print("\n".join(lines), file=out)
    return errors


def check_classify_bench(classify_bench_path: str | Path, out) -> list[str]:
    """Gate violations in the committed classifications/sec record.

    Shape gates like the scaling curve, with one extra teeth: a
    committed full-scale record whose indexed-over-linear speedup
    dropped below the acceptance floor fails CI (that ratio *is* the
    serving-path deliverable, not a timing to trend-watch).
    """
    from repro.experiments.classify_bench import validate_record

    path = Path(classify_bench_path)
    if not path.is_file():
        return [f"classify bench record {path} is missing"]
    record = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_record(record)
    if not errors:
        totals = record["totals"]
        lines = [
            "classifications/sec (report-only except the full-scale "
            "speedup floor and digest identity):"
        ]
        for entry in record["dimensions"]:
            paths = entry["paths"]
            lines.append(
                f"  {entry['dimension']:>8}: {entry['patterns']:>5} patterns  "
                f"linear {paths['linear']['per_second']:>10.1f}/s  "
                f"indexed {paths['indexed']['per_second']:>10.1f}/s "
                f"({entry['speedup_indexed']}x)  "
                f"batch {paths['batch']['per_second']:>10.1f}/s "
                f"({entry['speedup_batch']}x)"
            )
        lines.append(
            f"  totals: indexed {totals['speedup_indexed']}x, "
            f"batch {totals['speedup_batch']}x over the linear scan"
        )
        print("\n".join(lines), file=out)
    return errors


def check_regression_detector(cold_payload: Mapping, out) -> list[str]:
    """Self-test of the longitudinal regression detector (gate-grade).

    Warm replays skip recomputation and re-emit no semantic metrics, so
    the gate cannot feed the detector its own warm runs; instead it
    builds a synthetic history from the *cold* manifest — clones that
    differ only in ``created_at`` (new content address, identical
    telemetry) — and demands both detector guarantees the CI regression
    gate rests on:

    * byte-identical replays never alarm (a constant series is silent);
    * an injected metric regression (``lsh.clusters`` tripled on the
      newest run) is flagged on the right target.
    """
    from repro.obs.query import frame_from_payloads
    from repro.obs.regress import METRIC_RULES, run_regression

    def clone(stamp: str, bump: float = 1.0) -> dict:
        payload = json.loads(json.dumps(dict(cold_payload)))
        payload["created_at"] = stamp
        if bump != 1.0:
            gauges = payload.setdefault("metrics", {}).setdefault("gauges", {})
            gauges["lsh.clusters"] = float(gauges.get("lsh.clusters", 0.0)) * bump
        return payload

    stamps = [f"2000-01-0{i}T00:00:00Z" for i in (1, 2, 3)]
    errors: list[str] = []
    silent = run_regression(
        frame_from_payloads([clone(stamp) for stamp in stamps]),
        rules=METRIC_RULES,
    )
    if silent.findings:
        errors.append(
            "regress: detector alarmed on byte-identical replay clones: "
            + "; ".join(f.render() for f in silent.findings[:3])
        )
    noisy = run_regression(
        frame_from_payloads(
            [clone(stamp) for stamp in stamps]
            + [clone("2000-01-04T00:00:00Z", bump=3.0)]
        ),
        rules=METRIC_RULES,
    )
    flagged = {finding.target for finding in noisy.findings}
    if "metric:lsh.clusters" not in flagged:
        errors.append(
            "regress: detector missed an injected 3x lsh.clusters "
            f"regression (flagged: {sorted(flagged) or 'nothing'})"
        )
    print(
        "regression detector self-test: "
        f"{len(silent.findings)} alarm(s) on replays, "
        f"{len(noisy.findings)} on the injected regression",
        file=out,
    )
    return errors


def run_gate(
    *,
    bench_path: str | Path | None = None,
    scale_bench_path: str | Path | None = None,
    classify_bench_path: str | Path | None = None,
    skip_matrix: bool = False,
    seed: int = 7,
    scale: float = 0.05,
    weeks: int = 8,
    store_root: str | Path | None = None,
    report_path: str | Path | None = None,
    out=None,
) -> int:
    """Execute the gate matrix; returns the process exit code."""
    from repro.experiments.cache import StageStore
    from repro.experiments.scenario import PaperScenario, ScenarioConfig
    from repro.sandbox.clustering import ClusteringConfig

    out = out or sys.stdout
    baseline = None
    if bench_path is not None and Path(bench_path).is_file():
        baseline = json.loads(Path(bench_path).read_text(encoding="utf-8"))
    # The committed record's matrix wins when present (so a DAG change
    # without a regenerated baseline fails loudly); missing scenarios
    # fall back to the matrix derived from the live DAG.
    recorded = (baseline or {}).get("stage_cache", {}).get("gate_matrix") or {}
    expected = {**expected_matrix(), **recorded}

    errors_pre: list[str] = []
    if scale_bench_path is not None:
        errors_pre += check_scale_bench(scale_bench_path, out)
    if classify_bench_path is not None:
        errors_pre += check_classify_bench(classify_bench_path, out)

    # The classify-gate CI job validates committed records only — the
    # 3-run cache matrix already gates in the perf-gate job, so it can
    # be skipped to keep the lane fast.
    if skip_matrix:
        if errors_pre:
            for error in errors_pre:
                print(f"PERF GATE VIOLATION: {error}", file=out)
            return 1
        print("perf gate: committed bench records OK (matrix skipped)", file=out)
        return 0

    config = ScenarioConfig(n_weeks=weeks, scale=scale)
    perturbed = replace(
        config,
        clustering=replace(ClusteringConfig(), threshold=0.5),
    )

    errors: list[str] = list(errors_pre)
    with tempfile.TemporaryDirectory() as tmp:
        store = StageStore(store_root if store_root is not None else tmp)
        started = time.perf_counter()
        cold = PaperScenario(seed=seed, config=config).run(stage_store=store)
        cold_wall = time.perf_counter() - started
        errors += check_run("cold", cold.stage_cache, expected["cold"])

        warm = PaperScenario(seed=seed, config=config).run(stage_store=store)
        errors += check_run("warm", warm.stage_cache, expected["warm"])
        if warm.manifest.artifact_digests != cold.manifest.artifact_digests:
            errors.append(
                "warm: artifact digests diverged from the cold run — "
                "replayed artifacts are not bit-identical"
            )

        part = PaperScenario(seed=seed, config=perturbed).run(stage_store=store)
        errors += check_run(
            f"perturb:{PERTURB_KEY}",
            part.stage_cache,
            expected[f"perturb:{PERTURB_KEY}"],
        )
        # Upstream of the perturbation nothing changed, so the shared
        # artifacts must still be byte-identical to the cold run.
        for artifact in ("dataset.events", "epm.clusters"):
            if (
                part.manifest.artifact_digests[artifact]
                != cold.manifest.artifact_digests[artifact]
            ):
                errors.append(
                    f"perturb:{PERTURB_KEY}: shared artifact {artifact!r} "
                    "diverged from the cold run"
                )

    regress_errors = check_regression_detector(cold.manifest.as_dict(), out)
    errors += regress_errors

    runs = (("cold", cold), ("warm", warm), (f"perturb:{PERTURB_KEY}", part))
    for label, run in runs:
        print(f"{label:<22} {observed_partition(run.stage_cache)}", file=out)
    if report_path is not None:
        report = {
            "schema": 2,
            "seed": seed,
            "scale": scale,
            "weeks": weeks,
            "expected": expected,
            "observed": {label: observed_partition(run.stage_cache) for label, run in runs},
            "cold_stage_seconds": cold.timings.as_dict(),
            "cold_wall_seconds": cold_wall,
            "regress": {
                "checked": True,
                "violations": regress_errors,
                "ok": not regress_errors,
            },
            "violations": errors,
            "ok": not errors,
        }
        Path(report_path).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    print(_timing_report(cold.timings.as_dict(), baseline), file=out)
    print(
        f"cold gate run: {cold_wall:.2f}s wall at scale {scale} "
        f"(baseline full-scale build: "
        f"{(baseline or {}).get('build_total_seconds', 'n/a')}s)",
        file=out,
    )
    if errors:
        for error in errors:
            print(f"PERF GATE VIOLATION: {error}", file=out)
        return 1
    print("perf gate: cache matrix and artifact identity OK", file=out)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.perf_gate",
        description="cache-matrix + wall-clock perf gate (CI)",
    )
    parser.add_argument(
        "--bench",
        default="results/BENCH_pipeline.json",
        help="committed baseline record (schema 3: carries the expected "
        "gate matrix; wall-clock comparison is report-only)",
    )
    parser.add_argument(
        "--scale-bench",
        default=None,
        metavar="FILE",
        help="also validate the committed samples/sec scaling curve "
        "(results/BENCH_scale.json): schema and >= 4-point shape gate, "
        "its timings stay report-only",
    )
    parser.add_argument(
        "--classify-bench",
        default=None,
        metavar="FILE",
        help="also validate the committed classifications/sec record "
        "(results/BENCH_classify.json): schema shape and the full-scale "
        "indexed-over-linear speedup floor gate",
    )
    parser.add_argument(
        "--skip-matrix",
        action="store_true",
        help="only validate the committed bench records, skip the 3-run "
        "cache matrix (the classify-gate CI lane)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--weeks", type=int, default=8)
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="stage store root (default: a fresh temp dir per invocation)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write a machine-readable JSON gate report here",
    )
    args = parser.parse_args(argv)
    return run_gate(
        bench_path=args.bench,
        scale_bench_path=args.scale_bench,
        classify_bench_path=args.classify_bench,
        skip_matrix=args.skip_matrix,
        seed=args.seed,
        scale=args.scale,
        weeks=args.weeks,
        store_root=args.store,
        report_path=args.report,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
