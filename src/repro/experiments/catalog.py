"""The synthetic landscape catalog behind the paper-scale scenario.

The catalog recreates the *population structure* the paper reports for
January 2008 - May 2009 (see DESIGN.md §2 for the substitution
argument):

* **allaple** — a self-propagating worm lineage: ~95 static variants
  (patches differing in file size, occasionally recompiled) across two
  behavioural generations, per-instance polymorphic content, large
  populations spread over the routable space, PUSH download on TCP/9988
  (the paper's P-pattern 45);
* **iliketay** — the M-cluster 13 analogue: one codebase sharing
  allaple's propagation vector but mutating per attacking source, whose
  behaviour depends on the ``iliketay.cn`` distribution site (two
  components, then one, then a dead DNS entry);
* **ten IRC bot families** — small, subnet-concentrated populations
  with bursty, location-targeted activity, commanded from three C&C
  infrastructures that reuse /24s and room names (Table 2's fingerprint);
* **misc families** — a long tail of one-off codebases, some seen only
  a handful of times (the genuine rare-singleton cases of §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.egpm.events import InteractionType
from repro.malware.behaviorspec import BehaviorTemplate, CnCSpec, ComponentDownload
from repro.malware.botnet import CnCInfrastructure, build_botnet_family
from repro.malware.families import (
    FamilySpec,
    VariantSpec,
    derive_worm_variants,
    single_variant_family,
)
from repro.malware.polymorphism import PolymorphyMode
from repro.malware.population import (
    ActivityBurst,
    BurstActivity,
    ContinuousActivity,
    PopulationSpec,
)
from repro.malware.propagation import (
    ExploitSpec,
    PayloadSpec,
    PropagationSpec,
    choice,
    fixed,
    rand,
)
from repro.net.address import Subnet
from repro.net.sampling import UniformSampler
from repro.peformat.structures import PESpec, SectionSpec
from repro.peformat.structures import (
    SCN_CODE,
    SCN_INITIALIZED_DATA,
    SCN_MEM_EXECUTE,
    SCN_MEM_READ,
    SCN_MEM_WRITE,
)
from repro.sandbox.environment import Environment, Window
from repro.util.rng import RandomSource
from repro.util.timegrid import DAY_SECONDS, WEEK_SECONDS, TimeGrid
from repro.util.validation import require


@dataclass
class Catalog:
    """Families plus the execution environment they assume."""

    families: list[FamilySpec]
    environment: Environment
    notes: dict[str, str] = field(default_factory=dict)

    @property
    def n_variants(self) -> int:
        """Total variants across all families."""
        return sum(f.n_variants for f in self.families)


# --------------------------------------------------------------------------
# Shared propagation building blocks
# --------------------------------------------------------------------------

def asn1_exploit() -> ExploitSpec:
    """The MS04-007 ASN.1 exploit conversation (allaple's vector)."""
    return ExploitSpec(
        name="ms04-007-asn1",
        dst_port=445,
        dialogue=(
            (fixed("SMB_NEGOTIATE"), fixed("NT LM 0.12"), rand(6)),
            (fixed("SMB_SESSION_SETUP"), fixed("ASN1"), rand(8)),
            (fixed("ASN1_BITSTR_OVERFLOW"), fixed("0x07"), rand(10)),
        ),
    )


def allaple_payload() -> PayloadSpec:
    """PUSH-based download to TCP/9988 — the paper's P-pattern 45."""
    return PayloadSpec(
        name="push-9988",
        protocol="creceive",
        interaction=InteractionType.PUSH,
        filename=None,
        port=9988,
    )


def _bot_exploit(index: int, port: int, toolkit_markers: tuple[str, ...]) -> ExploitSpec:
    """A bot family's exploit: shared protocol skeleton, per-toolkit marker."""
    return ExploitSpec(
        name=f"bot-exploit-{index:02d}",
        dst_port=port,
        dialogue=(
            (fixed(f"RPC_BIND_{index:02d}"), rand(6)),
            (fixed("RPC_REQUEST"), choice(*toolkit_markers), rand(8)),
            (fixed(f"STACK_SMASH_{index:02d}"),),
        ),
    )


_DATA_SECTION = SCN_INITIALIZED_DATA | SCN_MEM_READ | SCN_MEM_WRITE
_TEXT_SECTION = SCN_CODE | SCN_MEM_EXECUTE | SCN_MEM_READ
_RDATA_SECTION = SCN_INITIALIZED_DATA | SCN_MEM_READ


def allaple_pe_spec() -> PESpec:
    """The allaple codebase shape (PE header fingerprint)."""
    return PESpec(
        sections=(
            SectionSpec(".text", _TEXT_SECTION),
            SectionSpec(".rdata", _RDATA_SECTION),
            SectionSpec(".data", _DATA_SECTION),
        ),
        imports={
            "KERNEL32.dll": (
                "GetProcAddress",
                "LoadLibraryA",
                "CreateFileA",
                "WriteFile",
                "GetTickCount",
            ),
            "WS2_32.dll": ("socket", "connect", "send"),
        },
        os_version=40,
        linker_version=71,
        file_size=57_856,
    )


def iliketay_pe_spec() -> PESpec:
    """The M-cluster 13 fingerprint, field for field as quoted in §4.2."""
    return PESpec(
        sections=(
            SectionSpec(".text", _TEXT_SECTION),
            SectionSpec("rdata", _RDATA_SECTION),
            SectionSpec(".data", _DATA_SECTION),
        ),
        imports={"KERNEL32.dll": ("GetProcAddress", "LoadLibraryA")},
        os_version=64,
        linker_version=92,
        file_size=59_904,
    )


# --------------------------------------------------------------------------
# Behaviour templates
# --------------------------------------------------------------------------

def allaple_behavior(generation: int) -> BehaviorTemplate:
    """Allaple's behaviour; generation 1 is the reworked codebase.

    Both generations scan and infect, but the second generation changed
    enough host-side behaviour to form its own B-cluster (the paper sees
    two behavioural clusters for ~100 static Allaple clusters).
    """
    require(generation in (0, 1), "allaple has two behavioural generations")
    base = BehaviorTemplate(
        mutexes=("jhdheruhfrk", "allaple-mtx"),
        files_dropped=(r"C:\WINDOWS\system32\urdvxc.exe",),
        registry_keys=(r"HKLM\...\Run\urdvxc", r"HKCR\CLSID\{55DB983C}",),
        services_installed=("MSWindows",),
        scan_ports=(445, 139),
        infects_html=True,
        dos_targets=("www.starman.ee", "www.elion.ee"),
        noise_rate=0.25,
    )
    if generation == 0:
        return base
    return BehaviorTemplate(
        mutexes=("jhdheruhfrk", "kyxmlejjkhw"),
        files_dropped=(r"C:\WINDOWS\system32\urdvxc.exe", r"C:\WINDOWS\nvrsvc.exe"),
        registry_keys=(r"HKLM\...\Run\urdvxc",),
        services_installed=("MSWindowsS",),
        scan_ports=(445, 139, 135),
        infects_html=True,
        dos_targets=("www.starman.ee",),
        processes_spawned=("urdvxc.exe /start",),
        noise_rate=0.25,
    )


def iliketay_behavior() -> BehaviorTemplate:
    """The iliketay.cn second-stage downloader behaviour."""
    stage_irc = CnCSpec(server="61.152.144.10", port=6667, room="#tay")
    component_one = BehaviorTemplate(
        files_dropped=(r"C:\WINDOWS\system32\msupd32.exe",),
        registry_keys=(r"HKLM\...\Run\msupd32",),
        mutexes=("tay1-mtx",),
        cnc=stage_irc,
    )
    component_two = BehaviorTemplate(
        files_dropped=(
            r"C:\WINDOWS\system32\winlgn32.exe",
            r"C:\WINDOWS\Temp\~tmp77.dat",
        ),
        registry_keys=(r"HKLM\...\Services\winlgn",),
        mutexes=("tay2-mtx", "tay2-aux"),
        processes_spawned=("winlgn32.exe",),
    )
    return BehaviorTemplate(
        mutexes=("iliketay-mtx",),
        files_dropped=(r"C:\WINDOWS\system32\qymgf.exe",),
        registry_keys=(r"HKLM\...\Run\qymgf", r"HKLM\...\Explorer\iexplore",),
        scan_ports=(445,),
        dns_queries=("iliketay.cn",),
        components=(
            ComponentDownload("iliketay.cn", "/load/one.exe", component_one),
            ComponentDownload("iliketay.cn", "/load/two.exe", component_two),
        ),
        noise_rate=0.04,
    )


def bot_base_behavior(index: int) -> BehaviorTemplate:
    """Base behaviour of one bot family: a rich, family-specific core.

    The core is deliberately large (~20 features) so that sibling
    variants — which add only a variant mutex and their C&C rendezvous —
    stay above the 0.7 Jaccard threshold and merge into one family
    B-cluster, matching the paper's B-coarser-than-M observation.
    """
    tag = f"bot{index:02d}"
    return BehaviorTemplate(
        mutexes=(f"{tag}-main", f"{tag}-inst"),
        files_dropped=(
            rf"C:\WINDOWS\system32\{tag}svc.exe",
            rf"C:\WINDOWS\system32\{tag}cfg.dat",
            rf"C:\WINDOWS\Temp\{tag}.tmp",
        ),
        registry_keys=(
            rf"HKLM\...\Run\{tag}svc",
            rf"HKLM\...\Services\{tag}",
            rf"HKLM\...\FirewallPolicy\{tag}",
        ),
        services_installed=(f"{tag}Service",),
        processes_spawned=(f"{tag}svc.exe", "cmd.exe /c net stop SharedAccess"),
        scan_ports=(445, 139, 135, 2967, 5000)[: 3 + index % 3],
        dns_queries=(f"time.{tag}.example", f"geo.{tag}.example"),
        dos_targets=() if index % 2 else (f"rival{index:02d}.example",),
        noise_rate=0.05,
    )


# --------------------------------------------------------------------------
# Catalog assembly
# --------------------------------------------------------------------------

def build_catalog(
    source: RandomSource,
    grid: TimeGrid,
    sensor_networks: list[int],
    *,
    scale: float = 1.0,
) -> Catalog:
    """Assemble the full paper-scale catalog.

    ``scale`` shrinks variant counts and event rates together, so small
    test runs keep the landscape's *shape* while running in well under a
    second.
    """
    require(scale > 0, "scale must be positive")
    families: list[FamilySpec] = []
    environment = Environment()
    notes: dict[str, str] = {}

    families.extend(_allaple_families(source, grid, scale))
    notes["allaple"] = "worm lineage; 2 behavioural generations, per-instance polymorphic"

    families.append(_iliketay_family(source, grid, environment, scale))
    notes["iliketay"] = "M-cluster 13 analogue; per-source polymorphic, env-dependent"

    families.extend(_botnet_families(source, grid, sensor_networks, scale))
    notes["botnets"] = "10 families on 3 C&C infrastructures, bursty + targeted"

    families.extend(_misc_families(source, grid, scale))
    notes["misc"] = "long-tail one-off codebases incl. genuine rarities"

    return Catalog(families=families, environment=environment, notes=notes)


def _scaled(count: int, scale: float, *, minimum: int = 1) -> int:
    return max(minimum, int(round(count * scale)))


def _allaple_families(
    source: RandomSource, grid: TimeGrid, scale: float
) -> list[FamilySpec]:
    exploit = asn1_exploit()
    payload = allaple_payload()
    propagation = PropagationSpec(exploit, payload)
    av_names = {"PopularAV": "W32.Rahack"}
    families: list[FamilySpec] = []
    counts = (_scaled(55, scale, minimum=3), _scaled(40, scale, minimum=2))
    for generation, n_variants in enumerate(counts):
        gen_source = source.child("allaple", generation)

        def population_for(index: int, rng, _gen=generation) -> PopulationSpec:
            # Zipf-flavoured population sizes: a few hundred-host variants,
            # a long tail of small ones (Figure 5, left).
            size = max(4, int(420 / (index + 2)) + rng.randint(0, 8))
            return PopulationSpec(size=size, sampler=UniformSampler())

        def activity_for(index: int, rng, _gen=generation):
            start = grid.start + rng.randrange(0, 30 * WEEK_SECONDS)
            duration = rng.randint(20, 60) * WEEK_SECONDS
            rate = max(0.1, 2.9 / (index + 2)) * min(1.0, scale * 2.0)
            return ContinuousActivity(rate, start=start, end=min(grid.end, start + duration))

        variants = derive_worm_variants(
            family="allaple",
            base_pe=allaple_pe_spec(),
            behavior=allaple_behavior(generation),
            propagation=propagation,
            n_variants=n_variants,
            source=gen_source,
            population_for=population_for,
            activity_for=activity_for,
            size_step_range=(1 + 120 * generation, 110 + 120 * generation),
        )
        # Each variant (a patch of the codebase) leaves one small trace of
        # its own in the behaviour — enough for crashed runs to form
        # per-variant partial profiles, not enough to stop the variants
        # from merging into their generation's B-cluster (J ~ 0.87).
        renamed = tuple(
            VariantSpec(
                family="allaple",
                variant=f"g{generation}{v.variant}",
                pe_spec=v.pe_spec,
                polymorphism=v.polymorphism,
                behavior=v.behavior.with_extra(
                    ("mutex", f"allaple-g{generation}-{i:03d}", "create")
                ),
                propagation=v.propagation,
                population=v.population,
                activity=v.activity,
            )
            for i, v in enumerate(variants)
        )
        families.append(
            FamilySpec(name="allaple", variants=renamed, av_names=av_names)
        )
    return families


def _iliketay_family(
    source: RandomSource,
    grid: TimeGrid,
    environment: Environment,
    scale: float,
) -> FamilySpec:
    # The distribution site serves two components early on, drops the
    # second one mid-campaign, and finally disappears from DNS entirely
    # (the entry "was probably removed from the DNS database", §4.2).
    dns_dies = grid.start + 36 * WEEK_SECONDS
    comp2_dies = grid.start + 18 * WEEK_SECONDS
    environment.add_dns("iliketay.cn", Window(grid.start, dns_dies))
    environment.set_component_window(
        "iliketay.cn", "/load/two.exe", Window(grid.start, comp2_dies)
    )

    behavior = iliketay_behavior()
    population = PopulationSpec(
        size=_scaled(48, scale, minimum=9), sampler=UniformSampler()
    )
    activity = ContinuousActivity(
        max(0.35, 0.8 * scale),
        start=grid.start + 2 * WEEK_SECONDS,
        end=grid.start + 62 * WEEK_SECONDS,
    )
    variant = VariantSpec(
        family="iliketay",
        variant="v000",
        pe_spec=iliketay_pe_spec(),
        polymorphism=PolymorphyMode.PER_SOURCE,
        behavior=behavior,
        propagation=PropagationSpec(asn1_exploit(), allaple_payload()),
        population=population,
        activity=activity,
    )
    return FamilySpec(
        name="iliketay",
        variants=(variant,),
        av_names={"PopularAV": "W32.Pilleuz"},
    )


def _botnet_families(
    source: RandomSource,
    grid: TimeGrid,
    sensor_networks: list[int],
    scale: float,
) -> list[FamilySpec]:
    herders = (
        CnCInfrastructure(
            name="herder-east",
            server_subnets=(
                Subnet.parse("67.43.232.0/24"),
                Subnet.parse("67.43.226.0/24"),
            ),
            room_pool=("#kok2", "#kok6", "#kok8", "#las6", "#kham", "#ns", "#siwa"),
        ),
        CnCInfrastructure(
            name="herder-west",
            server_subnets=(Subnet.parse("72.10.172.0/24"),),
            room_pool=("#las6", "#siwa", "#ns"),
        ),
        CnCInfrastructure(
            name="herder-north",
            server_subnets=(Subnet.parse("83.68.16.0/24"),),
            room_pool=("#ns", "#dd", "#kok6"),
        ),
    )
    home_subnet_pool = (
        Subnet.parse("58.32.0.0/16"),
        Subnet.parse("58.33.0.0/16"),
        Subnet.parse("121.14.0.0/16"),
        Subnet.parse("200.75.0.0/16"),
        Subnet.parse("89.128.0.0/16"),
        Subnet.parse("196.25.0.0/16"),
    )
    ports = (139, 445, 135, 2967, 5000)
    toolkit_markers = (
        ("admin", "OWNED", "sys"),
        ("PIPE\\ntsvcs", "PIPE\\browser"),
        ("user1", "xyz", "zz1", "r00t"),
    )
    families: list[FamilySpec] = []
    per_family = (_scaled(15, scale, minimum=2), _scaled(13, scale, minimum=2))
    for index in range(10 if scale >= 0.5 else max(3, int(10 * scale))):
        herder = herders[index % len(herders)]
        exploit = _bot_exploit(index, ports[index % len(ports)], toolkit_markers[index % 3])
        payload = _bot_payload(index)
        base_pe = _bot_pe_spec(index)
        n_variants = per_family[index % 2]
        rng = source.rng("botnet-homes", index)
        homes = tuple(rng.sample(list(home_subnet_pool), k=2))
        families.append(
            build_botnet_family(
                name=f"ircbot{index:02d}",
                base_pe=base_pe,
                base_behavior=bot_base_behavior(index),
                propagation=PropagationSpec(exploit, payload),
                infrastructure=herder,
                n_variants=n_variants,
                source=source.child("botnet", index),
                grid=grid,
                sensor_networks=sensor_networks,
                home_subnets=homes,
                server_offset=(index // len(herders)) * 12,
                av_names={"PopularAV": f"W32.Spybot.{chr(ord('A') + index)}"},
            )
        )
    return families


def _bot_payload(index: int) -> PayloadSpec:
    """Bot download strategies: a rotating mix of channels (pi diversity)."""
    kind = index % 5
    if kind == 0:
        return PayloadSpec(
            name=f"ftp-fixed-{index:02d}",
            protocol="ftp",
            interaction=InteractionType.PULL,
            filename=f"msins{index:02d}.exe",
            port=21,
        )
    if kind == 1:
        return PayloadSpec(
            name=f"ftp-random-{index:02d}",
            protocol="ftp",
            interaction=InteractionType.PULL,
            filename=PayloadSpec.RANDOM_FILENAME,
            port=21,
        )
    if kind == 2:
        return PayloadSpec(
            name=f"http-central-{index:02d}",
            protocol="http",
            interaction=InteractionType.CENTRAL,
            filename=f"/loads/pack{index:02d}.exe",
            port=80,
            central_host=f"203.117.{20 + index}.7",
        )
    if kind == 3:
        return PayloadSpec(
            name=f"tftp-{index:02d}",
            protocol="tftp",
            interaction=InteractionType.PULL,
            filename=f"wdfmgr{index:02d}.exe",
            port=69,
        )
    return PayloadSpec(
        name=f"blink-{index:02d}",
        protocol="blink",
        interaction=InteractionType.PULL,
        filename=None,
        port=None,
    )


def _bot_pe_spec(index: int) -> PESpec:
    """Per-family codebase shape: UPX-style or MSVC-style section layouts."""
    if index % 2:
        sections = (
            SectionSpec("UPX0", _TEXT_SECTION),
            SectionSpec("UPX1", _TEXT_SECTION),
            SectionSpec(".rsrc", _RDATA_SECTION),
        )
    else:
        sections = (
            SectionSpec(".text", _TEXT_SECTION),
            SectionSpec(".rdata", _RDATA_SECTION),
            SectionSpec(".data", _DATA_SECTION),
            SectionSpec(".rsrc", _RDATA_SECTION),
        )
    imports = {
        "KERNEL32.dll": (
            "GetProcAddress",
            "LoadLibraryA",
            "CreateMutexA",
            "WinExec",
        )[: 2 + index % 3],
        "WININET.dll": ("InternetOpenA", "InternetOpenUrlA"),
        "ADVAPI32.dll": ("RegSetValueExA",),
    }
    if index % 3 == 0:
        del imports["WININET.dll"]
    return PESpec(
        sections=sections,
        imports=imports,
        os_version=40,
        linker_version=(60, 71, 80, 90, 92)[index % 5],
        file_size=40_960 + 1024 * index,
    )


def _misc_families(
    source: RandomSource, grid: TimeGrid, scale: float
) -> list[FamilySpec]:
    """One-off codebases: moderately seen singles plus genuine rarities."""
    families: list[FamilySpec] = []
    n_misc = _scaled(12, scale, minimum=2)
    for index in range(n_misc):
        rng = source.rng("misc", index)
        rare = index % 3 == 2  # every third misc family is a true rarity
        exploit = ExploitSpec(
            name=f"misc-exploit-{index:02d}",
            dst_port=(1025, 2967, 5000, 80)[index % 4],
            dialogue=(
                (fixed(f"MISC_HELLO_{index:02d}"), rand(5)),
                (fixed("TRIGGER"), fixed(f"op{index:02d}")),
            ),
        )
        payload = PayloadSpec(
            name=f"misc-payload-{index:02d}",
            protocol=("http", "ftp", "tftp")[index % 3],
            interaction=(
                InteractionType.PULL,
                InteractionType.CENTRAL,
                InteractionType.PULL,
            )[index % 3],
            filename=f"load{index:02d}.exe",
            port=(80, 21, 69)[index % 3],
            central_host=f"210.51.{index}.9" if index % 3 == 1 else None,
        )
        behavior = BehaviorTemplate(
            mutexes=(f"misc{index:02d}-a", f"misc{index:02d}-b"),
            files_dropped=(rf"C:\WINDOWS\misc{index:02d}.exe",),
            registry_keys=(rf"HKLM\...\Run\misc{index:02d}",),
            scan_ports=(445,),
            noise_rate=0.0 if rare else 0.08,
        )
        if rare:
            population = PopulationSpec(size=rng.randint(3, 5), sampler=UniformSampler())
            start = grid.start + rng.randrange(0, 50 * WEEK_SECONDS)
            activity = BurstActivity(
                [ActivityBurst(start=start, duration=6 * DAY_SECONDS, rate_per_day=3.0)]
            )
        else:
            population = PopulationSpec(
                size=rng.randint(8, 30), sampler=UniformSampler()
            )
            start = grid.start + rng.randrange(0, 40 * WEEK_SECONDS)
            activity = ContinuousActivity(
                max(0.2, rng.uniform(0.3, 0.9) * scale),
                start=start,
                end=min(grid.end, start + rng.randint(6, 18) * WEEK_SECONDS),
            )
        families.append(
            single_variant_family(
                name=f"misc{index:02d}",
                pe_spec=PESpec(
                    file_size=24_576 + 512 * rng.randint(0, 60),
                    linker_version=(60, 71, 80)[index % 3],
                    os_version=40,
                ),
                behavior=behavior,
                propagation=PropagationSpec(exploit, payload),
                population=population,
                activity=activity,
                av_names={"PopularAV": f"Trojan.Misc{index:02d}"},
            )
        )
    return families
