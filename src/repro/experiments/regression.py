"""Golden-value regression pinning for the default scenario.

A reproduction package lives or dies by its numbers staying put: a
refactor that silently shifts the default run's results would
invalidate EXPERIMENTS.md.  :data:`GOLDEN` pins the headline values of
``PaperScenario(seed=2010)`` exactly as published in this repository;
:func:`check_headline` compares a run against them and returns the
deviations (empty = reproduction intact).

Update policy: any intentional change to the simulation or the
algorithms that moves these numbers must update both :data:`GOLDEN` and
EXPERIMENTS.md in the same commit.
"""

from __future__ import annotations

from typing import Mapping

#: Pinned headline of ``PaperScenario(seed=2010).run()``.
GOLDEN: dict[str, int] = {
    "events": 14_687,
    "samples_collected": 6_586,
    "samples_executed": 5_400,
    "e_clusters": 37,
    "p_clusters": 21,
    "m_clusters": 254,
    "b_clusters": 961,
    "size1_b_clusters": 913,
}


def check_headline(measured: Mapping[str, int]) -> list[str]:
    """Deviations of ``measured`` from the pinned golden values.

    Returns human-readable mismatch descriptions; an empty list means
    the default-seed reproduction is byte-for-byte intact.
    """
    deviations: list[str] = []
    for key, expected in GOLDEN.items():
        actual = measured.get(key)
        if actual != expected:
            deviations.append(f"{key}: expected {expected}, measured {actual}")
    return deviations
