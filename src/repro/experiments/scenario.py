"""The end-to-end paper-scale scenario.

:class:`PaperScenario` is the one-call entry point of the reproduction:
it builds the deployment, generates the synthetic landscape, observes it
through the honeypot pipeline, enriches the dataset (AV + sandbox), and
runs both clustering perspectives.  The result, a :class:`ScenarioRun`,
carries every artifact the per-table/figure drivers need.

The default configuration targets the paper's observation period (74
weeks, January 2008 - May 2009) and deployment footprint (30 network
locations x 5 monitored addresses); ``scale`` shrinks the landscape for
fast tests while preserving its shape.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.epm import EPMResult
from repro.core.invariants import InvariantPolicy
from repro.egpm.dataset import SGNetDataset
from repro.enrich.pipeline import EnrichmentPipeline
from repro.enrich.virustotal import VirusTotalService
from repro.experiments.catalog import Catalog
from repro.experiments.stages import StageContext, execute_stages
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.health import HealthReport, evaluate_health
from repro.obs.log import get_logger
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry, MetricsSnapshot
from repro.obs.trace import Tracer, TraceSpan, use_tracer
from repro.obs.windows import WindowReport, build_window_report
from repro.sandbox.anubis import AnubisService
from repro.sandbox.clustering import BehaviorClustering, ClusteringConfig
from repro.sandbox.execution import SandboxConfig
from repro.util.parallel import BACKENDS, get_executor
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid
from repro.util.timing import StageTimings
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.cache import StageStore

log = get_logger("experiments.scenario")


@dataclass(frozen=True)
class ScenarioConfig:
    """Scenario-level knobs.

    ``executor``/``jobs`` select the parallel backend the
    embarrassingly-parallel stages run on.  They are *execution-only*
    knobs: every backend produces bit-identical artifacts, so they are
    excluded from the scenario cache fingerprint
    (:func:`repro.experiments.cache.scenario_fingerprint`).
    """

    n_weeks: int = 74
    scale: float = 1.0
    deployment: DeploymentConfig = field(default_factory=DeploymentConfig)
    invariant_policy: InvariantPolicy = field(default_factory=InvariantPolicy)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    sandbox: SandboxConfig = field(default_factory=SandboxConfig)
    #: Parallel backend for sandbox execution, E/P/M fits and LSH
    #: verification: "serial", "thread" or "process".
    executor: str = "serial"
    #: Worker count for parallel backends; 0 = one worker per core.
    jobs: int = 0
    #: Opt-in span profiling: per-span CPU time, peak RSS and GC
    #: collections attached as span attributes.  Execution-only like
    #: ``executor``/``jobs`` — it cannot change any artifact.
    profile: bool = False
    #: Write the live pipeline event stream (JSON lines) to this path.
    #: Execution-only: the stream is pure telemetry and cannot change
    #: any artifact.  Ignored when the caller already activated a
    #: recording event bus (the CLI does).
    events: str | None = None
    #: Size-rotate the event sink once it exceeds this many bytes
    #: (``None`` = never rotate — the pre-PR-9 behaviour).  Rotated-out
    #: events are drop-accounted, never silently lost.  Execution-only.
    events_max_bytes: int | None = None
    #: Backup files the rotating event sink retains.  Execution-only.
    events_backups: int = 1
    #: Keep the newest N events in a bounded in-process ring buffer
    #: alongside the other sinks (0 = no ring).  Evictions are counted
    #: into ``events.dropped``.  Execution-only.
    ring: int = 0
    #: Render live per-stage progress (item counts, ETA) to stderr
    #: while the pipeline runs.  Execution-only, off by default.
    progress: bool = False
    #: Run the batch (columnar / vectorized) kernels for invariant
    #: discovery and LSH signature+verification.  Execution-only: the
    #: kernels are bit-identical to the scalar paths (the property tests
    #: and the CI digest-identity check enforce it), so both settings
    #: share one cache fingerprint.
    columnar: bool = True
    #: Number of time-slice shards the observation stage streams the
    #: landscape through (0 = unsharded single pass).  Execution-only:
    #: shards are processed in global time order and every per-event
    #: draw comes from the event's own named substream, so the dataset
    #: is bit-identical for any shard count.
    shards: int = 0
    #: Width, in weeks, of the landscape-telemetry windows folded after
    #: the pipeline (0 = no windowed telemetry).  Execution-only: the
    #: window report is derived *from* the artifacts and cannot change
    #: them, so every setting shares one cache fingerprint.
    windows: int = 4

    def __post_init__(self) -> None:
        require(self.n_weeks >= 4, "scenario needs at least 4 weeks")
        require(self.scale > 0, "scale must be positive")
        require(self.executor in BACKENDS, f"unknown executor backend {self.executor!r}")
        require(self.jobs >= 0, "jobs must be >= 0 (0 = one worker per core)")
        require(self.shards >= 0, "shards must be >= 0 (0 = unsharded)")
        require(self.windows >= 0, "windows must be >= 0 (0 = no windowed telemetry)")
        require(
            self.events_max_bytes is None or self.events_max_bytes > 0,
            "events_max_bytes must be > 0 (None = never rotate)",
        )
        require(self.events_backups >= 1, "events_backups must be >= 1")
        require(self.ring >= 0, "ring must be >= 0 (0 = no ring buffer)")


@dataclass
class ScenarioRun:
    """Every artifact of one full pipeline run."""

    config: ScenarioConfig
    seed: int
    grid: TimeGrid
    catalog: Catalog
    deployment: SGNetDeployment
    dataset: SGNetDataset
    anubis: AnubisService
    virustotal: VirusTotalService
    enrichment: EnrichmentPipeline
    epm: EPMResult
    bclusters: BehaviorClustering
    #: Per-stage wall times of the run that built these artifacts — a
    #: flat view derived from ``trace``'s direct children, kept for
    #: backward compatibility.
    timings: StageTimings = field(default_factory=StageTimings)
    #: Root of the hierarchical span tree recorded while building.
    trace: TraceSpan | None = None
    #: Frozen metric snapshot of the build (counters/gauges/histograms).
    metrics: MetricsSnapshot | None = None
    #: The run's receipt: fingerprint, span tree, metrics, digests.
    manifest: RunManifest | None = None
    #: Per-stage cache disposition of the build: stage name ->
    #: ``"hit"`` (replayed from the stage store), ``"miss"`` (computed
    #: and stored) or ``"off"`` (computed, no store consulted).
    stage_cache: dict[str, str] = field(default_factory=dict)
    #: Per-window landscape telemetry (``None`` with ``windows=0``).
    windows: WindowReport | None = None
    #: The run's SLO/health evaluation against the default rule set.
    health: HealthReport | None = None

    def headline(self) -> dict[str, int]:
        """The §4/§4.1 headline numbers of this run."""
        counts = self.epm.counts()
        return {
            "events": len(self.dataset),
            "samples_collected": self.dataset.n_samples,
            "samples_executed": self.anubis.n_reports,
            "e_clusters": counts["e_clusters"],
            "p_clusters": counts["p_clusters"],
            "m_clusters": counts["m_clusters"],
            "b_clusters": self.bclusters.n_clusters,
            "size1_b_clusters": len(self.bclusters.singletons()),
        }


class PaperScenario:
    """Configured, reproducible end-to-end run of the whole stack."""

    def __init__(self, seed: int = 2010, config: ScenarioConfig | None = None) -> None:
        self.seed = seed
        self.config = config or ScenarioConfig()

    def run(self, *, stage_store: "StageStore | None" = None) -> ScenarioRun:
        """Execute the full pipeline and return all artifacts.

        The pipeline is the stage DAG of
        :data:`repro.experiments.stages.STAGES`; with a ``stage_store``
        every stage whose content-addressed fingerprint is already
        stored replays from disk, and only stages downstream of the
        first invalidated dependency recompute — cold, warm and
        partially-warm runs produce bit-identical artifacts.

        The parallelisable stages (sandbox enrichment, E/P/M fits, LSH
        verification) run on the backend named by
        ``config.executor``/``config.jobs``.  The whole build is traced:
        every stage becomes a span in ``run.trace`` (with nested spans
        from the LSH and enrichment layers) carrying its cache
        disposition, metrics from every instrumented layer land in
        ``run.metrics``, and ``run.manifest`` records the config
        fingerprint, per-stage fingerprints and artifact digests.  If
        the caller already activated a metrics registry, counters
        accumulate there; otherwise the run records into its own fresh
        registry.
        """
        # Deferred import: cache imports this module at top level.
        from repro.experiments.cache import (
            StageCacheSession,
            scenario_fingerprint,
            stage_fingerprints,
        )

        registry = obs_metrics.active()
        if not registry.recording:
            registry = MetricsRegistry()
        bus = obs_events.active_bus()
        owns_bus = not bus.recording and (
            self.config.events is not None
            or self.config.progress
            or self.config.ring > 0
        )
        if owns_bus:
            transports: list = []
            if self.config.events is not None:
                transports.append(
                    obs_events.FileTransport(
                        self.config.events,
                        max_bytes=self.config.events_max_bytes,
                        backups=self.config.events_backups,
                    )
                )
            if self.config.ring > 0:
                transports.append(obs_events.RingTransport(self.config.ring))
            if self.config.progress:
                transports.append(obs_events.ProgressRenderer(sys.stderr))
            bus = obs_events.EventBus(transports)
        tracer = Tracer("scenario", profile=self.config.profile)
        log.info(
            "scenario starting",
            extra={
                "seed": self.seed,
                "weeks": self.config.n_weeks,
                "scale": self.config.scale,
                "executor": self.config.executor,
            },
        )
        # The bus may be session-scoped (the CLI installs one around the
        # cache layer too), so the manifest's event summary is the
        # *delta* emitted by this run, not the session totals.
        counts_before = bus.summary() if bus.recording else {}
        drops_before = bus.drop_counts() if bus.recording else {}
        fingerprint = scenario_fingerprint(self.seed, self.config)
        fingerprints = stage_fingerprints(self.seed, self.config)
        session = (
            StageCacheSession(stage_store, self.seed, self.config, fingerprints)
            if stage_store is not None
            else None
        )
        with obs_metrics.use(registry), use_tracer(tracer), obs_events.use_bus(bus):
            bus.emit(
                "run.start",
                seed=self.seed,
                weeks=self.config.n_weeks,
                scale=self.config.scale,
                executor=self.config.executor,
            )
            executor = get_executor(self.config.executor, self.config.jobs)
            ctx = StageContext(
                seed=self.seed,
                config=self.config,
                grid=TimeGrid(0, self.config.n_weeks * WEEK_SECONDS),
                source=RandomSource(self.seed),
                executor=executor,
            )
            stage_cache = execute_stages(ctx, tracer, session=session)
            window_report: WindowReport | None = None
            if self.config.windows > 0:
                # The windowed fold is derived telemetry, not a pipeline
                # stage: it reads the finished artifacts, so it sits
                # after the DAG and is never cached (cache="off").
                with tracer.span("windows") as span:
                    window_report = build_window_report(
                        ctx["dataset"],
                        ctx["epm"],
                        ctx["bclusters"],
                        ctx.grid,
                        seed=self.seed,
                        fingerprint=fingerprint,
                        window_weeks=self.config.windows,
                    )
                    span.set(cache="off", windows=window_report.n_windows)
                    self._emit_window_telemetry(registry, bus, window_report)
                crossview_summary = window_report.crossview
            else:
                from repro.analysis.crossview import CrossView

                crossview_summary = CrossView(
                    ctx["dataset"], ctx["epm"], ctx["bclusters"]
                ).summary()
            for name in sorted(crossview_summary):
                registry.gauge(f"crossview.{name}").set(crossview_summary[name])

        root = tracer.finish()
        run = ScenarioRun(
            config=self.config,
            seed=self.seed,
            grid=ctx.grid,
            catalog=ctx["catalog"],
            deployment=ctx["deployment"],
            dataset=ctx["dataset"],
            anubis=ctx["anubis"],
            virustotal=ctx["virustotal"],
            enrichment=ctx["enrichment"],
            epm=ctx["epm"],
            bclusters=ctx["bclusters"],
            timings=root.stage_timings(),
            trace=root,
            metrics=registry.snapshot(),
            stage_cache=stage_cache,
            windows=window_report,
        )
        from repro.experiments.regression import check_headline

        headline = run.headline()
        deviations = check_headline(headline)
        for deviation in deviations:
            bus.emit("golden.deviation", detail=deviation)
        # Health is judged on what the run just recorded: the metric
        # snapshot, its own golden deviations and the window series.
        health = evaluate_health(
            {"metrics": run.metrics.as_dict(), "golden_deviations": deviations},
            window_report.as_dict() if window_report is not None else None,
        )
        run.health = health
        for finding in health.findings:
            registry.counter("health.findings", severity=finding.severity).inc()
            bus.emit(
                "health.finding",
                rule=finding.rule,
                severity=finding.severity,
                target=finding.target,
                value=finding.value,
                window=finding.window,
            )
        bus.emit(
            "health.summary", rules=health.rules_evaluated, **health.summary()
        )
        bus.emit("run.finish", seconds=round(root.seconds, 6), **headline)
        # Bounded-transport accounting, after the last pipeline event:
        # announce drops on the stream (one transport.drop per dropping
        # transport), then read the summary and the drop counts — in
        # that order, with nothing emitted in between, so for every
        # transport ``kept + dropped`` exactly equals the per-kind
        # counts the manifest claims.  The per-run delta lands in
        # events.dropped counters and the bus's inter-arrival sketch is
        # merged before the final snapshot, so every overflow is
        # visible in the manifest's metrics too.
        event_summary = None
        event_drops: dict[str, dict[str, int]] | None = None
        if bus.recording:
            bus.flush_drops()
            event_summary = {
                kind: count - counts_before.get(kind, 0)
                for kind, count in bus.summary().items()
                if count - counts_before.get(kind, 0) > 0
            }
            event_drops = {}
            for transport_name, kinds in bus.drop_counts().items():
                before = drops_before.get(transport_name, {})
                for kind, dropped in kinds.items():
                    delta = dropped - before.get(kind, 0)
                    if delta > 0:
                        registry.counter(
                            "events.dropped", kind=kind, transport=transport_name
                        ).inc(delta)
                        event_drops.setdefault(transport_name, {})[kind] = delta
            event_drops = event_drops or None
            interarrival = bus.interarrival()
            if interarrival.get("count"):
                registry.sketch(
                    "events.interarrival",
                    alpha=float(interarrival["alpha"]),
                    max_bins=int(interarrival["max_bins"]),
                ).merge(interarrival)
        # Re-snapshot so the manifest's metrics include health.findings
        # and the drop/inter-arrival accounting just recorded.
        run.metrics = registry.snapshot()
        run.manifest = build_manifest(
            run,
            fingerprint=fingerprint,
            events=event_summary,
            stages=fingerprints,
            health=health.summary(),
            event_drops=event_drops,
        )
        if owns_bus:
            bus.close()
        log.info(
            "scenario finished",
            extra={"seconds": round(root.seconds, 3), **headline},
        )
        return run

    @staticmethod
    def _emit_window_telemetry(registry, bus, report: WindowReport) -> None:
        """Mirror a window report onto the metric registry and event bus.

        One ``window.rollup`` event per window carries every series
        value (what ``repro obs dashboard --follow`` folds back into a
        live view); the gauges/histogram make the windowed shape
        visible in plain metric snapshots and ``obs diff``.
        """
        registry.gauge("window.count").set(report.n_windows)
        registry.gauge("window.weeks").set(report.window_weeks)
        per_window_events = registry.histogram("window.events", SIZE_BUCKETS)
        for value in report.series["events"]:
            per_window_events.observe(value)
        for window in range(report.n_windows):
            bus.emit(
                "window.rollup",
                window=window,
                fingerprint=report.fingerprint,
                seed=report.seed,
                window_weeks=report.window_weeks,
                n_windows=report.n_windows,
                **report.window_row(window),
            )


def config_from_canonical(payload) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from its canonicalized form.

    Stored run manifests keep the config as the ``__type__``-tagged
    maps :func:`repro.util.canonical.canonicalize` produces; this is
    the inverse for the known config dataclasses, so a stored run can
    be replayed (``repro model export --run``) without re-specifying
    its flags.  Unknown ``__type__`` names fail loudly rather than
    silently dropping config.
    """
    import dataclasses as _dataclasses

    from repro.honeypot.shellcode import ShellcodeConfig

    known = {
        cls.__name__: cls
        for cls in (
            ScenarioConfig,
            DeploymentConfig,
            ShellcodeConfig,
            InvariantPolicy,
            ClusteringConfig,
            SandboxConfig,
        )
    }

    def rebuild(value):
        if isinstance(value, dict):
            name = value.get("__type__")
            require(name is not None, f"config payload has no __type__: {value!r}")
            cls = known.get(name)
            require(cls is not None, f"unknown config dataclass {name!r}")
            names = {f.name for f in _dataclasses.fields(cls)}
            return cls(
                **{k: rebuild(v) for k, v in value.items() if k in names}
            )
        if isinstance(value, list):
            return tuple(rebuild(v) for v in value)
        return value

    config = rebuild(payload)
    require(
        isinstance(config, ScenarioConfig),
        f"canonical payload is a {type(config).__name__}, not a ScenarioConfig",
    )
    return config


def small_scenario(seed: int = 2010, *, scale: float = 0.15, n_weeks: int = 30) -> ScenarioRun:
    """A reduced run for tests: same landscape shape, sub-second-ish cost."""
    config = ScenarioConfig(
        n_weeks=n_weeks,
        scale=scale,
        deployment=DeploymentConfig(n_networks=10, sensors_per_network=3),
    )
    return PaperScenario(seed=seed, config=config).run()
