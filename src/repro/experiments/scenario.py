"""The end-to-end paper-scale scenario.

:class:`PaperScenario` is the one-call entry point of the reproduction:
it builds the deployment, generates the synthetic landscape, observes it
through the honeypot pipeline, enriches the dataset (AV + sandbox), and
runs both clustering perspectives.  The result, a :class:`ScenarioRun`,
carries every artifact the per-table/figure drivers need.

The default configuration targets the paper's observation period (74
weeks, January 2008 - May 2009) and deployment footprint (30 network
locations x 5 monitored addresses); ``scale`` shrinks the landscape for
fast tests while preserving its shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.epm import EPMClustering, EPMResult
from repro.core.invariants import InvariantPolicy
from repro.egpm.dataset import SGNetDataset
from repro.enrich.pipeline import EnrichmentPipeline
from repro.enrich.virustotal import VirusTotalService
from repro.experiments.catalog import Catalog, build_catalog
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment
from repro.malware.landscape import LandscapeGenerator
from repro.sandbox.anubis import AnubisService
from repro.sandbox.clustering import BehaviorClustering, ClusteringConfig
from repro.sandbox.execution import Sandbox, SandboxConfig
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid
from repro.util.validation import require


@dataclass(frozen=True)
class ScenarioConfig:
    """Scenario-level knobs."""

    n_weeks: int = 74
    scale: float = 1.0
    deployment: DeploymentConfig = field(default_factory=DeploymentConfig)
    invariant_policy: InvariantPolicy = field(default_factory=InvariantPolicy)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    sandbox: SandboxConfig = field(default_factory=SandboxConfig)

    def __post_init__(self) -> None:
        require(self.n_weeks >= 4, "scenario needs at least 4 weeks")
        require(self.scale > 0, "scale must be positive")


@dataclass
class ScenarioRun:
    """Every artifact of one full pipeline run."""

    config: ScenarioConfig
    seed: int
    grid: TimeGrid
    catalog: Catalog
    deployment: SGNetDeployment
    dataset: SGNetDataset
    anubis: AnubisService
    virustotal: VirusTotalService
    enrichment: EnrichmentPipeline
    epm: EPMResult
    bclusters: BehaviorClustering

    def headline(self) -> dict[str, int]:
        """The §4/§4.1 headline numbers of this run."""
        counts = self.epm.counts()
        return {
            "events": len(self.dataset),
            "samples_collected": self.dataset.n_samples,
            "samples_executed": self.anubis.n_reports,
            "e_clusters": counts["e_clusters"],
            "p_clusters": counts["p_clusters"],
            "m_clusters": counts["m_clusters"],
            "b_clusters": self.bclusters.n_clusters,
            "size1_b_clusters": len(self.bclusters.singletons()),
        }


class PaperScenario:
    """Configured, reproducible end-to-end run of the whole stack."""

    def __init__(self, seed: int = 2010, config: ScenarioConfig | None = None) -> None:
        self.seed = seed
        self.config = config or ScenarioConfig()

    def run(self) -> ScenarioRun:
        """Execute the full pipeline and return all artifacts."""
        source = RandomSource(self.seed)
        grid = TimeGrid(0, self.config.n_weeks * WEEK_SECONDS)

        deployment = SGNetDeployment(
            source.child("deployment"), self.config.deployment
        )
        catalog = build_catalog(
            source.child("catalog"),
            grid,
            deployment.sensor_networks,
            scale=self.config.scale,
        )
        generator = LandscapeGenerator(
            catalog.families, deployment.sensor_addresses, grid, source.child("landscape")
        )
        dataset = deployment.observe(generator)

        sandbox = Sandbox(catalog.environment, self.config.sandbox)
        anubis = AnubisService(sandbox)
        virustotal = VirusTotalService()
        enrichment = EnrichmentPipeline(anubis, virustotal)
        enrichment.enrich(dataset)

        epm = EPMClustering(policy=self.config.invariant_policy).fit(dataset)
        bclusters = anubis.cluster(self.config.clustering)

        return ScenarioRun(
            config=self.config,
            seed=self.seed,
            grid=grid,
            catalog=catalog,
            deployment=deployment,
            dataset=dataset,
            anubis=anubis,
            virustotal=virustotal,
            enrichment=enrichment,
            epm=epm,
            bclusters=bclusters,
        )


def small_scenario(seed: int = 2010, *, scale: float = 0.15, n_weeks: int = 30) -> ScenarioRun:
    """A reduced run for tests: same landscape shape, sub-second-ish cost."""
    config = ScenarioConfig(
        n_weeks=n_weeks,
        scale=scale,
        deployment=DeploymentConfig(n_networks=10, sensors_per_network=3),
    )
    return PaperScenario(seed=seed, config=config).run()
