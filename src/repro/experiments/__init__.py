"""Paper-scale scenario and per-table/figure experiment drivers.

:class:`~repro.experiments.scenario.PaperScenario` wires the whole stack
together: catalog -> landscape -> deployment -> enrichment -> EPM +
B-clustering.  The ``experiments`` modules then regenerate each table
and figure of the paper's evaluation from a :class:`ScenarioRun`:

===========================  =========================================
``run.headline()``           §4.1 headline counts
``table1(run)``              Table 1 (features and invariant counts)
``figure3(run)``             Figure 3 (E/P/M/B relation graph)
``figure4(run)``             Figure 4 (size-1 anomaly characterisation)
``figure5(run)``             Figure 5 (propagation context, worm vs bot)
``table2(run)``              Table 2 (IRC C&C correlation)
===========================  =========================================
"""

from repro.experiments.cache import ScenarioCache, cached_run, scenario_fingerprint
from repro.experiments.scenario import (
    PaperScenario,
    ScenarioConfig,
    ScenarioRun,
    small_scenario,
)
from repro.experiments.drivers import (
    anomaly_report,
    figure3,
    figure4,
    figure5,
    headline,
    mcluster13_report,
    table1,
    table2,
)

__all__ = [
    "PaperScenario",
    "ScenarioCache",
    "ScenarioConfig",
    "ScenarioRun",
    "anomaly_report",
    "cached_run",
    "scenario_fingerprint",
    "figure3",
    "figure4",
    "figure5",
    "headline",
    "mcluster13_report",
    "small_scenario",
    "table1",
    "table2",
]
