"""The per-stage artifact DAG of the paper pipeline.

The end-to-end scenario is a fixed topological order of expensive
stages (deployment → catalog → observe → enrich → epm / bcluster).
Each :class:`StageSpec` declares, explicitly, everything that can
change the stage's output:

* ``config_keys`` — the :class:`~repro.experiments.scenario.ScenarioConfig`
  fields the stage reads (plus the master seed, which every stage
  depends on through its named RNG substream);
* ``parents`` — the upstream stages whose artifacts it consumes;
* ``provides`` — the context keys the stage produces (or mutates: the
  ``observe`` stage re-provides ``deployment`` because observation
  trains the sensor FSMs, and ``enrich`` re-provides ``dataset``
  because enrichment annotates records in place).

That declaration is what the incremental cache layer
(:mod:`repro.experiments.cache`) fingerprints: a stage's content
address covers its config subset and its parents' fingerprints, so a
changed LSH threshold re-keys ``bcluster`` alone while
``deployment``/``catalog``/``observe``/``enrich``/``epm`` replay from
the stage store.  :func:`execute_stages` is the runner both the cold
and the incremental paths share — replay and recompute are the same
loop, so cold, warm and partially-warm runs produce bit-identical
artifacts by construction (the determinism matrix in
``tests/experiments/test_stage_cache.py`` enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.epm import EPMClustering
from repro.enrich.pipeline import EnrichmentPipeline
from repro.enrich.virustotal import VirusTotalService
from repro.experiments.catalog import build_catalog
from repro.honeypot.deployment import SGNetDeployment
from repro.malware.landscape import LandscapeGenerator
from repro.obs import events as obs_events
from repro.obs.log import get_logger
from repro.sandbox.anubis import AnubisService
from repro.sandbox.execution import Sandbox
from repro.util.rng import RandomSource
from repro.util.timegrid import TimeGrid
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.scenario import ScenarioConfig
    from repro.obs.trace import Tracer
    from repro.util.parallel import Executor

log = get_logger("experiments.stages")

#: Span attribute values for a stage's cache disposition: replayed from
#: the stage store, recomputed under an active store, or computed with
#: no store consulted at all.
CACHE_STATUSES = ("hit", "miss", "off")


@dataclass
class StageContext:
    """Everything a stage compute function may read or extend."""

    seed: int
    config: "ScenarioConfig"
    grid: TimeGrid
    source: RandomSource
    executor: "Executor"
    artifacts: dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.artifacts[key]


@dataclass(frozen=True)
class StageSpec:
    """One node of the pipeline DAG: dependencies in, artifacts out."""

    name: str
    #: ScenarioConfig field names this stage's output depends on.
    config_keys: tuple[str, ...]
    #: Upstream stages whose artifacts this stage consumes.
    parents: tuple[str, ...]
    #: Context keys this stage produces (the stored artifact payload).
    provides: tuple[str, ...]
    #: Builds the stage's artifacts into ``ctx.artifacts``.
    compute: Callable[[StageContext], None]
    #: Sets descriptive span attributes from the (built or replayed)
    #: artifacts — runs on both the compute and the replay path.
    annotate: Callable[[StageContext, object], None]


def _compute_deployment(ctx: StageContext) -> None:
    ctx.artifacts["deployment"] = SGNetDeployment(
        ctx.source.child("deployment"), ctx.config.deployment
    )


def _annotate_deployment(ctx: StageContext, span) -> None:
    span.set(sensors=len(ctx["deployment"].sensors))


def _compute_catalog(ctx: StageContext) -> None:
    ctx.artifacts["catalog"] = build_catalog(
        ctx.source.child("catalog"),
        ctx.grid,
        ctx["deployment"].sensor_networks,
        scale=ctx.config.scale,
    )


def _annotate_catalog(ctx: StageContext, span) -> None:
    span.set(families=len(ctx["catalog"].families))


def _compute_observe(ctx: StageContext) -> None:
    generator = LandscapeGenerator(
        ctx["catalog"].families,
        ctx["deployment"].sensor_addresses,
        ctx.grid,
        ctx.source.child("landscape"),
    )
    if ctx.config.shards > 0:
        from repro.experiments.shards import observe_sharded

        ctx.artifacts["dataset"] = observe_sharded(
            ctx["deployment"],
            generator,
            n_shards=ctx.config.shards,
            executor=ctx.executor,
        )
    else:
        ctx.artifacts["dataset"] = ctx["deployment"].observe(generator)
    log.debug("observation done", extra={"events": len(ctx["dataset"])})


def _annotate_observe(ctx: StageContext, span) -> None:
    span.set(events=len(ctx["dataset"]), samples=ctx["dataset"].n_samples)


def _compute_enrich(ctx: StageContext) -> None:
    sandbox = Sandbox(ctx["catalog"].environment, ctx.config.sandbox)
    anubis = AnubisService(sandbox)
    virustotal = VirusTotalService()
    enrichment = EnrichmentPipeline(anubis, virustotal)
    enrichment.enrich(ctx["dataset"], executor=ctx.executor)
    ctx.artifacts.update(
        anubis=anubis, virustotal=virustotal, enrichment=enrichment
    )


def _annotate_enrich(ctx: StageContext, span) -> None:
    span.set(**ctx["enrichment"].stats())


def _compute_epm(ctx: StageContext) -> None:
    epm = EPMClustering(policy=ctx.config.invariant_policy).fit(
        ctx["dataset"], executor=ctx.executor, columnar=ctx.config.columnar
    )
    ctx.artifacts["epm"] = epm
    bus = obs_events.active_bus()
    counts = epm.counts()
    for perspective in ("e", "p", "m"):
        bus.emit(
            "cluster.milestone",
            perspective=perspective,
            clusters=counts[f"{perspective}_clusters"],
        )


def _annotate_epm(ctx: StageContext, span) -> None:
    span.set(**ctx["epm"].counts())


def _compute_bcluster(ctx: StageContext) -> None:
    bclusters = ctx["anubis"].cluster(
        ctx.config.clustering,
        executor=ctx.executor,
        vectorize=ctx.config.columnar,
    )
    ctx.artifacts["bclusters"] = bclusters
    obs_events.active_bus().emit(
        "cluster.milestone", perspective="b", clusters=bclusters.n_clusters
    )


def _annotate_bcluster(ctx: StageContext, span) -> None:
    span.set(
        clusters=ctx["bclusters"].n_clusters,
        candidate_pairs=ctx["bclusters"].n_candidate_pairs,
    )


#: The pipeline DAG in topological order.  ``config_keys`` subsets plus
#: the seed are exactly what each stage's cache fingerprint covers —
#: the dependency-key table in ``docs/ARCHITECTURE.md`` mirrors this
#: tuple, and the invalidation-matrix test asserts it key by key.
STAGES: tuple[StageSpec, ...] = (
    StageSpec(
        name="deployment",
        config_keys=("deployment",),
        parents=(),
        provides=("deployment",),
        compute=_compute_deployment,
        annotate=_annotate_deployment,
    ),
    StageSpec(
        name="catalog",
        config_keys=("n_weeks", "scale"),
        parents=("deployment",),
        provides=("catalog",),
        compute=_compute_catalog,
        annotate=_annotate_catalog,
    ),
    StageSpec(
        name="observe",
        config_keys=("n_weeks",),
        parents=("deployment", "catalog"),
        provides=("dataset", "deployment"),
        compute=_compute_observe,
        annotate=_annotate_observe,
    ),
    StageSpec(
        name="enrich",
        config_keys=("sandbox",),
        parents=("catalog", "observe"),
        provides=("dataset", "anubis", "virustotal", "enrichment"),
        compute=_compute_enrich,
        annotate=_annotate_enrich,
    ),
    StageSpec(
        name="epm",
        config_keys=("invariant_policy",),
        parents=("enrich",),
        provides=("epm",),
        compute=_compute_epm,
        annotate=_annotate_epm,
    ),
    StageSpec(
        name="bcluster",
        config_keys=("clustering",),
        parents=("enrich",),
        provides=("bclusters",),
        compute=_compute_bcluster,
        annotate=_annotate_bcluster,
    ),
)

STAGE_NAMES: tuple[str, ...] = tuple(spec.name for spec in STAGES)

_BY_NAME: dict[str, StageSpec] = {spec.name: spec for spec in STAGES}


def stage_spec(name: str) -> StageSpec:
    """The :class:`StageSpec` registered under ``name``."""
    require(name in _BY_NAME, f"unknown pipeline stage {name!r}")
    return _BY_NAME[name]


def downstream_of(name: str) -> frozenset[str]:
    """``name`` plus every stage reachable from it through ``parents``."""
    affected = {stage_spec(name).name}
    for spec in STAGES:
        if any(parent in affected for parent in spec.parents):
            affected.add(spec.name)
    return frozenset(affected)


def _check_topology() -> None:
    seen: set[str] = set()
    for spec in STAGES:
        for parent in spec.parents:
            require(
                parent in seen,
                f"stage {spec.name!r} lists parent {parent!r} before it is defined",
            )
        require(spec.name not in seen, f"duplicate stage {spec.name!r}")
        seen.add(spec.name)


_check_topology()


def execute_stages(
    ctx: StageContext, tracer: "Tracer", session=None
) -> dict[str, str]:
    """Drive the DAG top to bottom; returns each stage's cache status.

    With no ``session`` every stage computes (status ``"off"``).  With
    one, each stage first asks the session for the artifact stored
    under its fingerprint: a hit replays the pickled artifacts into the
    context (the session emits ``cache.stage_hit``); a miss computes
    and stores them.  Because a stage's fingerprint chains over its
    parents' fingerprints, the first invalidated stage automatically
    invalidates everything downstream of it — the loop needs no
    explicit cascade.

    Every stage opens a span either way, carrying a ``cache`` attribute
    (``hit``/``miss``/``off``) and its descriptive artifact attributes,
    so warm and cold manifests expose the same stage structure.
    """
    statuses: dict[str, str] = {}
    for spec in STAGES:
        with tracer.span(spec.name) as span:
            loaded = session.load(spec.name) if session is not None else None
            if loaded is not None:
                ctx.artifacts.update(loaded)
                status = "hit"
            else:
                spec.compute(ctx)
                status = "off" if session is None else "miss"
                if session is not None:
                    session.save(
                        spec.name,
                        {key: ctx.artifacts[key] for key in spec.provides},
                    )
            span.set(cache=status)
            if session is not None:
                span.set(fingerprint=session[spec.name][:12])
            spec.annotate(ctx, span)
            statuses[spec.name] = status
    return statuses
