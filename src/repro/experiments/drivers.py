"""Per-table/figure experiment drivers.

Each function consumes a :class:`~repro.experiments.scenario.ScenarioRun`
and returns ``(data, rendered_text)``: structured results for assertions
plus the text rendering the benchmark harness prints next to the paper's
reported values.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.analysis.avnames import (
    av_name_distribution,
    dominant_p_cluster,
    ep_coordinate_distribution,
)
from repro.analysis.context import PropagationContext
from repro.analysis.crossview import CrossView, heal_singletons
from repro.analysis.irc import CnCCorrelation
from repro.analysis.relations import RelationGraph
from repro.core.features import Dimension
from repro.core.patterns import WILDCARD, format_pattern
from repro.experiments.scenario import ScenarioRun
from repro.util.tables import TextTable, format_histogram

#: Paper-reported values, used in the rendered comparisons.
PAPER = {
    "samples_collected": 6353,
    "samples_executed": 5165,
    "e_clusters": 39,
    "p_clusters": 27,
    "m_clusters": 260,
    "b_clusters": 972,
    "size1_b_clusters": 860,
    "table1_invariants": {
        "fsm_path_id": 50,
        "dst_port": 3,
        "protocol": 6,
        "filename": 22,
        "port": 4,
        "interaction": 5,
        "md5": 57,
        "size": 95,
        "magic": 7,
        "machine_type": 1,
        "n_sections": 8,
        "n_dlls": 7,
        "os_version": 1,
        "linker_version": 7,
        "section_names": 43,
        "imported_dlls": 11,
        "kernel32_symbols": 15,
    },
}


def headline(run: ScenarioRun) -> tuple[dict[str, int], str]:
    """§4/§4.1 headline counts, measured vs paper."""
    measured = run.headline()
    table = TextTable(
        ["quantity", "paper", "measured"],
        title="Headline counts (§4, §4.1): paper vs reproduction",
    )
    for key in (
        "samples_collected",
        "samples_executed",
        "e_clusters",
        "p_clusters",
        "m_clusters",
        "b_clusters",
        "size1_b_clusters",
    ):
        table.add_row([key, PAPER.get(key, "-"), measured[key]])
    table.add_row(["events", "(not reported)", measured["events"]])
    return measured, table.render()


def table1(run: ScenarioRun) -> tuple[dict[str, int], str]:
    """Table 1: per-feature invariant counts."""
    flat: dict[str, int] = {}
    rows = TextTable(
        ["dim", "feature", "paper", "measured"],
        title="Table 1: selected features and invariant counts",
    )
    dim_names = {Dimension.EPSILON: "Epsilon", Dimension.PI: "Pi", Dimension.MU: "Mu"}
    for dimension, counts in run.epm.table1().items():
        for feature, count in counts.items():
            flat[feature] = count
            rows.add_row(
                [
                    dim_names[dimension],
                    feature,
                    PAPER["table1_invariants"].get(feature, "-"),
                    count,
                ]
            )
    return flat, rows.render()


def figure3(run: ScenarioRun, *, min_events: int = 30) -> tuple[RelationGraph, str]:
    """Figure 3: the filtered E/P/M/B relation graph and its key facts."""
    graph = RelationGraph(
        run.dataset, run.epm, run.bclusters, min_events=min_events
    )
    stats = graph.stats()
    lines = [
        f"Figure 3: EPM/B relations (clusters with >= {min_events} events)",
        graph.render_text(),
        "",
        "Key facts the paper reads off this figure:",
        f"- few E/P combinations vs many M-clusters: "
        f"E={stats.e_nodes}, P={stats.p_nodes}, M={stats.m_nodes}",
        f"- P-clusters shared by multiple exploits: "
        f"{[(p, es) for p, es in graph.shared_payloads()]}",
        f"- B-clusters grouping multiple M-clusters: "
        f"{len(graph.b_cluster_splits())} of {stats.b_nodes}",
    ]
    return graph, "\n".join(lines)


def anomaly_report(run: ScenarioRun, *, heal: bool = True) -> tuple[dict[str, Any], str]:
    """§4.2: singleton anomalies, rare singletons, and healing."""
    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    summary = crossview.summary()
    lines = [
        "Size-1 B-cluster analysis (§4.2)",
        f"paper: 860 of 972 B-clusters are singletons; most are anomalies",
        f"measured: {summary['singleton_b_clusters']} of "
        f"{run.bclusters.n_clusters} B-clusters are singletons",
        f"  anomalies (larger M-cluster dominated by another B-cluster): "
        f"{summary['singleton_anomalies']}",
        f"  rare singletons (1-1 M association): {summary['rare_singletons']}",
        f"  environment splits (one M over several B): "
        f"{summary['environment_splits']}",
    ]
    result: dict[str, Any] = {"summary": summary}
    if heal:
        healed, n_rerun = heal_singletons(
            crossview, run.anubis, run.dataset, config=run.config.clustering
        )
        healed_view = CrossView(run.dataset, run.epm, healed)
        result["healed_summary"] = healed_view.summary()
        result["n_rerun"] = n_rerun
        lines += [
            f"healing: re-executed {n_rerun} samples "
            f"-> singletons {summary['singleton_b_clusters']} -> "
            f"{healed_view.summary()['singleton_b_clusters']}, "
            f"B-clusters {run.bclusters.n_clusters} -> {healed.n_clusters}",
        ]
    return result, "\n".join(lines)


def figure4(run: ScenarioRun) -> tuple[dict[str, Any], str]:
    """Figure 4: AV names and EP coordinates of the anomalous singletons."""
    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    anomalies = crossview.singleton_anomalies()
    md5s = [a.md5 for a in anomalies]
    av = av_name_distribution(run.dataset, md5s)
    ep = ep_coordinate_distribution(run.dataset, run.epm, md5s)
    p_cluster, share = dominant_p_cluster(run.dataset, run.epm, md5s)
    ep_labels = Counter({f"E{e}/P{p}": n for (e, p), n in ep.items()})
    lines = [
        "Figure 4 (top): AV names of the size-1 anomaly samples",
        format_histogram(dict(av.most_common(12)), width=40),
        "",
        "Figure 4 (bottom): EP propagation coordinates of the same samples",
        format_histogram(dict(ep_labels.most_common(12)), width=40),
        "",
        f"dominant P-cluster: P{p_cluster} carries {share:.0%} of the events "
        f"(paper: nearly all on P-pattern 45, the TCP/9988 PUSH download)",
    ]
    pattern = run.epm.pi.clusters[p_cluster].pattern if p_cluster is not None else None
    if pattern is not None:
        lines.append(
            "P%d pattern: %s" % (p_cluster, format_pattern(pattern, run.epm.pi.feature_names))
        )
    return {"av": av, "ep": ep, "dominant_p": p_cluster, "share": share}, "\n".join(lines)


def figure5(run: ScenarioRun, *, n_bclusters: int = 2) -> tuple[list, str]:
    """Figure 5: propagation context of the biggest multi-M B-clusters."""
    context = PropagationContext(run.dataset, run.grid)
    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    candidates = []
    for b_cluster, members in run.bclusters.clusters.items():
        ms = crossview.m_clusters_of_b(b_cluster)
        if len(ms) >= 2 and len(members) >= 3:
            candidates.append((b_cluster, len(members)))
    candidates.sort(key=lambda bc: -bc[1])
    # The paper contrasts a worm-signature B-cluster (left of Figure 5)
    # with a bot-signature one (right): pick the largest candidate of
    # each regime rather than the two largest overall.
    by_signature: dict[str, int] = {}
    for b_cluster, _n in candidates:
        signature = context.summarize_b_cluster(run.bclusters, b_cluster).signature()
        by_signature.setdefault(signature, b_cluster)
    chosen: list[int] = []
    for wanted in ("worm-like", "bot-like", "ambiguous"):
        if wanted in by_signature and len(chosen) < n_bclusters:
            chosen.append(by_signature[wanted])
    for b_cluster, _n in candidates:  # pad if a regime is absent
        if len(chosen) >= n_bclusters:
            break
        if b_cluster not in chosen:
            chosen.append(b_cluster)

    from repro.sandbox.reporting import render_timeline

    all_results = []
    lines = ["Figure 5: propagation context of two B-clusters split over M-clusters"]
    for b_cluster in chosen:
        contexts = context.figure5(run.epm, run.bclusters, b_cluster)
        all_results.append((b_cluster, contexts))
        lines.append(f"\nB-cluster {b_cluster} "
                     f"({len(run.bclusters.clusters[b_cluster])} samples):")
        table = TextTable(
            [
                "slice",
                "events",
                "sources",
                "/8 blocks",
                "spread",
                "weeks",
                "burstiness",
                "signature",
            ]
        )
        for ctx in contexts[:12]:
            table.add_row(
                [
                    ctx.cluster_label,
                    ctx.n_events,
                    ctx.n_sources,
                    len(ctx.slash8_histogram),
                    f"{ctx.source_spread:.2f}",
                    ctx.weeks_active,
                    f"{ctx.burstiness:.2f}",
                    ctx.signature(),
                ]
            )
        lines.append(table.render())
        lines.append("activity timelines (one char per week: . : | #):")
        for ctx in contexts[:8]:
            strip = render_timeline(ctx.timeline, n_weeks=run.grid.n_weeks)
            lines.append(f"  {ctx.cluster_label:<10} {strip}")
    return all_results, "\n".join(lines)


def table2(run: ScenarioRun) -> tuple[CnCCorrelation, str]:
    """Table 2: IRC C&C rendezvous per M-cluster + infrastructure reuse."""
    correlation = CnCCorrelation(run.dataset, run.epm, run.anubis)
    summary = correlation.infrastructure_summary()
    lines = [
        correlation.render_table2(),
        "",
        "Infrastructure reuse (the bot-herder fingerprint):",
        f"- /24 subnets hosting multiple servers: "
        f"{summary['subnets_with_multiple_servers']} of {summary['subnets']}",
        f"- room names recurring across servers: "
        f"{summary['rooms_recurring_across_servers']}",
        f"- rooms commanding multiple M-clusters (patched botnets): "
        f"{summary['rooms_commanding_multiple_m_clusters']}",
    ]
    return correlation, "\n".join(lines)


def mcluster13_report(run: ScenarioRun) -> tuple[dict[str, Any], str]:
    """§4.2's M-cluster 13 case: per-source polymorphism + env splits.

    Finds the M-cluster whose pattern wildcards the MD5 while pinning
    every PE header feature (the quoted pattern), checks it is split
    across several B-clusters, and verifies the per-source MD5 reuse.
    """
    target = None
    for cid, info in run.epm.mu.clusters.items():
        pattern = dict(zip(run.epm.mu.feature_names, info.pattern))
        if (
            pattern.get("md5") is WILDCARD
            and pattern.get("size") == 59_904
            and pattern.get("linker_version") == 92
        ):
            target = cid
            break
    result: dict[str, Any] = {"m_cluster": target}
    if target is None:
        return result, "M-cluster 13 analogue not found (scenario too small?)"

    info = run.epm.mu.clusters[target]
    events = [run.dataset.events[i] for i in info.event_ids]
    md5_sources: dict[str, set[int]] = {}
    md5_sensors: dict[str, set[int]] = {}
    for event in events:
        if event.malware is None:
            continue
        md5_sources.setdefault(event.malware.md5, set()).add(int(event.source))
        md5_sensors.setdefault(event.malware.md5, set()).add(int(event.sensor))
    multi_sensor = sum(1 for s in md5_sensors.values() if len(s) > 1)
    single_source = sum(1 for s in md5_sources.values() if len(s) == 1)
    crossview = CrossView(run.dataset, run.epm, run.bclusters)
    bs = crossview.b_clusters_of_m(target)
    result.update(
        {
            "n_samples": len(md5_sources),
            "single_source_md5s": single_source,
            "multi_sensor_md5s": multi_sensor,
            "b_clusters": dict(bs),
        }
    )
    lines = [
        f"M-cluster 13 analogue: M{target}",
        "pattern: "
        + format_pattern(info.pattern, run.epm.mu.feature_names),
        f"samples: {len(md5_sources)}; MD5s tied to exactly one source: "
        f"{single_source}; MD5s seen on multiple honeypots: {multi_sensor}",
        "  (paper: content mutates per attacker IP, so the same MD5 recurs"
        " from one source towards many honeypots yet never becomes invariant)",
        f"B-clusters of this single M-cluster: {dict(bs)}",
        "  (paper: several B-clusters - two components / one component /"
        " dead DNS for iliketay.cn)",
    ]
    return result, "\n".join(lines)
