"""The evasion experiment: EPM vs a future, repacking polymorphic engine.

The paper is explicit that EPM "is intentionally simple, and could be
easily evaded in the future by more sophisticated polymorphic engines"
— its value lies in the empirical fact that 2008-era engines did not
bother.  This experiment quantifies that statement: the same worm
lineage is propagated once under Allaple-style per-instance content
mutation and once under a full repacking engine
(:func:`repro.malware.polymorphism.repack_spec`), and the EPM M-cluster
quality against ground truth is compared.

Under ``PER_INSTANCE`` the header features carve the lineage into its
true variants (precision and recall both high).  Under ``REPACK`` every
structural feature is randomised per instance, no useful invariants
survive, and the entire lineage collapses into one wildcard bin —
recall survives trivially, but the clustering carries no information
(one cluster, no variant separation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.quality import QualityScore, ground_truth_labels, precision_recall
from repro.core.epm import EPMClustering, EPMResult
from repro.egpm.dataset import SGNetDataset
from repro.experiments.catalog import (
    allaple_behavior,
    allaple_payload,
    allaple_pe_spec,
    asn1_exploit,
)
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment
from repro.malware.families import FamilySpec, derive_worm_variants
from repro.malware.landscape import LandscapeGenerator
from repro.malware.polymorphism import PolymorphyMode
from repro.malware.population import ContinuousActivity, PopulationSpec
from repro.malware.propagation import PropagationSpec
from repro.net.sampling import UniformSampler
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS, TimeGrid


@dataclass
class EvasionOutcome:
    """Result of observing one engine regime."""

    mode: PolymorphyMode
    dataset: SGNetDataset
    epm: EPMResult
    quality: QualityScore

    @property
    def n_m_clusters(self) -> int:
        """M-clusters found for the lineage."""
        return self.epm.mu.n_clusters


def run_engine(
    mode: PolymorphyMode,
    *,
    seed: int = 2010,
    n_variants: int = 12,
    n_weeks: int = 16,
) -> EvasionOutcome:
    """Propagate one worm lineage under ``mode`` and score EPM against truth."""
    source = RandomSource(seed).child("evasion", mode.value)
    grid = TimeGrid(0, n_weeks * WEEK_SECONDS)
    deployment = SGNetDeployment(
        source.child("deployment"),
        DeploymentConfig(n_networks=10, sensors_per_network=3),
    )

    def population_for(index, rng):
        return PopulationSpec(size=30, sampler=UniformSampler())

    def activity_for(index, rng):
        return ContinuousActivity(3.0)

    variants = derive_worm_variants(
        family="lineage",
        base_pe=allaple_pe_spec(),
        behavior=allaple_behavior(0).with_noise_rate(0.0),
        propagation=PropagationSpec(asn1_exploit(), allaple_payload()),
        n_variants=n_variants,
        source=source.child("derive"),
        population_for=population_for,
        activity_for=activity_for,
        polymorphism=mode,
    )
    family = FamilySpec(name="lineage", variants=variants)
    generator = LandscapeGenerator(
        [family], deployment.sensor_addresses, grid, source.child("landscape")
    )
    dataset = deployment.observe(generator)
    epm = EPMClustering().fit(dataset)

    truth = ground_truth_labels(dataset, level="variant")
    assignment = {
        md5: cluster for md5, cluster in epm.m_cluster_of_samples(dataset).items()
    }
    quality = precision_recall(assignment, truth)
    return EvasionOutcome(mode=mode, dataset=dataset, epm=epm, quality=quality)


def evasion_experiment(
    *, seed: int = 2010, n_variants: int = 12, n_weeks: int = 16
) -> dict[PolymorphyMode, EvasionOutcome]:
    """Run both engine regimes and return their outcomes."""
    return {
        mode: run_engine(mode, seed=seed, n_variants=n_variants, n_weeks=n_weeks)
        for mode in (PolymorphyMode.PER_INSTANCE, PolymorphyMode.REPACK)
    }
