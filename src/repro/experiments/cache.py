"""Content-addressed on-disk caches of scenario artifacts.

Two layers share one canonical-fingerprint substrate:

* :class:`ScenarioCache` — the whole-run cache.  It keys a pickled
  :class:`~repro.experiments.scenario.ScenarioRun` by a SHA-256 over
  the ``(seed, ScenarioConfig)`` pair, so a warm load takes
  milliseconds instead of the multi-second rebuild.
* :class:`StageStore` — the incremental, per-stage artifact store.
  Each pipeline stage (see :data:`repro.experiments.stages.STAGES`)
  gets its own fingerprint covering only the config keys it declares
  plus its parents' fingerprints, chained content-address style.  A
  run replays every stage whose fingerprint is stored and recomputes
  only from the first invalidated stage down: changing the LSH
  threshold re-runs ``bcluster`` alone while the ~17-month
  observation/enrichment artifacts replay.  The whole-run cache is the
  degenerate all-hit case of this DAG.

Execution-only knobs (``executor``, ``jobs``, ``profile``, ``events``,
``progress``) are excluded from every fingerprint: all backends produce
bit-identical artifacts and telemetry sinks cannot change them, so a
run built with the process backend (or with a live event stream
attached) is a valid cache hit for a serial request of the same
scenario.

Each stage artifact is stored next to a JSON sidecar recording the
exact fingerprint payload (config subset, parent fingerprints), which
is what lets ``repro cache explain`` name the config key that
invalidated a missing stage instead of just reporting the miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.experiments.scenario import PaperScenario, ScenarioConfig, ScenarioRun
from repro.experiments.stages import STAGES, StageSpec
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.util.canonical import canonicalize
from repro.util.clock import timestamp
from repro.util.validation import require

log = get_logger("experiments.cache")

#: Bump when the pickled artifact layout changes incompatibly; old
#: entries then miss instead of unpickling into stale shapes.
#: 2: ScenarioRun grew trace/metrics/manifest observability fields.
#: 3: TraceSpan grew start offsets; RunManifest grew created_at and
#:    golden_deviations (schema 2).
#: 4: ScenarioConfig grew events/progress; RunManifest grew
#:    event_summary (schema 3).
#: 5: per-stage artifact DAG — ScenarioRun grew stage_cache, RunManifest
#:    grew stage_fingerprints (schema 4), and the format now also keys
#:    every stage-level fingerprint in the StageStore.
#: 6: columnar event store — ScenarioConfig grew columnar/shards
#:    (execution-only), ClusteringConfig grew max_bucket_size,
#:    SGNetDataset carries a lazy columnar view, and the observable
#:    dataclasses moved to ``slots=True`` (incompatible pickles).
#: 7: landscape health monitor — ScenarioConfig grew windows
#:    (execution-only), ScenarioRun grew windows/health, RunManifest
#:    grew health_summary (schema 5).
#: 8: bounded-memory telemetry — ScenarioConfig grew
#:    events_max_bytes/events_backups/ring (execution-only),
#:    MetricsSnapshot grew sketches/watermarks (schema 2), RunManifest
#:    grew event_drops (schema 6).
CACHE_FORMAT = 8

#: ScenarioConfig fields that cannot change results, only how fast they
#: are computed or what telemetry they emit; they never contribute to
#: any fingerprint.
EXECUTION_ONLY_FIELDS = frozenset(
    {
        "executor",
        "jobs",
        "profile",
        "events",
        "events_max_bytes",
        "events_backups",
        "ring",
        "progress",
        "columnar",
        "shards",
        "windows",
    }
)

#: Canonical-JSON reduction (shared with the run manifest's digests).
_canonical = canonicalize


def _semantic_config_payload(config: ScenarioConfig | None) -> dict:
    """Canonical config dict with execution-only fields removed."""
    payload = _canonical(config or ScenarioConfig())
    for name in EXECUTION_ONLY_FIELDS:
        payload.pop(name, None)
    return payload


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scenario_fingerprint(seed: int, config: ScenarioConfig | None = None) -> str:
    """Stable content address of ``(seed, config)``.

    The fingerprint is a pure function of the *semantic* configuration:
    identical across processes and backends, different for any config
    field that can change the artifacts.

    >>> scenario_fingerprint(1) == scenario_fingerprint(1, ScenarioConfig())
    True
    >>> scenario_fingerprint(1) != scenario_fingerprint(2)
    True
    """
    payload = _semantic_config_payload(config)
    return _digest({"format": CACHE_FORMAT, "seed": seed, "config": payload})


def _stage_payload(
    spec: StageSpec, seed: int, config_payload: Mapping, fingerprints: Mapping[str, str]
) -> dict:
    """The exact content a stage's fingerprint hashes (also the sidecar)."""
    return {
        "format": CACHE_FORMAT,
        "stage": spec.name,
        "seed": seed,
        "config": {key: config_payload.get(key) for key in spec.config_keys},
        "parents": {parent: fingerprints[parent] for parent in spec.parents},
    }


def stage_fingerprints(
    seed: int, config: ScenarioConfig | None = None
) -> dict[str, str]:
    """Per-stage content addresses of ``(seed, config)``, DAG-chained.

    Each stage's fingerprint covers only the config keys it declares
    (:data:`~repro.experiments.stages.STAGES`) plus its parents'
    fingerprints — so a config change re-keys exactly the declaring
    stage and everything downstream of it, and nothing else.
    """
    payload = _semantic_config_payload(config)
    fingerprints: dict[str, str] = {}
    for spec in STAGES:
        fingerprints[spec.name] = _digest(
            _stage_payload(spec, seed, payload, fingerprints)
        )
    return fingerprints


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/scenarios``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "scenarios"


class ScenarioCache:
    """Pickle store of built runs, addressed by scenario fingerprint."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    def path_for(self, seed: int, config: ScenarioConfig | None = None) -> Path:
        """On-disk location of the ``(seed, config)`` artifact."""
        return self.root / f"{scenario_fingerprint(seed, config)}.pkl"

    def load(self, seed: int, config: ScenarioConfig | None = None) -> ScenarioRun | None:
        """Return the cached run, or ``None`` on a miss.

        Unreadable entries (truncated writes, artifacts pickled by an
        incompatible code version) are treated as misses and evicted.
        """
        registry = obs_metrics.active()
        bus = obs_events.active_bus()
        path = self.path_for(seed, config)
        try:
            with path.open("rb") as handle:
                run = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            registry.counter("cache.miss").inc()
            bus.emit("cache.miss", fingerprint=path.stem)
            log.debug("cache miss", extra={"path": str(path)})
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, TypeError):
            path.unlink(missing_ok=True)
            self.misses += 1
            registry.counter("cache.miss").inc()
            registry.counter("cache.evict").inc()
            bus.emit("cache.evict", fingerprint=path.stem, reason="unreadable")
            bus.emit("cache.miss", fingerprint=path.stem)
            log.warning("evicted unreadable cache entry", extra={"path": str(path)})
            return None
        if not isinstance(run, ScenarioRun):
            path.unlink(missing_ok=True)
            self.misses += 1
            registry.counter("cache.miss").inc()
            registry.counter("cache.evict").inc()
            bus.emit("cache.evict", fingerprint=path.stem, reason="not-a-run")
            bus.emit("cache.miss", fingerprint=path.stem)
            log.warning("evicted non-run cache entry", extra={"path": str(path)})
            return None
        self.hits += 1
        registry.counter("cache.hit").inc()
        bus.emit("cache.hit", fingerprint=path.stem)
        log.debug("cache hit", extra={"path": str(path)})
        return run

    def store(self, run: ScenarioRun) -> Path:
        """Persist ``run`` under its fingerprint; returns the path.

        The write goes through a same-directory temp file and an atomic
        rename, so concurrent readers never observe a torn artifact.
        """
        require(isinstance(run, ScenarioRun), "can only cache ScenarioRun artifacts")
        path = self.path_for(run.seed, run.config)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(run, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        obs_metrics.active().counter("cache.store").inc()
        obs_events.active_bus().emit("cache.store", fingerprint=path.stem)
        log.debug("cache store", extra={"path": str(path)})
        return path

    def get_or_run(
        self, scenario: PaperScenario, *, stage_store: "StageStore | None" = None
    ) -> ScenarioRun:
        """Cached run for ``scenario``, building and storing on a miss.

        With a ``stage_store`` the rebuild goes through the incremental
        stage DAG, so a whole-run miss still replays every stage whose
        fingerprint is stored — the partially-warm path.
        """
        cached = self.load(scenario.seed, scenario.config)
        if cached is not None:
            return cached
        run = scenario.run(stage_store=stage_store)
        self.store(run)
        return run

    def entries(self) -> list[tuple[str, int]]:
        """``(fingerprint, size_bytes)`` of every stored whole-run pickle."""
        if not self.root.is_dir():
            return []
        return sorted(
            (path.stem, path.stat().st_size)
            for path in self.root.glob("*.pkl")
        )

    def clear(self) -> int:
        """Delete every cached whole-run artifact; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


class StageStore:
    """Per-stage artifact store: ``<root>/<stage>/<fingerprint>.pkl``.

    Every artifact has a JSON sidecar carrying the exact fingerprint
    payload (cache format, config subset, parent fingerprints) plus
    bookkeeping (provides, created_at) — the raw material of
    :func:`explain_stages` and ``repro cache {ls,gc,explain}``.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root() / "stages"
        self.hits = 0
        self.misses = 0

    def path_for(self, stage: str, fingerprint: str) -> Path:
        """On-disk location of one stage artifact."""
        return self.root / stage / f"{fingerprint}.pkl"

    def meta_path_for(self, stage: str, fingerprint: str) -> Path:
        """On-disk location of the artifact's JSON sidecar."""
        return self.root / stage / f"{fingerprint}.json"

    def has(self, stage: str, fingerprint: str) -> bool:
        """Whether an artifact is stored (no load, no telemetry)."""
        return self.path_for(stage, fingerprint).is_file()

    def load(self, stage: str, fingerprint: str) -> dict | None:
        """The stage's artifact dict, or ``None`` on a miss.

        Unreadable or non-dict entries are evicted (sidecar included)
        and treated as misses, like the whole-run cache.
        """
        registry = obs_metrics.active()
        bus = obs_events.active_bus()
        path = self.path_for(stage, fingerprint)
        try:
            with path.open("rb") as handle:
                artifacts = pickle.load(handle)
        except FileNotFoundError:
            artifacts = None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, TypeError):
            path.unlink(missing_ok=True)
            self.meta_path_for(stage, fingerprint).unlink(missing_ok=True)
            registry.counter("cache.evict").inc()
            bus.emit("cache.evict", fingerprint=fingerprint, stage=stage, reason="unreadable")
            log.warning("evicted unreadable stage artifact", extra={"path": str(path)})
            artifacts = None
        if artifacts is not None and not isinstance(artifacts, dict):
            path.unlink(missing_ok=True)
            self.meta_path_for(stage, fingerprint).unlink(missing_ok=True)
            registry.counter("cache.evict").inc()
            bus.emit("cache.evict", fingerprint=fingerprint, stage=stage, reason="not-a-dict")
            log.warning("evicted non-dict stage artifact", extra={"path": str(path)})
            artifacts = None
        if artifacts is None:
            self.misses += 1
            registry.counter("cache.stage_miss", stage=stage).inc()
            bus.emit("cache.stage_miss", stage=stage, fingerprint=fingerprint)
            log.debug("stage cache miss", extra={"stage": stage, "path": str(path)})
            return None
        self.hits += 1
        registry.counter("cache.stage_hit", stage=stage).inc()
        bus.emit("cache.stage_hit", stage=stage, fingerprint=fingerprint)
        log.debug("stage cache hit", extra={"stage": stage, "path": str(path)})
        return artifacts

    def store(
        self, stage: str, fingerprint: str, artifacts: Mapping, meta: Mapping
    ) -> Path:
        """Persist one stage's artifacts + sidecar atomically; returns the path."""
        require(isinstance(artifacts, Mapping), "stage artifacts must be a mapping")
        path = self.path_for(stage, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(dict(artifacts), handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        meta_path = self.meta_path_for(stage, fingerprint)
        meta_tmp = meta_path.with_suffix(f".tmp.{os.getpid()}")
        meta_tmp.write_text(
            json.dumps(dict(meta), sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(meta_tmp, meta_path)
        obs_metrics.active().counter("cache.stage_store", stage=stage).inc()
        obs_events.active_bus().emit(
            "cache.stage_store", stage=stage, fingerprint=fingerprint
        )
        log.debug("stage cache store", extra={"stage": stage, "path": str(path)})
        return path

    def metas(self, stage: str | None = None) -> list[dict]:
        """Parsed sidecars, newest-path-last, optionally for one stage."""
        out: list[dict] = []
        if stage is not None:
            stages = [stage]
        elif self.root.is_dir():
            stages = sorted(p.name for p in self.root.iterdir() if p.is_dir())
        else:
            stages = []
        for name in stages:
            stage_dir = self.root / name
            if not stage_dir.is_dir():
                continue
            for meta_path in sorted(stage_dir.glob("*.json")):
                try:
                    meta = json.loads(meta_path.read_text(encoding="utf-8"))
                except (json.JSONDecodeError, OSError):
                    continue
                if isinstance(meta, dict):
                    out.append(meta)
        return out

    def entries(self) -> list[tuple[str, str, int]]:
        """``(stage, fingerprint, size_bytes)`` of every stored artifact."""
        if not self.root.is_dir():
            return []
        return [
            (stage_dir.name, path.stem, path.stat().st_size)
            for stage_dir in sorted(p for p in self.root.iterdir() if p.is_dir())
            for path in sorted(stage_dir.glob("*.pkl"))
        ]

    def gc(self, *, clear: bool = False) -> tuple[int, int]:
        """Remove stale entries; returns ``(files_removed, bytes_reclaimed)``.

        Stale means: leftover temp files from interrupted writes,
        artifacts without a sidecar (or sidecars without an artifact),
        and entries whose sidecar records a cache format other than the
        current :data:`CACHE_FORMAT` (their fingerprints can never be
        requested again).  With ``clear=True`` everything goes.
        """
        removed = 0
        reclaimed = 0
        if not self.root.is_dir():
            return removed, reclaimed

        def drop(path: Path) -> None:
            nonlocal removed, reclaimed
            try:
                reclaimed += path.stat().st_size
            except OSError:
                pass
            path.unlink(missing_ok=True)
            removed += 1

        for stage_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for tmp in stage_dir.glob("*.tmp.*"):
                drop(tmp)
            pickles = {p.stem: p for p in stage_dir.glob("*.pkl")}
            sidecars = {p.stem: p for p in stage_dir.glob("*.json")}
            for stem, path in sorted(pickles.items()):
                meta_path = sidecars.get(stem)
                stale = clear or meta_path is None
                if not stale and meta_path is not None:
                    try:
                        meta = json.loads(meta_path.read_text(encoding="utf-8"))
                        stale = meta.get("format") != CACHE_FORMAT
                    except (json.JSONDecodeError, OSError):
                        stale = True
                if stale:
                    drop(path)
                    if meta_path is not None:
                        drop(meta_path)
            for stem, meta_path in sorted(sidecars.items()):
                if meta_path.exists() and stem not in pickles:
                    drop(meta_path)
        return removed, reclaimed


class StageCacheSession:
    """One run's view of a :class:`StageStore`: fingerprints precomputed.

    The runner (:func:`repro.experiments.stages.execute_stages`) only
    sees this object: ``load(stage)`` / ``save(stage, artifacts)`` plus
    ``session[stage]`` for the fingerprint.
    """

    def __init__(
        self,
        store: StageStore,
        seed: int,
        config: ScenarioConfig | None = None,
        fingerprints: Mapping[str, str] | None = None,
    ) -> None:
        self.store = store
        self.seed = seed
        self.config = config or ScenarioConfig()
        self.fingerprints = (
            dict(fingerprints)
            if fingerprints is not None
            else stage_fingerprints(seed, self.config)
        )
        self._config_payload = _semantic_config_payload(self.config)

    def __getitem__(self, stage: str) -> str:
        return self.fingerprints[stage]

    def load(self, stage: str) -> dict | None:
        """The stored artifacts for this run's ``stage``, or ``None``."""
        return self.store.load(stage, self.fingerprints[stage])

    def save(self, stage: str, artifacts: Mapping) -> Path:
        """Store ``stage``'s artifacts under this run's fingerprint."""
        spec = next(s for s in STAGES if s.name == stage)
        meta = {
            **_stage_payload(spec, self.seed, self._config_payload, self.fingerprints),
            "fingerprint": self.fingerprints[stage],
            "provides": list(spec.provides),
            "created_at": timestamp(),
        }
        return self.store.store(stage, self.fingerprints[stage], artifacts, meta)


@dataclass(frozen=True)
class StageExplanation:
    """Why one stage would hit or miss for a given ``(seed, config)``."""

    stage: str
    fingerprint: str
    cached: bool
    #: Human-readable invalidation causes, empty on a hit.  Shapes:
    #: ``config:<dotted.key> <old> -> <new>``, ``seed <old> -> <new>``,
    #: ``upstream:<stage>``, ``cache format <old> -> <new>``,
    #: ``no prior artifact``.
    causes: tuple[str, ...] = ()

    def render(self) -> str:
        status = "hit " if self.cached else "MISS"
        line = f"{self.stage:<12} {status}  {self.fingerprint[:12]}"
        if self.causes:
            line += "  <- " + "; ".join(self.causes)
        return line


def _flatten_config(value: object, prefix: str = "") -> Iterator[tuple[str, object]]:
    """Dotted leaf paths of a canonical config payload (type tags skipped)."""
    if isinstance(value, Mapping):
        for key, sub in value.items():
            if key == "__type__":
                continue
            yield from _flatten_config(sub, f"{prefix}.{key}" if prefix else str(key))
    else:
        yield prefix, value


def _config_diffs(old: Mapping, new: Mapping) -> list[str]:
    """``config:<path> <old> -> <new>`` lines between two key subsets."""
    flat_old = dict(_flatten_config(old))
    flat_new = dict(_flatten_config(new))
    lines = []
    for path in sorted(set(flat_old) | set(flat_new)):
        a, b = flat_old.get(path), flat_new.get(path)
        if a != b:
            lines.append(f"config:{path} {a!r} -> {b!r}")
    return lines


def explain_stages(
    seed: int,
    config: ScenarioConfig | None = None,
    store: StageStore | None = None,
) -> list[StageExplanation]:
    """Per-stage hit/miss forecast for ``(seed, config)``, with causes.

    For every stage that would miss, the nearest stored sidecar of that
    stage (fewest differing dependency keys) is diffed against the
    requested configuration, naming exactly which config key — or which
    upstream stage, seed or cache-format change — invalidated it.
    """
    config = config or ScenarioConfig()
    store = store or StageStore()
    fingerprints = stage_fingerprints(seed, config)
    payload = _semantic_config_payload(config)
    missed: set[str] = set()
    out: list[StageExplanation] = []
    for spec in STAGES:
        fingerprint = fingerprints[spec.name]
        if store.has(spec.name, fingerprint):
            out.append(StageExplanation(spec.name, fingerprint, True))
            continue
        causes = [f"upstream:{p}" for p in spec.parents if p in missed]
        wanted = _stage_payload(spec, seed, payload, fingerprints)
        best: dict | None = None
        best_diffs: list[str] | None = None
        for meta in store.metas(spec.name):
            diffs = _config_diffs(meta.get("config", {}), wanted["config"])
            if meta.get("seed") != seed:
                diffs.append(f"seed {meta.get('seed')!r} -> {seed!r}")
            if meta.get("format") != CACHE_FORMAT:
                diffs.append(
                    f"cache format {meta.get('format')!r} -> {CACHE_FORMAT!r}"
                )
            if best_diffs is None or len(diffs) < len(best_diffs):
                best, best_diffs = meta, diffs
        if best is None:
            if not causes:
                causes.append("no prior artifact")
        elif best_diffs:
            causes.extend(best_diffs)
        elif not causes:
            # Same config subset and seed but different parent chain
            # from a store state that predates the parents' artifacts.
            changed = [
                parent
                for parent in spec.parents
                if best.get("parents", {}).get(parent) != fingerprints[parent]
            ]
            causes.extend(f"upstream:{p}" for p in changed)
        missed.add(spec.name)
        out.append(StageExplanation(spec.name, fingerprint, False, tuple(causes)))
    return out


def render_explanations(explanations: list[StageExplanation]) -> str:
    """The ``repro cache explain`` report, one line per stage."""
    hits = sum(1 for e in explanations if e.cached)
    lines = [e.render() for e in explanations]
    lines.append(
        f"{hits}/{len(explanations)} stage(s) would replay from the store"
    )
    return "\n".join(lines)


def cached_run(
    seed: int = 2010,
    config: ScenarioConfig | None = None,
    *,
    cache: ScenarioCache | None = None,
    stage_store: StageStore | None = None,
) -> ScenarioRun:
    """One-call cached scenario build (the examples/benchmarks entry point)."""
    cache = cache or ScenarioCache()
    return cache.get_or_run(
        PaperScenario(seed=seed, config=config), stage_store=stage_store
    )
