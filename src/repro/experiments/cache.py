"""Content-addressed on-disk cache of scenario artifacts.

Every benchmark, sweep and example starts from the same expensive
object: a fully built :class:`~repro.experiments.scenario.ScenarioRun`.
The cache keys a pickled run by a *fingerprint* — a SHA-256 over the
``(seed, ScenarioConfig)`` pair in a canonical JSON form — so a warm
load takes milliseconds instead of the multi-second rebuild, while any
semantic config change (scale, weeks, thresholds, noise, ...) misses
and rebuilds.

Execution-only knobs (``executor``, ``jobs``, ``profile``, ``events``,
``progress``) are excluded from the fingerprint: all backends produce
bit-identical artifacts and telemetry sinks cannot change them, so a
run built with the process backend (or with a live event stream
attached) is a valid cache hit for a serial request of the same
scenario.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.experiments.scenario import PaperScenario, ScenarioConfig, ScenarioRun
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.util.canonical import canonicalize
from repro.util.validation import require

log = get_logger("experiments.cache")

#: Bump when the pickled artifact layout changes incompatibly; old
#: entries then miss instead of unpickling into stale shapes.
#: 2: ScenarioRun grew trace/metrics/manifest observability fields.
#: 3: TraceSpan grew start offsets; RunManifest grew created_at and
#:    golden_deviations (schema 2).
#: 4: ScenarioConfig grew events/progress; RunManifest grew
#:    event_summary (schema 3).
CACHE_FORMAT = 4

#: ScenarioConfig fields that cannot change results, only how fast they
#: are computed or what telemetry they emit; they never contribute to
#: the fingerprint.
EXECUTION_ONLY_FIELDS = frozenset(
    {"executor", "jobs", "profile", "events", "progress"}
)

#: Canonical-JSON reduction (shared with the run manifest's digests).
_canonical = canonicalize


def scenario_fingerprint(seed: int, config: ScenarioConfig | None = None) -> str:
    """Stable content address of ``(seed, config)``.

    The fingerprint is a pure function of the *semantic* configuration:
    identical across processes and backends, different for any config
    field that can change the artifacts.

    >>> scenario_fingerprint(1) == scenario_fingerprint(1, ScenarioConfig())
    True
    >>> scenario_fingerprint(1) != scenario_fingerprint(2)
    True
    """
    config = config or ScenarioConfig()
    payload = _canonical(config)
    for name in EXECUTION_ONLY_FIELDS:
        payload.pop(name, None)
    blob = json.dumps(
        {"format": CACHE_FORMAT, "seed": seed, "config": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/scenarios``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "scenarios"


class ScenarioCache:
    """Pickle store of built runs, addressed by scenario fingerprint."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    def path_for(self, seed: int, config: ScenarioConfig | None = None) -> Path:
        """On-disk location of the ``(seed, config)`` artifact."""
        return self.root / f"{scenario_fingerprint(seed, config)}.pkl"

    def load(self, seed: int, config: ScenarioConfig | None = None) -> ScenarioRun | None:
        """Return the cached run, or ``None`` on a miss.

        Unreadable entries (truncated writes, artifacts pickled by an
        incompatible code version) are treated as misses and evicted.
        """
        registry = obs_metrics.active()
        bus = obs_events.active_bus()
        path = self.path_for(seed, config)
        try:
            with path.open("rb") as handle:
                run = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            registry.counter("cache.miss").inc()
            bus.emit("cache.miss", fingerprint=path.stem)
            log.debug("cache miss", extra={"path": str(path)})
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, TypeError):
            path.unlink(missing_ok=True)
            self.misses += 1
            registry.counter("cache.miss").inc()
            registry.counter("cache.evict").inc()
            bus.emit("cache.evict", fingerprint=path.stem, reason="unreadable")
            bus.emit("cache.miss", fingerprint=path.stem)
            log.warning("evicted unreadable cache entry", extra={"path": str(path)})
            return None
        if not isinstance(run, ScenarioRun):
            path.unlink(missing_ok=True)
            self.misses += 1
            registry.counter("cache.miss").inc()
            registry.counter("cache.evict").inc()
            bus.emit("cache.evict", fingerprint=path.stem, reason="not-a-run")
            bus.emit("cache.miss", fingerprint=path.stem)
            log.warning("evicted non-run cache entry", extra={"path": str(path)})
            return None
        self.hits += 1
        registry.counter("cache.hit").inc()
        bus.emit("cache.hit", fingerprint=path.stem)
        log.debug("cache hit", extra={"path": str(path)})
        return run

    def store(self, run: ScenarioRun) -> Path:
        """Persist ``run`` under its fingerprint; returns the path.

        The write goes through a same-directory temp file and an atomic
        rename, so concurrent readers never observe a torn artifact.
        """
        require(isinstance(run, ScenarioRun), "can only cache ScenarioRun artifacts")
        path = self.path_for(run.seed, run.config)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(run, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        obs_metrics.active().counter("cache.store").inc()
        obs_events.active_bus().emit("cache.store", fingerprint=path.stem)
        log.debug("cache store", extra={"path": str(path)})
        return path

    def get_or_run(self, scenario: PaperScenario) -> ScenarioRun:
        """Cached run for ``scenario``, building and storing on a miss."""
        cached = self.load(scenario.seed, scenario.config)
        if cached is not None:
            return cached
        run = scenario.run()
        self.store(run)
        return run

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def cached_run(
    seed: int = 2010,
    config: ScenarioConfig | None = None,
    *,
    cache: ScenarioCache | None = None,
) -> ScenarioRun:
    """One-call cached scenario build (the examples/benchmarks entry point)."""
    cache = cache or ScenarioCache()
    return cache.get_or_run(PaperScenario(seed=seed, config=config))
