"""Parameter sweeps over the reproduction's design knobs.

Three sweeps quantify the sensitivities behind the paper's qualitative
claims:

* :func:`noise_sweep` — re-analyses one dataset's samples under scaled
  derailment rates: the size-1 B-cluster population (§4.2's anomaly
  mass) is a direct function of analysis-environment flakiness;
* :func:`lsh_shape_sweep` — LSH banding vs pair recall and comparison
  cost: why the banding must put the collision sigmoid *below* the
  clustering threshold;
* :func:`threshold_sweep` — B-cluster structure vs the Jaccard
  threshold: the knob whose interaction with profile variability the
  paper identifies as a misclassification source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.egpm.dataset import SGNetDataset
from repro.sandbox.anubis import AnubisService
from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import ClusteringConfig, cluster_exact
from repro.sandbox.environment import Environment
from repro.sandbox.execution import Sandbox, SandboxConfig
from repro.sandbox.lsh import LSHIndex, MinHasher
from repro.util.stats import jaccard
from repro.util.validation import require


@dataclass(frozen=True)
class NoisePoint:
    """One noise-multiplier setting and the resulting B-structure."""

    multiplier: float
    n_clusters: int
    n_singletons: int
    n_samples: int

    @property
    def singleton_share(self) -> float:
        """Singletons as a share of analysed samples."""
        return self.n_singletons / self.n_samples if self.n_samples else 0.0


def noise_sweep(
    dataset: SGNetDataset,
    environment: Environment,
    multipliers: Sequence[float],
    *,
    clustering: ClusteringConfig | None = None,
) -> list[NoisePoint]:
    """Re-analyse and re-cluster the dataset per noise multiplier."""
    require(len(multipliers) > 0, "need at least one multiplier")
    points: list[NoisePoint] = []
    for multiplier in multipliers:
        sandbox = Sandbox(environment, SandboxConfig(noise_multiplier=multiplier))
        anubis = AnubisService(sandbox)
        for record in dataset.valid_samples():
            if record.behavior_handle is not None:
                anubis.submit(record.md5, record.behavior_handle, time=record.first_seen)
        result = anubis.cluster(clustering)
        points.append(
            NoisePoint(
                multiplier=multiplier,
                n_clusters=result.n_clusters,
                n_singletons=len(result.singletons()),
                n_samples=anubis.n_reports,
            )
        )
    return points


@dataclass(frozen=True)
class LSHShapePoint:
    """One (bands, rows) setting and its candidate-generation quality."""

    bands: int
    rows: int
    recall: float
    candidate_pairs: int
    true_pairs: int


def lsh_shape_sweep(
    profiles: Mapping[str, BehaviorProfile],
    shapes: Sequence[tuple[int, int]],
    *,
    threshold: float = 0.7,
    seed: int = 2010,
) -> list[LSHShapePoint]:
    """Measure candidate recall of each banding on real profiles.

    Recall is over the *true* >= threshold pairs of distinct profiles
    (computed exactly), before the single-linkage chaining that further
    masks missed pairs.
    """
    unique: dict[frozenset, str] = {}
    for key, profile in profiles.items():
        unique.setdefault(profile.features, key)
    keys = list(unique.values())
    sets = {key: set(profiles[key].features) for key in keys}

    true_pairs = set()
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            if jaccard(sets[a], sets[b]) >= threshold:
                true_pairs.add((a, b) if a < b else (b, a))

    points: list[LSHShapePoint] = []
    for bands, rows in shapes:
        hasher = MinHasher(bands * rows, seed=seed)
        index = LSHIndex(bands=bands, rows=rows)
        for key in keys:
            index.add(key, hasher.signature(profiles[key].hashed_features()))
        candidates = {
            (a, b) if a < b else (b, a) for a, b in index.candidate_pairs()
        }
        found = len(true_pairs & candidates)
        points.append(
            LSHShapePoint(
                bands=bands,
                rows=rows,
                recall=found / len(true_pairs) if true_pairs else 1.0,
                candidate_pairs=len(candidates),
                true_pairs=len(true_pairs),
            )
        )
    return points


@dataclass(frozen=True)
class ThresholdPoint:
    """One Jaccard threshold and the resulting B-structure."""

    threshold: float
    n_clusters: int
    n_singletons: int
    largest: int


def threshold_sweep(
    profiles: Mapping[str, BehaviorProfile],
    thresholds: Sequence[float],
) -> list[ThresholdPoint]:
    """Exact clustering structure per similarity threshold."""
    points: list[ThresholdPoint] = []
    for threshold in thresholds:
        result = cluster_exact(profiles, ClusteringConfig(threshold=threshold))
        sizes = result.sizes().values()
        points.append(
            ThresholdPoint(
                threshold=threshold,
                n_clusters=result.n_clusters,
                n_singletons=len(result.singletons()),
                largest=max(sizes) if sizes else 0,
            )
        )
    return points
