"""Sharded generation + observation: time-slice × sensor-group streaming.

The plain observe stage materializes the full attack stream one attempt
at a time but keeps every attempt (binary included) staged until the
final-classification pass — at paper scale that is thousands of ~110 KB
binaries resident at once, and at the ROADMAP's million-sample target it
stops fitting altogether.  This module streams the same schedule through
*shards* instead:

1. :func:`plan_shards` slices the global time-ordered schedule of
   :meth:`~repro.malware.landscape.LandscapeGenerator.schedule` into
   ``n_shards`` contiguous **time windows**;
2. within each shard, :func:`sensor_group_batches` partitions the slots
   by their sensor-group (network-constraint) key, and the batches are
   materialized through the chunked executor — attempt construction is
   a pure function of the slot (every draw comes from the slot's own
   named rng substream), so build order across batches cannot perturb
   the stream;
3. the built attempts run through pass A
   (:meth:`~repro.honeypot.deployment.SGNetDeployment.stage_attempt`)
   **in global time order** — FSM learning is order-dependent, so the
   shards themselves are processed sequentially — and each shard's
   binaries are dropped as soon as its observations are staged;
4. after :meth:`Gateway.finalize`, pass B replays the staged
   observations through
   :meth:`~repro.honeypot.deployment.SGNetDeployment.add_final_event`,
   merging every shard into one :class:`SGNetDataset` and one
   :class:`~repro.egpm.columnar.ColumnarBuilder` in the same loop.

Because both passes visit every slot in exactly the order and with
exactly the substreams of the unsharded path, the resulting dataset is
bit-identical for *any* shard count — the determinism contract
``tests/experiments/test_shards.py`` enforces.  ``shards`` is therefore
an execution-only knob, excluded from the stage-cache fingerprint like
``executor``/``jobs``.

Telemetry: one ``shards.observed`` counter tick and one
``shards.events`` histogram observation per processed shard, plus an
unbounded-range ``shards.events_sketch`` quantile sketch of the same
series and two high-water marks — ``shards.shard_events`` (the largest
single shard) and ``shards.staged_observations`` (the peak count of
observations staged before pass B, the structure that drives resident
memory on this path).  Watermarks merge by max, so the values are
independent of executor backend and chunk completion order.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from functools import partial
from typing import Sequence

from repro.egpm.columnar import ColumnarBuilder
from repro.egpm.dataset import SGNetDataset
from repro.honeypot.deployment import SGNetDeployment, StagedObservation
from repro.malware.landscape import (
    AttackAttempt,
    LandscapeGenerator,
    ScheduledSlot,
)
from repro.obs import metrics as obs_metrics
from repro.util.parallel import Executor
from repro.util.validation import require


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous time-window slices of a time-ordered schedule.

    ``boundaries`` holds ``len(shards) + 1`` timestamps; shard ``i``
    covers slots with ``boundaries[i] <= timestamp < boundaries[i+1]``.
    Empty windows are kept (their slice is just empty), so the plan
    shape is a pure function of ``(schedule, n_shards)``.
    """

    n_shards: int
    boundaries: tuple[int, ...]
    shards: tuple[tuple[ScheduledSlot, ...], ...]

    @property
    def n_slots(self) -> int:
        """Total scheduled slots across all shards."""
        return sum(len(shard) for shard in self.shards)


def plan_shards(
    schedule: Sequence[ScheduledSlot], n_shards: int
) -> ShardPlan:
    """Slice a time-ordered schedule into ``n_shards`` time windows.

    The observation span ``[first, last]`` is divided into equal-width
    windows; slicing is by timestamp (not by slot count), so a shard is
    a genuine time slice of the landscape — the unit a real deployment
    would checkpoint and ship.
    """
    require(n_shards >= 1, "n_shards must be >= 1")
    slots = tuple(schedule)
    if not slots:
        return ShardPlan(n_shards=n_shards, boundaries=(), shards=())
    timestamps = [slot[0] for slot in slots]
    start, stop = timestamps[0], timestamps[-1] + 1
    span = stop - start
    boundaries = tuple(
        start + (span * index) // n_shards for index in range(n_shards + 1)
    )
    shards = tuple(
        slots[bisect_left(timestamps, boundaries[i]) : bisect_left(
            timestamps, boundaries[i + 1]
        )]
        for i in range(n_shards)
    )
    return ShardPlan(n_shards=n_shards, boundaries=boundaries, shards=shards)


def sensor_group_batches(
    slots: Sequence[ScheduledSlot],
) -> list[list[int]]:
    """Partition one shard's slot *indices* by sensor-group key.

    The key is the slot's network constraint (the set of monitored /24
    networks the variant targets, or ``None`` for untargeted variants).
    Attempt construction is order-independent across batches, so they
    may be built in any interleaving; the indices let the caller scatter
    results back into time order afterwards.
    """
    groups: dict[tuple[int, ...] | None, list[int]] = {}
    for index, slot in enumerate(slots):
        groups.setdefault(slot[3], []).append(index)
    return list(groups.values())


def _build_batch(
    generator: LandscapeGenerator, slots: list[ScheduledSlot]
) -> list[AttackAttempt]:
    """Materialize one sensor-group batch (module-level so process
    pools can ship it; the generator rides along pickled)."""
    return [generator.build_attempt(slot) for slot in slots]


def _build_shard(
    generator: LandscapeGenerator,
    slots: Sequence[ScheduledSlot],
    executor: Executor,
) -> list[AttackAttempt]:
    """Build one shard's attempts via the executor, back in time order."""
    batches = sensor_group_batches(slots)
    built = executor.map(
        partial(_build_batch, generator),
        [[slots[index] for index in batch] for batch in batches],
    )
    attempts: list[AttackAttempt | None] = [None] * len(slots)
    for indices, batch_attempts in zip(batches, built):
        for index, attempt in zip(indices, batch_attempts):
            attempts[index] = attempt
    return attempts


def observe_sharded(
    deployment: SGNetDeployment,
    generator: LandscapeGenerator,
    *,
    n_shards: int,
    executor: Executor,
) -> SGNetDataset:
    """Observe the landscape shard by shard; bit-identical to
    :meth:`SGNetDeployment.observe` over the same generator.

    Shards are processed sequentially in time order (pass-A FSM
    learning is order-dependent), but within a shard the attempts are
    built through the chunked executor, one sensor-group batch at a
    time, and each shard's binaries are released before the next shard
    is built.  Background probes are not supported on this path — the
    stage DAG never routes them here.

    Pass B merges all shards into one dataset and one columnar store;
    the merged view is installed on the dataset so the EPM stage's
    ``to_columnar()`` does not re-transpose the events it just streamed.
    """
    plan = plan_shards(generator.schedule(), n_shards)
    registry = obs_metrics.active()
    deployment.n_background_filtered = 0
    staged: list[StagedObservation] = []
    for shard_slots in plan.shards:
        for attempt in _build_shard(generator, shard_slots, executor):
            staged.append(deployment.stage_attempt(attempt))
        registry.counter("shards.observed").inc()
        registry.histogram(
            "shards.events", buckets=obs_metrics.SIZE_BUCKETS
        ).observe(len(shard_slots))
        registry.sketch("shards.events_sketch").observe(len(shard_slots))
        registry.watermark("shards.shard_events").update(len(shard_slots))
        registry.watermark("shards.staged_observations").update(len(staged))

    deployment.gateway.finalize()

    dataset = SGNetDataset()
    builder = ColumnarBuilder()
    classify_memo: dict[tuple, int] = {}
    for observation in staged:
        builder.add_event(
            deployment.add_final_event(dataset, classify_memo, observation)
        )
    dataset.adopt_columnar(builder.build())
    deployment.emit_dataset_metrics(dataset)
    return dataset
