"""ScriptGen-style FSM protocol learning over message-token streams.

The real ScriptGen performs *region analysis* over raw byte streams:
aligning samples of the same conversation state and splitting each
message into fixed regions (bytes identical across enough samples) and
mutating regions.  We reproduce the algorithm one abstraction level up,
over token sequences: a message is a tuple of string tokens, and region
analysis marks each token position as fixed (some value recurs in at
least ``min_support`` buffered samples) or wildcard.

The learned model is a tree of states.  Each edge carries a *pattern*
(tuple of fixed values and ``None`` wildcards); a conversation follows
matching edges message by message and its **FSM path identifier** is the
identifier of the state it ends in.  Conversations that fall off the
learned tree are buffered at the state where they diverged; once a
state's buffer holds ``refine_threshold`` conversations, region analysis
turns the buffer into new edges (and recursively into subtrees), which
is exactly the learn-from-the-honeyfarm loop of the SGNET gateway.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.util.validation import require

#: Path identifier for conversations the final FSM cannot classify.
UNKNOWN_PATH_ID = -1

Message = tuple[str, ...]
Conversation = Sequence[Message]
#: An edge pattern: per-position fixed value or None (mutating region).
Pattern = tuple[str | None, ...]


def pattern_matches(pattern: Pattern, message: Message) -> bool:
    """Whether ``message`` is an instance of ``pattern``."""
    if len(pattern) != len(message):
        return False
    for p, m in zip(pattern, message):
        if p is not None and p != m:
            return False
    return True


@dataclass
class FSMNode:
    """One state of the learned FSM."""

    node_id: int
    depth: int
    edges: list[tuple[Pattern, "FSMNode"]] = field(default_factory=list)

    def match_edge(self, message: Message) -> "FSMNode | None":
        """The successor state whose pattern matches ``message``, if any.

        Edges are checked most-specific-first (fewest wildcards), so a
        message matching both a specialised and a generic edge follows
        the specialised one.  The match test is inlined (this is the
        innermost loop of both observation passes).
        """
        best: FSMNode | None = None
        best_specificity = -1
        length = len(message)
        for pattern, child in self.edges:
            if len(pattern) != length:
                continue
            matched = True
            for p, m in zip(pattern, message):
                if p is not None and p != m:
                    matched = False
                    break
            if matched:
                specificity = length - pattern.count(None)
                if specificity > best_specificity:
                    best_specificity = specificity
                    best = child
        return best


class FSMModel:
    """The learned state tree shared by all sensors."""

    def __init__(self) -> None:
        self.root = FSMNode(node_id=0, depth=0)
        self._next_id = 1
        self._n_edges = 0

    def new_node(self, depth: int) -> FSMNode:
        """Allocate a fresh state."""
        node = FSMNode(node_id=self._next_id, depth=depth)
        self._next_id += 1
        return node

    def add_edge(self, parent: FSMNode, pattern: Pattern, child: FSMNode) -> None:
        """Attach ``child`` under ``parent`` via ``pattern``."""
        parent.edges.append((pattern, child))
        self._n_edges += 1

    @property
    def n_states(self) -> int:
        """Number of allocated states."""
        return self._next_id

    @property
    def n_edges(self) -> int:
        """Number of learned transitions."""
        return self._n_edges

    def walk(self, conversation: Conversation) -> tuple[FSMNode, int]:
        """Follow ``conversation`` as far as the model knows.

        Returns ``(last_state, messages_consumed)``.
        """
        node = self.root
        consumed = 0
        for message in conversation:
            child = node.match_edge(tuple(message))
            if child is None:
                break
            node = child
            consumed += 1
        return node, consumed

    def classify(self, conversation: Conversation) -> int:
        """FSM path identifier of ``conversation``.

        A conversation is classified only if the model consumes *all* its
        messages; partial matches return :data:`UNKNOWN_PATH_ID`, like an
        SGNET sensor handing the conversation over to the honeyfarm.
        """
        node, consumed = self.walk(conversation)
        if consumed == len(conversation):
            return node.node_id
        return UNKNOWN_PATH_ID

    def iter_nodes(self) -> Iterable[FSMNode]:
        """All states, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for _pattern, child in node.edges:
                stack.append(child)


def region_analysis(messages: Sequence[Message], min_support: int) -> list[Pattern]:
    """Split a buffer of same-state messages into edge patterns.

    Token positions whose value recurs in at least ``min_support``
    samples are fixed regions; others are wildcards.  Messages are
    first partitioned by length (different message shapes can never
    share an edge), then grouped by their fixed-region signature.
    Groups smaller than ``min_support`` are discarded — the samples
    stay unexplained, as in ScriptGen, until more evidence arrives.
    """
    require(min_support >= 1, "min_support must be >= 1")
    patterns: list[Pattern] = []
    by_length: dict[int, list[Message]] = {}
    for message in messages:
        by_length.setdefault(len(message), []).append(message)
    for length, group in sorted(by_length.items()):
        position_counts: list[Counter] = [Counter() for _ in range(length)]
        for message in group:
            for position, token in enumerate(message):
                position_counts[position][token] += 1
        signatures: dict[Pattern, int] = {}
        for message in group:
            signature = tuple(
                token if position_counts[position][token] >= min_support else None
                for position, token in enumerate(message)
            )
            signatures[signature] = signatures.get(signature, 0) + 1
        for signature, support in sorted(
            signatures.items(), key=lambda kv: (-kv[1], str(kv[0]))
        ):
            if support >= min_support:
                patterns.append(signature)
    return patterns


class FSMLearner:
    """Online learner wrapping an :class:`FSMModel` with refinement buffers.

    :meth:`observe` is the sensor-facing entry point: it returns the FSM
    path identifier when the conversation is fully handled by the current
    model, or :data:`UNKNOWN_PATH_ID` after buffering the unexplained
    suffix for later refinement (the proxy-to-honeyfarm case).
    """

    def __init__(self, *, refine_threshold: int = 12, min_support: int = 4) -> None:
        require(refine_threshold >= min_support, "refine_threshold < min_support")
        self.model = FSMModel()
        self.refine_threshold = refine_threshold
        self.min_support = min_support
        self._buffers: dict[int, list[tuple[Message, ...]]] = {}
        self._nodes_by_id: dict[int, FSMNode] = {0: self.model.root}
        self._n_refinements = 0

    @property
    def n_refinements(self) -> int:
        """How many times region analysis extended the model."""
        return self._n_refinements

    def observe(self, conversation: Conversation) -> int:
        """Process one conversation, learning if it is unexplained."""
        node, consumed = self.model.walk(conversation)
        if consumed == len(conversation):
            return node.node_id
        return self.observe_prewalked(conversation, node, consumed)

    def observe_prewalked(
        self, conversation: Conversation, node: FSMNode, consumed: int
    ) -> int:
        """Buffer an unexplained conversation whose walk already ran.

        Callers that have just walked ``conversation`` (and found it
        only ``consumed`` messages deep, stopping at ``node``) hand the
        walk result over instead of paying a second identical walk —
        the buffering and refinement behaviour is exactly
        :meth:`observe`'s unexplained branch.
        """
        suffix = tuple(tuple(m) for m in conversation[consumed:])
        buffer = self._buffers.setdefault(node.node_id, [])
        buffer.append(suffix)
        if len(buffer) >= self.refine_threshold:
            self._refine(node)
        return UNKNOWN_PATH_ID

    def _refine(self, node: FSMNode) -> None:
        """Region-analyse ``node``'s buffer into new subtrees."""
        buffer = self._buffers.pop(node.node_id, [])
        if not buffer:
            return
        self._n_refinements += 1
        self._build_subtree(node, buffer)

    def _build_subtree(self, node: FSMNode, suffixes: list[tuple[Message, ...]]) -> None:
        firsts = [suffix[0] for suffix in suffixes if suffix]
        if not firsts:
            return
        patterns = region_analysis(firsts, self.min_support)
        leftovers: list[tuple[Message, ...]] = []
        claimed = [False] * len(suffixes)
        for pattern in patterns:
            matching = [
                i
                for i, suffix in enumerate(suffixes)
                if suffix and not claimed[i] and pattern_matches(pattern, suffix[0])
            ]
            if len(matching) < self.min_support:
                continue
            child = self.model.new_node(node.depth + 1)
            self._nodes_by_id[child.node_id] = child
            self.model.add_edge(node, pattern, child)
            for i in matching:
                claimed[i] = True
            tails = [suffixes[i][1:] for i in matching if len(suffixes[i]) > 1]
            if tails:
                self._build_subtree(child, tails)
        for i, suffix in enumerate(suffixes):
            if suffix and not claimed[i]:
                leftovers.append(suffix)
        if leftovers:
            self._buffers.setdefault(node.node_id, []).extend(leftovers)

    def flush(self) -> None:
        """Force refinement of every non-empty buffer.

        Used at end-of-stream so long-tail activities that never reached
        the refinement threshold still get a chance to be learned (with
        the support requirement still enforced).
        """
        for node_id in list(self._buffers.keys()):
            node = self._nodes_by_id[node_id]
            self._refine(node)

    def classify(self, conversation: Conversation) -> int:
        """Classify against the *current* model (no learning)."""
        return self.model.classify(conversation)
