"""SGNET distributed-honeypot simulation.

The components mirror Figure 1 of the paper:

* :mod:`repro.honeypot.fsm` — ScriptGen-style protocol learning: a
  Finite State Machine over message-token streams, refined by region
  analysis of buffered conversations.  Learned leaf states are the FSM
  *path identifiers* that feed the epsilon dimension of EPM clustering.
* :mod:`repro.honeypot.samplefactory` — the Argos-based oracle: handles
  conversations the FSM cannot, confirms code injections (memory
  tainting in the real system) and hands the shellcode to Nepenthes.
* :mod:`repro.honeypot.shellcode` — Nepenthes-style shellcode analysis
  and download emulation, including the real system's failure modes
  (unknown shellcodes, truncated downloads).
* :mod:`repro.honeypot.sensor` / :mod:`repro.honeypot.gateway` — the
  low-cost sensors and the central gateway that keeps their FSM models
  in sync and triggers refinement.
* :mod:`repro.honeypot.deployment` — the orchestrator: builds the
  deployment (30 networks x 5 addresses by default, as deployed at the
  time of the paper), observes an attack stream and emits the enriched
  :class:`~repro.egpm.dataset.SGNetDataset`.
"""

from repro.honeypot.fsm import FSMLearner, FSMModel, FSMNode, UNKNOWN_PATH_ID
from repro.honeypot.shellcode import DownloadOutcome, ShellcodeAnalyzer, ShellcodeConfig
from repro.honeypot.samplefactory import InjectionReport, SampleFactory
from repro.honeypot.sensor import HoneypotSensor
from repro.honeypot.gateway import Gateway
from repro.honeypot.deployment import DeploymentConfig, SGNetDeployment

__all__ = [
    "DeploymentConfig",
    "DownloadOutcome",
    "FSMLearner",
    "FSMModel",
    "FSMNode",
    "Gateway",
    "HoneypotSensor",
    "InjectionReport",
    "SampleFactory",
    "SGNetDeployment",
    "ShellcodeAnalyzer",
    "ShellcodeConfig",
    "UNKNOWN_PATH_ID",
]
