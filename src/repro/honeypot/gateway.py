"""The SGNET gateway: FSM synchronisation and honeyfarm hand-off.

The gateway owns the shared FSM learner (all sensors see one model, kept
"in sync" by construction) and the sample-factory pool.  Sensors call
:meth:`Gateway.handle_unknown` for conversations their FSM cannot
explain; the gateway proxies them to a factory and feeds them to the
learner, eventually refining the model so future instances are handled
on the sensors autonomously.
"""

from __future__ import annotations

from repro.honeypot.fsm import Conversation, FSMLearner, UNKNOWN_PATH_ID
from repro.honeypot.samplefactory import SampleFactory


class Gateway:
    """Central coordination point of the deployment."""

    def __init__(self, learner: FSMLearner | None = None) -> None:
        self.learner = learner or FSMLearner()
        self.factory = SampleFactory()
        self.n_proxied = 0

    @property
    def model(self):
        """The shared FSM model sensors classify against."""
        return self.learner.model

    def handle_unknown(
        self, conversation: Conversation, *, is_injection: bool = True
    ) -> int:
        """Proxy an unexplained conversation to the honeyfarm and learn.

        Returns the path id if the learner's model already explains the
        conversation (a race that happens right after refinement), else
        :data:`UNKNOWN_PATH_ID`.
        """
        self.n_proxied += 1
        self.factory.handle(conversation, is_injection=is_injection)
        return self.learner.observe(conversation)

    def process(self, conversation: Conversation, *, is_injection: bool = True) -> int:
        """Classify-or-learn in a single FSM walk.

        Behaviourally identical to ``classify`` followed (on a miss) by
        :meth:`handle_unknown`, but the model is walked once: the
        classify walk's terminal state feeds the learner directly.  The
        model cannot change between the two legacy calls, so the merged
        path preserves every counter, buffer and refinement exactly.
        """
        learner = self.learner
        node, consumed = learner.model.walk(conversation)
        if consumed == len(conversation):
            return node.node_id
        self.n_proxied += 1
        self.factory.handle(conversation, is_injection=is_injection)
        return learner.observe_prewalked(conversation, node, consumed)

    def finalize(self) -> None:
        """End-of-stream hook: flush pending refinement buffers."""
        self.learner.flush()

    def classify(self, conversation: Conversation) -> int:
        """Classify against the current shared model (no learning)."""
        return self.learner.classify(conversation)
