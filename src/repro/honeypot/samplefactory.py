"""The sample factory: SGNET's Argos-based injection oracle.

When a sensor meets an activity its FSM cannot handle, the gateway
instantiates a *sample factory*: a real service implementation run under
the Argos memory-tainting emulator.  The factory (a) supplies the
protocol interaction the sensor lacks, and (b) detects the code
injection and pinpoints the injected shellcode.

In the simulation the oracle's verdict is derived from the attempt's
ground truth (an attack attempt *is* an injection by construction), but
the cost structure is preserved: every proxied conversation consumes a
factory instantiation, which is the resource the FSM learning loop
exists to save — see the deployment's ``proxy_ratio_by_week`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.honeypot.fsm import Conversation


@dataclass(frozen=True)
class InjectionReport:
    """What the tainting oracle reports for one proxied conversation."""

    is_injection: bool
    n_messages: int


class SampleFactory:
    """Counts and reports on proxied conversations."""

    def __init__(self) -> None:
        self.n_instantiations = 0
        self.n_injections = 0
        self.n_benign = 0

    def handle(
        self, conversation: Conversation, *, is_injection: bool = True
    ) -> InjectionReport:
        """Run one proxied conversation through the oracle.

        ``is_injection`` stands in for the memory-tainting verdict: the
        simulation derives it from the traffic's provenance (attack
        attempts taint control flow, background probes do not), exactly
        the ground truth Argos extracts from execution.
        """
        self.n_instantiations += 1
        if is_injection:
            self.n_injections += 1
        else:
            self.n_benign += 1
        return InjectionReport(is_injection=is_injection, n_messages=len(conversation))
