"""Deployment observation statistics: the honeypot's own health view.

Aggregates what the deployment experienced during a run: per-sensor
autonomy (locally-handled vs proxied conversations), honeyfarm load,
FSM growth, shellcode-pipeline failure rates, and background filtering.
Rendered into the operational section of reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.honeypot.deployment import SGNetDeployment
from repro.util.stats import quantile
from repro.util.tables import TextTable


@dataclass(frozen=True)
class DeploymentStats:
    """Counters summarising one deployment's observation run."""

    n_sensors: int
    n_networks: int
    conversations: int
    handled_locally: int
    proxied: int
    factory_instantiations: int
    factory_injections: int
    factory_benign: int
    fsm_states: int
    fsm_edges: int
    fsm_refinements: int
    shellcode: dict[str, int]
    background_filtered: int
    median_sensor_autonomy: float

    @property
    def autonomy(self) -> float:
        """Share of conversations answered without the honeyfarm."""
        total = self.handled_locally + self.proxied
        return self.handled_locally / total if total else 0.0


def collect_stats(deployment: SGNetDeployment) -> DeploymentStats:
    """Snapshot a deployment's counters after :meth:`observe`."""
    handled = sum(s.n_handled_locally for s in deployment.sensors.values())
    proxied = sum(s.n_proxied for s in deployment.sensors.values())
    autonomies = []
    for sensor in deployment.sensors.values():
        total = sensor.n_handled_locally + sensor.n_proxied
        if total:
            autonomies.append(sensor.n_handled_locally / total)
    factory = deployment.gateway.factory
    model = deployment.gateway.model
    return DeploymentStats(
        n_sensors=len(deployment.sensors),
        n_networks=len(deployment.sensor_networks),
        conversations=handled + proxied,
        handled_locally=handled,
        proxied=proxied,
        factory_instantiations=factory.n_instantiations,
        factory_injections=factory.n_injections,
        factory_benign=factory.n_benign,
        fsm_states=model.n_states,
        fsm_edges=model.n_edges,
        fsm_refinements=deployment.gateway.learner.n_refinements,
        shellcode=deployment.shellcode.stats(),
        background_filtered=deployment.n_background_filtered,
        median_sensor_autonomy=quantile(autonomies, 0.5) if autonomies else 0.0,
    )


def render_stats(stats: DeploymentStats) -> str:
    """Text rendering of the operational summary."""
    table = TextTable(["metric", "value"], title="Deployment operation summary")
    table.add_row(["sensors / networks", f"{stats.n_sensors} / {stats.n_networks}"])
    table.add_row(["conversations", stats.conversations])
    table.add_row(
        ["handled locally", f"{stats.handled_locally} ({stats.autonomy:.0%})"]
    )
    table.add_row(["proxied to honeyfarm", stats.proxied])
    table.add_row(["median sensor autonomy", f"{stats.median_sensor_autonomy:.0%}"])
    table.add_row(
        [
            "factory verdicts (injection/benign)",
            f"{stats.factory_injections}/{stats.factory_benign}",
        ]
    )
    table.add_row(
        ["FSM states/edges/refinements",
         f"{stats.fsm_states}/{stats.fsm_edges}/{stats.fsm_refinements}"]
    )
    table.add_row(["background probes filtered", stats.background_filtered])
    for key, value in stats.shellcode.items():
        table.add_row([f"shellcode pipeline: {key}", value])
    return table.render()
