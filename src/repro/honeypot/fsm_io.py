"""FSM model persistence and introspection.

The real SGNET gateway persists its accumulated FSM knowledge so that
sensors rejoin with the full model after restarts.  This module
round-trips an :class:`FSMModel` through JSON (wildcards encode as
``None``-markers, token values as strings) and renders the learned tree
for inspection.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.honeypot.fsm import FSMModel, FSMNode, Pattern
from repro.util.validation import require

_WILDCARD_MARKER = {"__wildcard__": True}


def _pattern_to_json(pattern: Pattern) -> list[Any]:
    return [_WILDCARD_MARKER if token is None else token for token in pattern]


def _pattern_from_json(data: list[Any]) -> Pattern:
    return tuple(
        None if isinstance(token, dict) and token.get("__wildcard__") else token
        for token in data
    )


def _node_to_json(node: FSMNode) -> dict[str, Any]:
    return {
        "id": node.node_id,
        "depth": node.depth,
        "edges": [
            {"pattern": _pattern_to_json(pattern), "child": _node_to_json(child)}
            for pattern, child in node.edges
        ],
    }


def model_to_json(model: FSMModel) -> dict[str, Any]:
    """Serialize a model to JSON-compatible primitives."""
    return {"next_id": model.n_states, "root": _node_to_json(model.root)}


def model_from_json(data: dict[str, Any]) -> FSMModel:
    """Inverse of :func:`model_to_json`."""
    model = FSMModel()

    def rebuild(node_data: dict[str, Any]) -> FSMNode:
        node = FSMNode(node_id=node_data["id"], depth=node_data["depth"])
        for edge in node_data["edges"]:
            child = rebuild(edge["child"])
            node.edges.append((_pattern_from_json(edge["pattern"]), child))
        return node

    root = rebuild(data["root"])
    require(root.node_id == 0, "serialized root must have id 0")
    model.root = root
    # Restore the allocation counter and edge count.
    max_id = 0
    n_edges = 0
    stack = [root]
    while stack:
        node = stack.pop()
        max_id = max(max_id, node.node_id)
        n_edges += len(node.edges)
        stack.extend(child for _p, child in node.edges)
    model._next_id = max(data.get("next_id", 0), max_id + 1)
    model._n_edges = n_edges
    return model


def save_model(model: FSMModel, path: str | Path) -> None:
    """Write a model as JSON."""
    Path(path).write_text(json.dumps(model_to_json(model)), encoding="utf-8")


def load_model(path: str | Path) -> FSMModel:
    """Read a model written by :func:`save_model`."""
    return model_from_json(json.loads(Path(path).read_text(encoding="utf-8")))


def render_model(model: FSMModel, *, max_depth: int | None = None) -> str:
    """ASCII rendering of the learned state tree.

    Each line is one transition: indentation encodes depth, ``*`` marks
    mutating regions, and the target state id is the FSM path identifier
    of conversations ending there.
    """
    lines = [f"FSM: {model.n_states} states, {model.n_edges} transitions"]

    def render(node: FSMNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        for pattern, child in sorted(
            node.edges, key=lambda edge: edge[1].node_id
        ):
            rendered = " ".join("*" if t is None else str(t) for t in pattern)
            lines.append(f"{'  ' * depth}[{rendered}] -> state {child.node_id}")
            render(child, depth + 1)

    render(model.root, 0)
    return "\n".join(lines)
