"""The deployment orchestrator: attack stream -> SGNET dataset.

:class:`SGNetDeployment` builds the monitored address set (by default 30
network locations with 5 addresses each — the deployment's footprint at
the time of the paper), runs the attack stream through the sensors /
gateway / shellcode pipeline, and emits the enriched
:class:`~repro.egpm.dataset.SGNetDataset`.

Observation is two-pass, mirroring how the paper analyses the dataset
*a posteriori* with the accumulated FSM knowledge: the first pass
processes events online (learning as it goes), the second re-classifies
every stored conversation against the final FSM so early events that
arrived before their activity was learned still receive their path id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.egpm.dataset import SGNetDataset
from repro.egpm.events import (
    AttackEvent,
    ExploitObservable,
    GroundTruth,
    MalwareObservable,
    PayloadObservable,
)
from repro.honeypot.fsm import FSMLearner, UNKNOWN_PATH_ID
from repro.honeypot.gateway import Gateway
from repro.honeypot.sensor import HoneypotSensor
from repro.honeypot.shellcode import ShellcodeAnalyzer, ShellcodeConfig
from repro.malware.background import BackgroundProbe
from repro.malware.landscape import AttackAttempt
from repro.net.address import IPv4Address
from repro.net.sampling import UniformSampler
from repro.obs import metrics as obs_metrics
from repro.peformat.magic import magic_type
from repro.peformat.parser import parse_pe
from repro.peformat.structures import PEFormatError
from repro.util.hashing import md5_hex
from repro.util.rng import RandomSource
from repro.util.timegrid import WEEK_SECONDS
from repro.util.validation import require


@dataclass(frozen=True, slots=True)
class StagedObservation:
    """One attack after pass A, with the binary already dropped.

    Everything pass B (:meth:`SGNetDeployment.add_final_event`) needs to
    emit the final :class:`AttackEvent` — the downloaded bytes themselves
    are reduced to ``malware`` during pass A, so a staged observation is
    a few hundred bytes regardless of sample size.  This is what lets
    the shard pipeline (:mod:`repro.experiments.shards`) discard each
    shard's binaries before building the next one.
    """

    timestamp: int
    source: IPv4Address
    sensor: IPv4Address
    conversation: tuple[tuple[str, ...], ...]
    dst_port: int
    truth: GroundTruth | None
    behavior: object
    payload: PayloadObservable | None
    malware: MalwareObservable | None


@dataclass(frozen=True)
class DeploymentConfig:
    """Deployment shape and pipeline failure rates."""

    n_networks: int = 30
    sensors_per_network: int = 5
    refine_threshold: int = 30
    fsm_min_support: int = 4
    shellcode: ShellcodeConfig = field(default_factory=ShellcodeConfig)

    def __post_init__(self) -> None:
        require(self.n_networks >= 1, "n_networks must be >= 1")
        require(self.sensors_per_network >= 1, "sensors_per_network must be >= 1")


class SGNetDeployment:
    """A simulated SGNET deployment ready to observe an attack stream."""

    def __init__(self, source: RandomSource, config: DeploymentConfig | None = None) -> None:
        self.config = config or DeploymentConfig()
        self._source = source
        self.gateway = Gateway(
            FSMLearner(
                refine_threshold=self.config.refine_threshold,
                min_support=self.config.fsm_min_support,
            )
        )
        self.shellcode = ShellcodeAnalyzer(self.config.shellcode)
        self.sensors: dict[int, HoneypotSensor] = {}
        self.sensor_addresses: list[IPv4Address] = []
        self._build_sensors()
        self._proxied_by_week: dict[int, int] = {}
        self._handled_by_week: dict[int, int] = {}
        self.n_background_filtered = 0
        #: Dedup cache for malware observables: identical downloaded
        #: bytes (same content seed, length and truncation flag) hash,
        #: parse and magic-sniff to the same frozen observable, so the
        #: work runs once per distinct payload instead of once per event.
        self._observable_cache: dict[tuple[str, int, int, bool], MalwareObservable] = {}

    def _build_sensors(self) -> None:
        rng = self._source.rng("deployment", "addresses")
        sampler = UniformSampler()
        networks: set[int] = set()
        while len(networks) < self.config.n_networks:
            networks.add(sampler.sample(rng).slash24)
        for network in sorted(networks):
            offsets = rng.sample(range(1, 255), self.config.sensors_per_network)
            for offset in sorted(offsets):
                address = IPv4Address((network << 8) | offset)
                self.sensors[int(address)] = HoneypotSensor(address, self.gateway)
                self.sensor_addresses.append(address)
        obs_metrics.active().gauge("honeypot.sensors_deployed").set(len(self.sensors))

    @property
    def sensor_networks(self) -> list[int]:
        """The /24 prefixes of the monitored network locations."""
        return sorted({address.slash24 for address in self.sensor_addresses})

    def observe(
        self,
        attempts: Iterable[AttackAttempt],
        *,
        background: Iterable[BackgroundProbe] | None = None,
    ) -> SGNetDataset:
        """Run the stream through the pipeline and build the dataset.

        ``background`` is an optional time-ordered stream of
        non-injection probes; they exercise sensors and the oracle but
        never become attack events (the dataset records injections only,
        as SGNET does).  Both streams must be individually time-ordered.
        """
        merged = self._merge_streams(attempts, background)
        staged: list[StagedObservation] = []
        self.n_background_filtered = 0
        for kind, item in merged:
            if kind == "background":
                sensor = self.sensors.get(int(item.sensor))
                if sensor is not None:
                    sensor.handle(item.conversation, is_injection=False)
                    self.n_background_filtered += 1
                continue
            staged.append(self.stage_attempt(item))

        self.gateway.finalize()

        dataset = SGNetDataset()
        classify_memo: dict[tuple, int] = {}
        for observation in staged:
            self.add_final_event(dataset, classify_memo, observation)
        self.emit_dataset_metrics(dataset)
        return dataset

    def stage_attempt(self, attempt: AttackAttempt) -> StagedObservation:
        """Pass A for one attack: online learning + shellcode pipeline.

        Runs the conversation through the sensor (which learns), draws
        the attempt's pipeline substream, emulates the shellcode and the
        download, and reduces the result to a :class:`StagedObservation`
        — the binary bytes do not survive this call.
        """
        sensor = self.sensors.get(int(attempt.sensor))
        require(
            sensor is not None,
            f"attack aimed at unmonitored address {attempt.sensor}",
        )
        path_id = sensor.handle(attempt.conversation)
        week = (attempt.timestamp) // WEEK_SECONDS
        if path_id == UNKNOWN_PATH_ID:
            self._proxied_by_week[week] = self._proxied_by_week.get(week, 0) + 1
        else:
            self._handled_by_week[week] = self._handled_by_week.get(week, 0) + 1

        rng = self._source.rng(
            "pipeline", attempt.variant_key, attempt.timestamp, int(attempt.source)
        )
        payload_obs = self.shellcode.analyze(attempt.payload, attempt.filename, rng)
        malware_obs = None
        if payload_obs is not None:
            outcome = self.shellcode.download(attempt.binary, rng)
            if outcome.succeeded:
                malware_obs = self.malware_observable_for(
                    attempt, outcome.data, outcome.truncated
                )
        return StagedObservation(
            timestamp=attempt.timestamp,
            source=attempt.source,
            sensor=attempt.sensor,
            conversation=attempt.conversation,
            dst_port=attempt.dst_port,
            truth=attempt.truth,
            behavior=attempt.behavior,
            payload=payload_obs,
            malware=malware_obs,
        )

    def add_final_event(
        self,
        dataset: SGNetDataset,
        classify_memo: dict[tuple, int],
        observation: StagedObservation,
    ) -> AttackEvent:
        """Pass B for one staged observation: final FSM path + event.

        Must run after :meth:`Gateway.finalize`; re-classifies the
        conversation against the final FSM (memoised per distinct
        conversation) and appends the finished event to ``dataset``.
        Returns the event so callers can also stream it into a columnar
        builder (see :mod:`repro.experiments.shards`).
        """
        final_path = classify_memo.get(observation.conversation)
        if final_path is None:
            final_path = self.gateway.classify(observation.conversation)
            classify_memo[observation.conversation] = final_path
        event = AttackEvent(
            event_id=dataset.next_event_id(),
            timestamp=observation.timestamp,
            source=observation.source,
            sensor=observation.sensor,
            exploit=ExploitObservable(
                fsm_path_id=final_path if final_path != UNKNOWN_PATH_ID else 0,
                dst_port=observation.dst_port,
            ),
            payload=observation.payload,
            malware=observation.malware,
            ground_truth=observation.truth,
        )
        dataset.add_event(event, behavior_handle=observation.behavior)
        return event

    def emit_dataset_metrics(self, dataset: SGNetDataset) -> None:
        """Record the observation-stage counters for a finished dataset."""
        registry = obs_metrics.active()
        registry.counter("honeypot.events_observed").inc(len(dataset))
        registry.counter("honeypot.samples_collected").inc(dataset.n_samples)
        registry.counter("honeypot.background_filtered").inc(self.n_background_filtered)

    @staticmethod
    def _merge_streams(
        attempts: Iterable[AttackAttempt],
        background: Iterable[BackgroundProbe] | None,
    ) -> Iterable[tuple[str, object]]:
        """Merge the two time-ordered streams into one tagged stream."""
        import heapq

        tagged_attacks = (("attack", a) for a in attempts)
        if background is None:
            return tagged_attacks
        tagged_probes = (("background", p) for p in background)
        return heapq.merge(
            tagged_attacks, tagged_probes, key=lambda pair: pair[1].timestamp
        )

    def malware_observable_for(
        self, attempt: AttackAttempt, data: bytes, truncated: bool
    ) -> MalwareObservable:
        """The observable of one downloaded payload, deduplicated.

        Attempts that tracked their content seed share one frozen
        observable per distinct ``(variant, seed, length, truncated)``
        payload — same input bytes, so the cached value equals what a
        fresh :meth:`_malware_observable` call would compute.  Untracked
        attempts always compute fresh.
        """
        if attempt.content_seed is None:
            return self._malware_observable(data, truncated)
        key = (attempt.variant_key, attempt.content_seed, len(data), truncated)
        observable = self._observable_cache.get(key)
        if observable is None:
            observable = self._malware_observable(data, truncated)
            self._observable_cache[key] = observable
        return observable

    @staticmethod
    def _malware_observable(data: bytes, truncated: bool) -> MalwareObservable:
        pe_info = None
        corrupted = truncated
        try:
            pe_info = parse_pe(data)
        except PEFormatError:
            corrupted = True
        return MalwareObservable(
            md5=md5_hex(data),
            size=len(data),
            magic=magic_type(data),
            pe=pe_info,
            corrupted=corrupted,
        )

    def proxy_ratio_by_week(self) -> dict[int, float]:
        """Fraction of conversations proxied to the honeyfarm, per week.

        The downward trend of this ratio is the economic argument for
        ScriptGen learning: sensors become autonomous as the FSM grows.
        """
        ratios: dict[int, float] = {}
        weeks = set(self._proxied_by_week) | set(self._handled_by_week)
        for week in sorted(weeks):
            proxied = self._proxied_by_week.get(week, 0)
            handled = self._handled_by_week.get(week, 0)
            total = proxied + handled
            ratios[week] = proxied / total if total else 0.0
        return ratios
