"""A low-cost SGNET sensor.

Sensors answer known activities from the shared FSM model and hand
unknown ones to the gateway.  Per-sensor counters record how much
traffic was handled autonomously versus proxied — the economics that
motivated ScriptGen learning in the first place.
"""

from __future__ import annotations

from repro.honeypot.fsm import Conversation, UNKNOWN_PATH_ID
from repro.honeypot.gateway import Gateway
from repro.net.address import IPv4Address


class HoneypotSensor:
    """One monitored IP address of the deployment."""

    def __init__(self, address: IPv4Address, gateway: Gateway) -> None:
        self.address = address
        self.gateway = gateway
        self.n_handled_locally = 0
        self.n_proxied = 0

    def handle(self, conversation: Conversation, *, is_injection: bool = True) -> int:
        """Process one inbound conversation; returns the FSM path id.

        :data:`UNKNOWN_PATH_ID` means the conversation was proxied and is
        not yet explained by the model.  ``is_injection`` is the traffic's
        ground truth, consumed by the oracle if the conversation is
        proxied (sensors themselves cannot tell probes from attacks).
        """
        path_id = self.gateway.process(conversation, is_injection=is_injection)
        if path_id != UNKNOWN_PATH_ID:
            self.n_handled_locally += 1
            return path_id
        self.n_proxied += 1
        return path_id
