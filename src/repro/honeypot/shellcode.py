"""Nepenthes-style shellcode analysis and download emulation.

SGNET reuses Nepenthes modules to understand the *intended behaviour* of
an injected shellcode (which protocol it downloads over, which filename
and port are involved, who connects to whom) and to emulate the network
actions needed to actually fetch the malware.  Both stages fail in the
real system, and those failures shape the dataset:

* some shellcodes are unknown to the analyzer (no pi observables and no
  sample at all),
* some downloads fail outright, and
* some downloads are *truncated* — the paper explicitly attributes its
  6353-collected vs 5165-executable gap to failures in Nepenthes
  download modules producing corrupted binaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.egpm.events import PayloadObservable
from repro.malware.propagation import PayloadSpec
from repro.util.validation import require, require_probability


@dataclass(frozen=True)
class ShellcodeConfig:
    """Failure-rate knobs of the analyzer/download pipeline."""

    unknown_rate: float = 0.02
    download_fail_rate: float = 0.04
    truncation_rate: float = 0.085
    min_truncation_fraction: float = 0.05
    max_truncation_fraction: float = 0.9

    def __post_init__(self) -> None:
        require_probability(self.unknown_rate, "unknown_rate")
        require_probability(self.download_fail_rate, "download_fail_rate")
        require_probability(self.truncation_rate, "truncation_rate")
        require_probability(self.min_truncation_fraction, "min_truncation_fraction")
        require_probability(self.max_truncation_fraction, "max_truncation_fraction")
        require(
            self.min_truncation_fraction <= self.max_truncation_fraction,
            "min_truncation_fraction must be <= max_truncation_fraction",
        )


@dataclass(frozen=True)
class DownloadOutcome:
    """Result of emulating one shellcode's download actions."""

    data: bytes | None
    truncated: bool

    @property
    def succeeded(self) -> bool:
        """Whether any bytes were collected at all."""
        return self.data is not None


class ShellcodeAnalyzer:
    """The Nepenthes stand-in: shellcode -> pi observables + download."""

    def __init__(self, config: ShellcodeConfig | None = None) -> None:
        self.config = config or ShellcodeConfig()
        self.n_analyzed = 0
        self.n_unknown = 0
        self.n_downloads = 0
        self.n_failed_downloads = 0
        self.n_truncated = 0

    def analyze(
        self, payload: PayloadSpec, filename: str | None, rng: random.Random
    ) -> PayloadObservable | None:
        """Extract pi observables from one injected shellcode.

        Returns ``None`` when the shellcode is not understood by any
        module (the event then carries no pi/mu information).  The
        involved port is the spec's fixed port when it has one, or the
        OS-assigned ephemeral port Nepenthes reports otherwise — fresh
        per attack, hence never an EPM invariant.
        """
        self.n_analyzed += 1
        if rng.random() < self.config.unknown_rate:
            self.n_unknown += 1
            return None
        port = payload.port
        if port is None:
            port = rng.randint(1024, 65535)
        return PayloadObservable(
            protocol=payload.protocol,
            interaction=payload.interaction,
            filename=filename,
            port=port,
        )

    def download(self, binary: bytes, rng: random.Random) -> DownloadOutcome:
        """Emulate the download actions; may fail or truncate."""
        self.n_downloads += 1
        roll = rng.random()
        if roll < self.config.download_fail_rate:
            self.n_failed_downloads += 1
            return DownloadOutcome(data=None, truncated=False)
        if roll < self.config.download_fail_rate + self.config.truncation_rate:
            self.n_truncated += 1
            if rng.random() < 0.12:
                # The connection died almost immediately: only a sliver of
                # the file arrived, often not even the full DOS/PE headers
                # (these surface as 'data' / bare 'MS-DOS executable' in
                # the libmagic feature).
                cut = rng.randint(1, 512)
            else:
                fraction = rng.uniform(
                    self.config.min_truncation_fraction,
                    self.config.max_truncation_fraction,
                )
                cut = max(1, int(len(binary) * fraction))
            return DownloadOutcome(data=binary[: min(cut, len(binary))], truncated=True)
        return DownloadOutcome(data=binary, truncated=False)

    def stats(self) -> dict[str, int]:
        """Counter snapshot for reporting."""
        return {
            "analyzed": self.n_analyzed,
            "unknown": self.n_unknown,
            "downloads": self.n_downloads,
            "failed_downloads": self.n_failed_downloads,
            "truncated": self.n_truncated,
        }
