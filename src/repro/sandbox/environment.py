"""The execution environment: the world outside the sandbox.

A sample's observable behaviour depends on external conditions at the
time it is analysed: whether a DNS name still resolves, whether the C&C
server is up, which components a distribution site serves.  The paper's
§4.2 traces several clustering anomalies to exactly these conditions
(the ``iliketay.cn`` case).  :class:`Environment` makes them explicit
and time-dependent so the reproduction can generate — and then heal —
the same anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import require


@dataclass(frozen=True)
class Window:
    """A half-open validity interval [start, end); ``end=None`` = forever."""

    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.end is not None:
            require(self.end > self.start, "Window end must be after start")

    def contains(self, time: int) -> bool:
        """Whether ``time`` falls inside the window."""
        if time < self.start:
            return False
        return self.end is None or time < self.end


@dataclass
class Environment:
    """Time-varying external world state.

    Unlisted DNS names never resolve; unlisted C&C servers and components
    are considered up forever (the common case), so scenarios only need
    to declare the *interesting* outages.
    """

    dns: dict[str, list[Window]] = field(default_factory=dict)
    cnc_liveness: dict[str, list[Window]] = field(default_factory=dict)
    component_windows: dict[tuple[str, str], list[Window]] = field(default_factory=dict)

    def add_dns(self, domain: str, *windows: Window) -> None:
        """Declare when ``domain`` resolves."""
        self.dns.setdefault(domain, []).extend(windows or [Window()])

    def set_cnc_liveness(self, server: str, *windows: Window) -> None:
        """Declare when C&C ``server`` accepts connections."""
        self.cnc_liveness.setdefault(server, []).extend(windows or [Window()])

    def set_component_window(self, domain: str, path: str, *windows: Window) -> None:
        """Declare when a downloadable component is actually served."""
        self.component_windows.setdefault((domain, path), []).extend(
            windows or [Window()]
        )

    def resolves(self, domain: str, time: int) -> bool:
        """Whether ``domain`` resolves at ``time``."""
        windows = self.dns.get(domain)
        if windows is None:
            return False
        return any(w.contains(time) for w in windows)

    def cnc_live(self, server: str, time: int) -> bool:
        """Whether C&C ``server`` is reachable at ``time``."""
        windows = self.cnc_liveness.get(server)
        if windows is None:
            return True
        return any(w.contains(time) for w in windows)

    def component_available(self, domain: str, path: str, time: int) -> bool:
        """Whether the component at ``domain``/``path`` is served at ``time``."""
        windows = self.component_windows.get((domain, path))
        if windows is None:
            return True
        return any(w.contains(time) for w in windows)
