"""Simulated dynamic analysis: behaviour template -> behavioural profile.

The engine interprets a sample's ground-truth
:class:`~repro.malware.behaviorspec.BehaviorTemplate` (the stand-in for
its executable content) under an :class:`Environment` at a given
execution time, producing the :class:`BehaviorProfile` Anubis would have
recorded.  Three effects shape the output exactly as in the paper:

* **deterministic behaviour** (mutexes, file drops, scans) appears
  identically in every run — variants sharing a codebase yield
  near-identical profiles and merge into one B-cluster;
* **environment-dependent behaviour** (DNS lookups, component downloads,
  C&C sessions) contributes different features depending on the state of
  the world at execution time — one codebase can legitimately split into
  several B-clusters (the ``iliketay.cn`` case);
* **derailed runs** — with probability ``noise_rate`` an execution
  crashes mid-way and thrashes (truncated base behaviour plus a burst of
  run-specific junk features), which is what pushes a sample below the
  clustering similarity threshold and strands it in a size-1 B-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Sequence

from repro.malware.behaviorspec import BehaviorTemplate
from repro.obs import metrics as obs_metrics
from repro.sandbox.behavior import BehaviorProfile, Feature
from repro.sandbox.environment import Environment
from repro.util.parallel import Executor, SerialExecutor
from repro.util.rng import spawn_rng
from repro.util.validation import require, require_probability


@dataclass(frozen=True)
class SandboxConfig:
    """Execution-engine knobs.

    Derailed runs come in two flavours:

    * **crash** (probability ``crash_mode_probability`` within derails) —
      the run dies at one of a few reproducible early points, recording a
      deterministic truncated prefix of the behaviour; two samples of one
      codebase crashing at the same point yield *identical* partial
      profiles, so crashes produce small (size 2-5) anomalous B-clusters;
    * **thrash** — the run records a random subset of the behaviour
      (``derail_keep_fraction``) plus run-specific junk scaled by
      ``derail_noise_factor``; junk never repeats, so thrashes produce
      the singleton B-clusters of §4.2.
    """

    derail_keep_fraction: float = 0.55
    derail_noise_factor: float = 1.0
    crash_mode_probability: float = 0.35
    crash_points: tuple[float, ...] = (0.3, 0.45, 0.6)
    analysis_minutes: int = 4
    #: Scales every template's noise_rate (0 = a perfect analysis
    #: environment, >1 = a flakier one); used by the robustness sweeps.
    noise_multiplier: float = 1.0

    def __post_init__(self) -> None:
        require_probability(self.derail_keep_fraction, "derail_keep_fraction")
        require_probability(self.crash_mode_probability, "crash_mode_probability")
        require(self.derail_noise_factor >= 0, "derail_noise_factor must be >= 0")
        require(self.analysis_minutes > 0, "analysis_minutes must be positive")
        require(self.noise_multiplier >= 0, "noise_multiplier must be >= 0")
        require(len(self.crash_points) > 0, "need at least one crash point")
        for point in self.crash_points:
            require(0.0 < point < 1.0, "crash points must be in (0, 1)")


@dataclass(frozen=True)
class ExecutionTask:
    """One analysis request, fully determined by its fields.

    The profile is a pure function of ``(environment, config, task)``,
    which is what makes batches safe to execute on any
    :mod:`repro.util.parallel` backend: every run draws only from the
    substream spawned from its own ``run_seed``.
    """

    behavior: BehaviorTemplate
    time: int
    run_seed: int
    allow_derail: bool = True


class Sandbox:
    """The simulated Anubis execution engine."""

    def __init__(self, environment: Environment, config: SandboxConfig | None = None) -> None:
        self.environment = environment
        self.config = config or SandboxConfig()
        self.n_executions = 0

    def execute(
        self,
        behavior: BehaviorTemplate,
        *,
        time: int,
        run_seed: int,
        allow_derail: bool = True,
    ) -> BehaviorProfile:
        """Run one analysis and return the recorded profile.

        ``run_seed`` individualises the run (Anubis runs are not
        perfectly repeatable); ``allow_derail=False`` models a curated
        re-execution on a freshly reset image, the paper's "healing"
        procedure for misclassified samples.
        """
        self.n_executions += 1
        obs_metrics.active().counter("sandbox.executions").inc()
        return self._run(
            ExecutionTask(
                behavior=behavior, time=time, run_seed=run_seed, allow_derail=allow_derail
            )
        )

    def execute_batch(
        self,
        tasks: Sequence[ExecutionTask],
        *,
        executor: Executor | None = None,
    ) -> list[BehaviorProfile]:
        """Run many analyses, optionally in parallel; order is preserved.

        The result is bit-identical to calling :meth:`execute` on each
        task in sequence, on every backend: each run's randomness comes
        from its own ``run_seed`` substream and the environment is only
        read.  The execution counter is updated once, here, so it stays
        exact even when worker processes operate on copies of ``self``.
        """
        tasks = list(tasks)
        executor = executor or SerialExecutor()
        registry = obs_metrics.active()
        registry.counter("sandbox.executions").inc(len(tasks))
        registry.histogram(
            "sandbox.batch_size", buckets=obs_metrics.SIZE_BUCKETS
        ).observe(len(tasks))
        profiles = executor.map(partial(_execute_task, self), tasks)
        self.n_executions += len(tasks)
        return profiles

    def _run(self, task: ExecutionTask) -> BehaviorProfile:
        """Pure execution path (no counter update), shared by all entry points."""
        rng = spawn_rng(task.run_seed, "sandbox-run")
        features = self._interpret(task.behavior, task.time)
        derail_rate = min(1.0, task.behavior.noise_rate * self.config.noise_multiplier)
        if task.allow_derail and derail_rate > 0 and rng.random() < derail_rate:
            features = self._derail(features, rng)
        return BehaviorProfile.from_features(features)

    def _interpret(self, behavior: BehaviorTemplate, time: int) -> list[Feature]:
        features: list[Feature] = []
        for mutex in behavior.mutexes:
            features.append(("mutex", mutex, "create"))
        for path in behavior.files_dropped:
            features.append(("file", path, "create"))
        for key in behavior.registry_keys:
            features.append(("registry", key, "set_value"))
        for service in behavior.services_installed:
            features.append(("service", service, "install"))
        for process in behavior.processes_spawned:
            features.append(("process", process, "spawn"))
        for port in behavior.scan_ports:
            features.append(("network", f"tcp/{port}", "scan"))
        if behavior.infects_html:
            features.append(("file", "*.html", "infect"))
        for target in behavior.dos_targets:
            features.append(("network", target, "flood"))
        features.extend(behavior.extra_features)

        for domain in behavior.dns_queries:
            if self.environment.resolves(domain, time):
                features.append(("dns", domain, "resolve"))
            else:
                features.append(("dns", domain, "nxdomain"))

        for component in behavior.components:
            resolved = self.environment.resolves(component.domain, time)
            served = self.environment.component_available(
                component.domain, component.path, time
            )
            url = f"http://{component.domain}{component.path}"
            if resolved and served:
                features.append(("http", url, "download"))
                features.append(("process", component.path.rsplit("/", 1)[-1], "execute"))
                features.extend(self._interpret(component.component, time))
            elif resolved:
                features.append(("http", url, "download_failed"))
            else:
                features.append(("dns", component.domain, "nxdomain"))

        if behavior.cnc is not None:
            cnc = behavior.cnc
            if self.environment.cnc_live(cnc.server, time):
                features.append(("network", f"{cnc.server}:{cnc.port}", "connect"))
                features.append(("irc", cnc.rendezvous, "join"))
                features.append(("irc", cnc.rendezvous, "receive_commands"))
            else:
                features.append(("network", f"{cnc.server}:{cnc.port}", "connect_failed"))
        return features

    def _derail(self, features: list[Feature], rng) -> list[Feature]:
        if rng.random() < self.config.crash_mode_probability:
            return self._crash(features, rng)
        keep = max(1, int(len(features) * self.config.derail_keep_fraction))
        kept = rng.sample(features, keep) if keep < len(features) else list(features)
        n_noise = max(4, int(len(features) * self.config.derail_noise_factor))
        for _ in range(n_noise):
            token = "".join(rng.choice("0123456789abcdef") for _ in range(12))
            category = rng.choice(("file", "registry", "mutex", "process"))
            kept.append((category, f"tmp_{token}", "create"))
        return kept

    def _crash(self, features: list[Feature], rng) -> list[Feature]:
        point = rng.choice(self.config.crash_points)
        ordered = sorted(features)
        keep = max(1, int(len(ordered) * point))
        return ordered[:keep]


def _execute_task(sandbox: Sandbox, task: ExecutionTask) -> BehaviorProfile:
    """Module-level batch worker (process pools must be able to pickle it)."""
    return sandbox._run(task)
