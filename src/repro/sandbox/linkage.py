"""Alternative linkage strategies for behaviour clustering.

The paper attributes part of the size-1 anomaly population to "the
employment of supervised clustering techniques (single linkage
hierarchical clustering) in Anubis clustering".  Single linkage merges
through chains — one borderline profile can bridge otherwise-distant
groups — while leaving genuinely noisy profiles stranded alone.

:func:`cluster_hierarchical` runs full agglomerative clustering (via
scipy) over the unique behavioural profiles with a choice of linkage
(``single``, ``complete``, ``average``), cut at distance ``1 - t``.
With ``single`` it reproduces the union-find implementation of
:func:`repro.sandbox.clustering.cluster_exact` exactly (a good
cross-implementation oracle); ``average``/``complete`` are the
ablation: stricter group cohesion, different artifact structure.

This module requires scipy and is therefore *not* re-exported from
:mod:`repro.sandbox` — it is an ablation/validation tool, imported
explicitly by the tests and benches that need it.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage

from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import BehaviorClustering, ClusteringConfig
from repro.util.stats import jaccard
from repro.util.validation import require

_LINKAGES = ("single", "complete", "average")


def _condensed_jaccard_distances(feature_sets: list[set]) -> np.ndarray:
    n = len(feature_sets)
    out = np.empty(n * (n - 1) // 2, dtype=np.float64)
    k = 0
    for i in range(n):
        a = feature_sets[i]
        for j in range(i + 1, n):
            out[k] = 1.0 - jaccard(a, feature_sets[j])
            k += 1
    return out


def cluster_hierarchical(
    profiles: Mapping[str, BehaviorProfile],
    config: ClusteringConfig | None = None,
    *,
    method: str = "average",
) -> BehaviorClustering:
    """Agglomerative clustering of profiles cut at distance ``1 - t``.

    Exact duplicates are pre-collapsed as in the main pipeline;
    complexity is quadratic in *unique* profiles, so this is the
    ablation/validation tool, not the production path.
    """
    require(method in _LINKAGES, f"unknown linkage {method!r}")
    config = config or ClusteringConfig()

    groups: dict[frozenset, list[str]] = {}
    for key, profile in profiles.items():
        groups.setdefault(profile.features, []).append(key)
    uniques = sorted(groups.keys(), key=lambda fs: (len(fs), sorted(fs)))

    if not uniques:
        return BehaviorClustering.from_assignment({})
    if len(uniques) == 1:
        assignment = {key: 0 for key in groups[uniques[0]]}
        return BehaviorClustering.from_assignment(assignment)

    distances = _condensed_jaccard_distances([set(f) for f in uniques])
    tree = scipy_linkage(distances, method=method)
    # fcluster with criterion='distance' groups everything whose merge
    # height is <= the cutoff; cutting just below 1-t keeps >= t merges.
    cutoff = (1.0 - config.threshold) + 1e-9
    labels = fcluster(tree, t=cutoff, criterion="distance")

    assignment: dict[str, int] = {}
    for index, features in enumerate(uniques):
        for key in groups[features]:
            assignment[key] = int(labels[index])
    return BehaviorClustering.from_assignment(assignment)
