"""MinHash signatures and locality-sensitive hashing for Jaccard similarity.

Bayer et al. (NDSS 2009) scale behaviour clustering past the O(n^2)
distance matrix by MinHash-LSH: each profile's feature set is reduced to
a signature of ``n_hashes`` minima under universal hash functions; the
signature is sliced into ``bands`` of ``rows`` values; profiles sharing
any band land in the same candidate bucket and only candidate pairs get
an exact similarity check.  With rows=r and bands=b, a pair of Jaccard
similarity s collides with probability 1-(1-s^r)^b — a sigmoid centred
near (1/b)^(1/r), tuned here to the clustering threshold.

Two equivalent-quality backends are provided: the portable pure-Python
family over a 61-bit Mersenne prime, and a vectorised numpy family over
the 31-bit Mersenne prime (products fit in 64-bit words, so the whole
signature computes as two broadcasting operations and a column min).
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import require

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 61) - 2
_MERSENNE_31 = (1 << 31) - 1

#: Hash functions evaluated per batch in :meth:`MinHasher.signature_matrix`
#: — bounds the (chunk, total_features) intermediate to a few MB.
_MATRIX_CHUNK = 16


class MinHasher:
    """A family of ``n_hashes`` universal hash functions over 64-bit ids.

    ``backend='python'`` (default) uses 61-bit arithmetic; ``'numpy'``
    uses a vectorised 31-bit family — a *different* (equally universal)
    hash family, so signatures are not interchangeable between backends,
    but all statistical guarantees are identical and the numpy path is
    several times faster on large profiles.
    """

    def __init__(
        self, n_hashes: int = 80, *, seed: int = 2010, backend: str = "python"
    ) -> None:
        require(n_hashes >= 1, "n_hashes must be >= 1")
        require(backend in ("python", "numpy"), f"unknown backend {backend!r}")
        self.n_hashes = n_hashes
        self.backend = backend
        rng = spawn_rng(seed, "minhash-coefficients")
        if backend == "python":
            self._a = [rng.randrange(1, _MERSENNE_PRIME) for _ in range(n_hashes)]
            self._b = [rng.randrange(0, _MERSENNE_PRIME) for _ in range(n_hashes)]
        else:
            self._a_np = np.array(
                [rng.randrange(1, _MERSENNE_31) for _ in range(n_hashes)],
                dtype=np.uint64,
            )[:, None]
            self._b_np = np.array(
                [rng.randrange(0, _MERSENNE_31) for _ in range(n_hashes)],
                dtype=np.uint64,
            )[:, None]

    def signature(self, hashed_features: Iterable[int]) -> tuple[int, ...]:
        """MinHash signature of a set of stable 64-bit feature hashes.

        The empty set gets a sentinel all-max signature (never collides
        with anything non-empty).
        """
        items = list(hashed_features)
        if not items:
            return tuple([_MAX_HASH + 1] * self.n_hashes)
        if self.backend == "numpy":
            return self._signature_numpy(items)
        signature = []
        for a, b in zip(self._a, self._b):
            signature.append(
                min(((a * x + b) % _MERSENNE_PRIME) & _MAX_HASH for x in items)
            )
        return tuple(signature)

    def _signature_numpy(self, items: list[int]) -> tuple[int, ...]:
        # Fold 64-bit feature hashes into 31 bits, then evaluate all
        # hash functions over all items in one broadcast: a*x+b fits in
        # uint64 because both operands are < 2^31.
        x = np.array(items, dtype=np.uint64)
        x = (x ^ (x >> np.uint64(31))) & np.uint64(_MERSENNE_31 - 1)
        values = (self._a_np * x[None, :] + self._b_np) % np.uint64(_MERSENNE_31)
        return tuple(int(v) for v in values.min(axis=1))

    def signature_matrix(
        self, feature_sets: Sequence[Iterable[int]]
    ) -> np.ndarray:
        """Batched signatures: one ``(n_profiles, n_hashes)`` uint64 matrix.

        Row ``i`` is bit-identical to ``signature(feature_sets[i])`` for
        this backend (empty sets get the all-sentinel row).  The batch
        evaluates every hash function over the concatenation of all
        feature sets and takes per-profile segment minima with
        ``np.minimum.reduceat`` — one pass over the data instead of a
        Python loop per profile.  The pure-Python 61-bit family is
        reproduced exactly in uint64 via limb-split modular
        multiplication (see :meth:`_matrix_python`).
        """
        sets = [list(fs) for fs in feature_sets]
        out = np.full((len(sets), self.n_hashes), _MAX_HASH + 1, dtype=np.uint64)
        nonempty = [i for i, items in enumerate(sets) if items]
        if not nonempty:
            return out
        lengths = np.array([len(sets[i]) for i in nonempty], dtype=np.intp)
        flat = np.concatenate(
            [np.array(sets[i], dtype=np.uint64) for i in nonempty]
        )
        offsets = np.zeros(len(nonempty), dtype=np.intp)
        np.cumsum(lengths[:-1], out=offsets[1:])
        if self.backend == "numpy":
            mins = self._matrix_numpy(flat, offsets)
        else:
            mins = self._matrix_python(flat, offsets)
        out[nonempty] = mins
        return out

    def _matrix_numpy(self, flat: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Segment minima of the 31-bit family over concatenated features."""
        x = (flat ^ (flat >> np.uint64(31))) & np.uint64(_MERSENNE_31 - 1)
        mins = np.empty((len(offsets), self.n_hashes), dtype=np.uint64)
        for start in range(0, self.n_hashes, _MATRIX_CHUNK):
            stop = min(start + _MATRIX_CHUNK, self.n_hashes)
            values = (
                self._a_np[start:stop] * x[None, :] + self._b_np[start:stop]
            ) % np.uint64(_MERSENNE_31)
            mins[:, start:stop] = np.minimum.reduceat(values, offsets, axis=1).T
        return mins

    def _matrix_python(self, flat: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Segment minima of the 61-bit family, exactly, in uint64.

        ``(a*x + b) % p`` with ``p = 2^61 - 1`` overflows 64-bit words,
        so ``a`` and ``x mod p`` are split into 31/30-bit limbs and the
        product is reduced with ``2^61 ≡ 1 (mod p)``:

            a*x = a1*x1*2^62 + (a1*x0 + a0*x1)*2^31 + a0*x0

        where each partial product and every intermediate sum stays
        below 2^63.  The per-value ``& _MAX_HASH`` of the scalar path is
        applied before the minimum, matching :meth:`signature` bit for
        bit.
        """
        p = np.uint64(_MERSENNE_PRIME)
        mask = np.uint64(_MAX_HASH)
        # x mod p: p is the 61-bit mask, so x = (x >> 61)*2^61 + (x & p).
        x = (flat >> np.uint64(61)) + (flat & p)
        x = np.where(x >= p, x - p, x)
        x1 = x >> np.uint64(31)  # < 2^30
        x0 = x & np.uint64((1 << 31) - 1)  # < 2^31
        mins = np.empty((len(offsets), self.n_hashes), dtype=np.uint64)
        for k, (a, b) in enumerate(zip(self._a, self._b)):
            a1 = np.uint64(a >> 31)  # < 2^30
            a0 = np.uint64(a & ((1 << 31) - 1))  # < 2^31
            # a1*x1*2^62 ≡ 2*a1*x1 (mod p); the product is < 2^61.
            t1 = (np.uint64(2) * a1 * x1) % p
            # Middle limb: t*2^31 with t < 2^62; split t at 30 bits so
            # t*2^31 = th*2^61 + tl*2^31 ≡ th + tl*2^31 (mod p).
            t = a1 * x0 + a0 * x1
            t2 = (t >> np.uint64(30)) + ((t & np.uint64((1 << 30) - 1)) << np.uint64(31))
            t2 = np.where(t2 >= p, t2 - p, t2)
            t3 = (a0 * x0) % p
            # Each term is < p and b < p, so the sum stays below 4p < 2^63.
            h = ((t1 + t2 + t3 + np.uint64(b)) % p) & mask
            mins[:, k] = np.minimum.reduceat(h, offsets)
        return mins

    @staticmethod
    def estimate_similarity(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        """Unbiased Jaccard estimate from two signatures."""
        require(len(sig_a) == len(sig_b), "signature lengths differ")
        if not sig_a:
            return 0.0
        agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agree / len(sig_a)


class LSHIndex:
    """Banded LSH index over MinHash signatures.

    ``bands * rows`` must equal the signature length.  :meth:`add` files
    each item under one bucket per band; :meth:`candidate_pairs` returns
    every pair sharing at least one bucket.

    A bucket of size k emits k*(k-1)/2 pairs, so one degenerate
    mega-bucket (e.g. many empty-profile sentinels under a skewed hash
    family) can silently turn candidate generation quadratic.
    ``max_bucket_size`` guards against that: buckets larger than the
    bound contribute *no* pairs and are counted in
    :attr:`skipped_buckets` instead (surfaced as the
    ``lsh.buckets_skipped`` metric by the clustering pipeline).  The
    default ``None`` keeps every bucket — the paper-scale pipeline
    relies on exact pair emission for digest stability.
    """

    def __init__(
        self,
        *,
        bands: int = 10,
        rows: int = 8,
        max_bucket_size: int | None = None,
    ) -> None:
        require(bands >= 1 and rows >= 1, "bands and rows must be >= 1")
        require(
            max_bucket_size is None or max_bucket_size >= 2,
            "max_bucket_size must be >= 2 (or None to disable the guard)",
        )
        self.bands = bands
        self.rows = rows
        self.max_bucket_size = max_bucket_size
        self.skipped_buckets = 0
        self._buckets: list[dict[tuple[int, ...], list[Hashable]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._n_items = 0

    @property
    def signature_length(self) -> int:
        """Required MinHash signature length."""
        return self.bands * self.rows

    def add(self, key: Hashable, signature: Sequence[int]) -> None:
        """Index one item's signature."""
        require(
            len(signature) == self.signature_length,
            f"signature length {len(signature)} != bands*rows {self.signature_length}",
        )
        for band in range(self.bands):
            chunk = tuple(signature[band * self.rows : (band + 1) * self.rows])
            self._buckets[band][chunk].append(key)
        self._n_items += 1

    def candidate_pairs(self) -> set[tuple[Hashable, Hashable]]:
        """All distinct pairs sharing at least one band bucket.

        Pairs are emitted once per bucket via ``itertools.combinations``
        over the sort-ordered members; buckets above ``max_bucket_size``
        (when set) are skipped and tallied in :attr:`skipped_buckets`.
        """
        pairs: set[tuple[Hashable, Hashable]] = set()
        self.skipped_buckets = 0
        for band_buckets in self._buckets:
            for bucket in band_buckets.values():
                if len(bucket) < 2:
                    continue
                if (
                    self.max_bucket_size is not None
                    and len(bucket) > self.max_bucket_size
                ):
                    self.skipped_buckets += 1
                    continue
                pairs.update(combinations(sorted(bucket, key=repr), 2))
        return pairs

    def bucket_sizes(self) -> list[int]:
        """Occupancy of every bucket across all bands (histogram fodder)."""
        return [
            len(bucket) for band_buckets in self._buckets for bucket in band_buckets.values()
        ]

    def stats(self) -> dict[str, int]:
        """Bucket occupancy counters (for the scalability benchmark)."""
        n_buckets = sum(len(b) for b in self._buckets)
        largest = max(
            (len(bucket) for band in self._buckets for bucket in band.values()),
            default=0,
        )
        return {
            "items": self._n_items,
            "buckets": n_buckets,
            "largest_bucket": largest,
            "skipped_buckets": self.skipped_buckets,
        }
