"""MinHash signatures and locality-sensitive hashing for Jaccard similarity.

Bayer et al. (NDSS 2009) scale behaviour clustering past the O(n^2)
distance matrix by MinHash-LSH: each profile's feature set is reduced to
a signature of ``n_hashes`` minima under universal hash functions; the
signature is sliced into ``bands`` of ``rows`` values; profiles sharing
any band land in the same candidate bucket and only candidate pairs get
an exact similarity check.  With rows=r and bands=b, a pair of Jaccard
similarity s collides with probability 1-(1-s^r)^b — a sigmoid centred
near (1/b)^(1/r), tuned here to the clustering threshold.

Two equivalent-quality backends are provided: the portable pure-Python
family over a 61-bit Mersenne prime, and a vectorised numpy family over
the 31-bit Mersenne prime (products fit in 64-bit words, so the whole
signature computes as two broadcasting operations and a column min).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import require

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 61) - 2
_MERSENNE_31 = (1 << 31) - 1


class MinHasher:
    """A family of ``n_hashes`` universal hash functions over 64-bit ids.

    ``backend='python'`` (default) uses 61-bit arithmetic; ``'numpy'``
    uses a vectorised 31-bit family — a *different* (equally universal)
    hash family, so signatures are not interchangeable between backends,
    but all statistical guarantees are identical and the numpy path is
    several times faster on large profiles.
    """

    def __init__(
        self, n_hashes: int = 80, *, seed: int = 2010, backend: str = "python"
    ) -> None:
        require(n_hashes >= 1, "n_hashes must be >= 1")
        require(backend in ("python", "numpy"), f"unknown backend {backend!r}")
        self.n_hashes = n_hashes
        self.backend = backend
        rng = spawn_rng(seed, "minhash-coefficients")
        if backend == "python":
            self._a = [rng.randrange(1, _MERSENNE_PRIME) for _ in range(n_hashes)]
            self._b = [rng.randrange(0, _MERSENNE_PRIME) for _ in range(n_hashes)]
        else:
            self._a_np = np.array(
                [rng.randrange(1, _MERSENNE_31) for _ in range(n_hashes)],
                dtype=np.uint64,
            )[:, None]
            self._b_np = np.array(
                [rng.randrange(0, _MERSENNE_31) for _ in range(n_hashes)],
                dtype=np.uint64,
            )[:, None]

    def signature(self, hashed_features: Iterable[int]) -> tuple[int, ...]:
        """MinHash signature of a set of stable 64-bit feature hashes.

        The empty set gets a sentinel all-max signature (never collides
        with anything non-empty).
        """
        items = list(hashed_features)
        if not items:
            return tuple([_MAX_HASH + 1] * self.n_hashes)
        if self.backend == "numpy":
            return self._signature_numpy(items)
        signature = []
        for a, b in zip(self._a, self._b):
            signature.append(
                min(((a * x + b) % _MERSENNE_PRIME) & _MAX_HASH for x in items)
            )
        return tuple(signature)

    def _signature_numpy(self, items: list[int]) -> tuple[int, ...]:
        # Fold 64-bit feature hashes into 31 bits, then evaluate all
        # hash functions over all items in one broadcast: a*x+b fits in
        # uint64 because both operands are < 2^31.
        x = np.array(items, dtype=np.uint64)
        x = (x ^ (x >> np.uint64(31))) & np.uint64(_MERSENNE_31 - 1)
        values = (self._a_np * x[None, :] + self._b_np) % np.uint64(_MERSENNE_31)
        return tuple(int(v) for v in values.min(axis=1))

    @staticmethod
    def estimate_similarity(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        """Unbiased Jaccard estimate from two signatures."""
        require(len(sig_a) == len(sig_b), "signature lengths differ")
        if not sig_a:
            return 0.0
        agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agree / len(sig_a)


class LSHIndex:
    """Banded LSH index over MinHash signatures.

    ``bands * rows`` must equal the signature length.  :meth:`add` files
    each item under one bucket per band; :meth:`candidate_pairs` returns
    every pair sharing at least one bucket.
    """

    def __init__(self, *, bands: int = 10, rows: int = 8) -> None:
        require(bands >= 1 and rows >= 1, "bands and rows must be >= 1")
        self.bands = bands
        self.rows = rows
        self._buckets: list[dict[tuple[int, ...], list[Hashable]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._n_items = 0

    @property
    def signature_length(self) -> int:
        """Required MinHash signature length."""
        return self.bands * self.rows

    def add(self, key: Hashable, signature: Sequence[int]) -> None:
        """Index one item's signature."""
        require(
            len(signature) == self.signature_length,
            f"signature length {len(signature)} != bands*rows {self.signature_length}",
        )
        for band in range(self.bands):
            chunk = tuple(signature[band * self.rows : (band + 1) * self.rows])
            self._buckets[band][chunk].append(key)
        self._n_items += 1

    def candidate_pairs(self) -> set[tuple[Hashable, Hashable]]:
        """All distinct pairs sharing at least one band bucket."""
        pairs: set[tuple[Hashable, Hashable]] = set()
        for band_buckets in self._buckets:
            for bucket in band_buckets.values():
                if len(bucket) < 2:
                    continue
                ordered = sorted(bucket, key=repr)
                for i in range(len(ordered)):
                    for j in range(i + 1, len(ordered)):
                        pairs.add((ordered[i], ordered[j]))
        return pairs

    def stats(self) -> dict[str, int]:
        """Bucket occupancy counters (for the scalability benchmark)."""
        n_buckets = sum(len(b) for b in self._buckets)
        largest = max(
            (len(bucket) for band in self._buckets for bucket in band.values()),
            default=0,
        )
        return {
            "items": self._n_items,
            "buckets": n_buckets,
            "largest_bucket": largest,
        }
