"""Behavioural profiles: abstract OS-level behaviour descriptions.

Following Bayer et al. (NDSS 2009), a profile is a *set* of features,
each describing one operation on one OS object — e.g. creating a mutex,
writing a file, resolving a DNS name, joining an IRC channel.  Profiles
compare by Jaccard similarity over their feature sets, which is also the
similarity the LSH clustering approximates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.util.hashing import stable_hash64
from repro.util.stats import jaccard

#: One profile feature: (object category, object name, operation).
Feature = tuple[str, str, str]


@dataclass(frozen=True)
class BehaviorProfile:
    """An immutable set of behavioural features for one execution."""

    features: frozenset[Feature]

    @classmethod
    def from_features(cls, features: Iterable[Feature]) -> "BehaviorProfile":
        """Build a profile from any iterable of features."""
        return cls(features=frozenset(features))

    def __len__(self) -> int:
        return len(self.features)

    def __iter__(self) -> Iterator[Feature]:
        return iter(self.features)

    def __contains__(self, feature: Feature) -> bool:
        return feature in self.features

    def similarity(self, other: "BehaviorProfile") -> float:
        """Jaccard similarity with another profile."""
        return jaccard(self.features, other.features)

    def union(self, other: "BehaviorProfile") -> "BehaviorProfile":
        """Feature union (used when merging repeated executions)."""
        return BehaviorProfile(self.features | other.features)

    def hashed_features(self) -> set[int]:
        """Stable 64-bit hashes of the features (MinHash input)."""
        return {
            stable_hash64("\x1f".join(feature), salt="behavior-feature")
            for feature in self.features
        }

    def by_category(self) -> dict[str, list[Feature]]:
        """Features grouped by object category, for report rendering."""
        grouped: dict[str, list[Feature]] = {}
        for feature in sorted(self.features):
            grouped.setdefault(feature[0], []).append(feature)
        return grouped

    def describe(self, *, max_lines: int = 40) -> str:
        """Human-readable multi-line rendering (an Anubis report excerpt)."""
        lines: list[str] = []
        for category, features in self.by_category().items():
            for feature in features:
                lines.append(f"{category}: {feature[2]} {feature[1]}")
        if len(lines) > max_lines:
            hidden = len(lines) - max_lines
            lines = lines[:max_lines] + [f"... ({hidden} more)"]
        return "\n".join(lines)
