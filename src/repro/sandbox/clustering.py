"""Behaviour-based clustering (B-clusters) per Bayer et al., NDSS 2009.

The pipeline avoids the O(n^2) distance matrix in two steps that mirror
the published system:

1. **exact-duplicate pre-grouping** — samples with byte-identical
   feature sets (polymorphic instances of one codebase) collapse to one
   representative each;
2. **MinHash-LSH candidate generation** over the unique profiles,
   followed by exact Jaccard verification of candidate pairs and
   single-linkage grouping at threshold ``t`` (single-linkage
   hierarchical clustering cut at distance 1-t is exactly the connected
   components of the >=t similarity graph, computed here with
   union-find).

:func:`cluster_exact` is the quadratic reference implementation used by
tests and the scalability benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import current_tracer
from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.lsh import LSHIndex, MinHasher
from repro.util.parallel import Executor
from repro.util.stats import jaccard
from repro.util.validation import require, require_probability


@dataclass(frozen=True)
class ClusteringConfig:
    """Similarity threshold and LSH shape.

    The NDSS'09 system clusters at Jaccard similarity t=0.7.  The
    banding must put the collision sigmoid safely *below* the clustering
    threshold so that true >=0.7 pairs are found with high probability:
    bands=20 x rows=5 collides a 0.7-similar pair with probability
    1-(1-0.7^5)^20 ~ 0.975 (and chains under single linkage push the
    effective recall higher still) while 0.3-similar pairs collide only
    ~5% of the time, keeping the candidate set small.
    """

    threshold: float = 0.7
    bands: int = 20
    rows: int = 5
    minhash_seed: int = 2010
    minhash_backend: str = "python"
    #: Candidate-generation guard: buckets larger than this emit no
    #: pairs (None keeps every bucket; see :class:`~repro.sandbox.lsh.LSHIndex`).
    max_bucket_size: int | None = None

    def __post_init__(self) -> None:
        require_probability(self.threshold, "threshold")
        require(self.bands >= 1 and self.rows >= 1, "bands/rows must be >= 1")
        require(
            self.minhash_backend in ("python", "numpy"),
            f"unknown minhash backend {self.minhash_backend!r}",
        )
        require(
            self.max_bucket_size is None or self.max_bucket_size >= 2,
            "max_bucket_size must be >= 2 (or None)",
        )

    @property
    def n_hashes(self) -> int:
        """MinHash signature length implied by the banding."""
        return self.bands * self.rows


class _UnionFind:
    def __init__(self, items: Sequence[Hashable]) -> None:
        self._parent = {item: item for item in items}
        self._rank = {item: 0 for item in items}

    def find(self, item: Hashable) -> Hashable:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def components(self) -> dict[Hashable, list[Hashable]]:
        groups: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return groups


@dataclass
class BehaviorClustering:
    """The result of a B-clustering run.

    ``assignment`` maps sample key -> B-cluster id; ``clusters`` maps
    B-cluster id -> sorted sample keys.  Cluster ids are dense integers
    ordered by decreasing cluster size (ties broken by smallest member).
    """

    assignment: dict[str, int]
    clusters: dict[int, list[str]] = field(default_factory=dict)
    n_exact_comparisons: int = 0
    n_candidate_pairs: int = 0

    @classmethod
    def from_assignment(
        cls,
        assignment: Mapping[str, int],
        *,
        n_exact_comparisons: int = 0,
        n_candidate_pairs: int = 0,
    ) -> "BehaviorClustering":
        """Normalise raw component labels into dense, size-ordered ids."""
        groups: dict[int, list[str]] = {}
        for key, label in assignment.items():
            groups.setdefault(label, []).append(key)
        ordered = sorted(groups.values(), key=lambda ms: (-len(ms), min(ms)))
        final_assignment: dict[str, int] = {}
        clusters: dict[int, list[str]] = {}
        for cluster_id, members in enumerate(ordered):
            clusters[cluster_id] = sorted(members)
            for member in members:
                final_assignment[member] = cluster_id
        return cls(
            assignment=final_assignment,
            clusters=clusters,
            n_exact_comparisons=n_exact_comparisons,
            n_candidate_pairs=n_candidate_pairs,
        )

    @property
    def n_clusters(self) -> int:
        """Number of B-clusters."""
        return len(self.clusters)

    def size_of(self, cluster_id: int) -> int:
        """Member count of one cluster."""
        return len(self.clusters[cluster_id])

    def singletons(self) -> list[int]:
        """Ids of size-1 clusters (the anomaly candidates of §4.2)."""
        return [cid for cid, members in self.clusters.items() if len(members) == 1]

    def sizes(self) -> dict[int, int]:
        """Cluster id -> size."""
        return {cid: len(members) for cid, members in self.clusters.items()}


def _dedupe(
    profiles: Mapping[str, BehaviorProfile],
) -> tuple[dict[frozenset, list[str]], list[frozenset]]:
    groups: dict[frozenset, list[str]] = {}
    for key, profile in profiles.items():
        groups.setdefault(profile.features, []).append(key)
    uniques = sorted(groups.keys(), key=lambda fs: (len(fs), sorted(fs)))
    return groups, uniques


def _expand(
    unique_labels: Mapping[int, int],
    uniques: list[frozenset],
    groups: dict[frozenset, list[str]],
) -> dict[str, int]:
    assignment: dict[str, int] = {}
    for index, features in enumerate(uniques):
        label = unique_labels[index]
        for key in groups[features]:
            assignment[key] = label
    return assignment


def cluster_exact(
    profiles: Mapping[str, BehaviorProfile],
    config: ClusteringConfig | None = None,
) -> BehaviorClustering:
    """Quadratic reference clustering: every unique-profile pair compared."""
    config = config or ClusteringConfig()
    groups, uniques = _dedupe(profiles)
    uf = _UnionFind(list(range(len(uniques))))
    comparisons = 0
    sets = [set(features) for features in uniques]
    for i in range(len(uniques)):
        for j in range(i + 1, len(uniques)):
            comparisons += 1
            if jaccard(sets[i], sets[j]) >= config.threshold:
                uf.union(i, j)
    labels = {i: uf.find(i) for i in range(len(uniques))}
    assignment = _expand(labels, uniques, groups)
    return BehaviorClustering.from_assignment(
        assignment, n_exact_comparisons=comparisons, n_candidate_pairs=comparisons
    )


def _pair_similar(
    feature_sets: Sequence[set], threshold: float, pair: tuple[int, int]
) -> bool:
    """Exact-Jaccard check of one candidate pair (module-level: picklable)."""
    i, j = pair
    return jaccard(feature_sets[i], feature_sets[j]) >= threshold


def _verify_pairs_vectorized(
    feature_sets: Sequence[set],
    pairs: Sequence[tuple[int, int]],
    threshold: float,
) -> np.ndarray:
    """Exact-Jaccard verdicts for all candidate pairs, as one bool vector.

    Profiles are interned into a packed bit-matrix (one bit per distinct
    feature) and intersection sizes come from ``popcount(row_i & row_j)``
    over pair chunks.  The verdict for pair ``(i, j)`` equals
    ``jaccard(feature_sets[i], feature_sets[j]) >= threshold`` bit for
    bit: intersection and union are the same integers, and the float
    division is the same IEEE-754 operation the scalar path performs.
    """
    vocabulary: dict = {}
    rows = [
        [vocabulary.setdefault(feature, len(vocabulary)) for feature in fs]
        for fs in feature_sets
    ]
    matrix = np.zeros((len(feature_sets), max(1, len(vocabulary))), dtype=bool)
    for i, codes in enumerate(rows):
        matrix[i, codes] = True
    packed = np.packbits(matrix, axis=1)
    sizes = np.array([len(fs) for fs in feature_sets], dtype=np.int64)
    n_pairs = len(pairs)
    ii = np.fromiter((pair[0] for pair in pairs), dtype=np.intp, count=n_pairs)
    jj = np.fromiter((pair[1] for pair in pairs), dtype=np.intp, count=n_pairs)
    verdicts = np.empty(n_pairs, dtype=bool)
    chunk = 8192
    for start in range(0, n_pairs, chunk):
        stop = min(start + chunk, n_pairs)
        left, right = ii[start:stop], jj[start:stop]
        inter = np.bitwise_count(packed[left] & packed[right]).sum(
            axis=1, dtype=np.int64
        )
        union = sizes[left] + sizes[right] - inter
        # Two empty sets have Jaccard 1.0 by convention; guard the division.
        both_empty = union == 0
        similarity = np.where(
            both_empty, 1.0, inter / np.where(both_empty, 1, union)
        )
        verdicts[start:stop] = similarity >= threshold
    return verdicts


def cluster_lsh(
    profiles: Mapping[str, BehaviorProfile],
    config: ClusteringConfig | None = None,
    *,
    executor: Executor | None = None,
    vectorize: bool = True,
) -> BehaviorClustering:
    """Scalable clustering: LSH candidates + exact verification + union-find.

    With ``vectorize=True`` (the default) the hot paths run as batch
    numpy kernels: MinHash signatures come from one
    :meth:`~repro.sandbox.lsh.MinHasher.signature_matrix` call and
    candidate pairs are verified with packed-bit intersection counts —
    both bit-identical to the scalar paths, so cluster assignments and
    the ``n_exact_comparisons`` counter match the ``executor`` path
    exactly (every candidate pair is verified).

    With ``vectorize=False`` and an ``executor`` (any backend),
    exact-Jaccard verification of the LSH candidate pairs goes through
    the same chunked ``executor.map`` call, so cluster assignments, the
    comparison counter and the chunk-level ``executor.*`` telemetry are
    all identical across serial/thread/process.  Only the scalar
    executor-less path (``vectorize=False``, ``executor=None``) keeps
    the legacy union-find-aware loop that skips pairs already linked
    through earlier unions — it verifies fewer pairs, which changes the
    counter but never the connected components.
    """
    config = config or ClusteringConfig()
    tracer = current_tracer()
    registry = obs_metrics.active()
    with tracer.span("lsh.dedupe") as span:
        groups, uniques = _dedupe(profiles)
        span.set(profiles=len(profiles), unique_profiles=len(uniques))
    with tracer.span("lsh.index") as span:
        hasher = MinHasher(
            config.n_hashes, seed=config.minhash_seed, backend=config.minhash_backend
        )
        index = LSHIndex(
            bands=config.bands,
            rows=config.rows,
            max_bucket_size=config.max_bucket_size,
        )
        hashed_sets: list[set[int]] = []
        feature_sets: list[set] = []
        for features in uniques:
            profile = BehaviorProfile(features)
            hashed_sets.append(profile.hashed_features())
            feature_sets.append(set(features))
        if vectorize:
            signatures = hasher.signature_matrix(hashed_sets)
            for i in range(len(uniques)):
                index.add(i, tuple(int(v) for v in signatures[i]))
        else:
            for i, hashed in enumerate(hashed_sets):
                index.add(i, hasher.signature(hashed))
        candidates = index.candidate_pairs()
        span.set(candidate_pairs=len(candidates))
        bucket_hist = registry.histogram(
            "lsh.bucket_size", buckets=obs_metrics.SIZE_BUCKETS
        )
        # The sketch tracks the same series with relative-error bins:
        # at 100x-1000x scale bucket sizes outgrow the fixed SIZE
        # buckets, while the sketch keeps tail quantiles meaningful.
        bucket_sketch = registry.sketch("lsh.bucket_size_sketch")
        for size in index.bucket_sizes():
            bucket_hist.observe(size)
            bucket_sketch.observe(size)
        registry.counter("lsh.buckets_skipped").inc(index.skipped_buckets)
    uf = _UnionFind(list(range(len(uniques))))
    comparisons = 0
    with tracer.span("lsh.verify") as span:
        if vectorize and candidates:
            ordered = list(candidates)
            verdicts = _verify_pairs_vectorized(
                feature_sets, ordered, config.threshold
            )
            comparisons = len(candidates)
            for (i, j), similar in zip(ordered, verdicts):
                if similar:
                    uf.union(i, j)
        elif executor is not None and candidates:
            verdicts = executor.map(
                partial(_pair_similar, feature_sets, config.threshold), candidates
            )
            comparisons = len(candidates)
            for (i, j), similar in zip(candidates, verdicts):
                if similar:
                    uf.union(i, j)
        else:
            for i, j in candidates:
                if uf.find(i) == uf.find(j):
                    continue  # already linked; skip the exact check
                comparisons += 1
                if jaccard(feature_sets[i], feature_sets[j]) >= config.threshold:
                    uf.union(i, j)
        span.set(pairs_verified=comparisons)
    labels = {i: uf.find(i) for i in range(len(uniques))}
    assignment = _expand(labels, uniques, groups)
    result = BehaviorClustering.from_assignment(
        assignment,
        n_exact_comparisons=comparisons,
        n_candidate_pairs=len(candidates),
    )
    registry.gauge("lsh.unique_profiles").set(len(uniques))
    registry.counter("lsh.candidate_pairs").inc(len(candidates))
    registry.counter("lsh.pairs_verified").inc(comparisons)
    registry.gauge("lsh.clusters").set(result.n_clusters)
    return result
