"""Anubis-style dynamic analysis and behaviour-based clustering.

The paper consumes two outputs of the Anubis platform:

* per-sample **behavioural profiles** — abstract representations of a
  program's behaviour in terms of OS objects and operations (Bayer et
  al., NDSS 2009), reproduced by :mod:`repro.sandbox.behavior` and
  produced by the simulated execution engine in
  :mod:`repro.sandbox.execution` under an explicit, time-varying
  :class:`~repro.sandbox.environment.Environment` (dead DNS names and
  C&C servers are what generate the paper's clustering anomalies), and
* **B-clusters** — the scalable behaviour clustering that avoids the
  O(n^2) distance matrix via locality-sensitive hashing
  (:mod:`repro.sandbox.lsh`) followed by single-linkage grouping at a
  Jaccard threshold (:mod:`repro.sandbox.clustering`); an exact
  quadratic baseline is provided for validation.
"""

from repro.sandbox.behavior import BehaviorProfile, Feature
from repro.sandbox.environment import Environment, Window
from repro.sandbox.execution import Sandbox, SandboxConfig
from repro.sandbox.lsh import MinHasher, LSHIndex
from repro.sandbox.clustering import (
    BehaviorClustering,
    ClusteringConfig,
    cluster_exact,
    cluster_lsh,
)
from repro.sandbox.anubis import AnubisReport, AnubisService
from repro.sandbox.reporting import diff_profiles, render_report, render_timeline

__all__ = [
    "diff_profiles",
    "render_report",
    "render_timeline",
    "AnubisReport",
    "AnubisService",
    "BehaviorClustering",
    "BehaviorProfile",
    "ClusteringConfig",
    "Environment",
    "Feature",
    "LSHIndex",
    "MinHasher",
    "Sandbox",
    "SandboxConfig",
    "Window",
    "cluster_exact",
    "cluster_lsh",
]
