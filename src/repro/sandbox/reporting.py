"""Anubis-style analysis reports: a human-readable view of one profile.

The real service returns a sectioned report (file activities, registry
activities, network activities, started processes...).  This module
renders the same structure from a :class:`BehaviorProfile`, plus
side-by-side diffs between two executions — the view an analyst uses to
decide whether two samples, or two runs of one sample, really behave
differently (the manual inspection step of §4.2).
"""

from __future__ import annotations

from repro.sandbox.anubis import AnubisReport
from repro.sandbox.behavior import BehaviorProfile

_SECTION_TITLES = {
    "file": "File activities",
    "registry": "Registry activities",
    "mutex": "Mutex activities",
    "service": "Service activities",
    "process": "Process activities",
    "network": "Network activities",
    "dns": "DNS activities",
    "http": "HTTP activities",
    "irc": "IRC activities",
}


def render_report(report: AnubisReport, *, max_per_section: int = 20) -> str:
    """Render one sample's analysis as a sectioned text report."""
    lines = [
        "=" * 60,
        f"Analysis report for sample {report.md5}",
        f"submitted at t={report.submitted_at}, runs: {report.n_runs}",
        "=" * 60,
    ]
    grouped = report.profile.by_category()
    for category, features in grouped.items():
        title = _SECTION_TITLES.get(category, f"{category.capitalize()} activities")
        lines.append("")
        lines.append(f"[{title}]")
        for feature in features[:max_per_section]:
            lines.append(f"  {feature[2]:<18} {feature[1]}")
        hidden = len(features) - max_per_section
        if hidden > 0:
            lines.append(f"  ... ({hidden} more)")
    return "\n".join(lines)


def diff_profiles(
    a: BehaviorProfile,
    b: BehaviorProfile,
    *,
    label_a: str = "run A",
    label_b: str = "run B",
) -> str:
    """Side-by-side diff of two behavioural profiles.

    This is what the paper's analysts looked at manually: "looking at
    the behavioural profiles of the samples affected by this anomaly, we
    could not discern substantial differences".
    """
    only_a = sorted(a.features - b.features)
    only_b = sorted(b.features - a.features)
    shared = len(a.features & b.features)
    lines = [
        f"similarity: {a.similarity(b):.3f} "
        f"({shared} shared, {len(only_a)} only in {label_a}, "
        f"{len(only_b)} only in {label_b})"
    ]
    for title, features in ((f"only in {label_a}", only_a), (f"only in {label_b}", only_b)):
        if features:
            lines.append(f"[{title}]")
            for feature in features[:25]:
                lines.append(f"  {feature[0]}: {feature[2]} {feature[1]}")
            if len(features) > 25:
                lines.append(f"  ... ({len(features) - 25} more)")
    return "\n".join(lines)


def render_timeline(timeline: dict[int, int], *, n_weeks: int, width: int = 74) -> str:
    """ASCII activity timeline (one character per week bucket).

    The text stand-in for the timeline strips of Figure 5: ``.`` silent,
    ``▂▅█``-style intensity encoded as ``.:|#`` by quartile of the
    cluster's own peak.
    """
    if not timeline:
        return "(no activity)"
    peak = max(timeline.values())
    cells = []
    for week in range(min(n_weeks, width)):
        count = timeline.get(week, 0)
        if count == 0:
            cells.append(".")
        elif count <= peak / 4:
            cells.append(":")
        elif count <= peak / 2:
            cells.append("|")
        else:
            cells.append("#")
    return "".join(cells)
