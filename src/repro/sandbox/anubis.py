"""The Anubis service facade: submission, reports, re-execution.

:class:`AnubisService` is what the SGNET information-enrichment pipeline
talks to: samples are *submitted* (executed once, at their submission
time, like the real service) and yield an :class:`AnubisReport`;
reports can later be re-generated via :meth:`rerun` — the paper's
"healing" procedure for samples whose first execution derailed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.malware.behaviorspec import BehaviorTemplate
from repro.sandbox.behavior import BehaviorProfile
from repro.sandbox.clustering import BehaviorClustering, ClusteringConfig, cluster_lsh
from repro.sandbox.execution import ExecutionTask, Sandbox
from repro.util.hashing import stable_hash64
from repro.util.parallel import Executor
from repro.util.validation import require


@dataclass
class AnubisReport:
    """One sample's analysis record inside the service."""

    md5: str
    submitted_at: int
    profile: BehaviorProfile
    n_runs: int = 1


class AnubisService:
    """Sample store + execution engine + clustering front-end."""

    def __init__(self, sandbox: Sandbox) -> None:
        self.sandbox = sandbox
        self._reports: dict[str, AnubisReport] = {}

    def submit(
        self, md5: str, behavior: BehaviorTemplate, *, time: int
    ) -> AnubisReport:
        """Analyse a sample on first submission; later submissions are cached.

        The run seed is derived from the MD5, so a given binary's first
        analysis is reproducible — but distinct polymorphic instances of
        one codebase get independent derailment draws, exactly the
        per-sample noise that produces singleton B-clusters.
        """
        existing = self._reports.get(md5)
        if existing is not None:
            return existing
        profile = self.sandbox.execute(
            behavior,
            time=time,
            run_seed=stable_hash64(md5, salt="anubis-run"),
        )
        report = AnubisReport(md5=md5, submitted_at=time, profile=profile)
        self._reports[md5] = report
        return report

    def submit_batch(
        self,
        submissions: Iterable[Sequence],
        *,
        executor: Executor | None = None,
    ) -> list[AnubisReport]:
        """Submit many ``(md5, behavior, time)`` tuples, optionally in parallel.

        Bit-identical to calling :meth:`submit` on each tuple in order —
        already-analysed samples (and repeated MD5s within the batch)
        reuse the first report, run seeds are derived from the MD5s, and
        the report store keeps first-submission insertion order on every
        backend.  Returns the reports aligned with the input order.
        """
        submissions = [tuple(item) for item in submissions]
        pending: list[tuple[str, BehaviorTemplate, int]] = []
        claimed: set[str] = set()
        for md5, behavior, time in submissions:
            if md5 in self._reports or md5 in claimed:
                continue
            claimed.add(md5)
            pending.append((md5, behavior, time))
        tasks = [
            ExecutionTask(
                behavior=behavior,
                time=time,
                run_seed=stable_hash64(md5, salt="anubis-run"),
            )
            for md5, behavior, time in pending
        ]
        profiles = self.sandbox.execute_batch(tasks, executor=executor)
        for (md5, _behavior, time), profile in zip(pending, profiles):
            self._reports[md5] = AnubisReport(md5=md5, submitted_at=time, profile=profile)
        return [self._reports[md5] for md5, _behavior, _time in submissions]

    def rerun(
        self,
        md5: str,
        behavior: BehaviorTemplate,
        *,
        time: int | None = None,
        merge: bool = False,
    ) -> AnubisReport:
        """Re-execute a sample on a curated image (no derailment).

        With ``merge=True`` the new profile is unioned into the stored
        one (accumulating evidence over runs); otherwise it replaces it.
        ``time`` defaults to the original submission time.
        """
        report = self._reports.get(md5)
        require(report is not None, f"sample {md5} was never submitted")
        run_time = time if time is not None else report.submitted_at
        profile = self.sandbox.execute(
            behavior,
            time=run_time,
            run_seed=stable_hash64(md5, salt=f"anubis-rerun-{report.n_runs}"),
            allow_derail=False,
        )
        report.profile = report.profile.union(profile) if merge else profile
        report.n_runs += 1
        return report

    def report_for(self, md5: str) -> AnubisReport | None:
        """Stored report, if the sample was submitted."""
        return self._reports.get(md5)

    @property
    def n_reports(self) -> int:
        """Number of analysed samples."""
        return len(self._reports)

    def profiles(self) -> dict[str, BehaviorProfile]:
        """MD5 -> current profile, for clustering."""
        return {md5: report.profile for md5, report in self._reports.items()}

    def cluster(
        self,
        config: ClusteringConfig | None = None,
        *,
        executor: Executor | None = None,
        vectorize: bool = True,
    ) -> BehaviorClustering:
        """Run the scalable B-clustering over all analysed samples."""
        return cluster_lsh(
            self.profiles(), config, executor=executor, vectorize=vectorize
        )
