"""EPM clustering — the paper's primary contribution.

EPM clustering is a deliberately simple pattern-discovery technique (a
simplification of Julisch's attribute-oriented induction for IDS alarms)
applied *independently* to the three observable dimensions of a code
injection: epsilon (exploit), pi (payload) and mu (malware).  Its four
phases map onto this package:

1. **feature definition** (:mod:`repro.core.features`) — Table 1's
   per-dimension feature lists and their extractors,
2. **invariant discovery** (:mod:`repro.core.invariants`) — values that
   recur across enough instances, attackers *and* honeypot addresses,
3. **pattern discovery** (:mod:`repro.core.patterns`) — the distinct
   combinations of invariant values (with "do not care" wildcards) found
   in the data, and
4. **pattern-based classification** (:mod:`repro.core.classifier`) —
   each instance is assigned to the *most specific* pattern matching it;
   instances sharing a pattern form an E-, P- or M-cluster.

:class:`repro.core.epm.EPMClustering` is the high-level facade running
all four phases over an :class:`~repro.egpm.dataset.SGNetDataset`.
"""

from repro.core.features import (
    Dimension,
    FeatureDefinition,
    FeatureSet,
    default_feature_sets,
    epsilon_features,
    mu_features,
    pi_features,
)
from repro.core.invariants import InvariantPolicy, InvariantStats, discover_invariants
from repro.core.patterns import WILDCARD, Pattern, PatternSet, mask_instance
from repro.core.classifier import ClusterInfo, DimensionClustering
from repro.core.epm import EPMClustering, EPMResult
from repro.core.export import bclusters_to_dict, dimension_to_dict, epm_to_dict
from repro.core.hierarchy import (
    ANY,
    AOIMiner,
    AOIResult,
    Concept,
    Taxonomy,
    band_taxonomy,
    flat_taxonomy,
    port_taxonomy,
)

__all__ = [
    "ANY",
    "AOIMiner",
    "AOIResult",
    "Concept",
    "Taxonomy",
    "band_taxonomy",
    "bclusters_to_dict",
    "dimension_to_dict",
    "epm_to_dict",
    "flat_taxonomy",
    "port_taxonomy",
    "ClusterInfo",
    "Dimension",
    "DimensionClustering",
    "EPMClustering",
    "EPMResult",
    "FeatureDefinition",
    "FeatureSet",
    "InvariantPolicy",
    "InvariantStats",
    "Pattern",
    "PatternSet",
    "WILDCARD",
    "default_feature_sets",
    "discover_invariants",
    "epsilon_features",
    "mask_instance",
    "mu_features",
    "pi_features",
]
