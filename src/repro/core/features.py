"""Phase 1 — feature definition (Table 1 of the paper).

A :class:`FeatureSet` is an ordered list of named features for one EPM
dimension, each with an extractor from :class:`AttackEvent` to a hashable
value.  The default sets reproduce Table 1 exactly:

========  =============================================
Epsilon   FSM path identifier, destination port
Pi        download protocol, filename, port, interaction type
Mu        MD5, file size, libmagic type, (PE) machine type,
          number of sections, number of imported DLLs, OS version,
          linker version, section names, imported DLLs,
          referenced Kernel32.dll symbols
========  =============================================

Events lacking a dimension entirely (no shellcode analysed, no binary
downloaded) do not contribute instances to that dimension.  Missing
sub-values (a non-PE binary has no header features) extract to ``None``,
which behaves like any other value in invariant discovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.egpm.events import AttackEvent
from repro.util.validation import require


class Dimension(str, enum.Enum):
    """The three clusterable dimensions of the EGPM model."""

    EPSILON = "epsilon"
    PI = "pi"
    MU = "mu"


@dataclass(frozen=True)
class FeatureDefinition:
    """One named feature with its extractor."""

    name: str
    extract: Callable[[AttackEvent], Hashable]


class FeatureSet:
    """An ordered feature list for one dimension."""

    def __init__(
        self,
        dimension: Dimension,
        features: list[FeatureDefinition],
        applies: Callable[[AttackEvent], bool],
    ) -> None:
        require(len(features) > 0, "FeatureSet needs at least one feature")
        names = [f.name for f in features]
        require(len(set(names)) == len(names), "duplicate feature names")
        self.dimension = dimension
        self.features = list(features)
        self._applies = applies

    @property
    def names(self) -> list[str]:
        """Feature names, in extraction order."""
        return [f.name for f in self.features]

    def __len__(self) -> int:
        return len(self.features)

    def applies_to(self, event: AttackEvent) -> bool:
        """Whether ``event`` carries this dimension at all."""
        return self._applies(event)

    def extract(self, event: AttackEvent) -> tuple[Hashable, ...]:
        """The event's instance tuple for this dimension."""
        require(self.applies_to(event), "event lacks this dimension")
        return tuple(f.extract(event) for f in self.features)


def epsilon_features() -> FeatureSet:
    """Table 1, epsilon dimension."""
    return FeatureSet(
        Dimension.EPSILON,
        [
            FeatureDefinition("fsm_path_id", lambda e: e.exploit.fsm_path_id),
            FeatureDefinition("dst_port", lambda e: e.exploit.dst_port),
        ],
        applies=lambda e: True,
    )


def pi_features() -> FeatureSet:
    """Table 1, pi dimension."""
    return FeatureSet(
        Dimension.PI,
        [
            FeatureDefinition("protocol", lambda e: e.payload.protocol),
            FeatureDefinition("filename", lambda e: e.payload.filename),
            FeatureDefinition("port", lambda e: e.payload.port),
            FeatureDefinition("interaction", lambda e: e.payload.interaction.value),
        ],
        applies=lambda e: e.payload is not None,
    )


def _pe_feature(extract: Callable) -> Callable[[AttackEvent], Hashable]:
    def extractor(event: AttackEvent) -> Hashable:
        pe = event.malware.pe
        return None if pe is None else extract(pe)

    return extractor


def mu_features() -> FeatureSet:
    """Table 1, mu dimension."""
    return FeatureSet(
        Dimension.MU,
        [
            FeatureDefinition("md5", lambda e: e.malware.md5),
            FeatureDefinition("size", lambda e: e.malware.size),
            FeatureDefinition("magic", lambda e: e.malware.magic),
            FeatureDefinition("machine_type", _pe_feature(lambda pe: pe.machine_type)),
            FeatureDefinition("n_sections", _pe_feature(lambda pe: pe.n_sections)),
            FeatureDefinition("n_dlls", _pe_feature(lambda pe: pe.n_dlls)),
            FeatureDefinition("os_version", _pe_feature(lambda pe: pe.os_version)),
            FeatureDefinition(
                "linker_version", _pe_feature(lambda pe: pe.linker_version)
            ),
            FeatureDefinition(
                "section_names", _pe_feature(lambda pe: pe.section_names)
            ),
            FeatureDefinition(
                "imported_dlls", _pe_feature(lambda pe: pe.imported_dlls)
            ),
            FeatureDefinition(
                "kernel32_symbols", _pe_feature(lambda pe: pe.kernel32_symbols)
            ),
        ],
        applies=lambda e: e.malware is not None,
    )


def default_feature_sets() -> dict[Dimension, FeatureSet]:
    """The paper's three feature sets, keyed by dimension."""
    return {
        Dimension.EPSILON: epsilon_features(),
        Dimension.PI: pi_features(),
        Dimension.MU: mu_features(),
    }
