"""Phase 2 — invariant discovery.

An *invariant value* of a feature is a "good", event-type-characterising
value: per the paper's threshold-based definition, a value qualifies if
it was seen in at least 10 attack instances, used by at least 3 distinct
attackers, and witnessed by at least 3 distinct honeypot addresses.  The
three thresholds are :class:`InvariantPolicy` knobs (the ablation bench
sweeps them).

The triple constraint is what defeats sloppier randomisation: an
attacker-specific value (e.g. the per-source MD5s of the paper's
M-cluster 13) can easily be *frequent* yet never becomes invariant,
because one attacker alone cannot satisfy the source-diversity
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.util.validation import require

#: One observed instance for a dimension:
#: (feature value tuple, attacker address, honeypot address).
Observation = tuple[tuple[Hashable, ...], int, int]


@dataclass(frozen=True)
class InvariantPolicy:
    """Thresholds defining what counts as an invariant value."""

    min_instances: int = 10
    min_sources: int = 3
    min_sensors: int = 3

    def __post_init__(self) -> None:
        require(self.min_instances >= 1, "min_instances must be >= 1")
        require(self.min_sources >= 1, "min_sources must be >= 1")
        require(self.min_sensors >= 1, "min_sensors must be >= 1")


@dataclass
class InvariantStats:
    """Discovery output for one dimension.

    ``invariants[i]`` is the set of invariant values of feature ``i``;
    ``support[i][v]`` its raw instance count (kept for reporting).
    """

    feature_names: list[str]
    invariants: list[set[Hashable]]
    support: list[dict[Hashable, int]]

    def count_per_feature(self) -> dict[str, int]:
        """Feature name -> number of invariant values (Table 1's column)."""
        return {
            name: len(values)
            for name, values in zip(self.feature_names, self.invariants)
        }

    def is_invariant(self, feature_index: int, value: Hashable) -> bool:
        """Whether ``value`` is invariant for the ``feature_index``-th feature."""
        return value in self.invariants[feature_index]

    @property
    def total_invariants(self) -> int:
        """Total invariant values across all features."""
        return sum(len(values) for values in self.invariants)


def discover_invariants(
    observations: Sequence[Observation],
    feature_names: Sequence[str],
    policy: InvariantPolicy | None = None,
) -> InvariantStats:
    """Run invariant discovery over one dimension's observations.

    Every observation tuple must have exactly ``len(feature_names)``
    values.  Complexity is O(instances x features).
    """
    policy = policy or InvariantPolicy()
    n_features = len(feature_names)
    require(n_features > 0, "need at least one feature")

    counts: list[dict[Hashable, int]] = [{} for _ in range(n_features)]
    sources: list[dict[Hashable, set[int]]] = [{} for _ in range(n_features)]
    sensors: list[dict[Hashable, set[int]]] = [{} for _ in range(n_features)]

    for values, source, sensor in observations:
        require(
            len(values) == n_features,
            f"observation has {len(values)} values, expected {n_features}",
        )
        for i, value in enumerate(values):
            counts[i][value] = counts[i].get(value, 0) + 1
            sources[i].setdefault(value, set()).add(source)
            sensors[i].setdefault(value, set()).add(sensor)

    invariants: list[set[Hashable]] = []
    support: list[dict[Hashable, int]] = []
    for i in range(n_features):
        good = {
            value
            for value, n in counts[i].items()
            if n >= policy.min_instances
            and len(sources[i][value]) >= policy.min_sources
            and len(sensors[i][value]) >= policy.min_sensors
        }
        invariants.append(good)
        support.append({value: counts[i][value] for value in good})

    return InvariantStats(
        feature_names=list(feature_names),
        invariants=invariants,
        support=support,
    )
