"""Phase 2 — invariant discovery.

An *invariant value* of a feature is a "good", event-type-characterising
value: per the paper's threshold-based definition, a value qualifies if
it was seen in at least 10 attack instances, used by at least 3 distinct
attackers, and witnessed by at least 3 distinct honeypot addresses.  The
three thresholds are :class:`InvariantPolicy` knobs (the ablation bench
sweeps them).

The triple constraint is what defeats sloppier randomisation: an
attacker-specific value (e.g. the per-source MD5s of the paper's
M-cluster 13) can easily be *frequent* yet never becomes invariant,
because one attacker alone cannot satisfy the source-diversity
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.util.validation import require

#: One observed instance for a dimension:
#: (feature value tuple, attacker address, honeypot address).
Observation = tuple[tuple[Hashable, ...], int, int]


@dataclass(frozen=True)
class InvariantPolicy:
    """Thresholds defining what counts as an invariant value."""

    min_instances: int = 10
    min_sources: int = 3
    min_sensors: int = 3

    def __post_init__(self) -> None:
        require(self.min_instances >= 1, "min_instances must be >= 1")
        require(self.min_sources >= 1, "min_sources must be >= 1")
        require(self.min_sensors >= 1, "min_sensors must be >= 1")


@dataclass
class InvariantStats:
    """Discovery output for one dimension.

    ``invariants[i]`` is the set of invariant values of feature ``i``;
    ``support[i][v]`` its raw instance count (kept for reporting).
    """

    feature_names: list[str]
    invariants: list[set[Hashable]]
    support: list[dict[Hashable, int]]

    def count_per_feature(self) -> dict[str, int]:
        """Feature name -> number of invariant values (Table 1's column)."""
        return {
            name: len(values)
            for name, values in zip(self.feature_names, self.invariants)
        }

    def is_invariant(self, feature_index: int, value: Hashable) -> bool:
        """Whether ``value`` is invariant for the ``feature_index``-th feature."""
        return value in self.invariants[feature_index]

    @property
    def total_invariants(self) -> int:
        """Total invariant values across all features."""
        return sum(len(values) for values in self.invariants)


def discover_invariants(
    observations: Sequence[Observation],
    feature_names: Sequence[str],
    policy: InvariantPolicy | None = None,
) -> InvariantStats:
    """Run invariant discovery over one dimension's observations.

    Every observation tuple must have exactly ``len(feature_names)``
    values.  Complexity is O(instances x features).
    """
    policy = policy or InvariantPolicy()
    n_features = len(feature_names)
    require(n_features > 0, "need at least one feature")

    counts: list[dict[Hashable, int]] = [{} for _ in range(n_features)]
    sources: list[dict[Hashable, set[int]]] = [{} for _ in range(n_features)]
    sensors: list[dict[Hashable, set[int]]] = [{} for _ in range(n_features)]

    for values, source, sensor in observations:
        require(
            len(values) == n_features,
            f"observation has {len(values)} values, expected {n_features}",
        )
        for i, value in enumerate(values):
            counts[i][value] = counts[i].get(value, 0) + 1
            sources[i].setdefault(value, set()).add(source)
            sensors[i].setdefault(value, set()).add(sensor)

    invariants: list[set[Hashable]] = []
    support: list[dict[Hashable, int]] = []
    for i in range(n_features):
        good = {
            value
            for value, n in counts[i].items()
            if n >= policy.min_instances
            and len(sources[i][value]) >= policy.min_sources
            and len(sensors[i][value]) >= policy.min_sensors
        }
        invariants.append(good)
        support.append({value: counts[i][value] for value in good})

    return InvariantStats(
        feature_names=list(feature_names),
        invariants=invariants,
        support=support,
    )


def discover_invariants_columnar(
    codes: np.ndarray,
    source_codes: np.ndarray,
    sensor_codes: np.ndarray,
    vocabularies: Sequence[Sequence[Hashable]],
    feature_names: Sequence[str],
    policy: InvariantPolicy | None = None,
) -> InvariantStats:
    """Vectorized invariant discovery over interned value codes.

    ``codes`` is the ``(n_observations, n_features)`` matrix of a
    :class:`~repro.egpm.columnar.DimensionColumns` view;
    ``source_codes``/``sensor_codes`` are the aligned interned address
    codes and ``vocabularies[f]`` decodes feature ``f``'s codes back to
    original values.  The instance count per value is one
    ``np.bincount`` per feature; distinct source/sensor counts come
    from deduplicating ``value_code * n_addresses + address_code``
    composite keys with ``np.unique``.  The result is value-for-value
    equal to :func:`discover_invariants` over the decoded observations
    — code/address interning is bijective, so counts and distinct
    counts are the same integers.
    """
    policy = policy or InvariantPolicy()
    n_features = len(feature_names)
    require(n_features > 0, "need at least one feature")
    codes = np.asarray(codes, dtype=np.int64)
    require(
        codes.ndim == 2 and codes.shape[1] == n_features,
        f"codes matrix has shape {codes.shape}, expected (*, {n_features})",
    )
    source_codes = np.asarray(source_codes, dtype=np.int64)
    sensor_codes = np.asarray(sensor_codes, dtype=np.int64)
    n_source_codes = int(source_codes.max()) + 1 if len(source_codes) else 1
    n_sensor_codes = int(sensor_codes.max()) + 1 if len(sensor_codes) else 1

    invariants: list[set[Hashable]] = []
    support: list[dict[Hashable, int]] = []
    for f in range(n_features):
        column = codes[:, f]
        size = len(vocabularies[f])
        counts = np.bincount(column, minlength=size)
        source_pairs = np.unique(column * n_source_codes + source_codes)
        n_sources = np.bincount(source_pairs // n_source_codes, minlength=size)
        sensor_pairs = np.unique(column * n_sensor_codes + sensor_codes)
        n_sensors = np.bincount(sensor_pairs // n_sensor_codes, minlength=size)
        good_codes = np.nonzero(
            (counts >= policy.min_instances)
            & (n_sources >= policy.min_sources)
            & (n_sensors >= policy.min_sensors)
        )[0]
        decode = vocabularies[f]
        invariants.append({decode[code] for code in good_codes.tolist()})
        support.append(
            {decode[code]: int(counts[code]) for code in good_codes.tolist()}
        )

    return InvariantStats(
        feature_names=list(feature_names),
        invariants=invariants,
        support=support,
    )
