"""Compiled most-specific matching: the classification hot path.

:meth:`PatternSet.classify` is exact but scan-shaped: when an
instance's own mask is not in the set it walks the ranked pattern list
most-specific-first until something matches.  That is fine at discovery
time (almost every instance hits the O(1) own-mask fast path) and wrong
for serving, where the interesting traffic is precisely the instances
the landscape has *not* seen.  :class:`PatternIndex` compiles a
:class:`~repro.core.patterns.PatternSet` into a per-feature
discrimination trie whose lookup is branch-and-bound over pattern
*rank* — provably the same answer as the linear scan, at
O(pattern-depth) for the common shapes.

**Index structure.**  Level ``d`` of the trie branches on feature
``d``: a node keeps one edge per concrete value patterns carry there,
plus at most one wildcard edge.  Every node records the minimum rank
(position in the most-specific-first order) of any pattern in its
subtree.  Lookup descends both the matching concrete edge and the
wildcard edge, visiting children in ascending ``min_rank`` order and
pruning any subtree whose ``min_rank`` cannot beat the best complete
match found so far.  Because a leaf's ``min_rank`` *is* its pattern's
rank, the minimum-rank reachable leaf is exactly the first match the
linear scan would return.

**Batch kernel.**  :meth:`PatternIndex.batch_classify` classifies a
columnar ``(n_rows, n_features)`` code matrix
(:class:`~repro.egpm.columnar.DimensionColumns` layout) in one pass:
it masks the matrix against the invariants (per-feature boolean
lookup tables over the vocabularies, non-invariant codes collapse to
``-1``), deduplicates rows with ``np.unique``, and resolves each
*unique masked tuple* once through the trie.  That grouping is exact
because of the masked-equivalence property: when every non-wildcard
pattern value is invariant (true by construction for discovered sets,
verified at compile time), a pattern matches an instance iff it
matches the instance's mask.  Pattern sets that fail the check — only
constructible by hand — transparently fall back to grouping on the
raw rows, which is exact for any set.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.invariants import InvariantStats
from repro.core.patterns import WILDCARD, Pattern, PatternSet
from repro.egpm.columnar import Vocabulary
from repro.util.validation import require


class _TrieNode:
    """One trie level: concrete-value edges, a wildcard edge, and the
    minimum pattern rank reachable in the subtree."""

    __slots__ = ("children", "wild", "min_rank")

    def __init__(self) -> None:
        self.children: dict[Hashable, _TrieNode] = {}
        self.wild: _TrieNode | None = None
        self.min_rank: int = -1  # assigned during compile


class PatternIndex:
    """A :class:`PatternSet` compiled for hot-path classification.

    The index is immutable after :meth:`compile`; it never changes the
    answer, only how fast it is found (equivalence is enforced by
    hypothesis property tests and the CI digest-identity check).
    """

    def __init__(
        self,
        root: _TrieNode,
        patterns: list[Pattern],
        invariants: InvariantStats,
        mask_consistent: bool,
    ) -> None:
        self._root = root
        self._patterns = patterns
        self._rank_of = {pattern: rank for rank, pattern in enumerate(patterns)}
        self._invariants = invariants
        self._mask_consistent = mask_consistent
        self._n_features = len(invariants.feature_names)

    @classmethod
    def compile(
        cls, pattern_set: PatternSet, invariants: InvariantStats
    ) -> "PatternIndex":
        """Build the trie from a pattern set's most-specific-first order."""
        patterns = pattern_set.patterns
        n_features = len(invariants.feature_names)
        for pattern in patterns:
            require(
                len(pattern) == n_features,
                f"pattern arity {len(pattern)} does not match "
                f"{n_features} invariant features",
            )
        root = _TrieNode()
        mask_consistent = True
        for rank, pattern in enumerate(patterns):
            node = root
            if node.min_rank < 0:
                node.min_rank = rank
            for depth, value in enumerate(pattern):
                if value is WILDCARD:
                    if node.wild is None:
                        node.wild = _TrieNode()
                    node = node.wild
                else:
                    if not invariants.is_invariant(depth, value):
                        mask_consistent = False
                    child = node.children.get(value)
                    if child is None:
                        child = _TrieNode()
                        node.children[value] = child
                    node = child
                if node.min_rank < 0:
                    node.min_rank = rank
        return cls(root, patterns, invariants, mask_consistent)

    @property
    def patterns(self) -> list[Pattern]:
        """All patterns, most specific first (rank order)."""
        return list(self._patterns)

    @property
    def n_features(self) -> int:
        """Arity every classified instance must have."""
        return self._n_features

    @property
    def mask_consistent(self) -> bool:
        """Whether every non-wildcard pattern value is invariant (the
        precondition of the masked-grouping batch kernel)."""
        return self._mask_consistent

    def __len__(self) -> int:
        return len(self._patterns)

    def pattern_of(self, rank: int) -> Pattern:
        """The pattern at ``rank`` in most-specific-first order."""
        return self._patterns[rank]

    def classify_rank(self, values: Sequence[Hashable]) -> int:
        """Rank of the most specific matching pattern (linear-scan order).

        Branch-and-bound depth-first search: children are visited in
        ascending subtree ``min_rank``, and a subtree is pruned as soon
        as its best possible rank cannot beat the best complete match
        found so far.
        """
        require(
            len(values) == self._n_features,
            f"instance arity {len(values)} does not match "
            f"{self._n_features} index features",
        )
        n_features = self._n_features
        best = len(self._patterns)

        def visit(node: _TrieNode, depth: int) -> None:
            nonlocal best
            if node.min_rank >= best:
                return
            if depth == n_features:
                best = node.min_rank
                return
            concrete = node.children.get(values[depth])
            wild = node.wild
            if concrete is not None and wild is not None:
                first, second = (
                    (concrete, wild)
                    if concrete.min_rank <= wild.min_rank
                    else (wild, concrete)
                )
                visit(first, depth + 1)
                visit(second, depth + 1)
            elif concrete is not None:
                visit(concrete, depth + 1)
            elif wild is not None:
                visit(wild, depth + 1)

        visit(self._root, 0)
        require(best < len(self._patterns), "no pattern matches the instance")
        return best

    def classify(self, values: Sequence[Hashable]) -> Pattern:
        """The most specific matching pattern — identical to scanning
        the ranked list, which is what the property tests assert."""
        return self._patterns[self.classify_rank(values)]

    def _invariant_tables(
        self, vocabularies: Sequence[Vocabulary]
    ) -> list[np.ndarray]:
        """Per-feature boolean lookup: is the vocabulary code invariant?"""
        tables = []
        for feature, vocab in enumerate(vocabularies):
            values = vocab.values()
            table = np.fromiter(
                (self._invariants.is_invariant(feature, value) for value in values),
                dtype=bool,
                count=len(values),
            )
            tables.append(table)
        return tables

    def batch_classify(
        self, codes: np.ndarray, vocabularies: Sequence[Vocabulary]
    ) -> np.ndarray:
        """Classify every row of a columnar code matrix.

        Returns the ``(n_rows,)`` int64 array of pattern *ranks*
        (decode with :meth:`pattern_of`); row ``r`` gets exactly
        ``classify_rank(decode_row(r))``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        require(
            codes.ndim == 2 and codes.shape[1] == self._n_features,
            f"codes matrix has shape {codes.shape}, "
            f"expected (*, {self._n_features})",
        )
        require(
            len(vocabularies) == self._n_features,
            "one vocabulary per feature required",
        )
        if codes.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if self._mask_consistent:
            masked = np.empty_like(codes)
            tables = self._invariant_tables(vocabularies)
            for feature, table in enumerate(tables):
                column = codes[:, feature]
                keep = table[column] if len(table) else np.zeros(len(column), bool)
                masked[:, feature] = np.where(keep, column, -1)
            unique_rows, inverse = np.unique(masked, axis=0, return_inverse=True)
            resolve = self._resolve_masked_row
        else:
            unique_rows, inverse = np.unique(codes, axis=0, return_inverse=True)
            resolve = self._resolve_raw_row
        inverse = np.asarray(inverse).reshape(-1)  # numpy 2.0 shape change
        ranks = np.fromiter(
            (resolve(row, vocabularies) for row in unique_rows),
            dtype=np.int64,
            count=len(unique_rows),
        )
        return ranks[inverse]

    def _resolve_masked_row(
        self, row: np.ndarray, vocabularies: Sequence[Vocabulary]
    ) -> int:
        """Rank of one unique *masked* code row (``-1`` == wildcard).

        A pattern matches an instance iff it matches the instance's
        mask (mask-consistency precondition), so classifying the masked
        tuple itself gives every grouped row's answer; when the mask is
        a pattern of the set it is its own most-specific match and the
        trie walk is skipped entirely.
        """
        masked_tuple = tuple(
            WILDCARD if code < 0 else vocabularies[f].decode(int(code))
            for f, code in enumerate(row.tolist())
        )
        rank = self._rank_of.get(masked_tuple)
        if rank is not None:
            return rank
        return self.classify_rank(masked_tuple)

    def _resolve_raw_row(
        self, row: np.ndarray, vocabularies: Sequence[Vocabulary]
    ) -> int:
        """Rank of one unique raw code row (hand-built-set fallback)."""
        values = tuple(
            vocabularies[f].decode(int(code)) for f, code in enumerate(row.tolist())
        )
        return self.classify_rank(values)
