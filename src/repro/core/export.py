"""Export clustering results to JSON-ready structures.

Downstream consumers (dashboards, diffing across runs, sharing results
without sharing the dataset) need the cluster structure as plain data.
These exporters emit dictionaries of JSON-compatible primitives;
wildcards encode as the string ``"*"`` and taxonomy concepts as their
``"<name>"`` rendering, both unambiguous because feature values are
never bare ``"*"`` strings in this codebase's feature sets.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.classifier import DimensionClustering
from repro.core.epm import EPMResult
from repro.core.patterns import WILDCARD
from repro.sandbox.clustering import BehaviorClustering


def _value_to_json(value: Hashable) -> Any:
    if value is WILDCARD:
        return "*"
    if isinstance(value, tuple):
        return [_value_to_json(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def dimension_to_dict(clustering: DimensionClustering) -> dict[str, Any]:
    """One dimension's clusters and assignment as plain data."""
    return {
        "dimension": clustering.dimension.value,
        "feature_names": list(clustering.feature_names),
        "n_instances": clustering.n_instances,
        "invariant_counts": clustering.invariants.count_per_feature(),
        "clusters": [
            {
                "id": info.cluster_id,
                "size": info.size,
                "pattern": [_value_to_json(v) for v in info.pattern],
            }
            for info in clustering.clusters.values()
        ],
        "assignment": {
            str(event_id): cluster_id
            for event_id, cluster_id in sorted(clustering.assignment.items())
        },
    }


def epm_to_dict(result: EPMResult) -> dict[str, Any]:
    """A full EPM result as plain data (JSON-serializable)."""
    return {
        "policy": {
            "min_instances": result.policy.min_instances,
            "min_sources": result.policy.min_sources,
            "min_sensors": result.policy.min_sensors,
        },
        "counts": result.counts(),
        "dimensions": {
            dimension.value: dimension_to_dict(clustering)
            for dimension, clustering in result.dimensions.items()
        },
    }


def bclusters_to_dict(result: BehaviorClustering) -> dict[str, Any]:
    """A behaviour clustering as plain data (JSON-serializable)."""
    return {
        "n_clusters": result.n_clusters,
        "n_singletons": len(result.singletons()),
        "clusters": {
            str(cluster_id): members for cluster_id, members in result.clusters.items()
        },
    }
