"""Phases 3 and 4 — pattern discovery and most-specific matching.

A *pattern* is a tuple ``(v_1, ..., v_n)`` over a dimension's features
where each ``v_i`` is either an invariant value or the "do not care"
:data:`WILDCARD`.  Pattern discovery masks every observed instance —
keeping invariant values, wildcarding everything else — and collects the
distinct masked tuples (optionally pruning rare ones).

Classification assigns each instance the **most specific** matching
pattern: specificity is the number of non-wildcard fields, with ties
broken by higher support and then lexicographic order, so assignment is
total and deterministic.  Because every pattern arises by masking, an
instance's own mask — when present in the set — is always its unique
most-specific match, which makes the common case O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.invariants import InvariantStats
from repro.obs import metrics as obs_metrics
from repro.util.validation import require

#: Default bound on the per-set memo of linear-scan results (instances
#: whose own mask is absent from the set).  Small on purpose: the memo
#: exists for hot-path *repeats*, not as a second pattern store.
DEFAULT_SCAN_CACHE_SIZE = 1024


class _Wildcard:
    """Singleton "do not care" marker; sorts stably and prints as ``*``."""

    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __reduce__(self):
        return (_Wildcard, ())


#: The "do not care" value used in patterns.
WILDCARD = _Wildcard()

Pattern = tuple[Hashable, ...]


def mask_instance(values: Sequence[Hashable], invariants: InvariantStats) -> Pattern:
    """Mask an instance tuple: invariant values kept, others wildcarded."""
    require(
        len(values) == len(invariants.feature_names),
        "instance arity does not match invariant stats",
    )
    return tuple(
        value if invariants.is_invariant(i, value) else WILDCARD
        for i, value in enumerate(values)
    )


def pattern_matches(pattern: Pattern, values: Sequence[Hashable]) -> bool:
    """Whether ``values`` is an instance of ``pattern``."""
    if len(pattern) != len(values):
        return False
    return all(p is WILDCARD or p == v for p, v in zip(pattern, values))


def specificity(pattern: Pattern) -> int:
    """Number of non-wildcard fields."""
    return sum(1 for p in pattern if p is not WILDCARD)


def generalizes(general: Pattern, specific: Pattern) -> bool:
    """Whether ``general`` matches every instance ``specific`` matches."""
    if len(general) != len(specific):
        return False
    return all(
        g is WILDCARD or g == s for g, s in zip(general, specific)
    )


@dataclass(frozen=True)
class _RankedPattern:
    pattern: Pattern
    support: int

    @property
    def sort_key(self) -> tuple:
        return (-specificity(self.pattern), -self.support, repr(self.pattern))


class PatternSet:
    """The discovered patterns of one dimension, ready for classification."""

    def __init__(
        self,
        patterns: dict[Pattern, int],
        *,
        scan_cache_size: int = DEFAULT_SCAN_CACHE_SIZE,
    ) -> None:
        require(len(patterns) > 0, "PatternSet cannot be empty")
        require(scan_cache_size >= 0, "scan_cache_size must be >= 0")
        self._support = dict(patterns)
        self._ranked = sorted(
            (_RankedPattern(p, s) for p, s in patterns.items()),
            key=lambda rp: rp.sort_key,
        )
        # Bounded LRU memo of linear-scan results, keyed by the raw
        # instance tuple.  The scan depends only on (values, _ranked) —
        # never on the invariants argument — so memoizing by values is
        # bit-identical to rescanning, whatever invariants are passed.
        self._scan_cache_size = scan_cache_size
        self._scan_cache: OrderedDict[Pattern, Pattern] = OrderedDict()

    @classmethod
    def discover(
        cls,
        instances: Iterable[Sequence[Hashable]],
        invariants: InvariantStats,
        *,
        min_support: int = 1,
    ) -> "PatternSet":
        """Phase 3: collect the distinct masked tuples of ``instances``.

        Patterns below ``min_support`` are pruned; the all-wildcard root
        pattern is always retained so classification stays total (it is
        the "anything" cluster instances fall back to).
        """
        require(min_support >= 1, "min_support must be >= 1")
        counts: dict[Pattern, int] = {}
        n_features = len(invariants.feature_names)
        total = 0
        for values in instances:
            masked = mask_instance(values, invariants)
            counts[masked] = counts.get(masked, 0) + 1
            total += 1
        kept = {p: s for p, s in counts.items() if s >= min_support}
        root: Pattern = tuple([WILDCARD] * n_features)
        if root not in kept:
            kept[root] = total - sum(kept.values())
        return cls(kept)

    @property
    def patterns(self) -> list[Pattern]:
        """All patterns, most specific first."""
        return [rp.pattern for rp in self._ranked]

    def support_of(self, pattern: Pattern) -> int:
        """Discovery-time instance count of ``pattern``."""
        return self._support[pattern]

    def __len__(self) -> int:
        return len(self._support)

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern in self._support

    def classify(
        self, values: Sequence[Hashable], invariants: InvariantStats
    ) -> Pattern:
        """Phase 4: the most specific pattern matching ``values``.

        Fast path: the instance's own mask, when present.  Otherwise a
        bounded LRU memo of previous scan results is consulted before
        falling back to the most-specific-first scan; the root pattern
        guarantees a hit.
        """
        masked = mask_instance(values, invariants)
        if masked in self._support:
            return masked
        key = tuple(values)
        cached = self._scan_cache.get(key)
        if cached is not None:
            self._scan_cache.move_to_end(key)
            obs_metrics.active().counter("classify.scan_cache_hit").inc()
            return cached
        obs_metrics.active().counter("classify.scan_cache_miss").inc()
        result = self.scan_classify(key)
        if self._scan_cache_size:
            self._scan_cache[key] = result
            if len(self._scan_cache) > self._scan_cache_size:
                self._scan_cache.popitem(last=False)
        return result

    def scan_classify(self, values: Sequence[Hashable]) -> Pattern:
        """The pure linear reference path: scan the ranked list,
        most specific first, no fast path, no memo.  This is the
        semantics every accelerated path (the own-mask shortcut, the
        LRU memo, :class:`~repro.core.pattern_index.PatternIndex`)
        must reproduce bit for bit."""
        for ranked in self._ranked:
            if pattern_matches(ranked.pattern, values):
                return ranked.pattern
        raise ValueError("no pattern matches the instance")

    def matching_patterns(self, values: Sequence[Hashable]) -> list[Pattern]:
        """All patterns matching ``values`` (most specific first).

        The paper notes multiple patterns can match one instance (e.g.
        ``(*, 2, 3)`` and ``(*, *, 3)`` both match ``(1, 2, 3)``); this
        returns the full list for inspection and tests.
        """
        return [
            rp.pattern for rp in self._ranked if pattern_matches(rp.pattern, values)
        ]


def format_pattern(pattern: Pattern, feature_names: Sequence[str]) -> str:
    """Render a pattern as ``{name=value, ...}`` with ``*`` wildcards."""
    require(len(pattern) == len(feature_names), "pattern arity mismatch")
    parts = []
    for name, value in zip(feature_names, pattern):
        rendered = "*" if value is WILDCARD else repr(value)
        parts.append(f"{name}={rendered}")
    return "{" + ", ".join(parts) + "}"
