"""Attribute-oriented induction with generalization taxonomies.

EPM clustering is "a simplification of the multidimensional clustering
technique described by Julisch" (TISSEC 2003): where EPM jumps straight
from a concrete value to the "do not care" wildcard, Julisch's original
walks *generalization hierarchies* — a port generalizes to its service
class before collapsing to ANY, a file size to a size band, a filename
to its extension.  This module implements that richer lattice:

* :class:`Taxonomy` — a per-feature generalization hierarchy (value ->
  parent concept -> ... -> :data:`ANY`);
* :class:`AOIMiner` — mines generalized patterns such that every
  pattern covers at least ``min_size`` instances, generalizing
  under-supported patterns one taxonomy level at a time on the
  attribute that currently fragments them the most.

Unlike Julisch's batch algorithm (which generalizes *every* alarm when
an attribute is selected), the miner only generalizes patterns below
the support floor, so well-supported specific patterns survive — a
conservative variant that makes the comparison with EPM meaningful.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from repro.util.validation import require


class _Any:
    """Singleton taxonomy root; matches every value, prints as ``ANY``."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"

    def __reduce__(self):
        return (_Any, ())


#: The top of every taxonomy.
ANY = _Any()


@dataclass(frozen=True)
class Concept:
    """An interior taxonomy node (a named group of values)."""

    name: str

    def __repr__(self) -> str:
        return f"<{self.name}>"


class Taxonomy:
    """A generalization hierarchy for one feature.

    ``parent`` maps a value or :class:`Concept` one level up; anything
    unmapped generalizes directly to :data:`ANY`.  The hierarchy must be
    acyclic; :meth:`generalize` walks exactly one level.
    """

    def __init__(self, parent: Mapping[Hashable, Hashable] | None = None) -> None:
        self._parent = dict(parent or {})
        for node in self._parent:
            require(node is not ANY, "ANY cannot be generalized further")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for start in self._parent:
            seen = {start}
            node = start
            while node in self._parent:
                node = self._parent[node]
                require(node not in seen, f"taxonomy cycle through {node!r}")
                seen.add(node)

    def generalize(self, value: Hashable) -> Hashable:
        """One step up the hierarchy (to :data:`ANY` when unmapped)."""
        if value is ANY:
            return ANY
        return self._parent.get(value, ANY)

    def level_of(self, value: Hashable) -> int:
        """Distance from ``value`` to :data:`ANY` (0 for ANY itself)."""
        level = 0
        node = value
        while node is not ANY:
            node = self.generalize(node)
            level += 1
        return level

    def covers(self, concept: Hashable, value: Hashable) -> bool:
        """Whether ``concept`` is an ancestor-or-self of ``value``."""
        node = value
        while True:
            if node == concept or concept is ANY:
                return True
            if node is ANY:
                return False
            node = self.generalize(node)


def flat_taxonomy() -> Taxonomy:
    """The EPM degenerate case: every value generalizes straight to ANY."""
    return Taxonomy({})


def band_taxonomy(values: Iterable[int], *, width: int, label: str) -> Taxonomy:
    """Numeric banding: value -> <label:lo-hi> -> ANY.

    >>> t = band_taxonomy([5, 17], width=10, label="size")
    >>> t.generalize(5)
    <size:0-9>
    """
    require(width > 0, "band width must be positive")
    parent: dict[Hashable, Hashable] = {}
    for value in values:
        if not isinstance(value, int):
            continue
        lo = (value // width) * width
        parent[value] = Concept(f"{label}:{lo}-{lo + width - 1}")
    return Taxonomy(parent)


def port_taxonomy() -> Taxonomy:
    """Ports -> service classes -> ANY (the classic Julisch example)."""
    classes = {
        135: "msrpc-class",
        139: "netbios-class",
        445: "netbios-class",
        1025: "msrpc-class",
        21: "download-class",
        69: "download-class",
        80: "download-class",
        6667: "irc-class",
        9988: "backdoor-class",
    }
    return Taxonomy({port: Concept(name) for port, name in classes.items()})


Pattern = tuple[Hashable, ...]


@dataclass
class AOIResult:
    """Mined generalized patterns and the instance assignment."""

    feature_names: list[str]
    patterns: list[Pattern]
    support: dict[Pattern, int]
    assignment: dict[int, Pattern]

    @property
    def n_patterns(self) -> int:
        """Number of generalized patterns."""
        return len(self.patterns)

    def describe(self, pattern: Pattern) -> str:
        """Render one pattern."""
        parts = [
            f"{name}={value!r}" if value is not ANY else f"{name}=ANY"
            for name, value in zip(self.feature_names, pattern)
        ]
        return "{" + ", ".join(parts) + "}"


class AOIMiner:
    """Attribute-oriented induction over a feature table."""

    def __init__(
        self,
        feature_names: Sequence[str],
        taxonomies: Mapping[str, Taxonomy] | None = None,
        *,
        min_size: int = 10,
    ) -> None:
        require(len(feature_names) > 0, "need at least one feature")
        require(min_size >= 1, "min_size must be >= 1")
        self.feature_names = list(feature_names)
        self.min_size = min_size
        taxonomies = dict(taxonomies or {})
        self.taxonomies = [
            taxonomies.get(name, flat_taxonomy()) for name in self.feature_names
        ]

    def _fragmentation(
        self, patterns: Counter, attribute: int, weak: list[Pattern]
    ) -> int:
        """How many distinct values the weak patterns show on ``attribute``."""
        return len({pattern[attribute] for pattern in weak})

    def fit(self, instances: Sequence[Sequence[Hashable]]) -> AOIResult:
        """Mine generalized patterns covering >= ``min_size`` instances each.

        Instances whose pattern cannot reach the floor even at full
        generalization end up in the all-ANY root pattern.
        """
        n = len(self.feature_names)
        for instance in instances:
            require(len(instance) == n, "instance arity mismatch")

        current: list[Pattern] = [tuple(i) for i in instances]
        table: Counter = Counter(current)

        while True:
            weak = [p for p, s in table.items() if s < self.min_size]
            if not weak:
                break
            candidates = [
                (self._fragmentation(table, attribute, weak), attribute)
                for attribute in range(n)
                if any(p[attribute] is not ANY for p in weak)
            ]
            if not candidates:
                break  # everything weak is fully generalized already
            _score, attribute = max(candidates)
            taxonomy = self.taxonomies[attribute]
            new_table: Counter = Counter()
            rewrite: dict[Pattern, Pattern] = {}
            for pattern, support in table.items():
                if support < self.min_size and pattern[attribute] is not ANY:
                    lifted = list(pattern)
                    lifted[attribute] = taxonomy.generalize(pattern[attribute])
                    new_pattern = tuple(lifted)
                else:
                    new_pattern = pattern
                rewrite[pattern] = new_pattern
                new_table[new_pattern] += support
            current = [rewrite[p] for p in current]
            table = new_table

        assignment = {index: pattern for index, pattern in enumerate(current)}
        patterns = sorted(table, key=lambda p: (-table[p], repr(p)))
        return AOIResult(
            feature_names=self.feature_names,
            patterns=patterns,
            support=dict(table),
            assignment=assignment,
        )
