"""Cluster bookkeeping for one EPM dimension.

:class:`DimensionClustering` packages the outcome of running phases 2-4
over one dimension of a dataset: the invariant statistics, the pattern
set, and the event -> cluster assignment.  Cluster identifiers are dense
integers ordered by decreasing size (ties by pattern text), mirroring the
paper's "P-pattern 45" / "M-cluster 13" naming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.features import Dimension
from repro.core.invariants import InvariantStats
from repro.core.patterns import Pattern, PatternSet, format_pattern


@dataclass
class ClusterInfo:
    """One E-, P- or M-cluster."""

    cluster_id: int
    pattern: Pattern
    event_ids: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of attack events in the cluster."""
        return len(self.event_ids)

    def describe(self, feature_names: Sequence[str]) -> str:
        """Render the defining pattern."""
        return format_pattern(self.pattern, feature_names)


class DimensionClustering:
    """Assignment of one dimension's events to pattern-defined clusters."""

    def __init__(
        self,
        dimension: Dimension,
        feature_names: Sequence[str],
        invariants: InvariantStats,
        pattern_set: PatternSet,
        instances: dict[int, tuple[Hashable, ...]],
    ) -> None:
        self.dimension = dimension
        self.feature_names = list(feature_names)
        self.invariants = invariants
        self.pattern_set = pattern_set

        by_pattern: dict[Pattern, list[int]] = {}
        self._instance_of: dict[int, tuple[Hashable, ...]] = dict(instances)
        for event_id, values in instances.items():
            pattern = pattern_set.classify(values, invariants)
            by_pattern.setdefault(pattern, []).append(event_id)

        ordered = sorted(
            by_pattern.items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
        )
        self.clusters: dict[int, ClusterInfo] = {}
        self.assignment: dict[int, int] = {}
        self._cluster_of_pattern: dict[Pattern, int] = {}
        for cluster_id, (pattern, event_ids) in enumerate(ordered):
            info = ClusterInfo(
                cluster_id=cluster_id, pattern=pattern, event_ids=sorted(event_ids)
            )
            self.clusters[cluster_id] = info
            self._cluster_of_pattern[pattern] = cluster_id
            for event_id in event_ids:
                self.assignment[event_id] = cluster_id

    @property
    def n_clusters(self) -> int:
        """Number of non-empty clusters."""
        return len(self.clusters)

    @property
    def n_instances(self) -> int:
        """Number of classified events."""
        return len(self.assignment)

    def cluster_of(self, event_id: int) -> int | None:
        """Cluster id of an event, or ``None`` if it lacked this dimension."""
        return self.assignment.get(event_id)

    def cluster_of_pattern(self, pattern: Pattern) -> int | None:
        """Cluster id assigned to ``pattern``, if any instance landed on it."""
        return self._cluster_of_pattern.get(pattern)

    def instance_of(self, event_id: int) -> tuple[Hashable, ...]:
        """The raw feature tuple the event was classified from."""
        return self._instance_of[event_id]

    def sizes(self) -> dict[int, int]:
        """Cluster id -> event count."""
        return {cid: info.size for cid, info in self.clusters.items()}

    def describe_cluster(self, cluster_id: int) -> str:
        """Pattern text of one cluster."""
        return self.clusters[cluster_id].describe(self.feature_names)
